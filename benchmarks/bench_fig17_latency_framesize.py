"""E-F17: Fig. 17 — goodput vs latency requirement and vs frame size.

(a) 30 STAs/AP, CBR downlink, latency requirement swept 10–200 ms: the
requirement is both the aggregation deadline and the usefulness bound.
Carpool's gain over A-MPDU is largest at tight bounds and shrinks as the
bound loosens (paper: 1.9–9.8×).

(b) latency fixed at 10 ms, frame size swept 100–1500 B: Carpool holds a
multi-× goodput gain over A-MPDU and 802.11 across sizes (paper: 2.8–3.6×
and 5–6.4×).
"""

from _report import Report, fmt_mbps
from repro.mac import AmpduProtocol, CarpoolProtocol, Dot11Protocol
from repro.mac.scenarios import CbrScenario

DURATION = 6.0
LATENCIES = (0.010, 0.050, 0.100, 0.200)
FRAME_SIZES = (100, 200, 400, 800, 1500)


def _run_latency_sweep():
    results = {}
    for latency in LATENCIES:
        scenario = CbrScenario(
            num_stations=30, duration=DURATION, frame_bytes=120,
            frames_per_second=100.0, latency_requirement=latency,
        )
        for cls in (AmpduProtocol, CarpoolProtocol):
            results[(latency, cls.name)] = scenario.run(cls)
    return results


def _run_size_sweep():
    results = {}
    for size in FRAME_SIZES:
        scenario = CbrScenario(
            num_stations=30, duration=DURATION, frame_bytes=size,
            frames_per_second=100.0, latency_requirement=0.010,
        )
        for cls in (Dot11Protocol, AmpduProtocol, CarpoolProtocol):
            results[(size, cls.name)] = scenario.run(cls)
    return results


def test_fig17a_latency_requirements(benchmark):
    results = benchmark.pedantic(_run_latency_sweep, rounds=1, iterations=1)

    report = Report(
        "E-F17a",
        "Fig. 17(a) — goodput vs latency requirement (30 STAs)",
        "Carpool 1.9–9.8× the A-MPDU goodput; the gain shrinks as the "
        "latency bound loosens",
    )
    rows = []
    gains = []
    for latency in LATENCIES:
        carpool = results[(latency, "Carpool")].measured_ap_useful_goodput_bps
        ampdu = results[(latency, "A-MPDU")].measured_ap_useful_goodput_bps
        gain = carpool / max(ampdu, 1.0)
        gains.append(gain)
        rows.append([f"{latency * 1e3:.0f} ms", fmt_mbps(carpool), fmt_mbps(ampdu),
                     f"{gain:.2f}x"])
    report.table(["latency req", "Carpool", "A-MPDU", "gain"], rows)
    report.save_and_print("fig17a_latency")

    assert gains[0] > 1.3, "Carpool must win clearly at the tightest bound"
    assert gains[0] > gains[-1], "gain shrinks as the bound loosens"


def test_fig17b_frame_sizes(benchmark):
    results = benchmark.pedantic(_run_size_sweep, rounds=1, iterations=1)

    report = Report(
        "E-F17b",
        "Fig. 17(b) — goodput vs frame size (10 ms latency requirement)",
        "Carpool sustains a multi-× goodput gain over A-MPDU (paper: "
        "2.8–3.6×) and 802.11 (paper: 5–6.4×) across frame sizes",
    )
    rows = []
    for size in FRAME_SIZES:
        carpool = results[(size, "Carpool")].measured_ap_goodput_bps
        ampdu = results[(size, "A-MPDU")].measured_ap_goodput_bps
        dot11 = results[(size, "802.11")].measured_ap_goodput_bps
        rows.append([size, fmt_mbps(carpool), fmt_mbps(ampdu), fmt_mbps(dot11),
                     f"{carpool / max(ampdu, 1.0):.2f}x",
                     f"{carpool / max(dot11, 1.0):.2f}x"])
    report.table(
        ["frame B", "Carpool", "A-MPDU", "802.11", "vs A-MPDU", "vs 802.11"], rows
    )
    report.save_and_print("fig17b_frame_size")

    for size in FRAME_SIZES:
        carpool = results[(size, "Carpool")].measured_ap_goodput_bps
        ampdu = results[(size, "A-MPDU")].measured_ap_goodput_bps
        dot11 = results[(size, "802.11")].measured_ap_goodput_bps
        assert carpool > ampdu, f"Carpool must beat A-MPDU at {size} B"
        assert carpool > 2.0 * dot11, f"Carpool must beat 802.11 clearly at {size} B"
    # A-MPDU's reliability collapses at large aggregates; Carpool's does not.
    assert (results[(1500, "Carpool")].measured_ap_goodput_bps
            > 3.0 * results[(1500, "A-MPDU")].measured_ap_goodput_bps)
