"""E-F14: Fig. 14 — RTE vs standard BER across modulations and powers.

Power magnitudes 0.05 and 0.2, all four modulations. The paper observes
that RTE's gains concentrate on the higher-order modulations (QAM16/64),
which are the ones sensitive to channel drift.
"""

from _report import Report, fmt_ber
from repro.analysis import LinkConfig, ber_by_symbol_index

MODULATIONS = ("BPSK-1/2", "QPSK-1/2", "QAM16-3/4", "QAM64-3/4")
POWERS = (0.05, 0.2)
TRIALS = 30


def _run():
    results = {}
    for power in POWERS:
        link = LinkConfig(seed=14).with_power(power)
        for mcs in MODULATIONS:
            std = ber_by_symbol_index(mcs, 4090, TRIALS, use_rte=False, link=link,
                                      n_workers=None)
            rte = ber_by_symbol_index(mcs, 4090, TRIALS, use_rte=True, link=link,
                                      n_workers=None)
            results[(power, mcs)] = (std.mean_ber, rte.mean_ber)
    return results


def test_fig14_rte_across_modulations(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F14",
        "Fig. 14 — BER of RTE vs standard estimation by modulation/power",
        "RTE gains are largest in *absolute* terms for QAM16/QAM64 (the "
        "drift-sensitive modulations); BPSK/QPSK see marginal gains",
    )
    for power in POWERS:
        report.line(f"power magnitude = {power}:")
        rows = []
        for mcs in MODULATIONS:
            std, rte = results[(power, mcs)]
            rows.append([mcs, fmt_ber(std), fmt_ber(rte), fmt_ber(std - rte)])
        report.table(["modulation", "Standard", "RTE", "absolute gain"], rows)
        report.line()
    report.line(
        "Deviation note: at power 0.05 our drift-dominated channel gives "
        "BPSK/QPSK large RTE gains (their symbols still decode, feeding "
        "clean data pilots) while QAM16/64 sit below working SNR under "
        "both schemes; the paper's low-power regime is noise-dominated "
        "instead, making its low-order gains look marginal."
    )
    report.save_and_print("fig14_rte_modulations")

    # At the high-power setting RTE must improve *every* modulation, and
    # must deliver a several-fold BER reduction somewhere above QPSK —
    # the headline of Fig. 14 ("several times lower BERs for higher-order
    # modulation schemes").
    for mcs in MODULATIONS:
        std, rte = results[(0.2, mcs)]
        assert rte <= std, f"RTE must not hurt {mcs} at power 0.2"
    std16, rte16 = results[(0.2, "QAM16-3/4")]
    assert rte16 < 0.5 * std16, "RTE must cut QAM16 BER several-fold"
    # At the low-power setting, modulations operating above their working
    # SNR (BPSK/QPSK) gain from RTE; QAM16/64 sit below it under *both*
    # schemes (as in the paper's Fig. 14(a) where both curves are ≈1e-1)
    # and RTE must not make them catastrophically worse.
    for mcs in ("BPSK-1/2", "QPSK-1/2"):
        std, rte = results[(0.05, mcs)]
        assert rte < std
    for mcs in ("QAM16-3/4", "QAM64-3/4"):
        std, rte = results[(0.05, mcs)]
        assert rte < 1.6 * std
