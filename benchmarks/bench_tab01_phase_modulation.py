"""E-T1: Table 1 — phase-offset modulation map.

Round-trips every bit pattern through the side channel's phase mapping and
checks the exact degree values of the paper's table.
"""

import numpy as np

from _report import Report
from repro.core.side_channel import ONE_BIT_SCHEME, TWO_BIT_SCHEME


def _run():
    mapping = {}
    for scheme in (ONE_BIT_SCHEME, TWO_BIT_SCHEME):
        rows = []
        for label in range(1 << scheme.bits_per_symbol):
            bits = [(label >> (scheme.bits_per_symbol - 1 - i)) & 1
                    for i in range(scheme.bits_per_symbol)]
            delta = scheme.encode_deltas(np.array(bits, dtype=np.uint8))[0]
            decoded = scheme.decode_deltas(np.array([delta]))
            rows.append((bits, np.rad2deg(delta), decoded.tolist()))
        mapping[scheme.name] = rows
    return mapping


def test_tab01_phase_offset_modulation(benchmark):
    mapping = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-T1",
        "Table 1 — phase-offset modulation",
        "1-bit: 90°→1, −90°→0; 2-bit: 45°→11, 135°→01, −135°→00, −45°→10",
    )
    expected = {
        "1-bit": {(1,): 90.0, (0,): -90.0},
        "2-bit": {(1, 1): 45.0, (0, 1): 135.0, (0, 0): -135.0, (1, 0): -45.0},
    }
    rows = []
    for name, entries in mapping.items():
        for bits, degrees, decoded in entries:
            want = expected[name][tuple(bits)]
            rows.append([name, "".join(map(str, bits)), f"{degrees:+.0f}°",
                         f"{want:+.0f}°", "ok" if decoded == bits else "MISMATCH"])
            assert degrees == want
            assert decoded == bits
    report.table(["scheme", "bits", "measured offset", "paper", "round-trip"], rows)
    report.save_and_print("tab01_phase_modulation")
