"""Result formatting shared by all benchmarks.

Every benchmark regenerates one table/figure of the paper and emits a
plain-text report: the measured series next to the paper's expectation,
saved under ``benchmarks/results/`` and printed to the terminal.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


class Report:
    """Accumulates one experiment's table and writes it out."""

    def __init__(self, experiment_id: str, title: str, expectation: str):
        self.experiment_id = experiment_id
        self.title = title
        self.expectation = expectation
        self._lines: list = []

    def line(self, text: str = "") -> None:
        self._lines.append(text)

    def table(self, headers: list, rows: list) -> None:
        """Append an aligned text table."""
        cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

        def fmt(row):
            return "  ".join(c.rjust(w) for c, w in zip(row, widths))

        self._lines.append(fmt(cells[0]))
        self._lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            self._lines.append(fmt(row))

    def render(self) -> str:
        header = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper expectation: {self.expectation}",
            "",
        ]
        return "\n".join(header + self._lines) + "\n"

    def save_and_print(self, name: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        text = self.render()
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print("\n" + text)
        return path


def fmt_ber(value: float) -> str:
    return f"{value:.2e}"


def fmt_mbps(bps: float) -> str:
    return f"{bps / 1e6:.3f}"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}"
