"""E-F11: Fig. 11 — impact of the phase-offset side channel on data decoding.

Single link, static office layout, standard receiver. For each modulation
and power setting, compare the BER of the PHY *with* per-symbol phase
injection against the unmodified PHY. The paper reports differences of
1.02 %–5.49 % — i.e. no meaningful impact.
"""

from _report import Report, fmt_ber
from repro.analysis import data_ber_with_side_channel
from repro.channel import POWER_MAGNITUDES

MODULATIONS = ("BPSK-1/2", "QPSK-1/2", "QAM16-1/2", "QAM64-2/3")
TRIALS = 40


def _run():
    results = {}
    for mcs in MODULATIONS:
        for power in POWER_MAGNITUDES:
            with_sc = data_ber_with_side_channel(mcs, power, TRIALS, inject=True,
                                                 n_workers=None)
            without = data_ber_with_side_channel(mcs, power, TRIALS, inject=False,
                                                 n_workers=None)
            results[(mcs, power)] = (with_sc, without)
    return results


def test_fig11_side_channel_data_impact(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F11",
        "Fig. 11 — data BER with vs without the phase-offset side channel",
        "BER monotone in power for every modulation; side channel changes "
        "BER by only a few percent (paper: 1.02 %–5.49 %)",
    )
    rows = []
    for (mcs, power), (with_sc, without) in results.items():
        rows.append([mcs, power, fmt_ber(with_sc), fmt_ber(without)])
    report.table(["modulation", "power", "BER w/ offset", "BER standard"], rows)
    report.save_and_print("fig11_side_channel_impact")

    for mcs in MODULATIONS:
        # BER decreases with power (allowing zero floors at the top end).
        series = [results[(mcs, p)][0] for p in POWER_MAGNITUDES]
        assert series[0] >= series[-1]
        # Side channel has no *meaningful* impact wherever BER is measurable.
        for power in POWER_MAGNITUDES:
            with_sc, without = results[(mcs, power)]
            if without > 1e-3:
                assert with_sc < 3.0 * without + 1e-4
