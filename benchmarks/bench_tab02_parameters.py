"""E-T2: Table 2 — PHY/MAC parameters used by the MAC evaluation.

Verifies the simulator's constants against the paper's table and exercises
the derived quantities (ACK airtime, EIFS, backoff bounds) once.
"""

from _report import Report
from repro.mac.airtime import ack_airtime
from repro.mac.parameters import DEFAULT_PARAMETERS


def _run():
    p = DEFAULT_PARAMETERS
    return {
        "Slot time": (p.slot_time, 9e-6),
        "SIFS": (p.sifs, 10e-6),
        "DIFS": (p.difs, 28e-6),
        "Minimal contention window": (p.cw_min, 15),
        "Maximal contention window": (p.cw_max, 1023),
        "PLCP header": (p.plcp_header_time, 28e-6),
        "Propagation delay": (p.propagation_delay, 1e-6),
    }


def test_tab02_phy_mac_parameters(benchmark):
    values = benchmark.pedantic(_run, rounds=1, iterations=1)
    report = Report(
        "E-T2",
        "Table 2 — PHY/MAC parameters",
        "slot 9 µs, SIFS 10 µs, DIFS 28 µs, CW 15–1023, PLCP 28 µs, "
        "propagation 1 µs",
    )
    rows = []
    for name, (measured, paper) in values.items():
        unit = "" if isinstance(paper, int) else " µs"
        shown = measured if isinstance(paper, int) else round(measured * 1e6, 3)
        want = paper if isinstance(paper, int) else round(paper * 1e6, 3)
        rows.append([name, f"{shown}{unit}", f"{want}{unit}"])
        assert measured == paper
    report.table(["parameter", "simulator", "paper"], rows)
    report.line()
    report.line(f"derived ACK airtime: {ack_airtime(DEFAULT_PARAMETERS) * 1e6:.1f} µs")
    report.line(f"derived EIFS: {DEFAULT_PARAMETERS.eifs * 1e6:.1f} µs")
    report.save_and_print("tab02_parameters")
