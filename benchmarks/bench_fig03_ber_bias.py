"""E-F3: Fig. 3 — BER bias in a long frame.

4 KB QAM64-modulated frames over the office link, standard (preamble-only)
channel estimation: per-symbol BER must grow with the symbol index.
"""

import numpy as np

from _report import Report, fmt_ber
from repro.analysis import LinkConfig, ber_by_symbol_index

TRIALS = 60


def _run():
    return ber_by_symbol_index(
        mcs_name="QAM64-3/4",
        payload_bytes=4090,
        trials=TRIALS,
        use_rte=False,
        link=LinkConfig(seed=3),
        n_workers=None,
    )


def test_fig03_ber_bias(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    ber = result.ber_per_symbol

    report = Report(
        "E-F3",
        "Fig. 3 — BER bias in a long frame (QAM64, 4 KB, standard CE)",
        "BER grows monotonically with symbol index; tail symbols several "
        "times worse than head (paper: ≈4e-4 at symbol 1 → ≈1.6e-3 at 111)",
    )
    rows = []
    for start in range(0, ber.size, 10):
        chunk = ber[start : start + 10]
        rows.append([f"{start + 1}–{min(start + 10, ber.size)}", fmt_ber(chunk.mean())])
    report.table(["symbol index", "BER"], rows)
    head = ber[:10].mean()
    tail = ber[-10:].mean()
    report.line()
    report.line(f"head/tail: {fmt_ber(head)} → {fmt_ber(tail)}  (bias ×{tail / head:.1f})")
    report.save_and_print("fig03_ber_bias")

    # The headline phenomenon: statistically meaningful growth head → tail.
    assert tail > 2.0 * head
    # And roughly monotone: each third of the frame no better than the last.
    thirds = [ber[: ber.size // 3].mean(), ber[ber.size // 3 : 2 * ber.size // 3].mean(),
              ber[2 * ber.size // 3 :].mean()]
    assert thirds[0] < thirds[1] < thirds[2]
