"""E-MIMO: §8 "Extension on MIMO" (Fig. 18).

A two-antenna AP with traffic for four stations: 802.11ac MU-MIMO needs
two transmissions (two streams each), Carpool-MU-MIMO aggregates both
precoder groups behind one legacy preamble + A-HDR. This bench builds the
actual precoded frame, decodes it at all four stations over the MIMO
channel, and accounts the airtime saved.
"""

import numpy as np

from _report import Report
from repro.core.frame import SubframeSpec
from repro.core.mac_address import MacAddress
from repro.core.mimo import (
    MuMimoCarpoolReceiver,
    MuMimoCarpoolTransmitter,
    transmissions_required,
)
from repro.phy.mimo import MimoChannel
from repro.phy.mcs import mcs_by_name
from repro.phy.transceiver import PREAMBLE_SYMBOLS
from repro.util.rng import RngStream


def _run():
    channel = MimoChannel(num_users=4, num_antennas=2, rng=RngStream(88))
    rng = np.random.default_rng(88)
    mcs = mcs_by_name("QPSK-1/2")
    specs = [
        SubframeSpec(MacAddress.from_int(i),
                     bytes(rng.integers(0, 256, 300, dtype=np.uint8)), mcs)
        for i in range(4)
    ]
    tx = MuMimoCarpoolTransmitter(channel)
    frame = tx.build_frame(specs)
    received = channel.propagate(frame.antenna_streams, snr_db=35.0, rng=RngStream(89))
    decoded = {}
    for i, spec in enumerate(specs):
        result = MuMimoCarpoolReceiver(spec.receiver).receive(received[i], frame.layout)
        decoded[str(spec.receiver)] = result.payload == spec.payload

    # Airtime: Carpool = one frame; 802.11ac = two frames, each with its own
    # preamble + per-group VHT training + the longer group's payload span.
    group_spans = [g.end - g.vht_start for g in frame.layout.groups]
    carpool_symbols = frame.n_symbols
    ac_symbols = sum(PREAMBLE_SYMBOLS + span for span in group_spans)
    return decoded, carpool_symbols, ac_symbols


def test_sec8_mimo_extension(benchmark):
    decoded, carpool_symbols, ac_symbols = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-MIMO",
        "§8 / Fig. 18 — Carpool over MU-MIMO (2 antennas, 4 stations)",
        "four beamformed streams share one legacy preamble + A-HDR: one "
        "transmission instead of 802.11ac's two, all stations decode",
    )
    report.table(
        ["station", "decoded own subframe"],
        [[mac, "yes" if ok else "NO"] for mac, ok in decoded.items()],
    )
    report.line()
    report.table(
        ["scheme", "accesses", "total OFDM symbols"],
        [
            ["Carpool MU-MIMO", transmissions_required(4, 2, True), carpool_symbols],
            ["802.11ac MU-MIMO", transmissions_required(4, 2, False), ac_symbols],
        ],
    )
    saved = 1 - carpool_symbols / ac_symbols
    report.line()
    report.line(f"airtime saved by sharing the preamble/A-HDR: {saved:.1%} "
                "(plus one whole contention cycle)")
    report.save_and_print("sec8_mimo")

    assert all(decoded.values())
    assert transmissions_required(4, 2, True) == 1
    assert transmissions_required(4, 2, False) == 2
    assert carpool_symbols < ac_symbols
