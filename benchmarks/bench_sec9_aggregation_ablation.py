"""E-AGG: aggregation-scheme ablation (§9's design space).

One axis of the paper's argument is *which failure granularity and which
receiver scope* an aggregation scheme has. This ablation pins all four
combinations against the same bursty single-AP workload under the
BER-bias error model:

  * A-MSDU — one receiver, one CRC for the whole aggregate;
  * A-MPDU — one receiver, per-MPDU CRC;
  * MU-Aggregation — many receivers, per-subframe CRC, no RTE;
  * Carpool — many receivers, per-subframe CRC, RTE.
"""

from _report import Report, fmt_mbps
from repro.mac import (
    AmpduProtocol,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    MuAggregationProtocol,
    WlanSimulator,
)
from repro.mac.engine import AP_NAME
from repro.mac.error_model import BerCurveErrorModel
from repro.mac.frames import Arrival, Direction
from repro.mac.protocols.amsdu import AmsduProtocol
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

DURATION = 3.0
N_STAS = 6


def _arrivals():
    """Bursts for six stations: deep backlogs, maximum aggregates."""
    out = []
    for burst in range(int(DURATION / 0.02)):
        for i in range(30):
            out.append(Arrival(time=0.02 * burst + 1e-6 * i + 1e-4,
                               source=AP_NAME, destination=f"sta{i % N_STAS}",
                               size_bytes=700, direction=Direction.DOWNLINK))
    return out


def _run():
    results = {}
    for cls in (AmsduProtocol, AmpduProtocol, MuAggregationProtocol, CarpoolProtocol):
        sim = WlanSimulator(
            cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.004)),
            N_STAS, _arrivals(),
            error_model=BerCurveErrorModel(), rng=RngStream(66),
        )
        results[cls.name] = sim.run(DURATION)
    return results


def test_sec9_aggregation_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-AGG",
        "Aggregation design space: failure granularity × receiver scope",
        "A-MSDU's whole-frame CRC collapses under the BER bias; per-MPDU "
        "CRC recovers goodput but wastes retransmissions; Carpool matches "
        "the best goodput with ~30× fewer retransmitted subframes (RTE)",
    )
    rows = []
    for name, summary in results.items():
        rows.append([name, fmt_mbps(summary.downlink_goodput_bps),
                     f"{summary.downlink_mean_delay * 1e3:.1f}",
                     summary.retransmitted_subframes, summary.dropped_frames])
    report.table(["scheme", "goodput ↓ (Mbit/s)", "delay (ms)", "retx", "drops"], rows)
    report.save_and_print("sec9_aggregation_ablation")

    amsdu = results["A-MSDU"].downlink_goodput_bps
    ampdu = results["A-MPDU"].downlink_goodput_bps
    carpool = results["Carpool"].downlink_goodput_bps
    mu = results["MU-Aggregation"].downlink_goodput_bps
    assert amsdu < 0.5 * ampdu, "whole-aggregate CRC must lose to per-MPDU CRC"
    assert carpool >= 0.99 * ampdu, "multi-receiver + RTE must not lose goodput"
    assert carpool >= mu, "RTE must not lose to the same scheme without it"
    # In this downlink-only (uncontended) setting the schemes that keep up
    # all deliver the offered load; Carpool's edge shows in the waste —
    # an order of magnitude fewer retransmitted subframes.
    assert (results["Carpool"].retransmitted_subframes
            < 0.2 * results["A-MPDU"].retransmitted_subframes)
    assert results["Carpool"].dropped_frames == 0
