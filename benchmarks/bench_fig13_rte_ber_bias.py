"""E-F13: Fig. 13 — BER bias: real-time estimation vs standard.

4 KB frames in the "2M channel" (40 µs symbols ⇒ 10× longer airtime),
power 0.2, receivers at varying locations: the same received frames are
decoded offline with the standard estimator and with RTE. RTE must
flatten the BER-vs-symbol-index curve and cut the tail BER several-fold.

Also runs the DESIGN.md ablation: Eq. (3)'s averaging rule vs EWMA vs
replace-with-latest.
"""

import numpy as np

from _report import Report, fmt_ber
from repro.analysis import LinkConfig, ber_by_symbol_index
from repro.analysis.phy_experiments import SymbolBerResult
from repro.core.receiver import decode_subframe_symbols  # noqa: F401 (API surface)

TRIALS = 50


def _run():
    results = {}
    for mcs in ("QAM64-3/4", "QAM16-3/4"):
        results[(mcs, "Standard")] = ber_by_symbol_index(
            mcs, 4090, TRIALS, use_rte=False, link=LinkConfig(seed=13),
            n_workers=None,
        )
        results[(mcs, "RTE")] = ber_by_symbol_index(
            mcs, 4090, TRIALS, use_rte=True, link=LinkConfig(seed=13),
            n_workers=None,
        )
    return results


def _run_rule_ablation():
    """DESIGN.md ablation: Eq. (3) averaging vs EWMA vs replace-with-latest."""
    out = {}
    for rule in ("average", "ewma", "replace"):
        out[rule] = ber_by_symbol_index(
            "QAM64-3/4", 4090, 25, use_rte=True, link=LinkConfig(seed=13),
            rte_rule=rule,
        )
    return out


def test_fig13_rte_vs_standard(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F13",
        "Fig. 13 — BER bias under RTE vs standard channel estimation",
        "RTE largely eliminates the BER bias; QAM64 tail BER < 5e-3-grade "
        "improvements (paper: standard >1.5e-2 at symbol 100 vs RTE <5e-3; "
        "65 %/27 % mean-BER reduction for QAM64/QAM16)",
    )
    for mcs in ("QAM64-3/4", "QAM16-3/4"):
        std: SymbolBerResult = results[(mcs, "Standard")]
        rte: SymbolBerResult = results[(mcs, "RTE")]
        report.line(f"{mcs}:")
        rows = []
        for start in range(0, std.ber_per_symbol.size, 20):
            end = min(start + 20, std.ber_per_symbol.size)
            rows.append([
                f"{start + 1}–{end}",
                fmt_ber(std.ber_per_symbol[start:end].mean()),
                fmt_ber(rte.ber_per_symbol[start:end].mean()),
            ])
        report.table(["symbol index", "Standard", "RTE"], rows)
        reduction = 1.0 - rte.mean_ber / max(std.mean_ber, 1e-12)
        report.line(
            f"mean BER: standard {fmt_ber(std.mean_ber)} vs RTE "
            f"{fmt_ber(rte.mean_ber)}  (reduction {reduction:.0%})"
        )
        report.line()
    report.save_and_print("fig13_rte_ber_bias")

    std64 = results[("QAM64-3/4", "Standard")].ber_per_symbol
    rte64 = results[("QAM64-3/4", "RTE")].ber_per_symbol
    # Standard shows strong bias; RTE flattens the tail.
    assert std64[-10:].mean() > 3.0 * std64[:10].mean()
    assert rte64[-10:].mean() < 0.6 * std64[-10:].mean()
    # RTE reduces the mean BER for both modulations.
    for mcs in ("QAM64-3/4", "QAM16-3/4"):
        assert results[(mcs, "RTE")].mean_ber < results[(mcs, "Standard")].mean_ber


def test_fig13_update_rule_ablation(benchmark):
    ablation = benchmark.pedantic(_run_rule_ablation, rounds=1, iterations=1)

    report = Report(
        "E-F13-ablation",
        "RTE update-rule ablation (QAM64, 4 KB frames)",
        "the paper's Eq. (3) averaging should beat replace-with-latest "
        "(noise suppression) while still tracking the drift",
    )
    rows = [
        [rule, fmt_ber(result.mean_ber), fmt_ber(result.ber_per_symbol[-10:].mean())]
        for rule, result in ablation.items()
    ]
    report.table(["update rule", "mean BER", "tail BER"], rows)
    report.save_and_print("fig13_rule_ablation")

    assert ablation["average"].mean_ber <= 1.2 * ablation["replace"].mean_ber
