"""E-F12: Fig. 12 — side-channel BER vs data-channel BER.

1 KB frames per power setting; the 1-bit phase-offset channel is compared
against BPSK data subcarriers and the 2-bit channel against QPSK. Because
each phase offset is demodulated from four pilot tones jointly, the side
channel should beat the equal-order data modulation (paper Fig. 12).
"""

from _report import Report, fmt_ber
from repro.analysis import side_channel_vs_data_ber
from repro.channel import POWER_MAGNITUDES

TRIALS = 40


def _run():
    results = {}
    for power in POWER_MAGNITUDES:
        results[(1, power)] = side_channel_vs_data_ber(1, power, TRIALS, n_workers=None)
        results[(2, power)] = side_channel_vs_data_ber(2, power, TRIALS, n_workers=None)
    return results


def test_fig12_side_channel_reliability(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F12",
        "Fig. 12 — BER of the phase-offset side channel vs the data channel",
        "1-bit offset beats BPSK; 2-bit offset well below QPSK in most "
        "settings (pilots are demodulated jointly)",
    )
    rows = []
    for (bits, power), (side, data) in results.items():
        reference = "BPSK" if bits == 1 else "QPSK"
        rows.append([f"{bits}-bit", power, fmt_ber(side), f"{reference} {fmt_ber(data)}"])
    report.table(["scheme", "power", "side-channel BER", "data BER"], rows)
    report.save_and_print("fig12_side_channel_reliability")

    wins = 0
    comparable = 0
    for (bits, power), (side, data) in results.items():
        if data > 1e-4:  # only meaningful where the data channel errs at all
            comparable += 1
            if side <= data:
                wins += 1
    assert comparable >= 4
    assert wins == comparable, "side channel must not lose to equal-order PSK"
