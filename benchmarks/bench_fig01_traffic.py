"""E-F1: Fig. 1 — traffic statistics in public WLANs.

(a) concurrent downlink requests (mean 7.63 active STAs per AP),
(b) frame-size CDFs of the SIGCOMM and library traces,
(c) downlink traffic-volume ratios (80 % / 83.4 % / 89.2 %).
"""

import numpy as np

from _report import Report
from repro.mac.frames import Direction
from repro.traffic import (
    LIBRARY,
    SIGCOMM04,
    SIGCOMM08,
    active_sta_timeseries,
    sample_frame_sizes,
    trace_mixed_arrivals,
)
from repro.util.rng import RngStream


def _run_fig1a():
    counts = active_sta_timeseries(300, RngStream(1))
    return counts


def _run_fig1b():
    rng = RngStream(2)
    sizes = {}
    for model in (SIGCOMM08, LIBRARY):
        sizes[model.name] = sample_frame_sizes(model, 50_000, rng.child(model.name))
    return sizes


def _run_fig1c():
    rng = RngStream(3)
    stations = [f"sta{i}" for i in range(10)]
    ratios = {}
    for model in (SIGCOMM04, SIGCOMM08, LIBRARY):
        arrivals = trace_mixed_arrivals(stations, 120.0, rng.child(model.name), model)
        down = sum(a.size_bytes for a in arrivals if a.direction == Direction.DOWNLINK)
        total = sum(a.size_bytes for a in arrivals)
        ratios[model.name] = down / total
    return ratios


def test_fig01_traffic_statistics(benchmark):
    counts = benchmark.pedantic(_run_fig1a, rounds=1, iterations=1)
    sizes = _run_fig1b()
    ratios = _run_fig1c()

    report = Report(
        "E-F1",
        "Fig. 1 — traffic statistics in public WLANs",
        "mean ≈7.63 active STAs/AP; >50 % (SIGCOMM) and >90 % (library) of "
        "frames ≤300 B; downlink ratios 80 % / 83.4 % / 89.2 %",
    )
    report.line("(a) concurrent downlink requests over 300 s:")
    report.table(
        ["metric", "measured", "paper"],
        [
            ["mean active STAs", f"{counts.mean():.2f}", "7.63"],
            ["min", str(counts.min()), "≈2"],
            ["max", str(counts.max()), "≈14"],
        ],
    )
    report.line()
    report.line("(b) frame-size CDF:")
    rows = []
    for name, samples in sizes.items():
        for point in (100, 300, 1000, 1500):
            rows.append([name, point, f"{(samples <= point).mean():.3f}"])
    report.table(["trace", "size ≤ (B)", "CDF"], rows)
    report.line()
    report.line("(c) downlink traffic-volume ratio:")
    paper = {"SIGCOMM'04": 0.80, "SIGCOMM'08": 0.834, "Library": 0.892}
    report.table(
        ["trace", "measured", "paper"],
        [[n, f"{r:.3f}", f"{paper[n]:.3f}"] for n, r in ratios.items()],
    )
    report.save_and_print("fig01_traffic")

    assert abs(counts.mean() - 7.63) < 1.0
    assert (sizes["Library"] <= 300).mean() > 0.88
    assert (sizes["SIGCOMM'08"] <= 300).mean() > 0.45
    for name, ratio in ratios.items():
        assert abs(ratio - paper[name]) < 0.04
