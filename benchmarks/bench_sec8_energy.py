"""E-EN: §8 — energy-consumption estimate.

Device power model (WPC55AG: TX 1.71 W / RX 1.66 W / idle 1.22 W): a
Carpool node pays extra RX power only on A-HDR false positives, bounded by
5.59 % at N=8; with ≥90 % of a busy client's energy spent idle, the total
overhead stays ≈0.28 %.
"""

from _report import Report
from repro.core.energy import WPC55AG, EnergyBreakdown, carpool_energy_overhead


def _run():
    overheads = {n: carpool_energy_overhead(num_receivers=n) for n in (4, 6, 8)}
    # A busy client whose *energy* splits 90/5/5 across idle/RX/TX (§8):
    # derive the per-state durations from the energy shares, then charge
    # the false-positive ratio as extra RX time.
    breakdown = EnergyBreakdown()
    total_energy = 1000.0  # joules; scale is irrelevant to the ratio
    tx_time = total_energy * breakdown.tx_fraction / WPC55AG.tx_watts
    rx_time = total_energy * breakdown.rx_fraction / WPC55AG.rx_watts
    idle_time = total_energy * breakdown.idle_fraction / WPC55AG.idle_watts
    baseline = WPC55AG.energy(tx_time, rx_time, idle_time)
    worst = overheads[8]["false_positive_ratio"]
    carpool = WPC55AG.energy(tx_time, rx_time * (1 + worst), idle_time)
    return overheads, baseline, carpool


def test_sec8_energy_overhead(benchmark):
    overheads, baseline, carpool = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-EN",
        "§8 — Carpool energy overhead (WPC55AG power model)",
        "≤5.59 % extra RX power; ≤0.28 % total energy for clients spending "
        "90 % of energy idle",
    )
    report.table(
        ["receivers", "extra RX power", "total overhead"],
        [[n, f"{o['extra_rx_power_fraction']:.4f}", f"{o['total_energy_overhead']:.4f}"]
         for n, o in overheads.items()],
    )
    report.line()
    report.line(f"busy client (90/5/5 energy split): total energy overhead "
                f"+{(carpool / baseline - 1):.3%} (paper: ≈0.28 %)")
    report.save_and_print("sec8_energy")

    worst = overheads[8]
    assert abs(worst["extra_rx_power_fraction"] - 0.0559) < 0.002
    assert worst["total_energy_overhead"] < 0.003
    assert carpool / baseline - 1 < 0.003
