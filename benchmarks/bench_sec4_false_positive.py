"""E-FP: §4.1 — A-HDR false-positive analysis.

Analytic curve r_FP = (1 − e^{−hN/48})^h, its Monte-Carlo validation on
the real filter, and the DESIGN.md ablation over the number of hash
functions h.
"""

import numpy as np

from _report import Report
from repro.bloom import PositionalBloomFilter, false_positive_ratio, optimal_num_hashes
from repro.core.ahdr import AHDR_NUM_HASHES


def _monte_carlo(num_receivers: int, num_hashes: int, trials: int = 1500) -> float:
    rng = np.random.default_rng(41)
    false_positives = 0
    probes = 0
    for _ in range(trials):
        pbf = PositionalBloomFilter(num_hashes=num_hashes)
        for pos in range(num_receivers):
            pbf.insert(rng.bytes(6), pos)
        outsider = rng.bytes(6)
        for pos in range(num_receivers):
            probes += 1
            if pbf.matches(outsider, pos):
                false_positives += 1
    return false_positives / probes


def _run():
    analytic = {n: false_positive_ratio(AHDR_NUM_HASHES, n) for n in range(4, 9)}
    measured = {n: _monte_carlo(n, AHDR_NUM_HASHES) for n in range(4, 9)}
    ablation = {h: false_positive_ratio(h, 8) for h in range(1, 9)}
    return analytic, measured, ablation


def test_sec4_false_positive_ratio(benchmark):
    analytic, measured, ablation = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-FP",
        "§4.1 — A-HDR false-positive ratio (h = 4)",
        "0.31 % (N=4, optimal h) to 5.59 % (N=8, h=4); optimal h = (48/N)·ln2",
    )
    report.table(
        ["receivers N", "analytic r_FP", "Monte-Carlo"],
        [[n, f"{analytic[n]:.4f}", f"{measured[n]:.4f}"] for n in analytic],
    )
    report.line()
    report.line(f"optimal h for N=8: {optimal_num_hashes(8):.2f} (Carpool uses h=4)")
    report.line(f"optimal-h FP at N=4 (h=8): {false_positive_ratio(8, 4):.4f} (paper: 0.0031)")
    report.line()
    report.line("ablation — FP ratio at N=8 vs number of hashes h:")
    report.table(["h", "r_FP"], [[h, f"{fp:.4f}"] for h, fp in ablation.items()])
    report.save_and_print("sec4_false_positive")

    assert abs(analytic[8] - 0.0559) < 0.002, "paper's 5.59 % bound at N=8"
    assert abs(false_positive_ratio(8, 4) - 0.0031) < 0.0005, "paper's 0.31 % at N=4"
    for n in analytic:
        assert abs(analytic[n] - measured[n]) < 0.02
    # h=4 is (near-)optimal at the 8-receiver design point.
    best_h = min(ablation, key=ablation.get)
    assert abs(best_h - AHDR_NUM_HASHES) <= 1
