"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure from the paper; DESIGN.md's
experiment index maps IDs (E-F15, E-T1, …) to files here. Benchmarks run
their workload once per pytest-benchmark round — the interesting output is
the reproduction table written to ``benchmarks/results/``, not the timing.
"""

import sys
from pathlib import Path

# Allow `import _report` regardless of how pytest resolves rootdir.
sys.path.insert(0, str(Path(__file__).parent))
