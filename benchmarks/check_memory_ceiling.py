"""Constant-memory gate for sharded deployments (run in a fresh process).

Runs the same sharded deployment at growing AP counts inside *this*
process and records the parent's peak RSS (``ru_maxrss``) after each leg.
Because sharded runs never materialise the spec list or per-cell results,
the peak must stay essentially flat as the deployment grows — and must
stay under a committed budget, so a regression that starts accumulating
per-cell state in the parent fails CI even if it is "flat" at a higher
level.

The in-bench streaming section (``repro bench --suite net``) measures the
same quantity opportunistically; this script is the authoritative check
precisely because it starts from a fresh interpreter, so the recorded
budget means something across runs.

Usage::

    PYTHONPATH=src python benchmarks/check_memory_ceiling.py            # gate
    PYTHONPATH=src python benchmarks/check_memory_ceiling.py --update   # re-record
    PYTHONPATH=src python benchmarks/check_memory_ceiling.py --out curve.json

Exits non-zero when peak RSS exceeds the recorded budget by more than
``--tolerance`` (default 20 %), or when the RSS curve grows by more than
the flatness bound across the AP sweep.
"""

import argparse
import json
import os
import sys
import tempfile

# Platform-aware ru_maxrss -> MiB conversion lives in one place so the
# committed absolute budgets mean the same thing on Linux and macOS.
from repro.runtime.bench import peak_rss_mb


def run_curve(ap_counts, stas_per_ap, duration, shards, workers, seed):
    """AP count -> parent peak RSS (MiB) after a sharded deployment run."""
    from repro.net.deployment import DeploymentConfig, simulate_deployment
    from repro.runtime.cache import ResultCache
    from repro.runtime.trials import shutdown_pools

    cache = ResultCache(
        directory=tempfile.mkdtemp(prefix="repro-memceil-"),
        namespace="deployment",
    )
    curve = {}
    for n_aps in ap_counts:
        config = DeploymentConfig(
            n_aps=n_aps, stas_per_ap=stas_per_ap, duration=duration,
            seed=seed, channels=1,
        )
        simulate_deployment(config, n_workers=workers, use_cache=False,
                            cache=cache, shards=shards)
        curve[n_aps] = peak_rss_mb()
    shutdown_pools()
    return curve


def main(argv=None) -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--aps", type=int, nargs="*", default=[5, 15, 25],
                        help="AP counts to sweep (peak gate uses the last)")
    parser.add_argument("--stas-per-ap", type=int, default=2)
    parser.add_argument("--duration", type=float, default=0.4)
    parser.add_argument("--shards", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--budget", default=os.path.join(here, "memory_budget.json"),
                        help="committed budget JSON to gate against")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional growth over the budget")
    parser.add_argument("--flatness", type=float, default=0.25,
                        help="allowed fractional RSS growth across the sweep")
    parser.add_argument("--update", action="store_true",
                        help="re-record the budget instead of gating")
    parser.add_argument("--out", default=None,
                        help="write the measured RSS curve JSON here")
    args = parser.parse_args(argv)

    curve = run_curve(args.aps, args.stas_per_ap, args.duration,
                      args.shards, args.workers, args.seed)
    smallest, largest = args.aps[0], args.aps[-1]
    peak = curve[largest]
    growth = curve[largest] / curve[smallest] if curve[smallest] else float("inf")
    for n_aps, rss in curve.items():
        print(f"{n_aps:4d} APs (shards={args.shards}): peak RSS {rss:8.1f} MB")
    print(f"sweep growth {smallest} -> {largest} APs: x{growth:.3f} "
          f"(flatness bound x{1 + args.flatness:.2f})")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({
                "ap_counts": list(args.aps),
                "stas_per_ap": args.stas_per_ap,
                "duration": args.duration,
                "shards": args.shards,
                "workers": args.workers,
                "peak_rss_mb_by_aps": {str(k): v for k, v in curve.items()},
                "growth_factor": growth,
            }, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.update:
        with open(args.budget, "w") as handle:
            json.dump({
                "ap_counts": list(args.aps),
                "stas_per_ap": args.stas_per_ap,
                "duration": args.duration,
                "shards": args.shards,
                "peak_rss_mb": peak,
            }, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"recorded budget: {peak:.1f} MB -> {args.budget}")
        return 0

    status = 0
    if growth > 1 + args.flatness:
        print(f"FAIL: RSS grew x{growth:.3f} across the sweep "
              f"(bound x{1 + args.flatness:.2f}) — the parent is "
              "accumulating per-cell state", file=sys.stderr)
        status = 1
    if not os.path.exists(args.budget):
        print(f"no budget at {args.budget}; run with --update to record one",
              file=sys.stderr)
        return status or 2
    with open(args.budget) as handle:
        budget = json.load(handle)
    ceiling = budget["peak_rss_mb"] * (1 + args.tolerance)
    print(f"budget {budget['peak_rss_mb']:.1f} MB "
          f"(+{args.tolerance:.0%} -> ceiling {ceiling:.1f} MB): "
          f"measured {peak:.1f} MB")
    if peak > ceiling:
        print(f"FAIL: peak RSS {peak:.1f} MB exceeds the ceiling "
              f"{ceiling:.1f} MB (budget {budget['peak_rss_mb']:.1f} MB "
              f"+{args.tolerance:.0%})", file=sys.stderr)
        status = 1
    if status == 0:
        print("OK: constant-memory ceiling holds")
    return status


if __name__ == "__main__":
    sys.exit(main())
