"""E-F16: Fig. 16 — VoIP with SIGCOMM'08 UDP/TCP uplink background traffic.

Same as Fig. 15 plus per-STA background uplink (TCP every 47 ms, UDP every
88 ms, SIGCOMM frame sizes). Expected: background contention drags every
baseline down; Carpool is least affected (paper: 1.12–3.2× A-MPDU goodput
between 20 and 30 STAs; delay <0.2 s vs 0.8 s/1.5 s for A-MPDU/802.11).
"""

from _report import Report, fmt_mbps, fmt_ms
from repro.mac import (
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    WifoxProtocol,
)
from repro.mac.scenarios import VoipScenario
from repro.runtime import parallel_map

PROTOCOLS = (Dot11Protocol, AmpduProtocol, MuAggregationProtocol,
             WifoxProtocol, CarpoolProtocol)
STA_COUNTS = (10, 16, 20, 25, 30)
DURATION = 8.0


def _run_cell(cell):
    n, cls = cell
    scenario = VoipScenario(num_stations=n, duration=DURATION, with_background=True)
    return (n, cls.name), scenario.run(cls)


def _run(n_workers=None):
    # Independent, self-seeded cells — identical results for any worker
    # count (set REPRO_WORKERS to scale the sweep out over cores).
    cells = [(n, cls) for n in STA_COUNTS for cls in PROTOCOLS]
    return dict(parallel_map(_run_cell, cells, n_workers=n_workers))


def test_fig16_background_traffic(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F16",
        "Fig. 16 — goodput/latency with UDP/TCP uplink background traffic",
        "Carpool 1.12–3.2× the A-MPDU goodput from 20→30 STAs; Carpool "
        "delay <0.2 s while A-MPDU/802.11 reach 0.8 s/1.5 s",
    )
    names = [cls.name for cls in PROTOCOLS]
    report.line("(a) downlink goodput (Mbit/s, within 400 ms bound):")
    rows = [[n] + [fmt_mbps(results[(n, name)].measured_ap_useful_goodput_bps)
                   for name in names] for n in STA_COUNTS]
    report.table(["STAs"] + list(names), rows)
    report.line()
    report.line("(b) downlink latency (ms):")
    rows = [[n] + [fmt_ms(results[(n, name)].downlink_mean_delay) for name in names]
            for n in STA_COUNTS]
    report.table(["STAs"] + list(names), rows)
    report.line()
    ratio20 = (results[(20, "Carpool")].measured_ap_useful_goodput_bps
               / max(results[(20, "A-MPDU")].measured_ap_useful_goodput_bps, 1.0))
    ratio30 = (results[(30, "Carpool")].measured_ap_useful_goodput_bps
               / max(results[(30, "A-MPDU")].measured_ap_useful_goodput_bps, 1.0))
    report.line(f"Carpool/A-MPDU goodput ratio: {ratio20:.2f}× @20 STAs, "
                f"{ratio30:.2f}× @30 STAs (paper: 1.12–3.2×)")
    report.save_and_print("fig16_background")

    assert ratio20 >= 1.0
    assert ratio30 > 1.5
    carpool30 = results[(30, "Carpool")]
    ampdu30 = results[(30, "A-MPDU")]
    dot30 = results[(30, "802.11")]
    # Delay ordering of Fig. 16(b).
    assert carpool30.downlink_mean_delay < 0.25
    assert ampdu30.downlink_mean_delay > carpool30.downlink_mean_delay
    assert dot30.downlink_mean_delay > ampdu30.downlink_mean_delay
