"""E-EFF: §1/§2 — MAC efficiency collapse at high PHY rates.

The paper's motivating claim: "MAC efficiency of Wi-Fi networks degrades
rapidly in current high speed Wi-Fi networks due to reduced transmission
time for payload". This bench computes the efficiency of one channel
access for a 300 B frame (the dominant size in the traces) across the
54 → 600 Mbit/s rate range, per-frame vs Carpool-8, and cross-checks the
closed form against the event-driven simulator.
"""

import pytest

from _report import Report
from repro.analysis.efficiency import carpool_exchange, mac_efficiency, single_frame_exchange
from repro.mac import DEFAULT_PARAMETERS, Dot11Protocol, FixedFerModel, WlanSimulator
from repro.mac.engine import AP_NAME
from repro.mac.frames import Arrival, Direction
from repro.util.rng import RngStream

RATES = (54e6, 150e6, 300e6, 600e6)
FRAME_BYTES = 300


def _simulated_efficiency():
    """Measured payload-airtime fraction from the simulator at 65 Mbit/s."""
    # Saturated: the whole backlog lands at t≈0, so the AP chains
    # exchanges back-to-back and the payload fraction of wall-clock time
    # equals the closed form's per-exchange efficiency.
    arrivals = [
        Arrival(time=1e-4 + 1e-9 * k, source=AP_NAME, destination="sta0",
                size_bytes=FRAME_BYTES, direction=Direction.DOWNLINK)
        for k in range(5000)
    ]
    sim = WlanSimulator(Dot11Protocol(DEFAULT_PARAMETERS), 1, arrivals,
                        error_model=FixedFerModel(0.0), rng=RngStream(8))
    summary = sim.run(0.55)
    payload_time = (summary.delivered_downlink_frames * 8 * FRAME_BYTES
                    / DEFAULT_PARAMETERS.phy_rate_bps)
    return payload_time / 0.55, summary


def _run():
    table = {}
    for rate in RATES:
        table[rate] = (
            mac_efficiency(FRAME_BYTES, rate),
            mac_efficiency(FRAME_BYTES, rate, carpool_receivers=8),
        )
    measured, _ = _simulated_efficiency()
    analytic_65 = mac_efficiency(FRAME_BYTES, DEFAULT_PARAMETERS.phy_rate_bps)
    return table, measured, analytic_65


def test_sec1_mac_efficiency(benchmark):
    table, measured, analytic_65 = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-EFF",
        "§1/§2 — MAC efficiency vs PHY rate (300 B frames)",
        "per-frame efficiency collapses as rates rise (fixed-time "
        "overheads); Carpool-8 amortises one contention + preamble over "
        "eight receivers and degrades far slower",
    )
    rows = []
    for rate, (single, carpool) in table.items():
        rows.append([f"{rate / 1e6:.0f} Mbit/s", f"{single:.3f}", f"{carpool:.3f}",
                     f"{carpool / single:.2f}x"])
    report.table(["PHY rate", "802.11 per-frame", "Carpool-8", "gain"], rows)
    report.line()
    report.line(f"simulator cross-check at 65 Mbit/s: measured payload "
                f"fraction {measured:.3f} vs closed form {analytic_65:.3f}")
    budget = single_frame_exchange(FRAME_BYTES, DEFAULT_PARAMETERS)
    report.line(f"per-frame budget at 65 Mbit/s: contention "
                f"{budget.contention * 1e6:.0f} µs, headers "
                f"{budget.headers * 1e6:.0f} µs, payload "
                f"{budget.payload * 1e6:.0f} µs, ACK {budget.acks * 1e6:.0f} µs")
    report.save_and_print("sec1_mac_efficiency")

    singles = [table[rate][0] for rate in RATES]
    assert singles == sorted(singles, reverse=True), "efficiency falls with rate"
    assert table[600e6][0] < 0.05, "at 600 Mbit/s the payload is a sliver"
    # The sequential-ACK train (one SIFS+ACK per receiver) caps the gain
    # below the naive 8×, but amortising contention + preamble still wins
    # clearly, and more so at higher rates.
    gains = [table[rate][1] / table[rate][0] for rate in RATES]
    assert all(g > 1.5 for g in gains)
    assert gains == sorted(gains)
    assert measured == pytest.approx(analytic_65, rel=0.15)