"""Process-level kill/resume gate for the soak service (CI: soak-smoke).

The in-process tests already byte-compare checkpoints; this script is the
authoritative end-to-end check because it exercises the real contract an
operator relies on: a separate ``repro soak`` process, a real SIGTERM
landing mid-run, a graceful drain, and a ``--resume`` in a *fresh*
process — after which every deterministic artifact must be byte-identical
to an uninterrupted run.

Three legs:

1. straight   — ``repro soak --epochs N`` runs to completion;
2. interrupted — the same run in a second directory is SIGTERMed once its
   first epoch record lands; the drain must exit cleanly (code 0) with a
   resumable checkpoint;
3. resumed    — ``repro soak --epochs N --resume`` finishes the job, with
   different worker/shard counts to prove they cannot leak into state.

Then ``state.json`` and ``metrics.jsonl`` are compared byte for byte and
the manifests' ``config_hash`` fields for equality.

Every leg runs with ``--telemetry`` and one SLO watchdog, so the gate
also covers the live-observability contract: the killed-and-resumed
run's *deterministic telemetry view* (epoch + ``det`` namespace, wall
fields stripped) must be byte-identical to the straight run's, and
``health.json`` must report ``ok`` on both sides.

Usage::

    PYTHONPATH=src python benchmarks/soak_smoke.py            # gate
    PYTHONPATH=src python benchmarks/soak_smoke.py --keep DIR # inspect
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

_WORKLOAD_FLAGS = [
    "--seed", "11", "--aps", "3", "--max-stas-per-ap", "6",
    "--target-active-stas", "2.5", "--epoch-duration", "0.4",
    "--channels", "1", "--fault-profile", "mixed",
]

# Never breaches on a live workload (goodput below 1 bps); the point is
# exercising the watchdog + health.json machinery, not tripping it.
_TELEMETRY_FLAGS = ["--telemetry", "--slo", "goodput_bps<1"]


def _soak_cmd(checkpoint, epochs, *extra):
    return [sys.executable, "-m", "repro", "soak",
            "--checkpoint", checkpoint, "--epochs", str(epochs),
            *_WORKLOAD_FLAGS, *_TELEMETRY_FLAGS, *extra]


_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # the det-view compare imports repro.obs
    sys.path.insert(0, _SRC)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run(cmd):
    proc = subprocess.run(cmd, env=_env(), capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
    return proc


def _wait_for_first_epoch(checkpoint, timeout=60.0):
    """Block until the run has appended at least one epoch record."""
    metrics = os.path.join(checkpoint, "metrics.jsonl")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(metrics) as handle:
                if any(line.strip() for line in handle):
                    return
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    raise SystemExit(f"FAIL: no epoch record in {metrics} after {timeout}s")


def _kill_mid_run(checkpoint, epochs):
    """Start a soak, SIGTERM it after the first epoch lands, expect drain."""
    proc = subprocess.Popen(_soak_cmd(checkpoint, epochs), env=_env(),
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    try:
        _wait_for_first_epoch(checkpoint)
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
    except BaseException:
        proc.kill()
        raise
    if proc.returncode != 0:
        print(stdout)
        print(stderr, file=sys.stderr)
        raise SystemExit(
            f"FAIL: SIGTERMed soak exited {proc.returncode}, expected a "
            "graceful drain (exit 0)")
    state = json.load(open(os.path.join(checkpoint, "state.json")))
    done = state["next_epoch"]
    print(f"  interrupted leg drained cleanly at epoch {done}/{epochs}")
    if done >= epochs:
        raise SystemExit(
            "FAIL: the interrupted leg finished before the SIGTERM landed; "
            "raise --epochs so the kill hits mid-run")


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


def _compare(straight, resumed):
    failures = []
    for name in ("state.json", "metrics.jsonl"):
        a = _read(os.path.join(straight, name))
        b = _read(os.path.join(resumed, name))
        verdict = "identical" if a == b else "DIFFER"
        print(f"  {name:<14} {verdict} ({len(a)} bytes vs {len(b)} bytes)")
        if a != b:
            failures.append(name)
    hashes = [json.load(open(os.path.join(d, "manifest.json")))["config_hash"]
              for d in (straight, resumed)]
    verdict = "identical" if hashes[0] == hashes[1] else "DIFFER"
    print(f"  {'config_hash':<14} {verdict} ({hashes[0]} vs {hashes[1]})")
    if hashes[0] != hashes[1]:
        failures.append("manifest config_hash")

    from repro.obs.telemetry import deterministic_view_bytes

    views = [deterministic_view_bytes(d) for d in (straight, resumed)]
    verdict = "identical" if views[0] and views[0] == views[1] else "DIFFER"
    print(f"  {'det telemetry':<14} {verdict} "
          f"({len(views[0])} bytes vs {len(views[1])} bytes)")
    if not views[0] or views[0] != views[1]:
        failures.append("deterministic telemetry view")

    for directory in (straight, resumed):
        health = json.load(open(os.path.join(directory, "health.json")))
        if health.get("status") != "ok":
            print(f"  health.json in {directory}: {health.get('status')}")
            failures.append("health status")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=6,
                        help="total epochs per leg (default 6)")
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="copy the three checkpoint dirs here for "
                             "artifact upload / inspection")
    args = parser.parse_args(argv)

    work = tempfile.mkdtemp(prefix="repro-soak-smoke-")
    straight = os.path.join(work, "straight")
    killed = os.path.join(work, "killed")
    try:
        print(f"[1/3] straight run: {args.epochs} epochs")
        _run(_soak_cmd(straight, args.epochs, "--workers", "1"))

        print("[2/3] interrupted run: SIGTERM after the first epoch")
        _kill_mid_run(killed, args.epochs)

        print("[3/3] resume with different worker/shard counts")
        _run(_soak_cmd(killed, args.epochs, "--resume",
                       "--workers", "2", "--shards", "2"))

        print("comparing deterministic artifacts:")
        failures = _compare(straight, killed)
        if args.keep:
            os.makedirs(args.keep, exist_ok=True)
            for leg in (straight, killed):
                dest = os.path.join(args.keep, os.path.basename(leg))
                shutil.rmtree(dest, ignore_errors=True)
                shutil.copytree(leg, dest)
            print(f"checkpoints copied to {args.keep}")
        if failures:
            print(f"FAIL: kill/resume identity broken: {failures}",
                  file=sys.stderr)
            return 1
        print("PASS: killed-and-resumed run is byte-identical to the "
              "uninterrupted run")
        return 0
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
