"""E-F15: Fig. 15 — goodput and latency for VoIP traffic, 10–30 STAs.

Two co-channel APs, per-STA conversational VoIP (Brady model), all five
schemes. Expected shape: Carpool's goodput keeps growing with the STA
count while A-MPDU tapers and 802.11 collapses; Carpool's delay stays low
while the others' explode.
"""

from _report import Report, fmt_mbps, fmt_ms
from repro.mac import (
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    WifoxProtocol,
)
from repro.mac.scenarios import VoipScenario
from repro.runtime import parallel_map

PROTOCOLS = (Dot11Protocol, AmpduProtocol, MuAggregationProtocol,
             WifoxProtocol, CarpoolProtocol)
STA_COUNTS = (10, 14, 18, 22, 26, 30)
DURATION = 8.0


def _run_cell(cell):
    n, cls = cell
    scenario = VoipScenario(num_stations=n, duration=DURATION)
    return (n, cls.name), scenario.run(cls)


def _run(n_workers=None):
    # Every (STA count, protocol) cell is an independent, self-seeded
    # simulation, so the sweep fans out over the worker pool (serial==
    # parallel; set REPRO_WORKERS to scale).
    cells = [(n, cls) for n in STA_COUNTS for cls in PROTOCOLS]
    return dict(parallel_map(_run_cell, cells, n_workers=n_workers))


def test_fig15_voip_goodput_latency(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F15",
        "Fig. 15 — VoIP goodput (a) and latency (b) vs number of STAs",
        "Carpool grows ~linearly to ≈2.5+ Mbit/s at 30 STAs with flat low "
        "delay; A-MPDU tapers (≈2→1 Mbit/s), MU-Aggregation slightly below "
        "A-MPDU, WiFox between 802.11 and the aggregation schemes, 802.11 "
        "collapses (0.55→0.18 Mbit/s, >1 s delay)",
    )
    report.line("(a) downlink goodput of the measured AP (Mbit/s, within 400 ms bound):")
    names = [cls.name for cls in PROTOCOLS]
    rows = [[n] + [fmt_mbps(results[(n, name)].measured_ap_useful_goodput_bps)
                   for name in names] for n in STA_COUNTS]
    report.table(["STAs"] + list(names), rows)
    report.line()
    report.line("(b) downlink latency (ms):")
    rows = [[n] + [fmt_ms(results[(n, name)].downlink_mean_delay) for name in names]
            for n in STA_COUNTS]
    report.table(["STAs"] + list(names), rows)
    report.save_and_print("fig15_voip")

    top = STA_COUNTS[-1]
    carpool = results[(top, "Carpool")]
    ampdu = results[(top, "A-MPDU")]
    dot11 = results[(top, "802.11")]
    wifox = results[(top, "WiFox")]

    # Carpool wins goodput at high contention, by a large factor over
    # A-MPDU (paper: up to 3.2×) and over everything else.
    assert carpool.measured_ap_useful_goodput_bps > 1.5 * ampdu.measured_ap_useful_goodput_bps
    assert carpool.measured_ap_useful_goodput_bps > 5 * dot11.measured_ap_useful_goodput_bps
    assert wifox.measured_ap_useful_goodput_bps > dot11.measured_ap_useful_goodput_bps
    # Carpool delay stays far below A-MPDU's (paper: ~75 % reduction).
    assert carpool.downlink_mean_delay < 0.5 * ampdu.downlink_mean_delay
    # Carpool goodput grows with STA count (paper: "keeps increasing").
    series = [results[(n, "Carpool")].measured_ap_useful_goodput_bps for n in STA_COUNTS]
    assert series[-1] > series[0]
