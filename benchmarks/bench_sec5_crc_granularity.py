"""E-CRC: §5.2 — symbol-level CRC granularity/modulation trade-off.

The paper measured six schemes (1-bit/2-bit phase offsets × 1–3 symbols
per CRC group) and picked CRC-2 per symbol (2-bit scheme, granularity 1).
This ablation re-runs the RTE experiment under each scheme and reports the
resulting mean BER — the paper's selection should be at or near the top.
"""

from _report import Report, fmt_ber
from repro.analysis import LinkConfig, ber_by_symbol_index
from repro.core.side_channel import ONE_BIT_SCHEME, TWO_BIT_SCHEME
from repro.core.symbol_crc import SymbolCrcConfig

TRIALS = 25


def _run():
    results = {}
    for scheme in (ONE_BIT_SCHEME, TWO_BIT_SCHEME):
        for granularity in (1, 2, 3):
            config = SymbolCrcConfig(scheme=scheme, granularity=granularity)
            result = ber_by_symbol_index(
                "QAM64-3/4", 4090, TRIALS, use_rte=True,
                link=LinkConfig(seed=52), crc_config=config, n_workers=None,
            )
            results[(scheme.name, granularity)] = result
    return results


def test_sec5_crc_granularity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-CRC",
        "§5.2 — CRC granularity × side-channel modulation ablation (QAM64)",
        "one symbol per group with the 2-bit scheme (a CRC-2 per symbol) "
        "wins in most cases",
    )
    rows = []
    for (scheme, granularity), result in results.items():
        rows.append([
            scheme, granularity, f"CRC-{granularity * (1 if scheme == '1-bit' else 2)}",
            fmt_ber(result.mean_ber), f"{result.crc_pass_rate:.2f}",
        ])
    report.table(["scheme", "symbols/group", "checksum", "mean BER", "CRC pass"], rows)
    paper_choice = results[("2-bit", 1)].mean_ber
    best_key = min(results, key=lambda k: results[k].mean_ber)
    best = results[best_key].mean_ber
    report.line()
    report.line(
        f"best scheme here: {best_key[0]} × {best_key[1]} sym/group "
        f"({fmt_ber(best)}); paper's choice (2-bit × 1): {fmt_ber(paper_choice)}. "
        "Deviation note: in our simulated channel, longer checksums "
        "(CRC-4 over 2 symbols) edge out CRC-2/symbol because they suppress "
        "more CRC false passes; the trade-off is environment-dependent, "
        "exactly why the paper settled it by measurement."
    )
    report.save_and_print("sec5_crc_granularity")

    # The paper's choice stays competitive (within ~40 %) with the best
    # scheme in our environment, and beats the 1-bit × 1 variant.
    assert paper_choice <= 1.4 * best
    assert paper_choice < results[("1-bit", 1)].mean_ber
