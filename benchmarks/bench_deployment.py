"""E-NET: the title's claim at deployment scale — 9 overlapping cells.

A 3×3 co-channel hotspot floor (50×50 m, every AP on channel 0, cells
coupled through the interference fault plans), 25 walking stations per
AP roaming under random-waypoint mobility, CBR downlink of small frames
plus SIGCOMM'08 uplink background. Expected: at saturation Carpool's
multi-receiver aggregation carries clearly more total and
deadline-respecting goodput than A-MPDU and 802.11 while delivering far
more bytes per second of occupied air ("less transmissions, more
throughput"); at moderate load all schemes carry the offered bytes but
Carpool keeps the most of them inside the 10 ms latency bound. The whole
experiment is deterministic: fixed seed, and bit-identical for any
worker count.
"""

import dataclasses

from _report import Report, fmt_mbps
from repro.analysis.deployment_sweep import (
    DEPLOYMENT_PROTOCOLS,
    deployment_protocol_sweep,
)
from repro.net.deployment import DeploymentConfig, simulate_deployment

SATURATED = DeploymentConfig(
    n_aps=9, stas_per_ap=25, duration=2.0, seed=7, channels=1,
    frames_per_second=200.0, frame_bytes=300,
    mobility=True, hysteresis_db=2.0,
)
MODERATE = dataclasses.replace(SATURATED, stas_per_ap=15,
                               frames_per_second=150.0)


def _air_efficiency(result) -> float:
    """Delivered Mbit per second of channel-busy airtime."""
    return result.total_goodput_bps / 1e6 / max(result.busy_airtime_s, 1e-9)


def _run():
    return {
        "saturated": deployment_protocol_sweep(SATURATED, use_cache=False),
        "moderate": deployment_protocol_sweep(MODERATE, use_cache=False),
    }


def test_deployment_protocol_comparison(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-NET",
        "9-AP co-channel deployment — goodput & air efficiency per protocol",
        "Carpool beats A-MPDU and 802.11 on goodput, useful goodput, and "
        "delivered bytes per busy airtime second, with roaming and "
        "inter-cell coupling active",
    )
    for label, sweep in results.items():
        config = SATURATED if label == "saturated" else MODERATE
        report.line(
            f"{label}: {config.n_aps} APs x {config.stas_per_ap} STAs, "
            f"{config.frames_per_second:.0f} f/s x {config.frame_bytes} B "
            f"downlink + background, {config.duration:.0f} s, channels=1, "
            f"mobility on"
        )
        rows = [
            [name,
             fmt_mbps(sweep[name].total_goodput_bps),
             fmt_mbps(sweep[name].total_useful_goodput_bps),
             f"{sweep[name].busy_airtime_s:.2f}",
             f"{_air_efficiency(sweep[name]):.2f}",
             f"{sweep[name].jain_fairness:.3f}",
             sweep[name].n_roams]
            for name in DEPLOYMENT_PROTOCOLS
        ]
        report.table(
            ["scheme", "goodput (M)", "useful (M)", "airtime (s)",
             "Mbit/busy-s", "Jain", "roams"],
            rows,
        )
        report.line()

    saturated = results["saturated"]
    carpool = saturated["Carpool"]
    ampdu = saturated["A-MPDU"]
    dot11 = saturated["802.11"]
    report.line(
        f"saturated gains: Carpool/A-MPDU goodput "
        f"{carpool.total_goodput_bps / ampdu.total_goodput_bps:.2f}x, "
        f"Carpool/802.11 "
        f"{carpool.total_goodput_bps / dot11.total_goodput_bps:.2f}x; "
        f"air efficiency {_air_efficiency(carpool):.2f} vs "
        f"{_air_efficiency(ampdu):.2f} vs {_air_efficiency(dot11):.2f} "
        f"Mbit per busy second"
    )

    # Determinism at deployment scale: the same config under a different
    # worker count reproduces the sweep result bit for bit.
    replay = simulate_deployment(
        dataclasses.replace(SATURATED, protocol="Carpool"),
        n_workers=2, use_cache=False,
    )
    identical = replay.to_dict() == carpool.to_dict()
    report.line(f"worker-count determinism (1 vs 2 workers): "
                f"bit-identical={identical}")
    report.save_and_print("net_deployment")

    assert identical

    # Every protocol sees the same deployment: same roams, same coupling.
    for sweep in results.values():
        assert len({r.n_roams for r in sweep.values()}) == 1
        assert {r.n_coupled_cells for r in sweep.values()} == {9}
    assert carpool.n_roams > 0

    # Saturation: Carpool carries more, keeps more under the deadline,
    # and moves more bytes per second of occupied air.
    assert carpool.total_goodput_bps > 1.3 * ampdu.total_goodput_bps
    assert carpool.total_goodput_bps > 4.0 * dot11.total_goodput_bps
    assert carpool.total_useful_goodput_bps > 2.0 * ampdu.total_useful_goodput_bps
    assert _air_efficiency(carpool) > _air_efficiency(ampdu) > _air_efficiency(dot11)
    assert carpool.jain_fairness > ampdu.jain_fairness

    # Moderate load: everyone delivers the offered bytes, but Carpool
    # keeps the most inside the 10 ms bound (and 802.11 already can't).
    moderate = results["moderate"]
    assert moderate["Carpool"].total_goodput_bps > 0.95 * \
        moderate["A-MPDU"].total_goodput_bps
    assert moderate["Carpool"].total_useful_goodput_bps > \
        moderate["A-MPDU"].total_useful_goodput_bps
    assert moderate["Carpool"].total_useful_goodput_bps > \
        3.0 * moderate["802.11"].total_useful_goodput_bps
