"""E-FAIR: §8 "Fairness" — time-occupancy scheduling on Carpool.

The design-choice ablation DESIGN.md calls out: FIFO Carpool vs the
time-occupancy-ranked variant, on a skewed workload where two stations
offer 5× the traffic of the rest. Fairness is scored with Jain's index
over per-station served airtime.
"""

from _report import Report
from repro.mac import CarpoolProtocol, DEFAULT_PARAMETERS, FixedFerModel, WlanSimulator
from repro.mac.engine import AP_NAME
from repro.mac.fairness import FairCarpoolProtocol, TimeOccupancyTable
from repro.mac.frames import Arrival, Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

N_STAS = 12
DURATION = 3.0


def _skewed_arrivals():
    """Stations 0–1 offer ~8× the load of stations 2–11, overloading the
    AP so the scheduler must choose whom to serve."""
    out = []
    t = 0.0005
    k = 0
    while t < DURATION:
        heavy = f"sta{k % 2}"
        out.append(Arrival(time=t, source=AP_NAME, destination=heavy,
                           size_bytes=1400, direction=Direction.DOWNLINK))
        if k % 4 == 0:
            light = f"sta{2 + (k // 4) % 10}"
            out.append(Arrival(time=t + 1e-5, source=AP_NAME, destination=light,
                               size_bytes=1400, direction=Direction.DOWNLINK))
        t += 0.00008
        k += 1
    return out


def _run_one(protocol):
    sim = WlanSimulator(
        protocol, N_STAS, _skewed_arrivals(),
        error_model=FixedFerModel(0.0), rng=RngStream(55),
    )
    summary = sim.run(DURATION)
    # Fairness over per-station *delivered* bytes (what each STA got).
    table = TimeOccupancyTable()
    for dest, nbytes in sim.metrics.delivered_bytes_by_destination().items():
        table.charge(dest, float(nbytes))
    return summary, table.jain_index()


def _run():
    # Four receiver slots for twelve stations: the scheduler must choose.
    limits = AggregationLimits(max_latency=0.004, max_receivers=4)
    fifo, fifo_jain = _run_one(CarpoolProtocol(DEFAULT_PARAMETERS, limits))
    fair, fair_jain = _run_one(FairCarpoolProtocol(DEFAULT_PARAMETERS, limits))
    return (fifo, fifo_jain), (fair, fair_jain)


def test_sec8_time_fairness(benchmark):
    (fifo, fifo_jain), (fair, fair_jain) = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-FAIR",
        "§8 — time-occupancy fairness on Carpool (skewed offered load)",
        "the time-occupancy scheduler serves under-loaded stations first: "
        "per-station delivery becomes near-equal (Jain → 1) at a bounded "
        "goodput cost versus FIFO",
    )
    report.table(
        ["scheduler", "goodput ↓ (Mbit/s)", "delay (ms)", "Jain (delivered bytes)"],
        [
            ["FIFO Carpool", f"{fifo.downlink_goodput_bps / 1e6:.3f}",
             f"{fifo.downlink_mean_delay * 1e3:.1f}", f"{fifo_jain:.3f}"],
            ["Fair Carpool", f"{fair.downlink_goodput_bps / 1e6:.3f}",
             f"{fair.downlink_mean_delay * 1e3:.1f}", f"{fair_jain:.3f}"],
        ],
    )
    report.save_and_print("sec8_fairness")

    # The scheduler's whole point: much fairer per-station service…
    assert fair_jain > fifo_jain + 0.1
    # …for a bounded goodput cost (it serves more distinct stations per
    # aggregate instead of letting the heavy hitters monopolise slots).
    assert fair.downlink_goodput_bps > 0.75 * fifo.downlink_goodput_bps
