"""E-F13-loc: Fig. 13's error bars — the 30-location measurement campaign.

The paper varies receiver locations at fixed power and reports BER
mean ± standard deviation. This bench replays that over the Fig. 10
testbed: every qualifying location gets its own SNR (path loss +
shadowing) and its own channel realisations, for both estimation schemes.
"""

import numpy as np

from _report import Report, fmt_ber
from repro.analysis.location_sweep import ber_across_locations

LOCATIONS = 6
TRIALS = 4


def _run():
    common = dict(
        mcs_name="QAM64-3/4", payload_bytes=4090,
        trials_per_location=TRIALS, max_locations=LOCATIONS, min_snr_db=22.0,
    )
    std = ber_across_locations(use_rte=False, **common)
    rte = ber_across_locations(use_rte=True, **common)
    return std, rte


def test_fig13_location_sweep(benchmark):
    std, rte = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-F13-loc",
        "Fig. 13 across testbed locations (QAM64, mean ± std over spots)",
        "the BER bias and RTE's tail flattening hold across receiver "
        "locations, not just one link",
    )
    rows = []
    n = std.mean_ber_per_symbol.size
    for start in range(0, n, 20):
        end = min(start + 20, n)
        rows.append([
            f"{start + 1}–{end}",
            f"{fmt_ber(std.mean_ber_per_symbol[start:end].mean())} "
            f"±{fmt_ber(std.std_ber_per_symbol[start:end].mean())}",
            f"{fmt_ber(rte.mean_ber_per_symbol[start:end].mean())} "
            f"±{fmt_ber(rte.std_ber_per_symbol[start:end].mean())}",
        ])
    report.table(["symbol index", "Standard (mean ± std)", "RTE (mean ± std)"], rows)
    report.line()
    report.line(f"locations used: {std.locations_used} "
                f"(≥22 dB spots of the Fig. 10 office)")
    report.save_and_print("fig13_locations")

    # The bias holds in the across-location mean…
    assert (std.mean_ber_per_symbol[-10:].mean()
            > 2.0 * std.mean_ber_per_symbol[:10].mean())
    # …and RTE flattens the tail on aggregate.
    assert (rte.mean_ber_per_symbol[-10:].mean()
            < std.mean_ber_per_symbol[-10:].mean())
    assert std.locations_used >= 3
