"""E-OH: §3's header-overhead arithmetic.

The motivating example: 1500 B for each of 8 receivers at 600 Mbit/s.
Explicitly listing eight 48-bit MAC addresses at the 6.5 Mbit/s basic rate
costs ≈59 µs — three times the 20 µs payload airtime — while Carpool's
A-HDR is two OFDM symbols (8 µs) shared by all receivers.
"""

from _report import Report
from repro.core.ahdr import AHDR_BITS, AHDR_SYMBOLS, ahdr_overhead_ratio, naive_header_bits
from repro.mac.parameters import PhyMacParameters


def _run():
    params = PhyMacParameters(phy_rate_bps=600e6, basic_rate_bps=6.5e6)
    naive_bits = naive_header_bits(8)
    naive_time = naive_bits / params.basic_rate_bps
    payload_time = 8 * 1500 / params.phy_rate_bps
    ahdr_time = AHDR_SYMBOLS * params.symbol_duration
    return {
        "naive_bits": naive_bits,
        "naive_time": naive_time,
        "payload_time": payload_time,
        "ahdr_bits": AHDR_BITS,
        "ahdr_time": ahdr_time,
        "overhead_ratio": ahdr_overhead_ratio(8),
    }


def test_sec3_header_overhead(benchmark):
    values = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-OH",
        "§3 — aggregation-header overhead (8 × 1500 B at 600 Mbit/s)",
        "explicit MAC addresses: 384 bits ≈ 59 µs ≈ 3× the 20 µs payload; "
        "A-HDR: 48 bits in 2 OFDM symbols = 12.5 % of the naive header",
    )
    report.table(
        ["quantity", "measured", "paper"],
        [
            ["naive header bits", values["naive_bits"], "384"],
            ["naive header airtime", f"{values['naive_time'] * 1e6:.1f} µs", "59 µs"],
            ["payload airtime", f"{values['payload_time'] * 1e6:.1f} µs", "20 µs"],
            ["A-HDR bits", values["ahdr_bits"], "48"],
            ["A-HDR airtime", f"{values['ahdr_time'] * 1e6:.1f} µs", "8 µs (2 sym)"],
            ["A-HDR / naive", f"{values['overhead_ratio']:.1%}", "12.5 %"],
        ],
    )
    report.save_and_print("sec3_overhead")

    assert values["naive_bits"] == 384
    assert abs(values["naive_time"] - 59e-6) < 1e-6
    assert abs(values["payload_time"] - 20e-6) < 1e-7
    assert values["naive_time"] > 2.9 * values["payload_time"]
    assert values["overhead_ratio"] == 0.125
