"""E-RTS: §4.2 / Fig. 7 — multicast RTS/CTS against hidden terminals.

Dense deployments have stations outside each other's carrier-sense range.
This bench plants hidden pairs between the AP and half its stations and
compares Carpool without protection, Carpool with the multicast-RTS +
sequential-CTS exchange, and plain 802.11 — the mechanism the paper adds
for exactly this case.
"""

from _report import Report, fmt_mbps
from repro.mac import CarpoolProtocol, DEFAULT_PARAMETERS, Dot11Protocol, WlanSimulator
from repro.mac.engine import AP_NAME
from repro.mac.error_model import DEFAULT_ERROR_MODEL
from repro.mac.frames import Arrival, Direction
from repro.mac.protocols.base import AggregationLimits
from repro.util.rng import RngStream

N_STAS = 6
DURATION = 4.0


def _arrivals():
    out = []
    k = 0
    t = 0.0005
    while t < DURATION:
        out.append(Arrival(time=t, source=AP_NAME, destination=f"sta{k % N_STAS}",
                           size_bytes=500, direction=Direction.DOWNLINK))
        for i in range(N_STAS):
            out.append(Arrival(time=t + 1e-4 + 1e-5 * i, source=f"sta{i}",
                               destination=AP_NAME, size_bytes=400,
                               direction=Direction.UPLINK))
        t += 0.0008
        k += 1
    out.sort(key=lambda a: a.time)
    return out


def _run_one(protocol_cls, hidden, rts):
    sim = WlanSimulator(
        protocol_cls(DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.004)),
        N_STAS,
        _arrivals(),
        error_model=DEFAULT_ERROR_MODEL,
        rng=RngStream(77),
        hidden_pairs=hidden,
        use_rts_cts=rts,
    )
    summary = sim.run(DURATION)
    return summary, sim.hidden_collisions


def _run():
    hidden = {(AP_NAME, f"sta{i}") for i in range(N_STAS // 2)}
    results = {
        "Carpool, no hidden nodes": _run_one(CarpoolProtocol, None, False),
        "Carpool, hidden, no RTS/CTS": _run_one(CarpoolProtocol, hidden, False),
        "Carpool, hidden, RTS/CTS": _run_one(CarpoolProtocol, hidden, True),
        "802.11, hidden, no RTS/CTS": _run_one(Dot11Protocol, hidden, False),
    }
    return results


def test_sec4_hidden_terminal_rts_cts(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    report = Report(
        "E-RTS",
        "§4.2 / Fig. 7 — hidden terminals and the multicast RTS/CTS",
        "hidden nodes corrupt unprotected long frames; the RTS/CTS "
        "sequence shrinks the vulnerable window to one RTS and recovers "
        "most of the goodput",
    )
    rows = []
    for name, (summary, hidden_hits) in results.items():
        rows.append([name, fmt_mbps(summary.downlink_goodput_bps),
                     hidden_hits, summary.dropped_frames])
    report.table(["configuration", "goodput ↓ (Mbit/s)", "hidden hits", "drops"], rows)
    report.save_and_print("sec4_hidden_terminals")

    clean = results["Carpool, no hidden nodes"][0].downlink_goodput_bps
    bare = results["Carpool, hidden, no RTS/CTS"][0].downlink_goodput_bps
    shielded = results["Carpool, hidden, RTS/CTS"][0].downlink_goodput_bps
    assert bare < 0.9 * clean, "hidden nodes must visibly hurt"
    assert shielded > bare, "RTS/CTS must recover goodput"
    assert results["Carpool, hidden, no RTS/CTS"][1] > 0
