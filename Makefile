# Convenience targets for the Carpool reproduction.

.PHONY: install test bench examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
		echo; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
