# Convenience targets for the Carpool reproduction.

.PHONY: install test test-all bench bench-smoke bench-phy bench-mac bench-net bench-soak bench-scaling bench-compare check-memory soak-smoke examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-all:
	pytest tests/ -m ""

bench:
	pytest benchmarks/ --benchmark-only

# Fast structural check of both timing suites. Smoke output goes to a
# temp dir (the CLI picks one) so the committed BENCH_*.json baselines
# are never overwritten by tiny unrepresentative workloads.
bench-smoke:
	PYTHONPATH=src python -m repro bench --suite all --smoke

# Full timing suites: regenerate the committed baselines in-place.
bench-phy:
	PYTHONPATH=src python -m repro bench --suite phy --out BENCH_phy.json

bench-mac:
	PYTHONPATH=src python -m repro bench --suite mac --out BENCH_mac.json

bench-net:
	PYTHONPATH=src python -m repro bench --suite net --out BENCH_net.json

bench-soak:
	PYTHONPATH=src python -m repro bench --suite soak --out BENCH_soak.json

# Full suites with the speedup-vs-workers curves of every pool section
# collected into one artifact (bench output goes to a temp dir).
bench-scaling:
	PYTHONPATH=src python -m repro bench --suite all \
		--out-dir "$$(mktemp -d)" --scaling-out BENCH_scaling.json

# Regression gate against the committed baselines: re-runs the full
# suites into a temp dir (~30 s) and exits non-zero on a >20% drop in
# any throughput metric. Smoke runs are NOT comparable to the committed
# full-run baselines (different workloads), so this runs full.
bench-compare:
	PYTHONPATH=src python -m repro bench --suite all --out-dir "$$(mktemp -d)" --compare .

# Constant-memory gate: a sharded deployment sweep in a fresh process
# must stay flat and under the committed RSS budget
# (benchmarks/memory_budget.json; re-record with --update after a
# deliberate change).
check-memory:
	PYTHONPATH=src python benchmarks/check_memory_ceiling.py

# End-to-end kill/resume gate: a real `repro soak` process is SIGTERMed
# mid-run, resumed in a fresh process at different worker/shard counts,
# and its checkpoint artifacts must come out byte-identical to an
# uninterrupted run's.
soak-smoke:
	PYTHONPATH=src python benchmarks/soak_smoke.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
		echo; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
