# Convenience targets for the Carpool reproduction.

.PHONY: install test test-all bench bench-smoke examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-all:
	pytest tests/ -m ""

bench:
	pytest benchmarks/ --benchmark-only

# Fast PHY timing harness: emits BENCH_phy.json and validates its schema.
bench-smoke:
	PYTHONPATH=src python -m repro bench --smoke --out BENCH_phy.json
	PYTHONPATH=src python -c "import json; from repro.runtime.bench import validate_bench; validate_bench(json.load(open('BENCH_phy.json'))); print('BENCH_phy.json schema OK')"

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script || exit 1; \
		echo; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
