"""A reliable Carpool link: everything composed, end to end.

MSDUs → FCS-protected MPDU trains → Carpool aggregation (Bloom-filter
A-HDR, per-subframe SIG, phase-offset side channel, RTE decoding) → a
noisy fading channel → per-station salvage → BlockAcks → selective
retransmission, looping until every byte is delivered.

Run:  python examples/reliable_link_demo.py
"""

import numpy as np

from repro.channel import ChannelModel, FadingProfile
from repro.core.mac_address import MacAddress
from repro.core.transport import CarpoolLink
from repro.util.rng import RngStream


def main():
    rng = np.random.default_rng(0)
    stations = [MacAddress.from_int(i) for i in range(4)]
    channel = ChannelModel(
        snr_db=14.0,  # rough enough that MPDUs die regularly
        rng=RngStream(11),
        profile=FadingProfile(num_taps=2, delay_spread_taps=0.35,
                              ricean_k_db=8.0, coherence_time=30e-3),
    )
    link = CarpoolLink(channel, stations, max_rounds=20)

    expected = {}
    total_bytes = 0
    for mac in stations:
        expected[mac] = [rng.bytes(140) for _ in range(4)]
        for payload in expected[mac]:
            link.send(mac, payload)
            total_bytes += len(payload)
    print(f"queued {total_bytes} bytes across {len(stations)} stations "
          f"over a 14 dB fading link…\n")

    report = link.run()

    print(f"channel accesses:        {report.transmissions}")
    print(f"retransmitted MPDUs:     {report.retransmitted_mpdus}")
    print(f"undelivered MSDUs:       {report.undelivered}")
    for mac in stations:
        ok = report.delivered[mac] == expected[mac]
        print(f"  {mac}: {len(report.delivered[mac])}/4 MSDUs, "
              f"in order and intact: {ok}")
    assert report.all_delivered()
    print("\nevery byte delivered — aggregation, side channel, RTE, "
          "BlockAck and retransmission all pulling together.")


if __name__ == "__main__":
    main()
