"""Backward compatibility: Carpool and legacy stations on one AP (§4.3).

Half the stations negotiated Carpool at association, half are legacy
802.11n devices. The AP speaks Carpool only to the capable half; at PHY
level every station classifies each frame (legacy SIG vs A-HDR) before
deciding whether and how to decode it.

Run:  python examples/mixed_network.py
"""

import numpy as np

from repro.channel import ChannelModel
from repro.core import (
    AssociationTable,
    Capability,
    CarpoolTransmitter,
    DualModeReceiver,
    MacAddress,
    SubframeSpec,
    classify_frame,
)
from repro.mac import (
    AggregationLimits,
    CarpoolMixedProtocol,
    DEFAULT_PARAMETERS,
    WlanSimulator,
)
from repro.mac.frames import Arrival, Direction
from repro.phy import PhyTransmitter, mcs_by_name
from repro.util.rng import RngStream


def phy_level_demo():
    print("== PHY: frame classification and dual-mode reception ==")
    table = AssociationTable()
    carpool_sta = MacAddress.from_int(0)
    legacy_sta = MacAddress.from_int(1)
    table.associate(carpool_sta, Capability.DOT11N | Capability.CARPOOL)
    table.associate(legacy_sta, Capability.DOT11N)
    print(f"associated: {carpool_sta} (Carpool), {legacy_sta} (legacy)")

    rng = np.random.default_rng(0)
    mcs = mcs_by_name("QAM16-1/2")
    carpool_frame = CarpoolTransmitter().build_frame(
        [SubframeSpec(carpool_sta, rng.bytes(300), mcs)]
    )
    legacy_frame = PhyTransmitter(mcs).build_frame(rng.bytes(300))
    channel = ChannelModel(snr_db=28, rng=RngStream(1))

    receiver = DualModeReceiver(carpool_sta)
    for name, frame in (("Carpool frame", carpool_frame.symbols),
                        ("legacy frame", legacy_frame.symbols)):
        received = channel.transmit(frame)
        fmt = classify_frame(received)
        result = receiver.receive(received)
        print(f"  {name}: classified as {fmt.value}, "
              f"decoded via {'Carpool' if result.carpool else 'legacy'} pipeline")


def mac_level_demo():
    print("\n== MAC: mixed downlink service ==")
    capable = {f"sta{i}" for i in range(4)}
    legacy = {f"sta{i}" for i in range(4, 8)}
    arrivals = []
    t = 0.001
    k = 0
    while t < 3.0:
        dest = f"sta{k % 8}"
        arrivals.append(Arrival(time=t, source="ap", destination=dest,
                                size_bytes=300, direction=Direction.DOWNLINK))
        t += 0.0005
        k += 1
    protocol = CarpoolMixedProtocol(
        DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005),
        carpool_stations=capable,
    )
    sim = WlanSimulator(protocol, 8, arrivals, rng=RngStream(2))
    summary = sim.run(3.0)
    print(f"  delivered {summary.delivered_downlink_frames} downlink frames "
          f"({summary.downlink_goodput_bps / 1e6:.2f} Mbit/s) in "
          f"{summary.transmissions} transmissions")
    print(f"  mean delay {summary.downlink_mean_delay * 1e3:.1f} ms, "
          f"drops {summary.dropped_frames}")
    print(f"  (Carpool aggregates served {sorted(capable)}, "
          f"legacy unicasts served {sorted(legacy)})")


if __name__ == "__main__":
    phy_level_demo()
    mac_level_demo()
