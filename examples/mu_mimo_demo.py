"""Carpool over MU-MIMO (§8, Fig. 18): four stations, one transmission.

A two-antenna AP has data for four single-antenna stations. Plain
802.11ac MU-MIMO fits two beamformed streams per access — two accesses,
two contentions, two preambles. Carpool-MU-MIMO stacks both precoder
groups behind one shared legacy preamble and A-HDR, and every station
fishes its own subframe out of one transmission.

Run:  python examples/mu_mimo_demo.py
"""

import numpy as np

from repro.core.frame import SubframeSpec
from repro.core.mac_address import MacAddress
from repro.core.mimo import (
    MuMimoCarpoolReceiver,
    MuMimoCarpoolTransmitter,
    transmissions_required,
)
from repro.phy.mimo import MimoChannel
from repro.phy.mcs import mcs_by_name
from repro.util.rng import RngStream


def main():
    rng = np.random.default_rng(0)
    channel = MimoChannel(num_users=4, num_antennas=2, rng=RngStream(7))
    mcs = mcs_by_name("QPSK-1/2")
    specs = [
        SubframeSpec(MacAddress.from_int(i), rng.bytes(200 + 60 * i), mcs)
        for i in range(4)
    ]

    tx = MuMimoCarpoolTransmitter(channel)
    frame = tx.build_frame(specs)
    print(f"frame: {frame.n_symbols} OFDM symbols across "
          f"{channel.num_antennas} antennas, "
          f"{len(frame.layout.groups)} precoder groups")
    for g, group in enumerate(frame.layout.groups):
        users = ", ".join(str(u) for u in group.users)
        print(f"  group {g}: streams for [{users}] — VHT@{group.vht_start}, "
              f"SIG@{group.sig_index}, payload {group.payload_start}"
              f"..{group.end - 1}")

    received = channel.propagate(frame.antenna_streams, snr_db=32.0,
                                 rng=RngStream(8))
    print("\nper-station reception:")
    for i, spec in enumerate(specs):
        result = MuMimoCarpoolReceiver(spec.receiver).receive(
            received[i], frame.layout
        )
        ok = result.payload == spec.payload
        print(f"  {spec.receiver}: group {result.matched_groups}, "
              f"stream {result.stream_index}, "
              f"{len(spec.payload)} B decoded {'OK' if ok else 'WITH ERRORS'}")

    print(f"\naccesses needed for 4 stations / 2 antennas: "
          f"Carpool {transmissions_required(4, 2, carpool=True)}, "
          f"802.11ac {transmissions_required(4, 2, carpool=False)}")
    print(f"…and for 16 stations: "
          f"Carpool {transmissions_required(16, 2, carpool=True)}, "
          f"802.11ac {transmissions_required(16, 2, carpool=False)}")


if __name__ == "__main__":
    main()
