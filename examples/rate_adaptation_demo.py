"""Per-subframe rate adaptation over the Fig. 10 office testbed.

Carpool lets every subframe carry its own MCS (§4.1) — a near station
rides QAM64 while a far one rides BPSK in the *same* PHY frame. This
demo places stations at real testbed locations, lets the AP learn their
SNRs, and shows the per-destination rates and the resulting Carpool
frame composition.

Run:  python examples/rate_adaptation_demo.py
"""

from repro.analysis.testbed import OfficeTestbed
from repro.mac import (
    AggregationLimits,
    CarpoolProtocol,
    DEFAULT_PARAMETERS,
    RateTable,
)
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.util.rng import RngStream


def main():
    testbed = OfficeTestbed()
    # Pick four stations at increasingly bad spots.
    ranked = sorted(testbed.locations, key=testbed.snr_db, reverse=True)
    spots = [ranked[0], ranked[10], ranked[20], ranked[-1]]

    table = RateTable()
    print("stations and their learned links:")
    for i, spot in enumerate(spots):
        snr = testbed.snr_db(spot)
        table.report_snr(f"sta{i}", snr)
        mcs = table.mcs_for(f"sta{i}")
        print(f"  sta{i} @ ({spot.x:4.1f}, {spot.y:4.1f}) m, "
              f"{testbed.distance(spot):4.1f} m from AP: "
              f"{snr:5.1f} dB → {mcs.name} ({mcs.rate_mbps:g} Mbit/s class)")

    protocol = CarpoolProtocol(
        DEFAULT_PARAMETERS, AggregationLimits(max_latency=0.005), rate_table=table
    )
    ap = Node("ap", DEFAULT_PARAMETERS, RngStream(1).child("ap"), is_ap=True)
    for i in range(4):
        ap.enqueue(MacFrame(destination=f"sta{i}", size_bytes=600,
                            arrival_time=0.001 * i))
    tx = protocol.build(ap, 1.0)

    print("\none Carpool frame, per-subframe airtime:")
    total = 0
    for sf in tx.subframes:
        t = sf.n_symbols * DEFAULT_PARAMETERS.symbol_duration
        total += t
        print(f"  {sf.destination}: 600 B in {sf.n_symbols:3d} symbols "
              f"({t * 1e6:6.1f} µs)")
    print(f"  frame total (with headers): {tx.airtime * 1e6:.1f} µs, "
          f"ACK train: {tx.ack_time * 1e6:.1f} µs")
    print("\nsame bytes, same frame — the far station just pays more symbols,")
    print("without slowing anyone else down to its rate.")


if __name__ == "__main__":
    main()
