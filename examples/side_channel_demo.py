"""The phase-offset side channel as a free covert bit pipe.

Carpool uses the per-symbol phase-offset side channel to carry CRC
checksums, but the mechanism is generic: this demo sends an arbitrary
message through the injected phase offsets of a QPSK frame and shows that
(a) the message survives the channel via pilot-based phase tracking and
(b) the data payload decodes identically with and without the injection.

Run:  python examples/side_channel_demo.py
"""

import numpy as np

from repro.channel import ChannelModel
from repro.core.side_channel import TWO_BIT_SCHEME
from repro.phy import PhyReceiver, PhyTransmitter, mcs_by_name
from repro.util.bits import bits_to_bytes, bytes_to_bits, pad_bits
from repro.util.rng import RngStream

MESSAGE = b"carpool!"


def main():
    mcs = mcs_by_name("QPSK-1/2")
    payload = np.random.default_rng(0).bytes(400)
    tx = PhyTransmitter(mcs, coded=True)

    # How many side-channel bits fit? Two per payload symbol.
    plain = tx.build_frame(payload)
    capacity_bits = plain.n_payload_symbols * TWO_BIT_SCHEME.bits_per_symbol
    print(f"frame: {plain.n_payload_symbols} payload symbols → "
          f"{capacity_bits} free side-channel bits "
          f"({capacity_bits // 8} bytes)")
    message_bits = pad_bits(bytes_to_bits(MESSAGE), capacity_bits)[:capacity_bits]

    phases = TWO_BIT_SCHEME.encode_phases(message_bits)
    frame = tx.build_frame(payload, phases=phases)

    channel = ChannelModel(snr_db=22, rng=RngStream(5))
    received = channel.transmit(frame.symbols)

    rx = PhyReceiver(coded=True).receive(received)
    # The receiver's tracked per-symbol phases *are* the side channel; the
    # SIG symbol (no injection) anchors the differential decoding — its
    # phase is absorbed into the first delta, which starts from ~0 here
    # because the CFO ramp was removed by the front end.
    decoded_bits = TWO_BIT_SCHEME.decode_phases(rx.symbol_phases, reference_phase=0.0)
    decoded = bits_to_bytes(decoded_bits[: 8 * len(MESSAGE)])

    print(f"covert message sent:     {MESSAGE!r}")
    print(f"covert message decoded:  {decoded!r}")
    print(f"payload decoded intact:  {rx.payload == payload}")

    # Same channel draw, no injection: payload decoding is unaffected.
    channel_ref = ChannelModel(snr_db=22, rng=RngStream(5))
    rx_ref = PhyReceiver(coded=True).receive(channel_ref.transmit(plain.symbols))
    print(f"payload without side channel also intact: {rx_ref.payload == payload}")
    assert decoded == MESSAGE


if __name__ == "__main__":
    main()
