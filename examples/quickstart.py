"""Quickstart: one Carpool frame, three receivers, one transmission.

Builds a Carpool PHY frame carrying payloads for three stations,
propagates it through the simulated indoor channel once, and lets every
station (plus one bystander) run the full Carpool receive pipeline:
check the A-HDR Bloom filter, skip foreign subframes via their SIG
symbols, decode the own subframe with real-time channel estimation, and
schedule the sequential ACK.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.channel import ChannelModel
from repro.core import (
    AckTiming,
    CarpoolReceiver,
    CarpoolTransmitter,
    MacAddress,
    SequentialAckPlan,
    SubframeSpec,
)
from repro.phy import mcs_by_name
from repro.util.rng import RngStream


def main():
    rng = np.random.default_rng(7)

    # Three stations, three payloads, per-subframe MCS.
    stations = [MacAddress.from_int(i) for i in range(3)]
    specs = [
        SubframeSpec(stations[0], rng.bytes(300), mcs_by_name("QAM16-1/2")),
        SubframeSpec(stations[1], rng.bytes(800), mcs_by_name("QAM64-2/3")),
        SubframeSpec(stations[2], rng.bytes(150), mcs_by_name("QPSK-1/2")),
    ]

    # The AP aggregates everything into a single PHY frame.
    frame = CarpoolTransmitter(coded=True).build_frame(specs)
    print(f"Carpool frame: {frame.n_symbols} OFDM symbols, "
          f"{len(frame.subframes)} subframes, receivers: "
          f"{', '.join(str(m) for m in frame.receivers)}")

    # One pass through the simulated office channel.
    channel = ChannelModel(snr_db=28, rng=RngStream(42))
    received = channel.transmit(frame.symbols)

    # Every STA (and a bystander) processes the same reception.
    for mac in stations + [MacAddress.from_int(99)]:
        result = CarpoolReceiver(mac, coded=True).receive(received)
        if not result.matched_positions:
            print(f"  {mac}: no subframe for me "
                  f"(walked {result.num_subframes_seen} subframes, dropped frame)")
            continue
        sf = result.subframes[0]
        original = frame.subframe_for(mac).spec.payload
        ok = sf.payload == original
        print(f"  {mac}: subframe {sf.position} "
              f"({sf.sig.mcs.name}, {sf.sig.length_bytes} B) "
              f"decoded {'OK' if ok else 'with errors'}; "
              f"RTE updates: {sf.rte_updates}, "
              f"symbol-CRC pass rate: {sf.crc_pass.mean():.0%}")

    # Sequential ACK schedule (Eq. 1/2): one slot per receiver.
    timing = AckTiming(ack_duration=44e-6, sifs=10e-6)
    plan = SequentialAckPlan(len(stations), timing)
    print("\nSequential ACK timetable (after end of data frame):")
    for i, mac in enumerate(stations):
        print(f"  {mac}: ACK at t+{plan.ack_start_time(i) * 1e6:.0f} µs, "
              f"NAV in ACK = {plan.ack_nav(i) * 1e6:.0f} µs")


if __name__ == "__main__":
    main()
