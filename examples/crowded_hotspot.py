"""A crowded public hotspot: 30 STAs per AP, two APs, five MAC schemes.

The large-audience scenario that motivates the paper: per-station VoIP in
both directions plus SIGCOMM'08-style uplink background traffic, run
through the event-driven CSMA/CA simulator under each downlink scheme.

Run:  python examples/crowded_hotspot.py [num_stations]
"""

import sys

from repro.mac import (
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    WifoxProtocol,
)
from repro.mac.scenarios import VoipScenario

PROTOCOLS = (Dot11Protocol, AmpduProtocol, MuAggregationProtocol,
             WifoxProtocol, CarpoolProtocol)


def main():
    num_stations = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    scenario = VoipScenario(
        num_stations=num_stations, duration=8.0, with_background=True
    )
    arrivals, stations = scenario.build_arrivals()
    print(f"Scenario: {scenario.num_aps} APs × {num_stations} STAs, "
          f"{len(arrivals)} packet arrivals over {scenario.duration:.0f} s "
          f"(VoIP ↓↑ + background ↑)\n")

    print(f"{'scheme':<16s} {'goodput':>9s} {'delay':>9s} {'p95':>9s} "
          f"{'collisions':>10s} {'retx':>6s} {'busy':>5s}")
    for cls in PROTOCOLS:
        r = scenario.run(cls)
        print(f"{r.protocol:<16s} "
              f"{r.measured_ap_useful_goodput_bps / 1e6:7.3f} M "
              f"{r.downlink_mean_delay * 1e3:7.1f} ms "
              f"{r.downlink_p95_delay * 1e3:7.1f} ms "
              f"{r.collisions:>10d} {r.retransmitted_subframes:>6d} "
              f"{r.channel_busy_fraction:5.0%}")

    print("\n(goodput = measured AP's downlink traffic delivered within "
          "the 400 ms VoIP bound)")


if __name__ == "__main__":
    main()
