"""BER bias and real-time channel estimation, end to end.

Reproduces the paper's core PHY insight interactively: send long (4 KB)
QAM64 frames over a time-varying indoor channel and watch the per-symbol
BER grow toward the tail under standard (preamble-only) channel
estimation — then watch Carpool's RTE flatten the curve by recycling
correctly-decoded symbols as data pilots.

Run:  python examples/ber_bias_demo.py
"""

from repro.analysis import LinkConfig, ber_by_symbol_index

TRIALS = 40


def bar(value: float, scale: float) -> str:
    return "#" * max(1, int(value / scale)) if value > 0 else ""


def main():
    link = LinkConfig(seed=1)
    print("Measuring 4 KB QAM64 frames over the simulated office link "
          f"({TRIALS} transmissions per scheme)…\n")
    std = ber_by_symbol_index("QAM64-3/4", 4090, TRIALS, use_rte=False, link=link)
    rte = ber_by_symbol_index("QAM64-3/4", 4090, TRIALS, use_rte=True, link=link)

    scale = max(std.ber_per_symbol.max(), 1e-9) / 40
    print(f"{'symbols':>10s}  {'standard':>10s}  {'RTE':>10s}   standard-BER profile")
    for start in range(0, std.ber_per_symbol.size, 10):
        end = min(start + 10, std.ber_per_symbol.size)
        s = std.ber_per_symbol[start:end].mean()
        r = rte.ber_per_symbol[start:end].mean()
        print(f"{start + 1:>4d}–{end:<5d}  {s:10.2e}  {r:10.2e}   {bar(s, scale)}")

    reduction = 1 - rte.mean_ber / std.mean_ber
    print(f"\nmean BER: standard {std.mean_ber:.2e}, RTE {rte.mean_ber:.2e} "
          f"({reduction:.0%} lower)")
    print(f"tail (last 10 symbols): standard {std.ber_per_symbol[-10:].mean():.2e}, "
          f"RTE {rte.ber_per_symbol[-10:].mean():.2e}")
    print(f"RTE symbol-CRC pass rate: {rte.crc_pass_rate:.0%}, "
          f"side-channel bit error rate: {rte.side_bit_error_rate:.2e}")


if __name__ == "__main__":
    main()
