"""Explore the public-WLAN traffic models behind Fig. 1.

Prints ASCII renditions of the paper's trace statistics: the active-STA
time series (Fig. 1(a)), the frame-size CDFs (Fig. 1(b)) and the
downlink-volume ratios (Fig. 1(c)), all regenerated from the statistical
models that stand in for the SIGCOMM and campus-library captures.

Run:  python examples/trace_explorer.py
"""

import numpy as np

from repro.mac.frames import Direction
from repro.traffic import (
    LIBRARY,
    SIGCOMM04,
    SIGCOMM08,
    active_sta_timeseries,
    sample_frame_sizes,
    trace_mixed_arrivals,
)
from repro.util.rng import RngStream


def show_active_stas():
    print("Fig. 1(a) — active STAs per AP, one sample per second:\n")
    counts = active_sta_timeseries(60, RngStream(1))
    for t in range(0, 60, 4):
        n = counts[t]
        print(f"  t={t:3d}s {'█' * n} {n}")
    full = active_sta_timeseries(300, RngStream(1))
    print(f"\n  mean over 300 s: {full.mean():.2f} (paper: 7.63)")


def show_size_cdf():
    print("\nFig. 1(b) — frame-size CDFs (50k samples per model):\n")
    rng = RngStream(2)
    print(f"  {'size ≤':>8s}  {'SIGCOMM08':>10s}  {'Library':>8s}")
    sig = sample_frame_sizes(SIGCOMM08, 50_000, rng.child("s"))
    lib = sample_frame_sizes(LIBRARY, 50_000, rng.child("l"))
    for size in (60, 100, 200, 300, 600, 1000, 1500):
        print(f"  {size:>8d}  {(sig <= size).mean():>10.3f}  {(lib <= size).mean():>8.3f}")
    print("\n  SIGCOMM bar (fraction ≤ size):")
    for size in (100, 300, 600, 1000, 1500):
        frac = (sig <= size).mean()
        print(f"  {size:>6d} B {'▒' * int(40 * frac)} {frac:.0%}")


def show_downlink_ratio():
    print("\nFig. 1(c) — downlink traffic-volume ratio:\n")
    rng = RngStream(3)
    stations = [f"sta{i}" for i in range(8)]
    print(f"  {'trace':>12s}  {'measured':>9s}  {'paper':>6s}")
    paper = {"SIGCOMM'04": 0.80, "SIGCOMM'08": 0.834, "Library": 0.892}
    for model in (SIGCOMM04, SIGCOMM08, LIBRARY):
        arrivals = trace_mixed_arrivals(stations, 60.0, rng.child(model.name), model)
        down = sum(a.size_bytes for a in arrivals if a.direction == Direction.DOWNLINK)
        ratio = down / sum(a.size_bytes for a in arrivals)
        print(f"  {model.name:>12s}  {ratio:>9.3f}  {paper[model.name]:>6.3f}")
    print("\n  (four-to-one downlink dominance + mostly-short frames is the "
          "contention\n   pattern Carpool's multi-receiver aggregation attacks)")


if __name__ == "__main__":
    show_active_stas()
    show_size_cdf()
    show_downlink_ratio()
