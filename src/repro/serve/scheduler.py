"""Rolling fault schedules: impairment episodes that slide across epochs.

A soak run is only a stress test if the channel misbehaves on a schedule
the run cannot adapt its seeds to. Each named profile composes
:class:`~repro.faults.plan.FaultSpec` episodes — bursty MAC loss, a
hidden terminal, deep fades — whose activation window *slides* across
the epoch as the epoch index advances: episode phase is
``epoch_index % period_epochs``, so over one period the window sweeps
from the start of the epoch to its end and every part of the epoch
eventually soaks under every impairment.

Everything here is a pure function of ``(profile, epoch_index,
epoch_duration)``:

* the schedule needs no state, so the checkpoint only records the next
  epoch index — :func:`schedule_position` reconstructs the exact window
  a resumed run is about to enter;
* fault RNG streams are salted per epoch (``soak-e{index}``), so episode
  draws are independent across epochs and never collide with the
  coupling-derived ``ap{i}-w{k}`` streams a deployment already carries.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "FAULT_PROFILES",
    "rolling_fault_plan",
    "schedule_position",
]

#: Episode templates per profile: (kind, period_epochs, duty, kwargs).
#: ``duty`` is the fraction of the epoch the window covers; the window's
#: start sweeps the remaining ``(1 - duty)`` of the epoch over
#: ``period_epochs`` epochs.
_PROFILE_EPISODES = {
    "none": (),
    "bursty-loss": (
        ("mac_burst", 4, 0.50,
         dict(probability=1.0, mean_good=0.030, mean_bad=0.004)),
    ),
    "hidden-terminal": (
        ("hidden_window", 5, 0.40, dict(probability=0.6)),
    ),
    "deep-fade": (
        ("deep_fade", 3, 0.35,
         dict(probability=0.02, magnitude=18.0, length=4)),
    ),
    "mixed": (
        ("mac_burst", 4, 0.40,
         dict(probability=1.0, mean_good=0.040, mean_bad=0.004)),
        ("hidden_window", 5, 0.30, dict(probability=0.5)),
        ("deep_fade", 3, 0.25,
         dict(probability=0.015, magnitude=15.0, length=3)),
    ),
}

FAULT_PROFILES = tuple(sorted(_PROFILE_EPISODES))


def _window(epoch_index: int, epoch_duration: float, period: int,
            duty: float) -> tuple:
    """This epoch's ``[start, stop)`` activation window for one episode."""
    phase = (epoch_index % period) / period
    width = duty * epoch_duration
    start = phase * (epoch_duration - width)
    return start, start + width


def rolling_fault_plan(profile: str, epoch_index: int,
                       epoch_duration: float):
    """The :class:`FaultPlan` epoch ``epoch_index`` runs under.

    ``None`` for the ``"none"`` profile (no plan beats an empty plan:
    cells skip injector setup entirely and stay bit-identical to a run
    that never imported this module).
    """
    episodes = _episodes(profile)
    if not episodes:
        return None
    specs = [
        FaultSpec.make(
            kind,
            start=start, stop=stop,
            seed_salt=f"soak-e{epoch_index}",
            **kwargs,
        )
        for kind, (start, stop), kwargs in (
            (kind, _window(epoch_index, epoch_duration, period, duty), kwargs)
            for kind, period, duty, kwargs in episodes
        )
    ]
    return FaultPlan.of(*specs)


def schedule_position(profile: str, epoch_index: int,
                      epoch_duration: float) -> dict:
    """Where the rolling schedule stands at ``epoch_index`` (JSON-safe).

    Recorded in each checkpoint so an operator inspecting ``state.json``
    sees exactly which impairment windows the next epoch re-enters; the
    scheduler itself needs none of it (pure function of the index).
    """
    windows = []
    for kind, period, duty, _ in _episodes(profile):
        start, stop = _window(epoch_index, epoch_duration, period, duty)
        windows.append({
            "kind": kind,
            "period_epochs": period,
            "phase": (epoch_index % period) / period,
            "window": [start, stop],
        })
    return {"profile": profile, "epoch": epoch_index, "episodes": windows}


def _episodes(profile: str) -> tuple:
    try:
        return _PROFILE_EPISODES[profile]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {profile!r}; known: {FAULT_PROFILES}"
        ) from None
