"""repro.serve — million-user soak mode: a resumable trace-replay service.

Turns the batch deployment engine into a long-running service: lazy
epoch workloads (:mod:`repro.serve.workload`), rolling fault schedules
(:mod:`repro.serve.scheduler`), the checkpointing epoch loop
(:mod:`repro.serve.service`), and atomic resume state
(:mod:`repro.serve.checkpoint`). Driven by ``repro soak`` on the CLI and
gated by the ``soak`` bench suite.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_SCHEMA,
    append_epoch_record,
    load_state,
    read_epoch_records,
    save_state,
    state_paths,
    trim_epoch_records,
)
from repro.serve.scheduler import (
    FAULT_PROFILES,
    rolling_fault_plan,
    schedule_position,
)
from repro.serve.service import SoakConfig, SoakSummary, run_soak
from repro.serve.workload import (
    TRAFFIC_MODES,
    EpochSpec,
    SoakWorkload,
    deployment_config,
    epoch_seed,
    epoch_spec,
    iter_epoch_arrivals,
    iter_epochs,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "FAULT_PROFILES",
    "TRAFFIC_MODES",
    "EpochSpec",
    "SoakConfig",
    "SoakSummary",
    "SoakWorkload",
    "append_epoch_record",
    "deployment_config",
    "epoch_seed",
    "epoch_spec",
    "iter_epoch_arrivals",
    "iter_epochs",
    "load_state",
    "read_epoch_records",
    "rolling_fault_plan",
    "run_soak",
    "save_state",
    "schedule_position",
    "state_paths",
    "trim_epoch_records",
]
