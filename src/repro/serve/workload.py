"""Lazy epoch workload streams for the soak service.

A soak run is an unbounded sequence of *epochs*: short, fixed-duration
deployment simulations whose station population churns epoch to epoch
(:func:`repro.traffic.trace_models.active_sta_timeseries`) and whose
traffic shape comes from one of the :mod:`repro.traffic` models
(CBR / VoIP-like / trace-mixed). Millions of cumulative users means
millions of *station-epochs* folded through the rolling aggregate — the
streamer must therefore be lazy end to end:

* **No whole-run state.** Every epoch is minted independently by
  :func:`epoch_spec` from the root seed — random access by index, so a
  resumed run jumps straight to its cursor without replaying anything.
* **One root ``SeedSequence``.** Epoch ``e`` draws its seed from
  ``np.random.SeedSequence(root, spawn_key=(e,))``; epochs are
  statistically independent and no seed depends on how many epochs came
  before.
* **No materialised arrival lists.** Cell workloads are generated inside
  pool workers by the deployment engine; the parent-side arrival preview
  (:func:`iter_epoch_arrivals`) streams per-station generators through
  the lazy :func:`repro.traffic.flows.iter_merge_arrivals`, holding one
  pending arrival per station.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mac.frames import Arrival, Direction
from repro.net.deployment import DeploymentConfig
from repro.traffic.flows import iter_merge_arrivals
from repro.traffic.trace_models import TRACE_MODELS, active_sta_timeseries, sample_frame_sizes
from repro.util.rng import RngStream

__all__ = [
    "TRAFFIC_MODES",
    "SoakWorkload",
    "EpochSpec",
    "epoch_seed",
    "epoch_spec",
    "iter_epochs",
    "iter_epoch_arrivals",
    "deployment_config",
]

#: Supported traffic shapes and the (frame_bytes, frames_per_second,
#: latency_requirement) they pin when not trace-driven.  ``cbr`` is the
#: paper's Fig. 17 workload; ``voip`` approximates 20 ms-packetised
#: G.711 (160 B payload at 50 pps) driven through the CBR engine;
#: ``trace-mixed`` draws each epoch's frame size from a public-WLAN
#: trace CDF at the trace's TCP packet rate.
TRAFFIC_MODES = ("cbr", "voip", "trace-mixed")

_CBR_JITTER = 0.1  # must mirror flows.cbr_downlink_arrivals' default


@dataclass(frozen=True)
class SoakWorkload:
    """Everything that defines a soak run's workload (and its identity).

    The frozen payload of this dataclass *is* the run's configuration
    hash: two runs with equal workloads and equal epoch counts are the
    same run, bit for bit, which is what kill/resume identity is stated
    against.
    """

    seed: int = 42
    n_aps: int = 9
    max_stas_per_ap: int = 16
    target_active_stas: float = 6.0
    epoch_duration: float = 2.0
    traffic: str = "cbr"
    trace_model: str = "SIGCOMM'08"
    protocol: str = "Carpool"
    channels: int = 1
    coupling: bool = True
    with_background: bool = False

    def __post_init__(self):
        if self.n_aps < 1:
            raise ValueError("need at least one AP")
        if self.max_stas_per_ap < 1:
            raise ValueError("max_stas_per_ap must be >= 1")
        if not 0 < self.target_active_stas < self.max_stas_per_ap:
            raise ValueError(
                "target_active_stas must be in (0, max_stas_per_ap)"
            )
        if self.epoch_duration <= 0:
            raise ValueError("epoch_duration must be positive")
        if self.traffic not in TRAFFIC_MODES:
            raise ValueError(
                f"unknown traffic mode {self.traffic!r}; known: {TRAFFIC_MODES}"
            )
        if self.traffic == "trace-mixed" and self.trace_model not in TRACE_MODELS:
            raise ValueError(
                f"unknown trace model {self.trace_model!r}; "
                f"known: {sorted(TRACE_MODELS)}"
            )


@dataclass(frozen=True)
class EpochSpec:
    """One epoch, fully determined: a pure function of (workload, index)."""

    index: int
    seed: int
    stas_per_ap: int
    frame_bytes: int
    frames_per_second: float
    duration: float

    @property
    def users(self) -> int:
        """Station-epochs this epoch contributes to the cumulative count."""
        return self.stas_per_ap  # per AP; the service scales by n_aps


def epoch_seed(root_seed: int, epoch_index: int) -> int:
    """Epoch ``epoch_index``'s seed from the run's root ``SeedSequence``.

    ``spawn_key`` addressing gives random access: epoch *e*'s seed never
    depends on any other epoch having been generated, which is what lets
    a resumed run fast-forward to its cursor in O(1).
    """
    if epoch_index < 0:
        raise ValueError("epoch_index must be >= 0")
    sequence = np.random.SeedSequence(root_seed, spawn_key=(epoch_index,))
    return int(sequence.generate_state(1, np.uint32)[0])


def _epoch_population(workload: SoakWorkload, rng: RngStream) -> int:
    """This epoch's active STAs per AP from the churn model.

    The two-state Markov :func:`active_sta_timeseries` runs across the
    epoch's seconds; the epoch simulates its rounded mean occupancy
    (at least one station — an all-idle draw still anchors the epoch).
    """
    seconds = max(1, math.ceil(workload.epoch_duration))
    series = active_sta_timeseries(
        seconds, rng,
        num_stations=workload.max_stas_per_ap,
        target_mean_active=workload.target_active_stas,
    )
    mean = float(series.mean())
    return min(workload.max_stas_per_ap, max(1, int(round(mean))))


def _epoch_traffic(workload: SoakWorkload, rng: RngStream) -> tuple:
    """(frame_bytes, frames_per_second) for one epoch."""
    if workload.traffic == "cbr":
        return 120, 100.0
    if workload.traffic == "voip":
        return 160, 50.0
    model = TRACE_MODELS[workload.trace_model]
    size = int(sample_frame_sizes(model, 1, rng.child("frame-size"))[0])
    rate = 1.0 / model.tcp_interarrival
    return max(40, size), rate


def epoch_spec(workload: SoakWorkload, epoch_index: int) -> EpochSpec:
    """Mint epoch ``epoch_index`` — deterministic, random-access."""
    seed = epoch_seed(workload.seed, epoch_index)
    rng = RngStream(seed)
    stas = _epoch_population(workload, rng.child("churn"))
    frame_bytes, fps = _epoch_traffic(workload, rng.child("traffic"))
    return EpochSpec(
        index=epoch_index,
        seed=seed,
        stas_per_ap=stas,
        frame_bytes=frame_bytes,
        frames_per_second=fps,
        duration=workload.epoch_duration,
    )


def iter_epochs(workload: SoakWorkload, start: int = 0):
    """Lazily stream epoch specs from ``start`` — the soak's work queue.

    An unbounded generator: the service decides when to stop (epoch
    budget, user budget, wall-clock budget, or a signal). Nothing about
    the stream is cumulative, so generating epoch *n* costs the same
    whether or not epochs ``0..n-1`` were ever produced.
    """
    index = start
    while True:
        yield epoch_spec(workload, index)
        index += 1


def _station_cbr_stream(name: str, duration: float, frame_bytes: int,
                        frames_per_second: float, rng: RngStream,
                        ap_name: str = "ap"):
    """One station's CBR downlink arrivals as a lazy generator.

    Mirrors :func:`repro.traffic.flows.cbr_downlink_arrivals` draw for
    draw (same child-stream name, same uniform sequence), so merging
    these generators reproduces the eager list exactly — asserted by the
    workload tests.
    """
    gen = rng.child(f"cbr-{name}")
    gap = 1.0 / frames_per_second
    t = float(gen.uniform(0.0, gap))
    while t < duration:
        yield Arrival(time=t, source=ap_name, destination=name,
                      size_bytes=frame_bytes, delay_sensitive=True,
                      direction=Direction.DOWNLINK)
        t += gap * (1.0 + float(gen.uniform(-_CBR_JITTER, _CBR_JITTER)))


def iter_epoch_arrivals(workload: SoakWorkload, spec: EpochSpec,
                        cell_index: int = 0):
    """Lazily stream one cell's downlink arrivals for an epoch.

    Per-station generators merged through
    :func:`repro.traffic.flows.iter_merge_arrivals`: memory is one
    pending arrival per station regardless of epoch length. The service
    counts this stream each epoch to report offered load without ever
    holding an arrival list; the cells themselves regenerate their
    workloads independently inside pool workers.
    """
    rng = RngStream(spec.seed).child(f"preview-cell{cell_index}")
    streams = [
        _station_cbr_stream(f"sta{i}", spec.duration, spec.frame_bytes,
                            spec.frames_per_second, rng)
        for i in range(spec.stas_per_ap)
    ]
    return iter_merge_arrivals(*streams)


def deployment_config(workload: SoakWorkload, spec: EpochSpec,
                      extra_faults=None) -> DeploymentConfig:
    """The :class:`~repro.net.deployment.DeploymentConfig` one epoch runs.

    The epoch's seed becomes the deployment seed, so topology, shadowing,
    association, and every cell's draws are independent across epochs by
    the seed-tree construction.
    """
    return DeploymentConfig(
        n_aps=workload.n_aps,
        stas_per_ap=spec.stas_per_ap,
        duration=spec.duration,
        seed=spec.seed,
        protocol=workload.protocol,
        channels=workload.channels,
        frame_bytes=spec.frame_bytes,
        frames_per_second=spec.frames_per_second,
        with_background=workload.with_background,
        coupling=workload.coupling,
        extra_faults=extra_faults,
    )
