"""The soak service: a resumable epoch loop over sharded deployments.

:func:`run_soak` is the long-running driver behind ``repro soak``. Each
iteration mints one lazy :class:`~repro.serve.workload.EpochSpec`,
composes the rolling fault plan for that epoch, runs it through
:func:`~repro.net.deployment.simulate_deployment` (worker-side reduction
when ``shards`` is set), folds the epoch's
:class:`~repro.net.aggregate.DeploymentAggregate` into the run's rolling
aggregate, and checkpoints — metrics record first, then the atomic
``state.json``, then the refreshed manifest.

Determinism contract (the one every layer below already honours): the
deterministic artifacts — ``state.json``, ``metrics.jsonl``, and the
manifest's ``config_hash`` — are pure functions of (workload, fault
profile, epochs completed). Worker count, shard count, wall time, and
whether the run was killed and resumed at any epoch boundary cannot leak
into them; the kill/resume regression tests byte-compare the files to
enforce it.

Graceful drain: SIGINT/SIGTERM set a stop flag; the epoch in flight
finishes, its checkpoint lands, and the loop exits cleanly — so an
operator's Ctrl-C (or the CI job's mid-epoch SIGTERM) always leaves a
resumable directory, never a torn one.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from dataclasses import dataclass, field

from repro.net.aggregate import DeploymentAggregate
from repro.net.deployment import simulate_deployment
from repro.obs.log import get_logger
from repro.obs.manifest import config_hash, write_manifest
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profile_capture,
)
from repro.obs.slo import SloWatchdog, write_health
from repro.obs.telemetry import (
    append_telemetry_record,
    fault_occupancy,
    make_record,
    read_telemetry_records,
    rss_mb,
    trim_telemetry_records,
)
from repro.obs.trace import active_recorder, metrics, metrics_enabled
from repro.serve.checkpoint import (
    append_epoch_record,
    load_state,
    save_state,
    state_paths,
    trim_epoch_records,
)
from repro.serve.scheduler import rolling_fault_plan, schedule_position
from repro.serve.workload import (
    SoakWorkload,
    deployment_config,
    iter_epoch_arrivals,
    iter_epochs,
)

log = get_logger(__name__)

__all__ = ["SoakConfig", "SoakSummary", "run_soak"]


@dataclass(frozen=True)
class SoakConfig:
    """One soak invocation: identity knobs + runtime knobs, kept apart.

    ``workload`` and ``fault_profile`` are the run's *identity* — they
    key the checkpoint and the manifest ``config_hash``. Everything else
    is a runtime knob (budgets, parallelism, checkpoint cadence) that
    may differ between an interrupted run and its resume without
    breaking bit-identity of the deterministic artifacts.
    """

    workload: SoakWorkload = field(default_factory=SoakWorkload)
    fault_profile: str = "none"
    checkpoint_dir: str = "soak-checkpoint"
    resume: bool = False
    #: Stop once this absolute epoch count has completed (``None`` = no cap).
    epochs: int | None = None
    #: Stop once this many cumulative users (station-epochs) have been
    #: served (``None`` = no cap). Deterministic: both budget kinds stop
    #: straight and resumed runs at the same epoch.
    max_users: int | None = None
    #: Wall-clock budget for *this invocation* (``None`` = no cap). An
    #: operational limit, not an identity knob: runs cut by it stop at a
    #: timing-dependent epoch and are meant to be resumed.
    max_wall_seconds: float | None = None
    n_workers: int | None = 1
    shards: int | None = None
    #: Rewrite ``state.json`` every N epochs (metrics records append
    #: every epoch regardless; a final checkpoint always lands on exit).
    checkpoint_every: int = 1
    #: Write per-epoch ``telemetry.jsonl`` + ``health.json`` beside the
    #: checkpoint. A runtime knob, not identity: turning telemetry on or
    #: off cannot move a deterministic artifact by a byte.
    telemetry: bool = False
    #: SLO rules evaluated each epoch — :class:`~repro.obs.slo.SloSpec`
    #: instances or their compact string form (``goodput_bps<2e6``,
    #: ``trend:goodput_bps<-1e5@5!drain``). Any rule implies telemetry.
    slos: tuple = ()
    #: Capture cross-worker profiles and fold them into the manifest's
    #: ``profile`` section. Wall-domain only.
    profile: bool = False

    def __post_init__(self):
        if self.epochs is not None and self.epochs < 0:
            raise ValueError("epochs must be >= 0")
        if self.max_users is not None and self.max_users < 1:
            raise ValueError("max_users must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    def identity(self) -> dict:
        """The JSON payload whose hash names this run."""
        return {
            "kind": "soak",
            "workload": dataclasses.asdict(self.workload),
            "fault_profile": self.fault_profile,
        }


@dataclass
class SoakSummary:
    """What one invocation did (not an identity artifact: may differ
    between an interrupted leg and its resume — the checkpoint files are
    where identity is stated)."""

    checkpoint_dir: str
    config_hash: str
    epochs_completed: int
    epochs_this_run: int
    cumulative_users: int
    cumulative_frames: int
    total_goodput_bps: float
    total_useful_goodput_bps: float
    jain_fairness: float
    interrupted: bool
    wall_seconds: float
    #: Final watchdog verdict — ``ok`` / ``degraded`` / ``breached``
    #: (``ok`` when no watchdog ran).
    slo_status: str = "ok"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class _DrainSignals:
    """Install SIGINT/SIGTERM stop-flag handlers; restore on exit.

    Installation is best-effort (``signal.signal`` refuses outside the
    main thread — in-process test harnesses just skip it), and the
    previous handlers are always restored, so embedding a soak in a
    larger program never hijacks its signal disposition.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self):
        self.stop = False
        self._previous = {}

    def _handle(self, signum, frame):
        self.stop = True
        log.info("signal %d: draining after the current epoch", signum)

    def __enter__(self) -> "_DrainSignals":
        for sig in self._SIGNALS:
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except ValueError:  # not the main thread
                pass
        return self

    def __exit__(self, *exc):
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        return False


def _count_offered(workload: SoakWorkload, spec) -> int:
    """Offered downlink frames for the epoch (lazy count, cell 0 scaled).

    Streams the representative cell's merged arrival generators without
    ever holding them; the deployment's cells draw their own independent
    workloads, so this is the *offered-load estimate* the epoch record
    carries, not a replay of what the cells consumed.
    """
    per_cell = sum(1 for _ in iter_epoch_arrivals(workload, spec))
    return per_cell * workload.n_aps


_POOL_COUNTERS = ("runtime.pool_spawned", "runtime.pool_reused",
                  "runtime.ipc_result_bytes")


def _sample_pool_counters() -> dict:
    """Current pool/IPC counter values from the *ambient* registry.

    Real figures under ``--metrics`` (or a bench ``collecting()``
    session); zeros otherwise. Telemetry deliberately does not install
    its own registry: a live registry puts every parent-side timer and
    the per-chunk IPC re-pickling on the hot path, and the telemetry
    overhead budget the bench gates has no room for that. The epoch's
    wall record carries deltas of whatever the ambient session measures.
    """
    if not metrics_enabled():
        return dict.fromkeys(_POOL_COUNTERS, 0)
    reg = metrics()
    return {
        name: int(inst.value) if (inst := reg.get(name)) is not None else 0
        for name in _POOL_COUNTERS
    }


def _observe_epoch(config: SoakConfig, watchdog: SloWatchdog, breach_counter,
                   *, epoch: int, spec, epoch_agg, rolling, offered: int,
                   pool_deltas: dict, epoch_wall: float, cursor: int) -> None:
    """Append the epoch's telemetry record, evaluate SLOs, write health.

    The record's ``det`` namespace repeats the deterministic figures the
    epoch record carries (plus the per-epoch demotion/re-promotion
    counters and the fault-window occupancy — all pure functions of the
    workload and epoch index); ``wall`` holds everything the machine and
    execution geometry leak into. Appended *before* ``state.json``
    advances, the same ≤1-orphan crash discipline as ``metrics.jsonl``.
    """
    workload = config.workload
    det = {
        "stas_per_ap": spec.stas_per_ap,
        "frame_bytes": spec.frame_bytes,
        "frames_per_second": spec.frames_per_second,
        "offered_frames": offered,
        "transmissions": int(epoch_agg.transmissions),
        "collisions": int(epoch_agg.collisions),
        "dropped_frames": int(epoch_agg.dropped_frames),
        "goodput_bps": epoch_agg.total_goodput_bps(),
        "useful_goodput_bps": epoch_agg.total_useful_goodput_bps(),
        "busy_airtime_s": epoch_agg.busy_airtime_s(),
        "jain_fairness": epoch_agg.jain_fairness(),
        "rolling_goodput_bps": rolling.total_goodput_bps(),
        "demotions": int(epoch_agg.demotions),
        "repromotions": int(epoch_agg.repromotions),
        "fault_occupancy": fault_occupancy(
            schedule_position(config.fault_profile, epoch,
                              workload.epoch_duration),
            workload.epoch_duration,
        ),
    }
    wall = {
        "wall_seconds": epoch_wall,
        "frames_per_wall_s": (int(epoch_agg.transmissions) / epoch_wall
                              if epoch_wall > 0 else 0.0),
        "rss_mb": rss_mb(),
        "n_workers": config.n_workers,
        "shards": config.shards,
        "pool_spawned": pool_deltas["runtime.pool_spawned"],
        "pool_reused": pool_deltas["runtime.pool_reused"],
        "ipc_result_bytes": pool_deltas["runtime.ipc_result_bytes"],
    }
    append_telemetry_record(
        config.checkpoint_dir, make_record(epoch=epoch, det=det, wall=wall))
    breaches = watchdog.observe(epoch, det)
    write_health(
        config.checkpoint_dir,
        watchdog.health_payload(epoch=epoch, det=det,
                                epochs_completed=cursor),
    )
    if breaches:
        breach_counter.inc(len(breaches))
        rec = active_recorder()
        for breach in breaches:
            log.warning("SLO breach at epoch %d: %s (value %.6g, policy %s)",
                        epoch, breach.spec.describe(), breach.value,
                        breach.spec.policy)
            if rec is not None:
                rec.emit("serve", "slo_breach", **breach.to_dict())


def run_soak(config: SoakConfig) -> SoakSummary:
    """Run (or resume) a soak until a budget, a signal, or forever."""
    workload = config.workload
    identity = config.identity()
    run_hash = config_hash(identity)
    paths = state_paths(config.checkpoint_dir)
    # Any SLO rule needs the per-epoch deterministic sample, so rules
    # imply the telemetry stream they are evaluated over.
    telemetry_on = bool(config.telemetry or config.slos)
    watchdog = SloWatchdog(config.slos) if telemetry_on else None

    if config.resume:
        state = load_state(config.checkpoint_dir, identity=identity)
        cursor = int(state["next_epoch"])
        cumulative_users = int(state["cumulative_users"])
        cumulative_frames = int(state["cumulative_frames"])
        rolling = state["aggregate"]
        orphans = trim_epoch_records(config.checkpoint_dir, cursor)
        # The telemetry stream honours the same cursor: drop the ≤1
        # orphan a kill may have left, then rebuild the watchdog's
        # rolling-window history from what survived so a window rule
        # sees the same samples as an uninterrupted run.
        trim_telemetry_records(config.checkpoint_dir, cursor)
        if watchdog is not None:
            watchdog.seed_history(
                r["det"] for r in read_telemetry_records(config.checkpoint_dir)
            )
        log.info("resuming soak %s at epoch %d (%d users so far%s)",
                 run_hash, cursor, cumulative_users,
                 f", dropped {orphans} orphan record(s)" if orphans else "")
    else:
        if os.path.exists(paths["state"]):
            raise ValueError(
                f"checkpoint already exists at {paths['state']}; pass "
                "resume=True (--resume) to continue it, or use a fresh "
                "directory"
            )
        cursor = 0
        cumulative_users = 0
        cumulative_frames = 0
        rolling = DeploymentAggregate(track_stations=False)
        if telemetry_on:
            # A stale stream from an abandoned run in this directory
            # would shadow the fresh one; epoch 0 trims everything.
            trim_telemetry_records(config.checkpoint_dir, 0)
        log.info("starting soak %s in %s", run_hash, config.checkpoint_dir)

    reg = metrics()
    epochs_counter = reg.counter("serve.epochs")
    users_counter = reg.counter("serve.users")
    frames_counter = reg.counter("serve.frames")
    breach_counter = reg.counter("serve.slo_breaches")
    epoch_timer = reg.timer("serve.epoch")
    # Times the telemetry machinery itself (sampling, the record append,
    # watchdog evaluation, the health write) — under a ``--metrics`` or
    # bench session, serve.observe / serve.epoch is the paired, same-run
    # measurement of telemetry overhead the soak bench gates on.
    observe_timer = reg.timer("serve.observe")

    profiler = None
    prev_profiler = None
    if config.profile:
        prev_profiler = disable_profiling()  # save any ambient collector
        profiler = enable_profiling()

    start_wall = time.perf_counter()
    epochs_this_run = 0
    interrupted = False
    dirty = False  # epochs completed since the last state.json rewrite

    def checkpoint(next_epoch: int) -> None:
        save_state(
            config.checkpoint_dir,
            identity=identity,
            next_epoch=next_epoch,
            cumulative_users=cumulative_users,
            cumulative_frames=cumulative_frames,
            aggregate=rolling,
            schedule=schedule_position(
                config.fault_profile, next_epoch, workload.epoch_duration
            ),
        )
        write_manifest(
            paths["manifest"],
            kind="soak",
            seed=workload.seed,
            config=identity,
            wall_seconds=time.perf_counter() - start_wall,
            metrics={
                "epochs_completed": next_epoch,
                "cumulative_users": cumulative_users,
                "cumulative_frames": cumulative_frames,
            },
            profile=(profiler.to_manifest_section()
                     if profiler is not None else None),
        )

    try:
        with _DrainSignals() as drain:
            for spec in iter_epochs(workload, start=cursor):
                if config.epochs is not None and spec.index >= config.epochs:
                    break
                if (config.max_users is not None
                        and cumulative_users >= config.max_users):
                    break
                if (config.max_wall_seconds is not None
                        and time.perf_counter() - start_wall
                        >= config.max_wall_seconds):
                    interrupted = True
                    break
                if drain.stop:
                    interrupted = True
                    break

                plan = rolling_fault_plan(
                    config.fault_profile, spec.index, workload.epoch_duration
                )
                epoch_config = deployment_config(workload, spec,
                                                 extra_faults=plan)
                # Telemetry observes the epoch from the outside — the
                # simulation call below is byte-for-byte the same with
                # telemetry on or off (its deterministic counters ride
                # the DeploymentAggregate, not a shipped registry), so
                # turning it on cannot perturb what it measures.
                pool_before = (_sample_pool_counters() if telemetry_on
                               else {})
                epoch_t0 = time.perf_counter()
                with epoch_timer.time(), profile_capture("serve.epoch"):
                    _, epoch_agg = simulate_deployment(
                        epoch_config,
                        n_workers=config.n_workers,
                        use_cache=False,
                        shards=config.shards,
                        return_aggregate=True,
                    )
                epoch_wall = time.perf_counter() - epoch_t0
                offered = _count_offered(workload, spec)
                rolling.merge(epoch_agg)
                cursor = spec.index + 1
                cumulative_users += workload.n_aps * spec.stas_per_ap
                cumulative_frames += int(epoch_agg.transmissions)
                epochs_this_run += 1
                epochs_counter.inc()
                users_counter.inc(workload.n_aps * spec.stas_per_ap)
                frames_counter.inc(int(epoch_agg.transmissions))

                append_epoch_record(config.checkpoint_dir, {
                    "epoch": spec.index,
                    "seed": spec.seed,
                    "stas_per_ap": spec.stas_per_ap,
                    "frame_bytes": spec.frame_bytes,
                    "frames_per_second": spec.frames_per_second,
                    "offered_frames": offered,
                    "transmissions": int(epoch_agg.transmissions),
                    "collisions": int(epoch_agg.collisions),
                    "dropped_frames": int(epoch_agg.dropped_frames),
                    "goodput_bps": epoch_agg.total_goodput_bps(),
                    "useful_goodput_bps": epoch_agg.total_useful_goodput_bps(),
                    "busy_airtime_s": epoch_agg.busy_airtime_s(),
                    "jain_fairness": epoch_agg.jain_fairness(),
                    "rolling_goodput_bps": rolling.total_goodput_bps(),
                    "cumulative_users": cumulative_users,
                    "cumulative_frames": cumulative_frames,
                })
                dirty = True

                if telemetry_on:
                    with observe_timer.time():
                        pool_after = _sample_pool_counters()
                        _observe_epoch(
                            config, watchdog, breach_counter,
                            epoch=spec.index, spec=spec, epoch_agg=epoch_agg,
                            rolling=rolling, offered=offered,
                            pool_deltas={k: pool_after[k] - pool_before[k]
                                         for k in pool_after},
                            epoch_wall=epoch_wall, cursor=cursor,
                        )
                    if watchdog.wants_drain() and not drain.stop:
                        drain.stop = True
                        log.warning(
                            "SLO drain policy tripped at epoch %d: draining "
                            "after this checkpoint", spec.index)
                    if watchdog.wants_checkpoint() and dirty:
                        checkpoint(cursor)
                        dirty = False

                if dirty and epochs_this_run % config.checkpoint_every == 0:
                    checkpoint(cursor)
                    dirty = False
                log.info(
                    "epoch %d: %d STAs/AP, %d tx, goodput %.2f Mbit/s "
                    "(%d users cumulative)",
                    spec.index, spec.stas_per_ap, int(epoch_agg.transmissions),
                    epoch_agg.total_goodput_bps() / 1e6, cumulative_users,
                )

        # The final checkpoint always lands, whatever ended the loop — a
        # budget, a drain signal, or a caller-side wall clock.
        if dirty or epochs_this_run == 0 or interrupted:
            checkpoint(cursor)
    finally:
        if config.profile:
            if prev_profiler is not None:
                enable_profiling(prev_profiler)
            else:
                disable_profiling()
    wall = time.perf_counter() - start_wall
    log.info("soak %s: %d epoch(s) this run, %d total, %d users, %s",
             run_hash, epochs_this_run, cursor, cumulative_users,
             "interrupted (resumable)" if interrupted else "complete")
    return SoakSummary(
        checkpoint_dir=config.checkpoint_dir,
        config_hash=run_hash,
        epochs_completed=cursor,
        epochs_this_run=epochs_this_run,
        cumulative_users=cumulative_users,
        cumulative_frames=cumulative_frames,
        total_goodput_bps=rolling.total_goodput_bps(),
        total_useful_goodput_bps=rolling.total_useful_goodput_bps(),
        jain_fairness=rolling.jain_fairness(),
        interrupted=interrupted,
        wall_seconds=wall,
        slo_status=watchdog.status() if watchdog is not None else "ok",
    )
