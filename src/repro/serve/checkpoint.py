"""Atomic soak checkpoints: aggregate + epoch cursor + schedule position.

A checkpoint directory holds three files:

``state.json``
    The *deterministic* resume state, rewritten atomically after every
    epoch (``.tmp`` + ``os.replace``): schema version, the workload
    payload and its :func:`~repro.obs.manifest.config_hash`, the fault
    profile and rolling-schedule position, the next epoch cursor,
    cumulative user/frame counters, and the rolling
    :class:`~repro.net.aggregate.DeploymentAggregate` serialised through
    its exact JSON form. **No timestamps, worker counts, or shard counts
    live here** — the file is a pure function of (workload, fault
    profile, epochs completed), which is exactly the kill/resume identity
    contract: byte-compare ``state.json`` of an interrupted-and-resumed
    run against an uninterrupted one and they must be equal.

``metrics.jsonl``
    One JSON record per completed epoch, append-only, deterministic for
    the same reason. The epoch record is appended *before* ``state.json``
    advances, so a hard kill between the two leaves at most one record
    ahead of the cursor; :func:`trim_epoch_records` drops such orphans on
    resume, restoring the exact prefix an uninterrupted run would have.

``manifest.json``
    A :class:`~repro.obs.manifest.RunManifest` provenance record,
    refreshed each epoch. Wall/CPU timings legitimately differ between
    runs; its ``config_hash`` field must not, and the identity tests pin
    that.
"""

from __future__ import annotations

import json
import os

from repro.net.aggregate import DeploymentAggregate
from repro.obs.manifest import config_hash

__all__ = [
    "CHECKPOINT_SCHEMA",
    "STATE_FILE",
    "METRICS_FILE",
    "MANIFEST_FILE",
    "save_state",
    "load_state",
    "append_epoch_record",
    "read_epoch_records",
    "trim_epoch_records",
    "state_paths",
]

CHECKPOINT_SCHEMA = 1

STATE_FILE = "state.json"
METRICS_FILE = "metrics.jsonl"
MANIFEST_FILE = "manifest.json"


def state_paths(directory) -> dict:
    """Absolute paths of the three checkpoint files."""
    directory = os.fspath(directory)
    return {
        "state": os.path.join(directory, STATE_FILE),
        "metrics": os.path.join(directory, METRICS_FILE),
        "manifest": os.path.join(directory, MANIFEST_FILE),
    }


def save_state(directory, *, identity: dict, next_epoch: int,
               cumulative_users: int, cumulative_frames: int,
               aggregate: DeploymentAggregate, schedule: dict) -> str:
    """Atomically persist the resume state after an epoch completes.

    ``identity`` is the run's identity payload (workload + fault
    profile); its hash is stored alongside so resume can refuse a
    checkpoint minted by a different run. The write is crash-safe: the
    payload lands in ``state.json.tmp`` first and is renamed over the
    live file in one :func:`os.replace`, so a kill at any instant leaves
    either the old complete state or the new complete state — never a
    torn file.
    """
    os.makedirs(directory, exist_ok=True)
    path = state_paths(directory)["state"]
    payload = {
        "schema": CHECKPOINT_SCHEMA,  # legacy name, kept for old readers
        "schema_version": CHECKPOINT_SCHEMA,
        "identity": identity,
        "config_hash": config_hash(identity),
        "next_epoch": int(next_epoch),
        "cumulative_users": int(cumulative_users),
        "cumulative_frames": int(cumulative_frames),
        "schedule": schedule,
        "aggregate": aggregate.to_dict(),
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_state(directory, *, identity: dict | None = None) -> dict:
    """Load a checkpoint; restore the aggregate; verify run identity.

    Returns the ``state.json`` payload with ``aggregate`` replaced by a
    live :class:`DeploymentAggregate`. When ``identity`` is given, the
    stored ``config_hash`` must match — resuming under a different
    workload or fault profile would silently fork the run's semantics,
    so it is an error, not a warning.
    """
    path = state_paths(directory)["state"]
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no checkpoint at {path}; start a fresh run or point "
            "--checkpoint at an existing soak directory"
        )
    with open(path, encoding="utf-8") as handle:
        state = json.load(handle)
    # ``schema_version`` is the canonical field; old checkpoints carry
    # only the legacy ``schema`` key, and absent-entirely is accepted so
    # formats can evolve without stranding resumable runs. Whichever of
    # the two is present must match — a mismatch in either means the
    # file was written by an incompatible version.
    for key in ("schema_version", "schema"):
        version = state.get(key)
        if version is not None and version != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint schema {version!r} != {CHECKPOINT_SCHEMA}"
            )
    if identity is not None:
        expected = config_hash(identity)
        if state.get("config_hash") != expected:
            raise ValueError(
                "checkpoint identity mismatch: the checkpoint was written "
                f"by config_hash={state.get('config_hash')}, this run is "
                f"{expected}; refusing to resume a different run"
            )
    state["aggregate"] = DeploymentAggregate.from_dict(state["aggregate"])
    return state


def append_epoch_record(directory, record: dict) -> None:
    """Append one epoch's metrics record (fsynced before returning).

    Called *before* :func:`save_state` advances the cursor — the ordering
    that makes a hard kill recoverable: the record file may run at most
    one epoch ahead of the state, never behind it.
    """
    os.makedirs(directory, exist_ok=True)
    path = state_paths(directory)["metrics"]
    if "schema_version" not in record:
        record = dict(record, schema_version=CHECKPOINT_SCHEMA)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_epoch_records(directory):
    """Yield epoch records in file order (streaming, constant memory)."""
    path = state_paths(directory)["metrics"]
    if not os.path.exists(path):
        return
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def trim_epoch_records(directory, next_epoch: int) -> int:
    """Drop records at or past the cursor; return how many were dropped.

    Streaming rewrite (line in, line out, then one atomic rename): a
    kill that landed between the record append and the state rewrite
    left exactly one orphan record, and a resumed run must not double it.
    """
    path = state_paths(directory)["metrics"]
    if not os.path.exists(path):
        return 0
    dropped = 0
    tmp = path + ".tmp"
    with open(path, encoding="utf-8") as src, \
            open(tmp, "w", encoding="utf-8") as dst:
        for line in src:
            stripped = line.strip()
            if not stripped:
                continue
            if json.loads(stripped)["epoch"] >= next_epoch:
                dropped += 1
                continue
            dst.write(stripped + "\n")
        dst.flush()
        os.fsync(dst.fileno())
    os.replace(tmp, path)
    return dropped
