"""Sequential ACK: NAV arithmetic for multi-receiver acknowledgements (§4.2).

All receivers of a Carpool frame decode it at (nearly) the same instant;
simultaneous ACKs would collide at the AP. Carpool serialises them with
modified NAV values:

* the data frame reserves the medium for the whole sequence:
      NAV_data = t_payload + N·(t_ACK + t_SIFS)
* the receiver of subframe i waits out the earlier ACKs:
      NAV_i = (i−1)·(t_ACK + t_SIFS)          (1-based i)
* the j-th ACK advertises the remaining sequence:
      NAV of ACK_j = NAV_{N−j+1}, so the last ACK carries NAV 0 — exactly
      a legacy ACK.

The AP matches received ACKs back to subframes by their arrival slots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AckTiming", "SequentialAckPlan"]


@dataclass(frozen=True)
class AckTiming:
    """Durations involved in the ACK sequence (seconds)."""

    ack_duration: float
    sifs: float

    @property
    def slot(self) -> float:
        """One ACK slot: SIFS gap plus the ACK itself."""
        return self.ack_duration + self.sifs


class SequentialAckPlan:
    """The timetable of a Carpool frame's ACK sequence.

    Time zero is the end of the data frame.
    """

    def __init__(self, num_receivers: int, timing: AckTiming):
        if num_receivers < 1:
            raise ValueError("need at least one receiver")
        self.num_receivers = num_receivers
        self.timing = timing

    def nav_data(self, payload_duration: float) -> float:
        """NAV carried by the data frame (Eq. 1)."""
        return payload_duration + self.num_receivers * self.timing.slot

    def receiver_nav(self, position: int) -> float:
        """NAV_i set by the receiver of subframe ``position`` (0-based) (Eq. 2)."""
        self._check(position)
        return position * self.timing.slot

    def ack_nav(self, position: int) -> float:
        """NAV carried *inside* the ACK of subframe ``position`` (0-based).

        The j-th ACK (1-based) sets NAV_{N−j+1}; the last ACK's NAV is 0.
        """
        self._check(position)
        remaining = self.num_receivers - (position + 1)
        return remaining * self.timing.slot

    def ack_start_time(self, position: int) -> float:
        """When the ACK of subframe ``position`` starts, after the data frame."""
        self._check(position)
        return self.timing.sifs + position * self.timing.slot

    def ack_end_time(self, position: int) -> float:
        """When the ACK of subframe ``position`` ends."""
        return self.ack_start_time(position) + self.timing.ack_duration

    def sequence_duration(self) -> float:
        """Total time from end of data to end of the last ACK."""
        return self.ack_end_time(self.num_receivers - 1)

    def match_ack_to_subframe(self, arrival_time: float, tolerance: float = 2e-6) -> int:
        """Identify which subframe an ACK belongs to from its arrival time.

        Mirrors the paper's timestamp matching: propagation/processing
        deltas are far smaller than an ACK slot. Raises ``ValueError`` if
        the timestamp matches no slot.
        """
        for position in range(self.num_receivers):
            if abs(arrival_time - self.ack_start_time(position)) <= tolerance:
                return position
        raise ValueError(f"ACK at t={arrival_time} matches no slot")

    def _check(self, position: int) -> None:
        if not 0 <= position < self.num_receivers:
            raise ValueError(
                f"position {position} out of range 0..{self.num_receivers - 1}"
            )
