"""Backward compatibility with legacy 802.11 (§4.3).

Three pieces make Carpool deployable next to legacy gear:

* **AP association** — stations advertise their supported protocols when
  associating; the AP records capabilities and speaks Carpool only to
  stations that negotiated it (:class:`AssociationTable`).
* **Frame classification** — a Carpool node hearing a frame must tell
  Carpool PLCP from legacy PLCP. In a legacy frame the symbol right after
  the preamble is a SIG (valid RATE bits + even parity); in a Carpool
  frame that slot holds the A-HDR, which is convolutionally-coded Bloom
  bits and fails the SIG checks — while the symbol *after* the two A-HDR
  symbols is the first subframe's SIG. :func:`classify_frame` implements
  exactly this test.
* **Dual-mode reception** — :class:`DualModeReceiver` classifies and then
  runs the matching receive pipeline, so a Carpool STA decodes legacy
  frames (including legacy MAC aggregation) without confusion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.ahdr import AHDR_SYMBOLS
from repro.core.mac_address import MacAddress
from repro.core.receiver import CarpoolReceiver, CarpoolRxResult
from repro.phy.channel_estimation import equalize
from repro.phy.frontend import acquire
from repro.phy.ofdm import split_symbol
from repro.phy.pilots import track_and_compensate
from repro.phy.sig import SigDecodeError, decode_sig
from repro.phy.transceiver import PhyReceiver, RxResult, SIG_SYMBOL_OFFSET

__all__ = [
    "FrameFormat",
    "Capability",
    "AssociationTable",
    "classify_frame",
    "DualModeReceiver",
]


class FrameFormat(enum.Enum):
    """What kind of PLCP a reception carries."""
    LEGACY = "legacy"
    CARPOOL = "carpool"
    UNDECODABLE = "undecodable"


class Capability(enum.Flag):
    """Protocol support a station advertises at association time."""

    DOT11A = enum.auto()
    DOT11N = enum.auto()
    CARPOOL = enum.auto()


@dataclass
class AssociationTable:
    """The AP's view of who speaks what (§4.3, "AP Association")."""

    _entries: dict = field(default_factory=dict)

    def associate(self, mac: MacAddress, capabilities: Capability) -> None:
        """Record a station's negotiated capability set."""
        if not capabilities & (Capability.DOT11A | Capability.DOT11N):
            raise ValueError("station must support at least one legacy protocol")
        self._entries[mac] = capabilities

    def disassociate(self, mac: MacAddress) -> None:
        """Forget a station (idempotent)."""
        self._entries.pop(mac, None)

    def capabilities(self, mac: MacAddress) -> Capability:
        """A station's recorded capabilities; KeyError if unknown."""
        if mac not in self._entries:
            raise KeyError(f"{mac} is not associated")
        return self._entries[mac]

    def supports_carpool(self, mac: MacAddress) -> bool:
        """Did this station negotiate Carpool? (False for unknown stations.)"""
        return bool(self._entries.get(mac, Capability(0)) & Capability.CARPOOL)

    def carpool_stations(self) -> list:
        """All stations that negotiated Carpool."""
        return [mac for mac, caps in self._entries.items() if caps & Capability.CARPOOL]

    def legacy_stations(self) -> list:
        """All stations running legacy protocols only."""
        return [mac for mac, caps in self._entries.items()
                if not caps & Capability.CARPOOL]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mac: MacAddress) -> bool:
        return mac in self._entries


def _sig_decodes(used_symbol: np.ndarray, channel: np.ndarray, pilot_index: int) -> bool:
    eq = equalize(used_symbol, channel)
    eq, _ = track_and_compensate(eq, pilot_index)
    points, _ = split_symbol(eq)
    try:
        decode_sig(points)
    except SigDecodeError:
        return False
    return True


def classify_frame(received_symbols: np.ndarray) -> FrameFormat:
    """Decide whether a reception is a legacy or a Carpool frame.

    Uses the §4.3 observation: legacy PLCP puts a SIG directly after the
    preamble, Carpool puts the two-symbol A-HDR there and the first
    subframe's SIG after it. Random payload or noise in the probed slots
    fails both tests → UNDECODABLE.
    """
    received_symbols = np.asarray(received_symbols, dtype=np.complex128)
    if received_symbols.shape[0] < SIG_SYMBOL_OFFSET + 1:
        return FrameFormat.UNDECODABLE
    front = acquire(received_symbols)
    channel = front.channel_estimate
    derotated = front.derotated

    legacy_sig = _sig_decodes(derotated[SIG_SYMBOL_OFFSET], channel, pilot_index=0)
    if legacy_sig:
        return FrameFormat.LEGACY

    carpool_sig_slot = SIG_SYMBOL_OFFSET + AHDR_SYMBOLS
    if received_symbols.shape[0] > carpool_sig_slot and _sig_decodes(
        derotated[carpool_sig_slot], channel, pilot_index=AHDR_SYMBOLS
    ):
        return FrameFormat.CARPOOL
    return FrameFormat.UNDECODABLE


@dataclass
class DualModeResult:
    """Outcome of a dual-mode reception."""

    format: FrameFormat
    legacy: RxResult | None = None
    carpool: CarpoolRxResult | None = None


class DualModeReceiver:
    """A Carpool station that also decodes legacy frames (§4.3)."""

    def __init__(self, mac: MacAddress, coded: bool = True):
        self.mac = mac
        self.coded = coded
        self._legacy = PhyReceiver(coded=coded)
        self._carpool = CarpoolReceiver(mac, coded=coded)

    def receive(self, received_symbols: np.ndarray) -> DualModeResult:
        """Classify the frame, then decode it with the matching pipeline."""
        fmt = classify_frame(received_symbols)
        if fmt is FrameFormat.LEGACY:
            return DualModeResult(fmt, legacy=self._legacy.receive(received_symbols))
        if fmt is FrameFormat.CARPOOL:
            return DualModeResult(fmt, carpool=self._carpool.receive(received_symbols))
        return DualModeResult(fmt)
