"""Carpool over MU-MIMO (§8 "Extension on MIMO", Fig. 18).

802.11ac MU-MIMO serves at most as many streams per transmission as the
AP has antennas. Carpool's extension aggregates *multiple precoder groups*
behind one shared legacy preamble and A-HDR: a two-antenna AP with data
for four stations sends

    stream 1: [L-Pre, A-HDR, VHT(A,B), Subframe A, VHT(C,D), Subframe C]
    stream 2: [L-Pre, A-HDR, VHT(A,B), Subframe B, VHT(C,D), Subframe D]

where the (A,B) section is zero-forcing-precoded for stations A and B and
the (C,D) section for C and D. The A-HDR Bloom filter indexes *groups*:
A and B hash under position 0, C and D under position 1 (the paper's
"indices of A,B are 1 and C,D are 2", zero-based here). Within its group a
station identifies its stream from the per-stream VHT training — ZF makes
foreign streams arrive nulled.

The legacy preamble and A-HDR are broadcast unprecoded (antenna 0), so
every station — including bystanders — can detect the frame and check the
filter exactly as in SISO Carpool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ahdr import MAX_RECEIVERS, encode_ahdr
from repro.core.frame import SubframeSpec
from repro.core.mac_address import MacAddress
from repro.bloom.coded import PositionalBloomFilter
from repro.core.ahdr import decode_ahdr, AHDR_SYMBOLS
from repro.phy import payload_codec
from repro.phy.channel_estimation import equalize, estimate_from_known_symbol
from repro.phy.constants import pilot_values
from repro.phy.frontend import acquire
from repro.phy.mimo import MimoChannel, zero_forcing_precoder
from repro.phy.ofdm import assemble_symbol, split_symbol
from repro.phy.pilots import track_and_compensate
from repro.phy.preamble import LTF_SEQUENCE, ltf_symbol, stf_symbol
from repro.phy.sig import SigDecodeError, SigField, decode_sig, encode_sig
from repro.phy.transceiver import PREAMBLE_SYMBOLS
from repro.util.rng import RngStream

__all__ = [
    "GroupLayout",
    "MuMimoFrameLayout",
    "MuMimoTxFrame",
    "MuMimoCarpoolTransmitter",
    "MuMimoCarpoolReceiver",
    "MuMimoRxResult",
    "transmissions_required",
]


def transmissions_required(num_stations: int, num_antennas: int,
                           carpool: bool) -> int:
    """How many channel accesses serve ``num_stations`` single-antenna users.

    Plain 802.11ac MU-MIMO fits ``num_antennas`` streams per access;
    Carpool-MU-MIMO fits ``num_antennas × MAX_RECEIVERS`` per access
    (groups share the preamble, the Bloom filter indexes up to 8 groups).
    """
    if num_stations < 1 or num_antennas < 1:
        raise ValueError("need at least one station and one antenna")
    per_access = num_antennas * (MAX_RECEIVERS if carpool else 1)
    return -(-num_stations // per_access)


@dataclass
class GroupLayout:
    """Symbol spans of one precoder group inside the frame."""

    users: list  # MacAddress, stream order
    vht_start: int  # absolute symbol index of the first VHT training symbol
    sig_index: int  # per-stream SIG symbol (one OFDM symbol, all streams)
    payload_start: int
    n_payload_symbols: int  # max over the group's streams

    @property
    def num_streams(self) -> int:
        """Beamformed streams in this group."""
        return len(self.users)

    @property
    def end(self) -> int:
        """One past this group's last symbol."""
        return self.payload_start + self.n_payload_symbols


@dataclass
class MuMimoFrameLayout:
    """The group structure a receiver needs to walk the frame.

    In a full implementation this rides in an extended SIG; we carry it as
    explicit metadata since the extension's contribution is the frame
    structure, not its header encoding.
    """

    groups: list = field(default_factory=list)
    n_symbols: int = 0


@dataclass
class MuMimoTxFrame:
    """Per-antenna symbol streams plus ground truth."""

    antenna_streams: np.ndarray  # (num_antennas, n_symbols, 52)
    layout: MuMimoFrameLayout
    specs: list
    bit_matrices: dict  # MacAddress → (n_payload, n_cbps)

    @property
    def n_symbols(self) -> int:
        """Frame length in OFDM symbols."""
        return self.antenna_streams.shape[1]


class MuMimoCarpoolTransmitter:
    """Builds Carpool MU-MIMO frames with zero-forcing precoding.

    Args:
        channel: The downlink MIMO channel (the AP's CSI — assumed ideal,
            as the extension's argument is structural).
        coded: Payload coding mode, as in the SISO transmitter.
    """

    def __init__(self, channel: MimoChannel, coded: bool = True):
        self.channel = channel
        self.coded = coded

    @property
    def num_antennas(self) -> int:
        """AP transmit antennas (streams per precoder group)."""
        return self.channel.num_antennas

    def build_frame(self, specs: list) -> MuMimoTxFrame:
        """Group specs into ≤num_antennas streams per precoder group and build
        the Fig. 18 frame (shared preamble + A-HDR, per-group VHT + payload)."""
        if not specs:
            raise ValueError("need at least one subframe")
        groups = [
            specs[i : i + self.num_antennas]
            for i in range(0, len(specs), self.num_antennas)
        ]
        if len(groups) > MAX_RECEIVERS:
            raise ValueError(
                f"at most {MAX_RECEIVERS} precoder groups per Carpool frame"
            )
        receivers = [s.receiver for s in specs]
        if len(set(receivers)) != len(receivers):
            raise ValueError("duplicate receiver")

        # --- pass 1: layout ------------------------------------------------
        layout = MuMimoFrameLayout()
        cursor = PREAMBLE_SYMBOLS + AHDR_SYMBOLS
        bit_matrices = {}
        for group in groups:
            lengths = []
            for spec in group:
                matrix = payload_codec.encode_payload_bits(
                    spec.payload, spec.mcs, self.coded
                )
                bit_matrices[spec.receiver] = matrix
                lengths.append(matrix.shape[0])
            n_payload = max(lengths)
            vht_start = cursor
            sig_index = vht_start + len(group)
            payload_start = sig_index + 1
            layout.groups.append(
                GroupLayout(
                    users=[s.receiver for s in group],
                    vht_start=vht_start,
                    sig_index=sig_index,
                    payload_start=payload_start,
                    n_payload_symbols=n_payload,
                )
            )
            cursor = payload_start + n_payload
        layout.n_symbols = cursor

        # --- pass 2: build per-antenna streams ------------------------------
        streams = np.zeros((self.num_antennas, cursor, 52), dtype=np.complex128)
        # Shared legacy preamble + A-HDR, broadcast from antenna 0.
        user_indices = {spec.receiver: i for i, spec in enumerate(specs)}
        shared = [stf_symbol(), stf_symbol(), ltf_symbol(), ltf_symbol()]
        ahdr = self._group_indexed_ahdr(groups)
        for i, row in enumerate(shared):
            streams[0, i] = row
        streams[0, PREAMBLE_SYMBOLS : PREAMBLE_SYMBOLS + AHDR_SYMBOLS] = ahdr

        for group_layout, group in zip(layout.groups, groups):
            user_ids = [user_indices[spec.receiver] for spec in group]
            precoder = zero_forcing_precoder(self.channel, user_ids)
            n_streams = len(group)
            # VHT training: one symbol per stream, LTF sequence beamed to
            # that stream alone.
            for s in range(n_streams):
                symbol_index = group_layout.vht_start + s
                for a in range(self.num_antennas):
                    streams[a, symbol_index] = precoder[a, s] * LTF_SEQUENCE
            # SIG + payload, all streams in parallel.
            pilot_index = AHDR_SYMBOLS + (group_layout.sig_index - PREAMBLE_SYMBOLS - AHDR_SYMBOLS)
            for s, spec in enumerate(group):
                sig_points = encode_sig(
                    SigField(mcs=spec.mcs, length_bytes=len(spec.payload))
                )
                sig_used = assemble_symbol(sig_points, pilot_values(pilot_index))
                for a in range(self.num_antennas):
                    streams[a, group_layout.sig_index] += precoder[a, s] * sig_used

                matrix = bit_matrices[spec.receiver]
                payload_symbols = payload_codec.bits_to_symbols(
                    matrix, spec.mcs, first_pilot_index=pilot_index + 1
                )
                for t in range(matrix.shape[0]):
                    symbol_index = group_layout.payload_start + t
                    for a in range(self.num_antennas):
                        streams[a, symbol_index] += precoder[a, s] * payload_symbols[t]

        return MuMimoTxFrame(
            antenna_streams=streams,
            layout=layout,
            specs=list(specs),
            bit_matrices=bit_matrices,
        )

    @staticmethod
    def _group_indexed_ahdr(groups: list) -> np.ndarray:
        """A-HDR where every member of group g hashes under position g."""
        pbf_receivers = []
        # encode_ahdr inserts receiver i at position i; emulate group
        # indexing by building the filter directly.
        pbf = PositionalBloomFilter()
        for position, group in enumerate(groups):
            for spec in group:
                pbf.insert(bytes(spec.receiver), position)
        # Re-encode via the shared codec path.
        from repro.core import ahdr as ahdr_module
        from repro.phy.coding import RATE_1_2, conv_encode
        from repro.phy.interleaver import interleave
        from repro.phy.modulation import BPSK

        coded = conv_encode(pbf.to_bits(), RATE_1_2)
        symbols = np.empty((AHDR_SYMBOLS, 52), dtype=np.complex128)
        for i in range(AHDR_SYMBOLS):
            chunk = coded[i * 48 : (i + 1) * 48]
            chunk = interleave(chunk, BPSK.bits_per_symbol)
            symbols[i] = assemble_symbol(BPSK.modulate(chunk), pilot_values(i))
        return symbols


@dataclass
class MuMimoRxResult:
    """What one station decoded from a MU-MIMO Carpool frame."""

    matched_groups: list
    stream_index: int | None = None
    sig: SigField | None = None
    payload: bytes | None = None
    bit_matrix: np.ndarray | None = None
    error: str | None = None


class MuMimoCarpoolReceiver:
    """A single-antenna station's receive pipeline for MU-MIMO Carpool."""

    def __init__(self, mac: MacAddress, coded: bool = True):
        self.mac = mac
        self.coded = coded

    def receive(self, received: np.ndarray, layout: MuMimoFrameLayout) -> MuMimoRxResult:
        """Decode this station's subframe from its received symbol stream.

        Args:
            received: (n_symbols, 52) — what this station's antenna heard.
            layout: The frame's group structure (extended-SIG metadata).
        """
        received = np.asarray(received, dtype=np.complex128)
        front = acquire(received)
        derotated = front.derotated
        legacy_channel = front.channel_estimate

        ahdr_eq = np.empty((AHDR_SYMBOLS, 52), dtype=np.complex128)
        for i in range(AHDR_SYMBOLS):
            eq = equalize(derotated[PREAMBLE_SYMBOLS + i], legacy_channel)
            eq, _ = track_and_compensate(eq, i)
            ahdr_eq[i] = eq
        bloom = decode_ahdr(ahdr_eq)

        matched = [
            g for g in range(len(layout.groups))
            if bloom.matches(bytes(self.mac), g)
        ]
        result = MuMimoRxResult(matched_groups=matched)
        if not matched:
            return result

        group = layout.groups[matched[0]]
        # Effective per-stream channels from the VHT training.
        effective = []
        for s in range(group.num_streams):
            est = estimate_from_known_symbol(
                derotated[group.vht_start + s], LTF_SEQUENCE
            )
            effective.append(est)
        powers = [float(np.nanmean(np.abs(h) ** 2)) for h in effective]
        own = int(np.argmax(powers))
        # ZF nulls foreign streams: require a clear margin before trusting.
        others = [p for i, p in enumerate(powers) if i != own]
        if others and max(others) > 0.5 * powers[own]:
            result.error = "ambiguous stream identification"
            return result
        result.stream_index = own
        h_own = effective[own]

        pilot_index = AHDR_SYMBOLS + (group.sig_index - PREAMBLE_SYMBOLS - AHDR_SYMBOLS)
        sig_eq = equalize(derotated[group.sig_index], h_own)
        sig_eq, _ = track_and_compensate(sig_eq, pilot_index)
        sig_points, _ = split_symbol(sig_eq)
        try:
            sig = decode_sig(sig_points)
        except SigDecodeError as exc:
            result.error = f"SIG: {exc}"
            return result
        result.sig = sig

        n_payload = payload_codec.num_payload_symbols(
            sig.length_bytes, sig.mcs, self.coded
        )
        if group.payload_start + n_payload > derotated.shape[0]:
            result.error = "SIG length overruns frame"
            return result
        bit_rows = []
        for t in range(n_payload):
            eq = equalize(derotated[group.payload_start + t], h_own)
            eq, _ = track_and_compensate(eq, pilot_index + 1 + t)
            points, _ = split_symbol(eq)
            bit_rows.append(sig.mcs.modulation.demodulate(points))
        bit_matrix = np.stack(bit_rows)
        result.bit_matrix = bit_matrix
        result.payload = payload_codec.decode_payload_bits(
            bit_matrix, sig.length_bytes, sig.mcs, self.coded
        )
        return result
