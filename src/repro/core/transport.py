"""A reliable multi-receiver link layer over the Carpool PHY.

This is the full §3 architecture (Fig. 2) running end to end in one
object: the AP queues MSDUs per station, packs them into FCS-protected
MPDU trains, carpools the trains into one PHY frame, pushes it through
the channel; every station runs the Carpool receive pipeline, salvages
intact MPDUs, and answers with a BlockAck in its sequential-ACK slot; the
AP reconciles the BlockAcks and retransmits exactly what was lost, until
every MSDU is delivered or the retry budget runs out.

It exists to prove the pieces compose — the MAC *simulator* is the tool
for performance numbers; this is the tool for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.frame import CarpoolTransmitter, SubframeSpec
from repro.core.mac_address import MacAddress
from repro.core.mac_payload import pack_mpdus, unpack_mpdus
from repro.core.receiver import CarpoolReceiver
from repro.mac.block_ack import BlockAck, ReorderScoreboard, missing_sequences
from repro.mac.frame_formats import DataFrame
from repro.phy.mcs import Mcs, mcs_by_name

__all__ = ["CarpoolLink", "DeliveryReport", "StationEndpoint"]

_MAX_MPDUS_PER_SUBFRAME = 8
_SUBFRAME_BYTE_BUDGET = 4000


@dataclass
class DeliveryReport:
    """Outcome of :meth:`CarpoolLink.run`."""

    delivered: dict = field(default_factory=dict)  # station → [payload bytes]
    transmissions: int = 0
    retransmitted_mpdus: int = 0
    undelivered: int = 0

    def all_delivered(self) -> bool:
        """True when nothing remained undelivered."""
        return self.undelivered == 0


class StationEndpoint:
    """One station's receive side: Carpool RX, scoreboard, reorder buffer.

    As in real 802.11 BlockAck operation, MPDUs that arrive ahead of a
    missing sequence number wait in the reorder buffer; delivery to the
    upper layer is strictly in sequence order.
    """

    def __init__(self, mac: MacAddress, start_sequence: int = 0):
        self.mac = mac
        self.receiver = CarpoolReceiver(mac, coded=True)
        self.scoreboard = ReorderScoreboard(start_sequence)
        self.delivered: list = []
        self._buffer: dict = {}
        self._next_expected = start_sequence

    def process(self, received_symbols) -> BlockAck | None:
        """Decode one Carpool frame; returns the BlockAck to send, or
        None when the frame carried nothing for this station."""
        result = self.receiver.receive(received_symbols)
        if not result.subframes:
            return None
        for subframe in result.subframes:
            frames, _, _ = unpack_mpdus(subframe.payload)
            for frame in frames:
                if frame.receiver != self.mac:
                    continue  # an A-HDR false positive's subframe
                self.scoreboard.mark_received(frame.sequence)
                if frame.sequence not in self._buffer:
                    self._buffer[frame.sequence] = frame.payload
        self._release_in_order()
        return self.scoreboard.to_block_ack()

    def _release_in_order(self) -> None:
        while self._next_expected in self._buffer:
            self.delivered.append(self._buffer.pop(self._next_expected))
            self._next_expected = (self._next_expected + 1) % 4096


class CarpoolLink:
    """AP-side reliable delivery to up to eight stations.

    Args:
        channel: Object with ``transmit(symbols) -> symbols`` (e.g.
            :class:`repro.channel.ChannelModel`).
        stations: The stations to serve.
        mcs: Payload MCS for every subframe.
        max_rounds: Retry budget (channel accesses).
    """

    def __init__(self, channel, stations: list, mcs: Mcs | None = None,
                 max_rounds: int = 8, ap: MacAddress | None = None,
                 bssid: MacAddress | None = None):
        if not stations:
            raise ValueError("need at least one station")
        self.channel = channel
        self.mcs = mcs or mcs_by_name("QAM16-1/2")
        self.max_rounds = max_rounds
        self.ap = ap or MacAddress.from_int(0x0FFFFF)
        self.bssid = bssid or self.ap
        self.endpoints = {mac: StationEndpoint(mac) for mac in stations}
        self.transmitter = CarpoolTransmitter(coded=True)
        self._pending: dict = {mac: [] for mac in stations}
        self._next_seq: dict = {mac: 0 for mac in stations}

    def send(self, station: MacAddress, payload: bytes) -> None:
        """Queue one MSDU for a station."""
        if station not in self._pending:
            raise KeyError(f"{station} is not served by this link")
        seq = self._next_seq[station]
        self._next_seq[station] = (seq + 1) % 4096
        self._pending[station].append(
            DataFrame(receiver=station, transmitter=self.ap, bssid=self.bssid,
                      payload=payload, sequence=seq)
        )

    def _take_window(self, station: MacAddress) -> list:
        """Head-of-queue MPDUs that fit one subframe."""
        window = []
        nbytes = 0
        for frame in self._pending[station]:
            cost = len(frame.to_bytes()) + 4
            if window and (
                len(window) >= _MAX_MPDUS_PER_SUBFRAME
                or nbytes + cost > _SUBFRAME_BYTE_BUDGET
            ):
                break
            window.append(frame)
            nbytes += cost
        return window

    def run(self) -> DeliveryReport:
        """Drive rounds of transmit → BlockAcks → retransmit to drain the
        queues (or exhaust the retry budget)."""
        report = DeliveryReport()
        for _ in range(self.max_rounds):
            windows = {
                mac: self._take_window(mac)
                for mac in self._pending
                if self._pending[mac]
            }
            windows = {mac: frames for mac, frames in windows.items() if frames}
            if not windows:
                break
            specs = [
                SubframeSpec(mac, pack_mpdus(frames), self.mcs)
                for mac, frames in windows.items()
            ]
            tx_frame = self.transmitter.build_frame(specs)
            received = self.channel.transmit(tx_frame.symbols)
            report.transmissions += 1

            for mac, frames in windows.items():
                block_ack = self.endpoints[mac].process(received)
                sent = [f.sequence for f in frames]
                if block_ack is None:
                    resend = sent  # even the A-HDR/SIG walk failed
                else:
                    resend = missing_sequences(block_ack, sent)
                report.retransmitted_mpdus += len(resend)
                keep = set(resend)
                self._pending[mac] = (
                    [f for f in frames if f.sequence in keep]
                    + [f for f in self._pending[mac] if f not in frames]
                )
        for mac, endpoint in self.endpoints.items():
            report.delivered[mac] = list(endpoint.delivered)
            report.undelivered += len(self._pending[mac])
        return report
