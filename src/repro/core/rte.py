"""Real-time channel estimation (RTE, paper §5).

The standard receiver equalizes every payload symbol with the channel
measured at the preamble; on long frames the channel drifts and the tail
symbols rot (BER bias, Fig. 3). RTE treats each *correctly decoded* symbol
as a full-band training symbol — a "data pilot" — and folds it into a
running estimate:

    H̃ₙ = (H̃ₙ₋₁ + Ĥₙ)/2    if symbol n decoded correctly (CRC pass)
    H̃ₙ = H̃ₙ₋₁             otherwise                        (Eq. 3)

where Ĥₙ = Dₙ/Yₙ: the received symbol (after de-rotating the tracked common
phase) divided by the re-modulated decisions. Correctness comes from the
symbol-level CRC carried in the phase-offset side channel.

``update_rule`` exposes the paper's averaging rule plus two ablation
variants (EWMA with configurable memory, and replace-with-latest) used by
the design-choice benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.phy.channel_estimation import estimate_from_known_symbol

__all__ = ["RealTimeEstimator", "UPDATE_RULES"]


def _rule_average(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
    return 0.5 * (previous + latest)


def _rule_replace(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
    return latest


def _make_ewma(alpha: float):
    def _rule_ewma(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
        return (1.0 - alpha) * previous + alpha * latest

    return _rule_ewma


UPDATE_RULES = {
    "average": _rule_average,  # the paper's Eq. (3)
    "replace": _rule_replace,
    "ewma": _make_ewma(0.25),
}


class RealTimeEstimator:
    """Running channel estimate calibrated by data pilots.

    Args:
        initial_estimate: The LTF (preamble) estimate, length 52.
        update_rule: One of ``UPDATE_RULES`` or a callable
            ``(previous, latest) -> updated``.
    """

    def __init__(self, initial_estimate: np.ndarray, update_rule="average",
                 outlier_threshold: float | None = 0.5):
        estimate = np.asarray(initial_estimate, dtype=np.complex128)
        if estimate.ndim != 1:
            raise ValueError("channel estimate must be a vector")
        self._estimate = estimate.copy()
        if callable(update_rule):
            self._rule = update_rule
        else:
            if update_rule not in UPDATE_RULES:
                raise KeyError(f"unknown update rule {update_rule!r}")
            self._rule = UPDATE_RULES[update_rule]
        # Per-subcarrier sanity guard: a genuine channel moves a tiny
        # fraction per symbol, so a data-pilot estimate that jumps by more
        # than this relative amount is a bad decision that slipped past
        # the 2-bit CRC (false-positive rate 1/4) and is ignored.
        self.outlier_threshold = outlier_threshold
        self.updates = 0
        self.skips = 0

    @property
    def estimate(self) -> np.ndarray:
        """The current calibrated channel estimate H̃ₙ."""
        return self._estimate

    def update(self, received_derotated: np.ndarray, known_transmitted: np.ndarray) -> None:
        """Fold a correctly-decoded symbol into the estimate.

        Args:
            received_derotated: The received used-subcarrier vector after
                removing the tracked common phase (Dₙ·e^{−jφₙ}).
            known_transmitted: The reconstructed transmitted vector Yₙ
                (re-modulated data decisions + known pilots), *without* the
                injected side-channel phase — it was removed along with the
                rest of the common phase.
        """
        latest = estimate_from_known_symbol(received_derotated, known_transmitted)
        valid = ~np.isnan(latest)
        if self.outlier_threshold is not None:
            reference = np.abs(self._estimate)
            deviation = np.abs(latest - self._estimate)
            with np.errstate(invalid="ignore"):
                valid &= deviation <= self.outlier_threshold * np.maximum(reference, 1e-6)
        updated = self._estimate.copy()
        updated[valid] = self._rule(self._estimate[valid], latest[valid])
        self._estimate = updated
        self.updates += 1

    def skip(self) -> None:
        """Record a symbol that failed its CRC (estimate unchanged)."""
        self.skips += 1
