"""Real-time channel estimation (RTE, paper §5).

The standard receiver equalizes every payload symbol with the channel
measured at the preamble; on long frames the channel drifts and the tail
symbols rot (BER bias, Fig. 3). RTE treats each *correctly decoded* symbol
as a full-band training symbol — a "data pilot" — and folds it into a
running estimate:

    H̃ₙ = (H̃ₙ₋₁ + Ĥₙ)/2    if symbol n decoded correctly (CRC pass)
    H̃ₙ = H̃ₙ₋₁             otherwise                        (Eq. 3)

where Ĥₙ = Dₙ/Yₙ: the received symbol (after de-rotating the tracked common
phase) divided by the re-modulated decisions. Correctness comes from the
symbol-level CRC carried in the phase-offset side channel.

``update_rule`` exposes the paper's averaging rule plus two ablation
variants (EWMA with configurable memory, and replace-with-latest) used by
the design-choice benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.trace import active_recorder, metrics
from repro.phy.channel_estimation import estimate_from_known_symbol

__all__ = ["RealTimeEstimator", "RteGuard", "HARDENED_GUARD", "UPDATE_RULES"]


def _rule_average(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
    return 0.5 * (previous + latest)


def _rule_replace(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
    return latest


def _make_ewma(alpha: float):
    def _rule_ewma(previous: np.ndarray, latest: np.ndarray) -> np.ndarray:
        return (1.0 - alpha) * previous + alpha * latest

    return _rule_ewma


UPDATE_RULES = {
    "average": _rule_average,  # the paper's Eq. (3)
    "replace": _rule_replace,
    "ewma": _make_ewma(0.25),
}


@dataclass(frozen=True)
class RteGuard:
    """Outlier-rejection policy protecting the running estimate.

    The 2-bit side-channel CRC has a 1/4 false-positive rate, so a
    burst-corrupted symbol can *pass* its CRC and poison H̃ₙ; with the
    estimate poisoned, every later symbol in the frame decodes against
    garbage. The guard filters data pilots at two granularities:

    * ``outlier_threshold`` — per-subcarrier: ignore subcarriers whose new
      estimate jumps by more than this relative amount (a genuine channel
      moves a tiny fraction per symbol).
    * ``symbol_reject_fraction`` — whole-symbol: if more than this fraction
      of subcarriers are flagged as outliers, the "pilot" is almost surely
      a falsely-passing corrupted symbol; reject it entirely (the surviving
      minority of subcarriers would otherwise still leak corruption in).
    * ``recover_after`` — bounded-state recovery: a *real* channel change
      also trips the whole-symbol test, and with a stale estimate every
      good pilot then looks like an outlier forever. After this many
      consecutive whole-symbol rejects the guard assumes the channel moved
      and snaps the estimate to the next pilot (replace rule), restoring
      tracking in bounded time.
    """

    outlier_threshold: float | None = 0.5
    symbol_reject_fraction: float | None = None
    recover_after: int = 3

    def __post_init__(self):
        if self.outlier_threshold is not None and self.outlier_threshold <= 0:
            raise ValueError("outlier_threshold must be positive or None")
        fraction = self.symbol_reject_fraction
        if fraction is not None and not 0.0 <= fraction < 1.0:
            raise ValueError("symbol_reject_fraction must be in [0, 1) or None")
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")


#: The impairment-hardened receiver profile used by the fault benchmarks.
HARDENED_GUARD = RteGuard(
    outlier_threshold=0.5, symbol_reject_fraction=0.25, recover_after=3
)


class RealTimeEstimator:
    """Running channel estimate calibrated by data pilots.

    Args:
        initial_estimate: The LTF (preamble) estimate, length 52.
        update_rule: One of ``UPDATE_RULES`` or a callable
            ``(previous, latest) -> updated``.
        outlier_threshold: Legacy per-subcarrier guard knob (superseded by
            ``guard``; kept so existing callers stay bit-identical).
        guard: Full :class:`RteGuard` policy; overrides
            ``outlier_threshold`` when given.
    """

    def __init__(self, initial_estimate: np.ndarray, update_rule="average",
                 outlier_threshold: float | None = 0.5,
                 guard: RteGuard | None = None):
        estimate = np.asarray(initial_estimate, dtype=np.complex128)
        if estimate.ndim != 1:
            raise ValueError("channel estimate must be a vector")
        self._estimate = estimate.copy()
        if callable(update_rule):
            self._rule = update_rule
        else:
            if update_rule not in UPDATE_RULES:
                raise KeyError(f"unknown update rule {update_rule!r}")
            self._rule = UPDATE_RULES[update_rule]
        self.guard = guard if guard is not None else RteGuard(
            outlier_threshold=outlier_threshold
        )
        self.outlier_threshold = self.guard.outlier_threshold
        self.updates = 0
        self.skips = 0
        #: Data pilots discarded wholesale by the symbol-level guard.
        self.rejected_symbols = 0
        self._consecutive_rejects = 0
        # Ambient obs hooks, bound once per estimator (one per subframe).
        self._rec = active_recorder()
        scope = metrics().scope("phy")
        self._ctr_reject = scope.counter("rte_reject")
        self._ctr_recover = scope.counter("rte_recover")

    @property
    def estimate(self) -> np.ndarray:
        """The current calibrated channel estimate H̃ₙ."""
        return self._estimate

    def update(self, received_derotated: np.ndarray, known_transmitted: np.ndarray) -> None:
        """Fold a correctly-decoded symbol into the estimate.

        Args:
            received_derotated: The received used-subcarrier vector after
                removing the tracked common phase (Dₙ·e^{−jφₙ}).
            known_transmitted: The reconstructed transmitted vector Yₙ
                (re-modulated data decisions + known pilots), *without* the
                injected side-channel phase — it was removed along with the
                rest of the common phase.
        """
        latest = estimate_from_known_symbol(received_derotated, known_transmitted)
        finite = ~np.isnan(latest)
        valid = finite.copy()
        if self.outlier_threshold is not None:
            reference = np.abs(self._estimate)
            deviation = np.abs(latest - self._estimate)
            with np.errstate(invalid="ignore"):
                valid &= deviation <= self.outlier_threshold * np.maximum(reference, 1e-6)
        fraction = self.guard.symbol_reject_fraction
        if fraction is not None and finite.any():
            outlier_share = 1.0 - valid.sum() / finite.sum()
            if outlier_share > fraction:
                if self._consecutive_rejects >= self.guard.recover_after:
                    # Bounded-state recovery: this many wholesale rejects in
                    # a row means the channel itself moved — snap to the
                    # pilot instead of rejecting good updates forever.
                    updated = self._estimate.copy()
                    updated[finite] = latest[finite]
                    self._estimate = updated
                    self._consecutive_rejects = 0
                    self.updates += 1
                    self._ctr_recover.inc()
                    if self._rec is not None:
                        self._rec.emit("phy", "rte_recover",
                                       after_rejects=self.guard.recover_after)
                    return
                self.rejected_symbols += 1
                self._consecutive_rejects += 1
                self._ctr_reject.inc()
                if self._rec is not None:
                    self._rec.emit("phy", "rte_reject",
                                   outlier_share=round(float(outlier_share), 6),
                                   consecutive=self._consecutive_rejects)
                return
        self._consecutive_rejects = 0
        updated = self._estimate.copy()
        updated[valid] = self._rule(self._estimate[valid], latest[valid])
        self._estimate = updated
        self.updates += 1

    def skip(self) -> None:
        """Record a symbol that failed its CRC (estimate unchanged)."""
        self.skips += 1
