"""48-bit MAC addresses, the keys Carpool hashes into the A-HDR."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MacAddress"]


@dataclass(frozen=True, order=True)
class MacAddress:
    """An IEEE 802 MAC address.

    >>> MacAddress.from_string("02:00:00:00:00:2a").octets.hex()
    '02000000002a'
    """

    octets: bytes

    def __post_init__(self):
        if len(self.octets) != 6:
            raise ValueError(f"MAC address needs 6 octets, got {len(self.octets)}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse the colon-separated hex form (aa:bb:cc:dd:ee:ff)."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address {text!r}")
        return cls(bytes(int(p, 16) for p in parts))

    @classmethod
    def from_int(cls, value: int) -> "MacAddress":
        """Build a (locally administered) address from a station number."""
        if not 0 <= value < (1 << 46):
            raise ValueError("value out of range")
        return cls(bytes([0x02]) + int(value).to_bytes(5, "big"))

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.octets)

    def __bytes__(self) -> bytes:
        return self.octets
