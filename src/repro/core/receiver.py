"""The Carpool receiver (STA side).

Per the paper's architecture (Fig. 2): check the A-HDR, skip over foreign
subframes by decoding only their SIG symbols, and decode every *matched*
subframe — with real-time channel estimation driven by the phase-offset
side channel's per-symbol CRC.

False positives in the A-HDR are handled exactly as §4.1 prescribes: every
matched subframe is decoded; the MAC layer discards payloads whose
destination address turns out not to be ours (we surface each decoded
subframe with its position so the caller can do that check).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ahdr import AHDR_SYMBOLS, decode_ahdr
from repro.core.frame import AHDR_SYMBOL_OFFSET
from repro.core.mac_address import MacAddress
from repro.core.rte import RealTimeEstimator
from repro.core.symbol_crc import DEFAULT_CRC_CONFIG, SymbolCrcConfig
from repro.obs.trace import active_recorder, metrics
from repro.phy import payload_codec
from repro.phy.channel_estimation import equalize
from repro.phy.constants import pilot_values
from repro.phy.frontend import acquire
from repro.phy.mcs import Mcs
from repro.phy.ofdm import DATA_POSITIONS, PILOT_POSITIONS, assemble_symbol, split_symbol
from repro.phy.pilots import (
    pilot_reference_matrix,
    track_and_compensate,
    track_and_compensate_block,
)
from repro.phy.sig import SigDecodeError, SigField, decode_sig

__all__ = [
    "SubframeRx",
    "CarpoolRxResult",
    "CarpoolReceiver",
    "decode_subframe_symbols",
    "decode_subframe_symbols_frozen_batch",
]


@dataclass
class SubframeRx:
    """One decoded subframe.

    Attributes:
        position: Subframe index in the frame (matches the hash-set index).
        sig: The subframe's decoded SIG.
        payload: Decoded payload bytes.
        bit_matrix: Hard-decision data bits per symbol.
        side_bits: Decoded side-channel bits per symbol.
        crc_pass: Per-symbol boolean: did the symbol's CRC group verify?
        phases: Tracked total phase per payload symbol.
        rte_updates: Number of data-pilot calibrations applied.
    """

    position: int
    sig: SigField
    payload: bytes
    bit_matrix: np.ndarray
    side_bits: np.ndarray
    crc_pass: np.ndarray
    phases: np.ndarray
    rte_updates: int


@dataclass
class CarpoolRxResult:
    """Everything a Carpool STA learned from one frame."""

    matched_positions: list
    subframes: list = field(default_factory=list)
    num_subframes_seen: int = 0
    cfo_hz: float = 0.0
    channel_estimate: np.ndarray | None = None
    walk_error: str | None = None

    def payload_for(self, position: int):
        """Decoded payload of the subframe at ``position`` (None if absent)."""
        for sf in self.subframes:
            if sf.position == position:
                return sf.payload
        return None


def decode_subframe_symbols(
    received: np.ndarray,
    channel_estimate: np.ndarray,
    mcs: Mcs,
    first_pilot_index: int,
    reference_phase: float,
    crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
    use_rte: bool = True,
    rte_rule="average",
    rte_guard=None,
):
    """Decode one subframe's payload symbols with (optionally) RTE.

    This is the heart of Carpool reception: equalize with the running
    estimate, track and remove the common phase, demodulate, read the
    side-channel CRC from the phase-difference, and — on CRC pass — fold
    the symbol back into the channel estimate as a data pilot.

    Args:
        received: (n_payload, 52) received symbols of this subframe, CFO
            ramp already removed by the front-end.
        channel_estimate: Estimate at the start of the subframe (LTF, or
            the running estimate from earlier subframes).
        first_pilot_index: Pilot-polarity index of the first payload symbol.
        reference_phase: Tracked phase of the subframe's SIG symbol (the
            side channel's differential reference).
        use_rte: False reproduces the "standard" baseline (estimate frozen).
        rte_guard: Optional :class:`repro.core.rte.RteGuard` outlier policy
            (defaults to the per-subcarrier-only legacy guard).

    Returns:
        (bit_matrix, side_bits, crc_pass, phases, estimator, equalized)
        where ``equalized`` holds the phase-compensated equalized symbols
        (for soft decoding or constellation inspection).
    """
    with metrics().timer("phy.decode_subframe").time():
        return _decode_subframe_symbols(
            received, channel_estimate, mcs, first_pilot_index,
            reference_phase, crc_config, use_rte, rte_rule, rte_guard,
        )


def _decode_subframe_symbols(
    received, channel_estimate, mcs, first_pilot_index, reference_phase,
    crc_config, use_rte, rte_rule, rte_guard,
):
    received = np.asarray(received, dtype=np.complex128)
    n_symbols = received.shape[0]
    scheme = crc_config.scheme
    estimator = RealTimeEstimator(channel_estimate, update_rule=rte_rule,
                                  guard=rte_guard)
    if not use_rte:
        # The estimate never changes without RTE (CRC failures only bump a
        # counter), so the whole symbol chain vectorises.
        return _decode_subframe_symbols_frozen(
            received, mcs, first_pilot_index, reference_phase, crc_config,
            estimator,
        )
    rec = active_recorder()
    scope = metrics().scope("phy")
    crc_pass_ctr = scope.counter("crc_pass")
    crc_fail_ctr = scope.counter("crc_fail")

    bit_matrix = np.empty((n_symbols, mcs.coded_bits_per_symbol), dtype=np.uint8)
    side_bits = np.zeros((n_symbols, scheme.bits_per_symbol), dtype=np.uint8)
    crc_pass = np.zeros(n_symbols, dtype=bool)
    phases = np.empty(n_symbols)
    equalized = np.empty((n_symbols, 52), dtype=np.complex128)
    prev_phase = reference_phase

    group: list = []  # (symbol_idx, derotated_rx, equalized) of current CRC group
    for i in range(n_symbols):
        eq = equalize(received[i], estimator.estimate)
        eq, phase = track_and_compensate(eq, first_pilot_index + i)
        phases[i] = phase
        equalized[i] = eq

        data_points, _ = split_symbol(eq)
        bit_matrix[i] = mcs.modulation.demodulate(data_points)

        if rec is not None and rec.sample(i):
            # Sampled per-symbol snapshot: EVM against the hard decisions
            # and the running estimate's mean magnitude. Pure observation —
            # nothing decoded below depends on it.
            decided = mcs.modulation.remodulate(data_points)
            evm = float(np.mean(np.abs(data_points - decided) ** 2))
            rec.emit("phy", "symbol", index=i, evm=round(evm, 8),
                     est_mag=round(float(np.mean(np.abs(estimator.estimate))), 8),
                     phase=round(float(phase), 8))

        delta = float(np.angle(np.exp(1j * (phase - prev_phase))))
        side_bits[i] = scheme.decode_deltas(np.array([delta]))
        prev_phase = phase

        group.append((i, received[i] * np.exp(-1j * phase), data_points))

        group_index = crc_config.group_of(i)
        group_complete = (i + 1) % crc_config.granularity == 0 or i == n_symbols - 1
        if not group_complete:
            continue
        ok = crc_config.check_group(group_index, bit_matrix, side_bits)
        (crc_pass_ctr if ok else crc_fail_ctr).inc()
        if rec is not None and rec.sample(group_index):
            rec.emit("phy", "crc", group=group_index, ok=bool(ok),
                     symbols=len(group))
        for j, _, _ in group:
            crc_pass[j] = ok
        if ok and use_rte:
            for j, derotated, points in group:
                decided = mcs.modulation.remodulate(points)
                known = assemble_symbol(decided, pilot_values(first_pilot_index + j))
                estimator.update(derotated, known)
        elif not ok:
            estimator.skip()
        group = []

    return bit_matrix, side_bits, crc_pass, phases, estimator, equalized


def _decode_subframe_symbols_frozen(
    received: np.ndarray,
    mcs: Mcs,
    first_pilot_index: int,
    reference_phase: float,
    crc_config: SymbolCrcConfig,
    estimator: RealTimeEstimator,
):
    """Vectorised ``use_rte=False`` path: frozen channel estimate.

    Equalization, phase tracking, demodulation and side-bit extraction run
    as whole-block operations; bit-identical to the sequential loop since
    no symbol's processing depends on an earlier symbol's outcome.
    """
    n_symbols = received.shape[0]
    scheme = crc_config.scheme

    equalized, phases = track_and_compensate_block(
        equalize(received, estimator.estimate), first_pilot_index
    )
    data_points = equalized[:, DATA_POSITIONS]
    bit_matrix = (
        mcs.modulation.demodulate(data_points.reshape(-1))
        .reshape(n_symbols, mcs.coded_bits_per_symbol)
    )

    previous = np.concatenate([[reference_phase], phases[:-1]])
    deltas = np.angle(np.exp(1j * (phases - previous)))
    side_bits = scheme.decode_deltas(deltas).reshape(n_symbols, scheme.bits_per_symbol)

    scope = metrics().scope("phy")
    crc_pass_ctr = scope.counter("crc_pass")
    crc_fail_ctr = scope.counter("crc_fail")
    crc_pass = np.zeros(n_symbols, dtype=bool)
    for start in range(0, n_symbols, crc_config.granularity):
        stop = min(start + crc_config.granularity, n_symbols)
        ok = crc_config.check_group(crc_config.group_of(start), bit_matrix, side_bits)
        (crc_pass_ctr if ok else crc_fail_ctr).inc()
        crc_pass[start:stop] = ok
        if not ok:
            estimator.skip()

    return bit_matrix, side_bits, crc_pass, phases, estimator, equalized


def decode_subframe_symbols_frozen_batch(
    received_stack: np.ndarray,
    channel_estimates: np.ndarray,
    mcs: Mcs,
    first_pilot_index: int,
    reference_phases: np.ndarray,
    crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
):
    """Frozen-estimate decode of a whole stack of independent subframes.

    The cross-trial form of :func:`decode_subframe_symbols` with
    ``use_rte=False``: ``received_stack[t]`` is one trial's (n_symbols, 52)
    payload block, ``channel_estimates[t]`` its LTF estimate and
    ``reference_phases[t]`` its SIG phase reference. Every step —
    equalization, pilot phase tracking, demodulation, side-bit extraction,
    group CRC — is elementwise (or a fixed-order reduction) per trial, so
    stacking trials along a leading axis is bit-identical to decoding each
    trial on its own. All trials must share ``n_symbols`` and
    ``first_pilot_index`` (true for Monte-Carlo repeats of one frame).

    The ``phy.crc_pass``/``phy.crc_fail`` counters advance by the same
    totals as per-trial decoding; per-symbol trace sampling is not
    supported here (callers fall back to the scalar path when a recorder
    is active).

    Returns:
        (bit_matrix, side_bits, crc_pass, phases, equalized) — each the
        per-trial result stacked along axis 0.
    """
    with metrics().timer("phy.decode_subframe_batch").time():
        received_stack = np.asarray(received_stack, dtype=np.complex128)
        n_trials, n_symbols, _ = received_stack.shape
        scheme = crc_config.scheme

        estimates = np.asarray(channel_estimates, dtype=np.complex128)[:, None, :]
        safe = np.where(np.abs(estimates) > 1e-12, estimates, 1.0)
        equalized = received_stack / safe

        expected_pilots = pilot_reference_matrix(first_pilot_index, n_symbols)
        correlation = np.sum(
            equalized[:, :, PILOT_POSITIONS] * np.conj(expected_pilots)[None],
            axis=2,
        )
        phases = np.angle(correlation)
        equalized = equalized * np.exp(-1j * phases)[:, :, None]

        data_points = equalized[:, :, DATA_POSITIONS]
        bit_matrix = (
            mcs.modulation.demodulate(data_points.reshape(-1))
            .reshape(n_trials, n_symbols, mcs.coded_bits_per_symbol)
        )

        references = np.asarray(reference_phases, dtype=np.float64)[:, None]
        previous = np.concatenate([references, phases[:, :-1]], axis=1)
        deltas = np.angle(np.exp(1j * (phases - previous)))
        side_bits = (
            scheme.decode_deltas(deltas.reshape(-1))
            .reshape(n_trials, n_symbols, scheme.bits_per_symbol)
        )

        crc_pass = crc_config.check_groups_block(bit_matrix, side_bits)
        groups = crc_pass[:, ::crc_config.granularity]
        n_groups = n_trials * crc_config.num_groups(n_symbols)
        n_pass = int(groups.sum())
        scope = metrics().scope("phy")
        scope.counter("crc_pass").inc(n_pass)
        scope.counter("crc_fail").inc(n_groups - n_pass)

        return bit_matrix, side_bits, crc_pass, phases, equalized


class CarpoolReceiver:
    """A Carpool STA's full receive pipeline for one frame.

    Args:
        mac: This station's address (the A-HDR probe key).
        coded: Must match the transmitter's payload coding mode.
        use_rte: Disable to model an aggregation-only receiver
            (the MU-Aggregation baseline).
        decode_all: Decode every subframe regardless of the A-HDR — used
            by instrumentation to measure all-receiver BER from one frame.
    """

    def __init__(
        self,
        mac: MacAddress,
        coded: bool = True,
        crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
        use_rte: bool = True,
        rte_rule="average",
        rte_guard=None,
        decode_all: bool = False,
        scrambler_seed: int = 0b1011101,
        soft: bool = False,
    ):
        self.mac = mac
        self.coded = coded
        self.crc_config = crc_config
        self.use_rte = use_rte
        self.rte_rule = rte_rule
        self.rte_guard = rte_guard
        self.decode_all = decode_all
        self.scrambler_seed = scrambler_seed
        # Soft (LLR) Viterbi for the payload; applies to the coded chain.
        self.soft = soft and coded

    def receive(self, received_symbols: np.ndarray) -> CarpoolRxResult:
        """Process one received Carpool frame (frequency-domain symbols)."""
        with metrics().timer("phy.receive_frame").time():
            return self._receive(received_symbols)

    def _receive(self, received_symbols: np.ndarray) -> CarpoolRxResult:
        front = acquire(received_symbols)
        derotated = front.derotated
        channel = front.channel_estimate

        ahdr_rx = derotated[AHDR_SYMBOL_OFFSET : AHDR_SYMBOL_OFFSET + AHDR_SYMBOLS]
        ahdr_eq, _ = track_and_compensate_block(equalize(ahdr_rx, channel), 0)
        bloom = decode_ahdr(ahdr_eq)

        result = CarpoolRxResult(
            matched_positions=[],
            cfo_hz=front.cfo_hz,
            channel_estimate=channel,
        )

        cursor = AHDR_SYMBOL_OFFSET + AHDR_SYMBOLS
        pilot_index = AHDR_SYMBOLS
        position = 0
        running_estimate = channel
        n_total = derotated.shape[0]

        while cursor < n_total:
            sig_eq = equalize(derotated[cursor], running_estimate)
            sig_eq, sig_phase = track_and_compensate(sig_eq, pilot_index)
            sig_points, _ = split_symbol(sig_eq)
            try:
                sig = decode_sig(sig_points)
            except SigDecodeError as exc:
                result.walk_error = f"subframe {position}: {exc}"
                break
            n_payload = payload_codec.num_payload_symbols(
                sig.length_bytes, sig.mcs, self.coded
            )
            payload_end = cursor + 1 + n_payload
            if payload_end > n_total:
                result.walk_error = (
                    f"subframe {position}: SIG length overruns frame "
                    f"({payload_end} > {n_total})"
                )
                break

            matched = bloom.matches(bytes(self.mac), position)
            if matched:
                result.matched_positions.append(position)
            if matched or self.decode_all:
                bit_matrix, side_bits, crc_pass, phases, estimator, eq_symbols = decode_subframe_symbols(
                    derotated[cursor + 1 : payload_end],
                    running_estimate,
                    sig.mcs,
                    first_pilot_index=pilot_index + 1,
                    reference_phase=sig_phase,
                    crc_config=self.crc_config,
                    use_rte=self.use_rte,
                    rte_rule=self.rte_rule,
                    rte_guard=self.rte_guard,
                )
                if self.soft and self.coded:
                    from repro.phy.soft import decode_payload_soft

                    payload = decode_payload_soft(
                        eq_symbols, estimator.estimate, sig.length_bytes,
                        sig.mcs, noise_variance=front.noise_variance,
                        scrambler_seed=self.scrambler_seed,
                    )
                else:
                    payload = payload_codec.decode_payload_bits(
                        bit_matrix, sig.length_bytes, sig.mcs, self.coded,
                        self.scrambler_seed,
                    )
                result.subframes.append(
                    SubframeRx(
                        position=position,
                        sig=sig,
                        payload=payload,
                        bit_matrix=bit_matrix,
                        side_bits=side_bits,
                        crc_pass=crc_pass,
                        phases=phases,
                        rte_updates=estimator.updates,
                    )
                )
                if self.use_rte:
                    running_estimate = estimator.estimate

            cursor = payload_end
            pilot_index += 1 + n_payload
            position += 1

        result.num_subframes_seen = position
        rec = active_recorder()
        if rec is not None:
            rec.emit(
                "phy", "frame_rx",
                subframes_seen=position,
                matched=list(result.matched_positions),
                decoded=len(result.subframes),
                crc_pass=int(sum(int(sf.crc_pass.sum()) for sf in result.subframes)),
                crc_total=int(sum(sf.crc_pass.size for sf in result.subframes)),
                rte_updates=int(sum(sf.rte_updates for sf in result.subframes)),
                walk_error=result.walk_error,
            )
        return result
