"""MAC data units inside Carpool subframes.

§4.1: "the MAC data can be either single data unit or aggregation data
unit determined in IEEE 802.11 MAC aggregation (MSDU or MPDU
aggregation)". This module implements that layer for real: a subframe's
payload is a train of delimited 802.11 MPDUs (each a
:class:`~repro.mac.frame_formats.DataFrame` with its own FCS), so a
receiver can salvage intact MPDUs out of a partially-corrupted subframe
— the per-MPDU retransmission granularity the MAC simulator models.

Delimiter format (A-MPDU-style, simplified):

    length(2, little endian) | 0x4E ("N") | 0x5A ("Z") | MPDU bytes
"""

from __future__ import annotations

import struct

from repro.mac.frame_formats import DataFrame, FcsError

__all__ = ["pack_mpdus", "unpack_mpdus", "DELIMITER_BYTES"]

DELIMITER_BYTES = 4
_MAGIC = b"NZ"
_MAX_MPDU = 65535


def pack_mpdus(frames: list) -> bytes:
    """Serialise a list of :class:`DataFrame` into one subframe payload."""
    if not frames:
        raise ValueError("need at least one MPDU")
    parts = []
    for frame in frames:
        raw = frame.to_bytes()
        if len(raw) > _MAX_MPDU:
            raise ValueError("MPDU too large for the 16-bit delimiter")
        parts.append(struct.pack("<H", len(raw)) + _MAGIC + raw)
    return b"".join(parts)


def unpack_mpdus(payload: bytes) -> tuple:
    """Recover MPDUs from a (possibly corrupted) subframe payload.

    Walks the delimiter chain; on a broken delimiter it scans forward for
    the next magic marker (the standard's delimiter-resync behaviour).
    Returns ``(frames, salvaged, lost)`` where ``frames`` are the
    FCS-clean :class:`DataFrame` objects, ``salvaged`` counts them and
    ``lost`` counts delimited MPDUs that failed their FCS.
    """
    frames = []
    lost = 0
    cursor = 0
    n = len(payload)
    while cursor + DELIMITER_BYTES <= n:
        (length,) = struct.unpack("<H", payload[cursor : cursor + 2])
        magic_ok = payload[cursor + 2 : cursor + 4] == _MAGIC
        end = cursor + DELIMITER_BYTES + length
        if not magic_ok or length == 0 or end > n:
            # Resync: hunt for the next delimiter magic.
            next_magic = payload.find(_MAGIC, cursor + 1)
            if next_magic < 2:
                break
            cursor = next_magic - 2
            continue
        raw = payload[cursor + DELIMITER_BYTES : end]
        try:
            frames.append(DataFrame.from_bytes(raw))
        except (FcsError, ValueError):
            lost += 1
        cursor = end
    return frames, len(frames), lost
