"""The aggregation header (A-HDR).

Two OFDM symbols at BPSK rate 1/2, placed right after the preamble,
carrying a 48-bit positional Bloom filter: receiver i's MAC address is
inserted under hash set i, so each STA learns *whether* the frame carries a
subframe for it and *which* subframe that is, from 2 symbols — against the
384 bits (≈ 59 µs at the basic rate) that listing eight 48-bit MAC
addresses would cost (paper §3). A-HDR overhead relative to that naive
header: 48/384 = 12.5 %.

Coding note: the 48 filter bits are convolutionally encoded (K=7, rate 1/2)
across the two symbols without trellis termination — termination tail bits
would shrink the filter to 42 bits; the unterminated tail costs a fraction
of a dB on the last few bits, which the Bloom filter's no-false-negative
property is robust to (a flipped bit can only add/remove false positives,
and the frame-level walk still verifies lengths via each subframe's SIG).
"""

from __future__ import annotations

import numpy as np

from repro.bloom.coded import PositionalBloomFilter
from repro.core.mac_address import MacAddress
from repro.phy.coding import RATE_1_2, conv_encode, viterbi_decode
from repro.phy.constants import NUM_DATA_SUBCARRIERS, pilot_values
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import BPSK
from repro.phy.ofdm import assemble_symbol, split_symbol

__all__ = [
    "AHDR_BITS",
    "AHDR_SYMBOLS",
    "AHDR_NUM_HASHES",
    "MAX_RECEIVERS",
    "build_ahdr_filter",
    "encode_ahdr",
    "decode_ahdr",
    "naive_header_bits",
    "ahdr_overhead_ratio",
]

AHDR_BITS = 48
AHDR_SYMBOLS = 2
AHDR_NUM_HASHES = 4  # h = (48/N)·ln2 rounded for the N ≤ 8 receiver limit
MAX_RECEIVERS = 8


def build_ahdr_filter(receivers: list) -> PositionalBloomFilter:
    """Insert each receiver's MAC address under its subframe's hash set.

    ``receivers`` is an ordered list of :class:`MacAddress`; index i is
    subframe i.
    """
    if not receivers:
        raise ValueError("need at least one receiver")
    if len(receivers) > MAX_RECEIVERS:
        raise ValueError(f"Carpool aggregates at most {MAX_RECEIVERS} receivers")
    pbf = PositionalBloomFilter(num_bits=AHDR_BITS, num_hashes=AHDR_NUM_HASHES)
    for position, mac in enumerate(receivers):
        pbf.insert(bytes(mac), position)
    return pbf


def encode_ahdr(receivers: list, first_pilot_index: int = 0) -> np.ndarray:
    """Encode the A-HDR into (2, 52) used-subcarrier OFDM symbols."""
    pbf = build_ahdr_filter(receivers)
    coded = conv_encode(pbf.to_bits(), RATE_1_2)  # 96 coded bits
    symbols = np.empty((AHDR_SYMBOLS, 52), dtype=np.complex128)
    for i in range(AHDR_SYMBOLS):
        chunk = coded[i * NUM_DATA_SUBCARRIERS : (i + 1) * NUM_DATA_SUBCARRIERS]
        chunk = interleave(chunk, BPSK.bits_per_symbol)
        points = BPSK.modulate(chunk)
        pilots = pilot_values(first_pilot_index + i)
        symbols[i] = assemble_symbol(points, pilots)
    return symbols


def decode_ahdr(equalized_symbols: np.ndarray) -> PositionalBloomFilter:
    """Decode two equalized A-HDR symbols back into the Bloom filter."""
    equalized_symbols = np.asarray(equalized_symbols, dtype=np.complex128)
    if equalized_symbols.shape[0] != AHDR_SYMBOLS:
        raise ValueError(f"A-HDR is {AHDR_SYMBOLS} symbols")
    coded = []
    for i in range(AHDR_SYMBOLS):
        data_points, _ = split_symbol(equalized_symbols[i])
        hard = BPSK.demodulate(data_points)
        coded.append(deinterleave(hard, BPSK.bits_per_symbol))
    bits = viterbi_decode(
        np.concatenate(coded), AHDR_BITS, RATE_1_2, terminated=False
    )
    return PositionalBloomFilter.from_bits(bits, num_hashes=AHDR_NUM_HASHES)


def naive_header_bits(num_receivers: int, mac_bits: int = 48) -> int:
    """Header size if every receiver's MAC address were listed explicitly."""
    return num_receivers * mac_bits


def ahdr_overhead_ratio(num_receivers: int = MAX_RECEIVERS) -> float:
    """A-HDR size relative to the naive explicit-address header."""
    return AHDR_BITS / naive_header_bits(num_receivers)
