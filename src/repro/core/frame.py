"""The Carpool frame: preamble + A-HDR + a train of per-receiver subframes.

Symbol layout (Fig. 4):

    [STF, STF, LTF, LTF, A-HDR₀, A-HDR₁,
     SIG¹, payload¹₀ … payload¹ₖ,          ← subframe 1
     SIG², payload²₀ … ,                   ← subframe 2
     …]

Each subframe is a complete (SIG + MAC data) unit for exactly one receiver
and may use its own MCS. Pilot-polarity indices run continuously from the
first A-HDR symbol; side-channel phase injection applies to payload symbols
only, referenced differentially to the subframe's own (uninjected) SIG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ahdr import AHDR_SYMBOLS, MAX_RECEIVERS, encode_ahdr
from repro.core.mac_address import MacAddress
from repro.core.symbol_crc import DEFAULT_CRC_CONFIG, SymbolCrcConfig
from repro.phy import payload_codec
from repro.phy.constants import pilot_values
from repro.phy.mcs import Mcs
from repro.phy.ofdm import assemble_symbol
from repro.phy.preamble import ltf_symbol, stf_symbol
from repro.phy.sig import SigField, encode_sig
from repro.phy.transceiver import PREAMBLE_SYMBOLS

__all__ = ["SubframeSpec", "TxSubframe", "CarpoolTxFrame", "CarpoolTransmitter", "AHDR_SYMBOL_OFFSET"]

AHDR_SYMBOL_OFFSET = PREAMBLE_SYMBOLS  # A-HDR sits right after the preamble


@dataclass(frozen=True)
class SubframeSpec:
    """What the AP wants to send to one receiver."""

    receiver: MacAddress
    payload: bytes
    mcs: Mcs

    def __post_init__(self):
        if not self.payload:
            raise ValueError("empty subframe payload")


@dataclass
class TxSubframe:
    """A built subframe with ground truth for instrumentation."""

    spec: SubframeSpec
    position: int  # subframe index within the frame (hash-set index)
    sig_symbol_index: int  # absolute symbol index of this subframe's SIG
    bit_matrix: np.ndarray  # (n_payload_symbols, n_cbps) mapped data bits
    side_bits: np.ndarray  # (n_payload_symbols, scheme bits) CRC side bits
    injected_phases: np.ndarray  # cumulative injected phase per payload symbol

    @property
    def n_payload_symbols(self) -> int:
        """Payload OFDM symbols of this subframe."""
        return self.bit_matrix.shape[0]

    @property
    def payload_start(self) -> int:
        """Absolute symbol index of the first payload symbol."""
        return self.sig_symbol_index + 1

    @property
    def end_symbol(self) -> int:
        """One past this subframe's last symbol."""
        return self.payload_start + self.n_payload_symbols


@dataclass
class CarpoolTxFrame:
    """A fully-assembled Carpool transmission."""

    symbols: np.ndarray  # (n_total, 52)
    subframes: list = field(default_factory=list)
    coded: bool = True
    crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG

    @property
    def receivers(self) -> list:
        """Receiver MAC addresses in subframe order."""
        return [sf.spec.receiver for sf in self.subframes]

    @property
    def n_symbols(self) -> int:
        """Total OFDM symbols in the frame (preamble included)."""
        return self.symbols.shape[0]

    def subframe_for(self, receiver: MacAddress):
        """The subframe destined to ``receiver`` (None if absent)."""
        for sf in self.subframes:
            if sf.spec.receiver == receiver:
                return sf
        return None


class CarpoolTransmitter:
    """Builds Carpool frames: PHY aggregation for up to 8 receivers.

    Args:
        coded: Whether subframe payloads use the full 802.11
            scramble/code/interleave chain (True for transport, False for
            symbol-level BER instrumentation).
        crc_config: Side-channel CRC layout; the paper's default is a
            CRC-2 per symbol via the 2-bit phase-offset scheme.
        inject_side_channel: Disable to build "MU-Aggregation"-style frames
            that aggregate without the side channel / RTE (the baseline of
            §7.2).
    """

    def __init__(
        self,
        coded: bool = True,
        crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
        inject_side_channel: bool = True,
        scrambler_seed: int = 0b1011101,
    ):
        self.coded = coded
        self.crc_config = crc_config
        self.inject_side_channel = inject_side_channel
        self.scrambler_seed = scrambler_seed

    def build_frame(self, specs: list) -> CarpoolTxFrame:
        """Aggregate one subframe per spec into a single Carpool frame.

        Receivers must be distinct; order defines subframe positions and
        therefore both hash-set indices and the sequential-ACK order.
        """
        if not specs:
            raise ValueError("need at least one subframe")
        if len(specs) > MAX_RECEIVERS:
            raise ValueError(f"at most {MAX_RECEIVERS} receivers per Carpool frame")
        receivers = [s.receiver for s in specs]
        if len(set(receivers)) != len(receivers):
            raise ValueError("duplicate receiver in Carpool frame")

        symbol_rows = [stf_symbol(), stf_symbol(), ltf_symbol(), ltf_symbol()]
        symbol_rows.extend(encode_ahdr(receivers, first_pilot_index=0))
        pilot_index = AHDR_SYMBOLS  # pilot indices 0..1 consumed by A-HDR
        subframes = []

        for position, spec in enumerate(specs):
            sig_symbol_index = len(symbol_rows)
            sig_points = encode_sig(SigField(mcs=spec.mcs, length_bytes=len(spec.payload)))
            symbol_rows.append(assemble_symbol(sig_points, pilot_values(pilot_index)))
            pilot_index += 1

            bit_matrix = payload_codec.encode_payload_bits(
                spec.payload, spec.mcs, self.coded, self.scrambler_seed
            )
            n_payload = bit_matrix.shape[0]
            if self.inject_side_channel:
                side_bits = self.crc_config.side_bits_for(bit_matrix)
                phases = self.crc_config.scheme.encode_phases(side_bits.reshape(-1))
            else:
                side_bits = np.zeros(
                    (n_payload, self.crc_config.scheme.bits_per_symbol), dtype=np.uint8
                )
                phases = np.zeros(n_payload)
            payload_symbols = payload_codec.bits_to_symbols(
                bit_matrix, spec.mcs, first_pilot_index=pilot_index, phases=phases
            )
            symbol_rows.extend(payload_symbols)
            pilot_index += n_payload

            subframes.append(
                TxSubframe(
                    spec=spec,
                    position=position,
                    sig_symbol_index=sig_symbol_index,
                    bit_matrix=bit_matrix,
                    side_bits=side_bits,
                    injected_phases=np.asarray(phases, dtype=np.float64),
                )
            )

        return CarpoolTxFrame(
            symbols=np.vstack([np.atleast_2d(row) for row in symbol_rows]),
            subframes=subframes,
            coded=self.coded,
            crc_config=self.crc_config,
        )
