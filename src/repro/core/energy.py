"""Device energy model (paper §8, "Energy consumption").

The paper has no Carpool silicon to measure, so it estimates energy from
the LinkSys WPC55AG power model of Zhang & Shin (E-MiLi, MobiCom'11):
TX 1.71 W, RX 1.66 W, idle 1.22 W. A Carpool node pays extra RX power only
when an A-HDR false positive makes it decode an irrelevant subframe —
bounded by the filter's false-positive ratio (≤ 5.59 % for N=8, h=4). With
≥ 90 % of a busy client's energy spent idle, the total overhead stays under
5.59 % × 5 % ≈ 0.28 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bloom.coded import false_positive_ratio
from repro.core.ahdr import AHDR_BITS, AHDR_NUM_HASHES

__all__ = ["DevicePowerModel", "WPC55AG", "EnergyBreakdown", "carpool_energy_overhead"]


@dataclass(frozen=True)
class DevicePowerModel:
    """Mean power draw (watts) by radio state."""

    tx_watts: float = 1.71
    rx_watts: float = 1.66
    idle_watts: float = 1.22

    def energy(self, tx_time: float, rx_time: float, idle_time: float) -> float:
        """Joules consumed for the given per-state durations (seconds)."""
        if min(tx_time, rx_time, idle_time) < 0:
            raise ValueError("durations must be non-negative")
        return (
            self.tx_watts * tx_time
            + self.rx_watts * rx_time
            + self.idle_watts * idle_time
        )


WPC55AG = DevicePowerModel()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Fractions of a client's energy budget by state (must sum to 1)."""

    idle_fraction: float = 0.90
    rx_fraction: float = 0.05
    tx_fraction: float = 0.05

    def __post_init__(self):
        total = self.idle_fraction + self.rx_fraction + self.tx_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions sum to {total}, not 1")


def carpool_energy_overhead(
    num_receivers: int = 8,
    breakdown: EnergyBreakdown | None = None,
    num_hashes: int = AHDR_NUM_HASHES,
) -> dict:
    """Worst-case extra energy of a Carpool node vs a standard Wi-Fi node.

    Returns a dict with the false-positive ratio (extra RX power fraction)
    and the resulting total energy overhead under the given state
    breakdown — the §8 estimate.
    """
    breakdown = breakdown or EnergyBreakdown()
    fp = false_positive_ratio(num_hashes, num_receivers, AHDR_BITS)
    return {
        "false_positive_ratio": fp,
        "extra_rx_power_fraction": fp,
        "total_energy_overhead": fp * breakdown.rx_fraction,
    }
