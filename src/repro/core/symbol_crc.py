"""Symbol-level CRC checksums carried in the phase-offset side channel.

A *group* of ``granularity`` consecutive payload symbols shares one CRC
computed over the group's data bits; the CRC bits ride in the side-channel
slots of those same symbols (``granularity × scheme.bits_per_symbol`` bits
per group). The paper measured six (scheme × granularity) combinations and
found one symbol per group with the 2-bit scheme — i.e. a CRC-2 per symbol —
the best reliability/granularity trade-off (§5.2); that is the default used
throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.side_channel import TWO_BIT_SCHEME, PhaseOffsetScheme
from repro.phy.crc import crc_bits, crc_contribution_table
from repro.util.bits import int_to_bits

__all__ = [
    "SymbolCrcConfig",
    "DEFAULT_CRC_CONFIG",
    "crc_checksum_bits",
    "crc_checksum_bits_block",
]

# Small CRC polynomials by width (without the leading term).
_POLYS = {
    1: None,  # parity
    2: 0x3,  # x^2 + x + 1
    3: 0x3,  # x^3 + x + 1
    4: 0x3,  # CRC-4-ITU: x^4 + x + 1
    5: 0x15,  # CRC-5-USB
    6: 0x03,  # CRC-6-ITU
    7: 0x09,  # CRC-7
    8: 0x07,  # CRC-8
}


def crc_checksum_bits(bits: np.ndarray, width: int) -> np.ndarray:
    """CRC of ``bits`` as a ``width``-bit array (MSB first)."""
    if width not in _POLYS:
        raise ValueError(f"unsupported CRC width {width}")
    bits = np.asarray(bits, dtype=np.uint8)
    if width == 1:
        return np.array([int(bits.sum()) & 1], dtype=np.uint8)
    value = crc_bits(bits, poly=_POLYS[width], width=width)
    return int_to_bits(value, width)


def crc_checksum_bits_block(bits_matrix: np.ndarray, width: int) -> np.ndarray:
    """Row-wise :func:`crc_checksum_bits` over an (n, length) bit matrix.

    All the polynomials in ``_POLYS`` run with a zero initial register, so
    each CRC is GF(2)-linear in its input and the whole batch reduces to
    one integer matmul against the cached per-bit contribution table —
    bit-identical to the scalar loop, row by row.
    """
    if width not in _POLYS:
        raise ValueError(f"unsupported CRC width {width}")
    bits_matrix = np.asarray(bits_matrix, dtype=np.uint8)
    if bits_matrix.ndim != 2:
        raise ValueError("expected an (n, length) bit matrix")
    if width == 1:
        return (bits_matrix.sum(axis=1, dtype=np.int64) & 1)[:, None].astype(np.uint8)
    table = crc_contribution_table(bits_matrix.shape[1], _POLYS[width], width)
    checksums = bits_matrix.astype(np.int64) @ table.astype(np.int64)
    return (checksums & 1).astype(np.uint8)


@dataclass(frozen=True)
class SymbolCrcConfig:
    """How CRC checksums are laid onto the side channel.

    Attributes:
        scheme: Phase-offset modulation (1-bit or 2-bit per symbol).
        granularity: Symbols per CRC group. 1 = per-symbol CRC.
    """

    scheme: PhaseOffsetScheme = TWO_BIT_SCHEME
    granularity: int = 1

    def __post_init__(self):
        if self.granularity < 1:
            raise ValueError("granularity must be ≥ 1")
        if self.crc_width not in _POLYS:
            raise ValueError(f"no CRC polynomial of width {self.crc_width}")

    @property
    def crc_width(self) -> int:
        """CRC bits per group = side-channel capacity of the group."""
        return self.granularity * self.scheme.bits_per_symbol

    def num_groups(self, n_symbols: int) -> int:
        """Number of CRC groups covering ``n_symbols`` payload symbols."""
        return -(-n_symbols // self.granularity)

    def group_of(self, symbol_index: int) -> int:
        """CRC-group index of a payload symbol."""
        return symbol_index // self.granularity

    def side_bits_for(self, bit_matrix: np.ndarray) -> np.ndarray:
        """Side-channel bits for a payload (one row per symbol).

        Returns shape (n_symbols, scheme.bits_per_symbol): the CRC of each
        group distributed across the group's symbols in order. A trailing
        partial group is CRC'd over the symbols it actually has but still
        uses the full CRC width (zero-padded capacity is never needed since
        width = symbols × bits only for complete groups; partial groups pad
        the *checksum* into the available slots, truncating the CRC — they
        are treated as unverifiable and flagged by :meth:`verifiable`).
        """
        bit_matrix = np.asarray(bit_matrix, dtype=np.uint8)
        n_symbols = bit_matrix.shape[0]
        bps = self.scheme.bits_per_symbol
        out = np.zeros((n_symbols, bps), dtype=np.uint8)
        for g in range(self.num_groups(n_symbols)):
            start = g * self.granularity
            end = min(start + self.granularity, n_symbols)
            group_bits = bit_matrix[start:end].reshape(-1)
            checksum = crc_checksum_bits(group_bits, self.crc_width)
            capacity = (end - start) * bps
            for j in range(capacity):
                out[start + j // bps, j % bps] = checksum[j] if j < checksum.size else 0
        return out

    def verifiable(self, group_index: int, n_symbols: int) -> bool:
        """Whether a group carries its full CRC (complete groups only)."""
        start = group_index * self.granularity
        end = start + self.granularity
        return end <= n_symbols

    def check_group(self, group_index: int, bit_matrix: np.ndarray,
                    received_side_bits: np.ndarray) -> bool:
        """Verify one group's CRC against received side-channel bits.

        Args:
            group_index: Which CRC group.
            bit_matrix: Hard-decision data bits, (n_symbols, n_cbps).
            received_side_bits: Decoded side-channel bits,
                (n_symbols, bits_per_symbol).

        Returns False for partial trailing groups (not verifiable).
        """
        n_symbols = bit_matrix.shape[0]
        if not self.verifiable(group_index, n_symbols):
            return False
        start = group_index * self.granularity
        end = start + self.granularity
        group_bits = np.asarray(bit_matrix[start:end], dtype=np.uint8).reshape(-1)
        expected = crc_checksum_bits(group_bits, self.crc_width)
        received = np.asarray(received_side_bits[start:end], dtype=np.uint8).reshape(-1)
        return bool(np.array_equal(expected, received))

    def check_groups_block(self, bit_matrix_stack: np.ndarray,
                           side_bits_stack: np.ndarray) -> np.ndarray:
        """Per-symbol CRC verdicts for a whole stack of subframes at once.

        Args:
            bit_matrix_stack: (n_frames, n_symbols, n_cbps) hard-decision
                data bits.
            side_bits_stack: (n_frames, n_symbols, bits_per_symbol) decoded
                side-channel bits.

        Returns:
            (n_frames, n_symbols) boolean array; entry ``[t, i]`` equals
            ``check_group(group_of(i), bit_matrix_stack[t],
            side_bits_stack[t])`` — the group verdict broadcast over the
            group's symbols, ``False`` for partial trailing groups.
        """
        bit_matrix_stack = np.asarray(bit_matrix_stack, dtype=np.uint8)
        side_bits_stack = np.asarray(side_bits_stack, dtype=np.uint8)
        n_frames, n_symbols = bit_matrix_stack.shape[:2]
        crc_pass = np.zeros((n_frames, n_symbols), dtype=bool)
        for start in range(0, n_symbols, self.granularity):
            end = start + self.granularity
            if end > n_symbols:  # partial trailing group: unverifiable
                break
            group_bits = bit_matrix_stack[:, start:end].reshape(n_frames, -1)
            expected = crc_checksum_bits_block(group_bits, self.crc_width)
            received = side_bits_stack[:, start:end].reshape(n_frames, -1)
            crc_pass[:, start:end] = np.all(expected == received, axis=1)[:, None]
        return crc_pass


DEFAULT_CRC_CONFIG = SymbolCrcConfig()
