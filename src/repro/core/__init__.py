"""Carpool core: the paper's primary contribution.

Multi-receiver PHY frame aggregation (A-HDR Bloom-filter header), the
phase-offset side channel with per-symbol CRC, real-time channel estimation
(RTE), sequential ACK, the AP aggregation policy and the energy model.
"""

from repro.core.aggregation import (
    AggregationBatch,
    AggregationPolicy,
    AggregationQueue,
    QueuedFrame,
)
from repro.core.ahdr import (
    AHDR_BITS,
    AHDR_NUM_HASHES,
    AHDR_SYMBOLS,
    MAX_RECEIVERS,
    ahdr_overhead_ratio,
    build_ahdr_filter,
    decode_ahdr,
    encode_ahdr,
    naive_header_bits,
)
from repro.core.energy import (
    WPC55AG,
    DevicePowerModel,
    EnergyBreakdown,
    carpool_energy_overhead,
)
from repro.core.frame import (
    AHDR_SYMBOL_OFFSET,
    CarpoolTransmitter,
    CarpoolTxFrame,
    SubframeSpec,
    TxSubframe,
)
from repro.core.mac_address import MacAddress
from repro.core.receiver import (
    CarpoolReceiver,
    CarpoolRxResult,
    SubframeRx,
    decode_subframe_symbols,
)
from repro.core.rte import HARDENED_GUARD, UPDATE_RULES, RealTimeEstimator, RteGuard
from repro.core.sequential_ack import AckTiming, SequentialAckPlan
from repro.core.side_channel import (
    ONE_BIT_SCHEME,
    SCHEMES,
    TWO_BIT_SCHEME,
    PhaseOffsetScheme,
    wrap_phase,
)
from repro.core.compat import (
    AssociationTable,
    Capability,
    DualModeReceiver,
    FrameFormat,
    classify_frame,
)
from repro.core.mimo import (
    MuMimoCarpoolReceiver,
    MuMimoCarpoolTransmitter,
    MuMimoFrameLayout,
    transmissions_required,
)
from repro.core.mac_payload import pack_mpdus, unpack_mpdus
from repro.core.transport import CarpoolLink, DeliveryReport, StationEndpoint
from repro.core.symbol_crc import DEFAULT_CRC_CONFIG, SymbolCrcConfig, crc_checksum_bits

__all__ = [
    "AggregationBatch",
    "AggregationPolicy",
    "AggregationQueue",
    "QueuedFrame",
    "AHDR_BITS",
    "AHDR_NUM_HASHES",
    "AHDR_SYMBOLS",
    "MAX_RECEIVERS",
    "ahdr_overhead_ratio",
    "build_ahdr_filter",
    "decode_ahdr",
    "encode_ahdr",
    "naive_header_bits",
    "WPC55AG",
    "DevicePowerModel",
    "EnergyBreakdown",
    "carpool_energy_overhead",
    "AHDR_SYMBOL_OFFSET",
    "CarpoolTransmitter",
    "CarpoolTxFrame",
    "SubframeSpec",
    "TxSubframe",
    "MacAddress",
    "CarpoolReceiver",
    "CarpoolRxResult",
    "SubframeRx",
    "decode_subframe_symbols",
    "UPDATE_RULES",
    "RealTimeEstimator",
    "RteGuard",
    "HARDENED_GUARD",
    "AckTiming",
    "SequentialAckPlan",
    "ONE_BIT_SCHEME",
    "TWO_BIT_SCHEME",
    "SCHEMES",
    "PhaseOffsetScheme",
    "wrap_phase",
    "DEFAULT_CRC_CONFIG",
    "SymbolCrcConfig",
    "crc_checksum_bits",
    "AssociationTable",
    "Capability",
    "DualModeReceiver",
    "FrameFormat",
    "classify_frame",
    "MuMimoCarpoolReceiver",
    "MuMimoCarpoolTransmitter",
    "MuMimoFrameLayout",
    "transmissions_required",
    "pack_mpdus",
    "unpack_mpdus",
    "CarpoolLink",
    "DeliveryReport",
    "StationEndpoint",
]
