"""AP-side aggregation policy: which queued frames ride in one Carpool frame.

The aggregation process ends when the buffered frames reach the maximum
frame size or the oldest frame's queueing delay reaches the latency limit
(§7.2, "Performance with different latency requirements and frame sizes").
Frames for the same receiver become one subframe (they are A-MPDU-merged at
MAC level first); at most eight distinct receivers share a frame.

Delay-sensitive traffic is served before delay-insensitive FIFO traffic,
matching the priority rule of §8 (Fairness).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.ahdr import MAX_RECEIVERS
from repro.core.mac_address import MacAddress

__all__ = ["QueuedFrame", "AggregationPolicy", "AggregationBatch", "AggregationQueue"]


@dataclass(order=True)
class QueuedFrame:
    """One downlink frame waiting at the AP."""

    enqueue_time: float
    receiver: MacAddress = field(compare=False)
    size_bytes: int = field(compare=False)
    delay_sensitive: bool = field(compare=False, default=False)
    frame_id: int = field(compare=False, default=0)

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("frame size must be positive")


@dataclass(frozen=True)
class AggregationPolicy:
    """Limits that end the aggregation process.

    Attributes:
        max_frame_bytes: Total aggregated payload cap (64 KB in 802.11n's
            A-MPDU; Carpool frames may approach it).
        max_latency: Oldest-frame deadline in seconds; aggregation flushes
            when the head frame has waited this long.
        max_receivers: Distinct destinations per Carpool frame (≤ 8).
        max_subframe_bytes: Per-receiver cap (SIG LENGTH is 12 bits).
    """

    max_frame_bytes: int = 65535
    max_latency: float = 0.010
    max_receivers: int = MAX_RECEIVERS
    max_subframe_bytes: int = 4095

    def __post_init__(self):
        if self.max_receivers > MAX_RECEIVERS:
            raise ValueError(f"Carpool supports at most {MAX_RECEIVERS} receivers")
        if self.max_frame_bytes <= 0 or self.max_subframe_bytes <= 0:
            raise ValueError("size limits must be positive")
        if self.max_latency <= 0:
            raise ValueError("latency limit must be positive")


@dataclass
class AggregationBatch:
    """The outcome of one aggregation decision: per-receiver byte loads."""

    subframes: "OrderedDict[MacAddress, list]"  # receiver → [QueuedFrame, ...]

    @property
    def receivers(self) -> list:
        """Destinations in subframe order."""
        return list(self.subframes.keys())

    @property
    def num_receivers(self) -> int:
        """Distinct destinations in the batch."""
        return len(self.subframes)

    def subframe_bytes(self, receiver: MacAddress) -> int:
        """Payload bytes destined to one receiver."""
        return sum(f.size_bytes for f in self.subframes[receiver])

    @property
    def total_bytes(self) -> int:
        """Aggregate payload bytes across all subframes."""
        return sum(f.size_bytes for frames in self.subframes.values() for f in frames)

    @property
    def frames(self) -> list:
        """Every queued frame in the batch, subframe order."""
        return [f for frames in self.subframes.values() for f in frames]


class AggregationQueue:
    """The AP's downlink buffer plus the Carpool aggregation decision.

    Not thread-safe; the event-driven MAC simulator drives it from a single
    logical clock.
    """

    def __init__(self, policy: AggregationPolicy | None = None):
        self.policy = policy or AggregationPolicy()
        self._queue: list = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def pending_bytes(self) -> int:
        """Bytes currently buffered at the AP."""
        return sum(f.size_bytes for f in self._queue)

    def enqueue(self, frame: QueuedFrame) -> None:
        """Buffer one downlink frame."""
        self._queue.append(frame)

    def oldest_enqueue_time(self) -> float | None:
        """Enqueue time of the oldest buffered frame (None if empty)."""
        if not self._queue:
            return None
        return min(f.enqueue_time for f in self._queue)

    def should_flush(self, now: float) -> bool:
        """Has the size cap been reached or the head deadline expired?"""
        if not self._queue:
            return False
        if self.pending_bytes >= self.policy.max_frame_bytes:
            return True
        oldest = self.oldest_enqueue_time()
        return now - oldest >= self.policy.max_latency

    def build_batch(self, now: float) -> AggregationBatch | None:
        """Pop the next Carpool batch, or None if the queue is empty.

        Selection: delay-sensitive frames first, then FIFO; frames are
        added receiver-group by receiver-group until a limit binds. The
        first frame is always included (a single frame larger than
        ``max_frame_bytes`` would otherwise wedge the queue).
        """
        if not self._queue:
            return None
        ordered = sorted(
            self._queue, key=lambda f: (not f.delay_sensitive, f.enqueue_time, f.frame_id)
        )
        policy = self.policy
        chosen: "OrderedDict[MacAddress, list]" = OrderedDict()
        total = 0
        taken = set()
        for frame in ordered:
            new_receiver = frame.receiver not in chosen
            if new_receiver and len(chosen) >= policy.max_receivers:
                continue
            if chosen and total + frame.size_bytes > policy.max_frame_bytes:
                continue
            if (
                frame.receiver in chosen
                and self._bytes_of(chosen[frame.receiver]) + frame.size_bytes
                > policy.max_subframe_bytes
            ):
                continue
            if new_receiver and frame.size_bytes > policy.max_subframe_bytes and chosen:
                continue
            chosen.setdefault(frame.receiver, []).append(frame)
            taken.add(id(frame))
            total += frame.size_bytes
        self._queue = [f for f in self._queue if id(f) not in taken]
        return AggregationBatch(subframes=chosen)

    @staticmethod
    def _bytes_of(frames: list) -> int:
        return sum(f.size_bytes for f in frames)
