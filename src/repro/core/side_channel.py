"""The phase-offset side channel (paper §5.2).

The transmitter rotates every payload OFDM symbol — all data *and* pilot
subcarriers together — by an injected phase. Because pilots and data keep
their relative phase, the receiver's pilot-based tracking measures (and
removes) the *total* common phase, so data decoding is untouched; but the
sequence of tracked phases is visible to the receiver, and the *difference*
between consecutive symbols' phases carries free bits:

    1-bit scheme:  +90° → 1,  −90° → 0
    2-bit scheme:  +45° → 11, +135° → 01, −135° → 00, −45° → 10

Differential encoding makes the channel immune to the slowly-accumulating
inherent phase of residual CFO: consecutive symbols share almost the same
inherent offset, so it cancels in the difference (up to the small per-symbol
CFO step, which is ≪ the 90° decision distance).

Carpool spends these bits on a per-symbol CRC of the data bits, turning the
side channel into the symbol-level error detector that real-time channel
estimation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PhaseOffsetScheme", "ONE_BIT_SCHEME", "TWO_BIT_SCHEME", "wrap_phase", "SCHEMES"]


def wrap_phase(phase: float) -> float:
    """Wrap an angle in radians to (−π, π]."""
    wrapped = (phase + np.pi) % (2.0 * np.pi) - np.pi
    if wrapped == -np.pi:
        wrapped = np.pi
    return float(wrapped)


@dataclass(frozen=True)
class PhaseOffsetScheme:
    """A mapping between bit patterns and phase-offset differences.

    Attributes:
        name: Scheme label.
        bits_per_symbol: Side-channel bits carried per OFDM symbol.
        offsets_deg: ``offsets_deg[label]`` is the injected phase-difference
            (degrees) encoding the bit pattern with integer value ``label``
            (MSB first).
    """

    name: str
    bits_per_symbol: int
    offsets_deg: tuple

    def __post_init__(self):
        if len(self.offsets_deg) != (1 << self.bits_per_symbol):
            raise ValueError("need one offset per bit pattern")

    def encode_deltas(self, bits: np.ndarray) -> np.ndarray:
        """Map side-channel bits to per-symbol phase differences (radians).

        ``bits`` length must be a multiple of ``bits_per_symbol``; each
        group becomes one symbol's phase-offset difference.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"{bits.size} bits not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        labels = groups @ weights
        return np.deg2rad(np.array(self.offsets_deg))[labels]

    def encode_phases(self, bits: np.ndarray) -> np.ndarray:
        """Cumulative injected phase per symbol (radians).

        The phase-offset *difference* between consecutive symbols encodes
        the bits, so injected phases accumulate (Fig. 8(b): bit sequence
        "110" under the 1-bit scheme injects 90°, 180°, 90°).
        """
        deltas = self.encode_deltas(bits)
        return np.cumsum(deltas)

    def decode_deltas(self, deltas: np.ndarray) -> np.ndarray:
        """Nearest-offset decision on measured phase differences → bits."""
        deltas = np.atleast_1d(np.asarray(deltas, dtype=np.float64))
        offsets = np.deg2rad(np.array(self.offsets_deg))
        # Distance on the circle.
        diff = deltas[:, None] - offsets[None, :]
        dist = np.abs(np.angle(np.exp(1j * diff)))
        labels = np.argmin(dist, axis=1)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        bits = (labels[:, None] >> shifts) & 1
        return bits.reshape(-1).astype(np.uint8)

    def decode_phases(self, phases: np.ndarray, reference_phase: float = 0.0) -> np.ndarray:
        """Decode tracked per-symbol total phases back to bits.

        Args:
            phases: The receiver's pilot-tracked total phase for each
                payload symbol, radians.
            reference_phase: Tracked phase of the last *uninjected* symbol
                before the payload (the SIG symbol) — the differential
                reference for the first payload symbol.
        """
        phases = np.asarray(phases, dtype=np.float64)
        prev = np.concatenate([[reference_phase], phases[:-1]])
        deltas = np.angle(np.exp(1j * (phases - prev)))
        return self.decode_deltas(deltas)


ONE_BIT_SCHEME = PhaseOffsetScheme("1-bit", 1, (-90.0, 90.0))  # 0 → −90°, 1 → +90°
TWO_BIT_SCHEME = PhaseOffsetScheme("2-bit", 2, (-135.0, 135.0, -45.0, 45.0))
# labels: 00 → −135°, 01 → +135°, 10 → −45°, 11 → +45°  (paper Table 1)

SCHEMES = {s.name: s for s in (ONE_BIT_SCHEME, TWO_BIT_SCHEME)}
