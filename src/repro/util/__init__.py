"""Shared utilities: seeded RNG streams, bit packing, unit constants."""

from repro.util.bits import (
    bits_to_bytes,
    bytes_to_bits,
    bits_to_int,
    int_to_bits,
    hamming_distance,
)
from repro.util.rng import RngStream, derive_seed
from repro.util.units import (
    KILO,
    MEGA,
    GIGA,
    MICROSECOND,
    MILLISECOND,
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
)

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "bits_to_int",
    "int_to_bits",
    "hamming_distance",
    "RngStream",
    "derive_seed",
    "KILO",
    "MEGA",
    "GIGA",
    "MICROSECOND",
    "MILLISECOND",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
]
