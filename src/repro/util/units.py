"""Unit constants and conversions.

All simulator times are in **seconds** (floats), rates in **bits/second**,
sizes in **bytes** unless a name says otherwise. These helpers keep the
literal soup of µs/ms/Mbit/s conversions out of the protocol code.
"""

from __future__ import annotations

import math

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "MICROSECOND",
    "MILLISECOND",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "bits",
    "transmission_time",
]

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to linear scale."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert a linear power ratio to dB. Requires ``linear > 0``."""
    if linear <= 0:
        raise ValueError("linear power ratio must be positive")
    return 10.0 * math.log10(linear)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power in watts to dBm."""
    if watts <= 0:
        raise ValueError("power must be positive")
    return 10.0 * math.log10(watts) + 30.0


def bits(nbytes: int) -> int:
    """Bytes → bits."""
    return int(nbytes) * 8


def transmission_time(nbytes: int, rate_bps: float) -> float:
    """Airtime in seconds for ``nbytes`` of payload at ``rate_bps``."""
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    return bits(nbytes) / float(rate_bps)
