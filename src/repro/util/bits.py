"""Bit-level helpers used across the PHY and Carpool core.

All bit sequences in this project are numpy ``uint8`` arrays holding 0/1
values, most-significant bit first within each byte. This matches the order
in which the 802.11 scrambler and convolutional coder consume bits.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "hamming_distance",
    "random_bits",
    "pad_bits",
]


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand ``data`` into an array of 0/1 values, MSB first per byte.

    >>> bytes_to_bits(b"\\x80").tolist()
    [1, 0, 0, 0, 0, 0, 0, 0]
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a 0/1 array (MSB first) back into bytes.

    The bit count must be a multiple of 8; raises ``ValueError`` otherwise so
    framing bugs surface immediately instead of silently truncating.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 8")
    return np.packbits(bits).tobytes()


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as ``width`` bits, MSB first.

    >>> int_to_bits(5, 4).tolist()
    [0, 1, 0, 1]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Decode an MSB-first bit array into an integer."""
    value = 0
    for bit in np.asarray(bits, dtype=np.uint8):
        value = (value << 1) | int(bit)
    return value


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where two equal-length bit arrays differ."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` uniform random bits from ``rng``."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def pad_bits(bits: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad ``bits`` up to the next multiple of ``multiple``."""
    bits = np.asarray(bits, dtype=np.uint8)
    remainder = bits.size % multiple
    if remainder == 0:
        return bits
    return np.concatenate([bits, np.zeros(multiple - remainder, dtype=np.uint8)])
