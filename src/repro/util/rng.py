"""Deterministic, independently-seedable random streams.

Experiments in this repository are reproducible: every stochastic component
(channel fading, noise, traffic arrivals, backoff) draws from its own named
stream derived from a single experiment seed. Two components never share a
stream, so adding draws to one cannot perturb another — a property the
trace-driven MAC benchmarks rely on when comparing protocols on identical
workloads.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStream"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    Uses SHA-256 so distinct names give statistically independent seeds and
    the mapping is stable across Python/numpy versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream:
    """A named tree of independent numpy Generators.

    >>> root = RngStream(seed=7)
    >>> fading = root.child("fading")
    >>> noise = root.child("noise")
    >>> fading.generator is not noise.generator
    True

    The same ``(seed, path)`` always yields the same sequence.
    """

    def __init__(self, seed: int, _path: tuple = ()):
        self.seed = int(seed)
        self._path = _path
        self._generator: np.random.Generator | None = None

    @property
    def path(self) -> tuple:
        """This stream's name path under the root seed."""
        return self._path

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy Generator (created lazily)."""
        if self._generator is None:
            self._generator = np.random.default_rng(derive_seed(self.seed, *self._path))
        return self._generator

    def child(self, name: str) -> "RngStream":
        """A new independent stream scoped under this one."""
        return RngStream(self.seed, self._path + (name,))

    # Convenience pass-throughs for the most common draws -------------------

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        """Uniform draw(s) from [low, high)."""
        return self.generator.uniform(low, high, size)

    def exponential(self, scale: float, size=None):
        """Exponential draw(s) with the given mean."""
        return self.generator.exponential(scale, size)

    def integers(self, low: int, high: int, size=None):
        """Integer draw(s) from [low, high)."""
        return self.generator.integers(low, high, size)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian draw(s)."""
        return self.generator.normal(loc, scale, size)

    def complex_normal(self, scale: float = 1.0, size=None) -> np.ndarray:
        """Circularly-symmetric complex Gaussian with variance ``scale**2``."""
        gen = self.generator
        sigma = scale / np.sqrt(2.0)
        return gen.normal(0.0, sigma, size) + 1j * gen.normal(0.0, sigma, size)

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, path={'/'.join(self._path) or '<root>'})"
