"""Trace-driven calibration: PHY measurements → MAC error model.

The paper feeds USRP decoding traces into its MAC simulator (§7.2.1). Our
equivalent: run this package's PHY over the office channel, measure the
per-symbol decode-failure curves under standard estimation and RTE, and
fit the :class:`~repro.mac.error_model.BerCurveErrorModel` the MAC
simulator draws subframe outcomes from.

Calibration is the expensive input of every system-level sweep — seconds
of PHY decoding per point, against milliseconds of MAC simulation — and
sweep points sharing an SNR/MCS need the *same* model. Results therefore
go through :class:`repro.runtime.cache.ResultCache`: keyed on every
calibration input plus a fingerprint of the PHY/analysis source code (so
code changes invalidate stale entries), bypassed with ``cache=False`` or
``REPRO_NO_CACHE=1``, cleared with :func:`clear_calibration_cache`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index
from repro.mac.error_model import BerCurveErrorModel, fit_ber_curve
from repro.obs.log import get_logger
from repro.obs.trace import metrics
from repro.runtime.cache import ResultCache, code_fingerprint, content_key

log = get_logger(__name__)

__all__ = [
    "symbol_failure_from_ber",
    "calibrate_error_model",
    "clear_calibration_cache",
]

# Everything whose behaviour shapes the fitted curves: the PHY chain, the
# channel, the measurement harness, and this module's own conversion.
_FINGERPRINT_MODULES = (
    "repro.analysis.calibration",
    "repro.analysis.phy_experiments",
    "repro.channel",
    "repro.core",
    "repro.mac.error_model",
    "repro.phy",
)

_CACHE = ResultCache(namespace="calibration")


def clear_calibration_cache() -> None:
    """Drop every cached calibration (memory and disk)."""
    _CACHE.clear()


def symbol_failure_from_ber(
    ber_per_symbol: np.ndarray,
    coding_gain: float = 20.0,
    bits_per_symbol: int = 288,
) -> np.ndarray:
    """Convert raw per-symbol BER into post-FEC symbol-decode-failure rates.

    A symbol "fails" when its coded block cannot be recovered. The K=7
    convolutional code corrects scattered errors, so only a fraction of
    the raw error mass survives decoding; we model the failure probability
    as 1 − (1 − BER)^(bits/coding_gain): the chance that any of the
    symbol's *effective* (post-correction) bit positions is wrong.
    ``coding_gain`` is the error-mass reduction factor of rate-1/2..3/4
    Viterbi at the BERs of interest. Capped at 0.5 like the curve model.
    """
    ber = np.clip(np.asarray(ber_per_symbol, dtype=float), 0.0, 0.999)
    effective_bits = bits_per_symbol / coding_gain
    failure = 1.0 - np.power(1.0 - ber, effective_bits)
    return np.minimum(failure, 0.5)


def _calibration_key(mcs_name, payload_bytes, trials, link, coding_gain) -> str:
    return content_key(
        "calibrate_error_model",
        {
            "mcs": mcs_name,
            "payload_bytes": payload_bytes,
            "trials": trials,
            "link": repr(link),  # dataclass repr: every field, deterministic
            "coding_gain": coding_gain,
        },
        fingerprint=code_fingerprint(*_FINGERPRINT_MODULES),
    )


def calibrate_error_model(
    mcs_name: str = "QAM64-3/4",
    payload_bytes: int = 4090,
    trials: int = 30,
    link: LinkConfig | None = None,
    coding_gain: float = 20.0,
    cache: bool = True,
    n_workers: int | None = 1,
) -> BerCurveErrorModel:
    """Measure the PHY and fit the MAC-layer error model from it.

    Runs the Fig. 13 experiment twice (standard vs RTE decoding of the
    same channel draws), converts raw BER to symbol-failure probabilities,
    and fits the linear bias curve.

    ``cache=True`` (the default) memoises the fitted model on disk keyed
    by every input and the PHY source fingerprint; repeated sweep points
    at the same SNR/MCS then skip the PHY chain entirely. Links carrying
    a fault plan are never cached (plans have no stable content key).
    """
    link = link or LinkConfig()
    use_cache = cache and link.fault_plan is None
    key = _calibration_key(mcs_name, payload_bytes, trials, link, coding_gain)
    if use_cache:
        stored = _CACHE.get(key)
        if stored is not None:
            return BerCurveErrorModel(**stored)
    log.info("calibrating error model: %s, %d B, %d trials (cache miss)",
             mcs_name, payload_bytes, trials)
    with metrics().timer("analysis.calibrate").time():
        standard = ber_by_symbol_index(
            mcs_name, payload_bytes, trials, use_rte=False, link=link,
            n_workers=n_workers,
        )
        rte = ber_by_symbol_index(
            mcs_name, payload_bytes, trials, use_rte=True, link=link,
            n_workers=n_workers,
        )
        std_fail = symbol_failure_from_ber(standard.ber_per_symbol, coding_gain)
        rte_fail = symbol_failure_from_ber(rte.ber_per_symbol, coding_gain)
        model = fit_ber_curve(std_fail, rte_fail)
    if use_cache:
        _CACHE.put(key, dataclasses.asdict(model))
    return model
