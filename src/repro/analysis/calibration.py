"""Trace-driven calibration: PHY measurements → MAC error model.

The paper feeds USRP decoding traces into its MAC simulator (§7.2.1). Our
equivalent: run this package's PHY over the office channel, measure the
per-symbol decode-failure curves under standard estimation and RTE, and
fit the :class:`~repro.mac.error_model.BerCurveErrorModel` the MAC
simulator draws subframe outcomes from.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index
from repro.mac.error_model import BerCurveErrorModel, fit_ber_curve

__all__ = ["symbol_failure_from_ber", "calibrate_error_model"]


def symbol_failure_from_ber(
    ber_per_symbol: np.ndarray,
    coding_gain: float = 20.0,
    bits_per_symbol: int = 288,
) -> np.ndarray:
    """Convert raw per-symbol BER into post-FEC symbol-decode-failure rates.

    A symbol "fails" when its coded block cannot be recovered. The K=7
    convolutional code corrects scattered errors, so only a fraction of
    the raw error mass survives decoding; we model the failure probability
    as 1 − (1 − BER)^(bits/coding_gain): the chance that any of the
    symbol's *effective* (post-correction) bit positions is wrong.
    ``coding_gain`` is the error-mass reduction factor of rate-1/2..3/4
    Viterbi at the BERs of interest. Capped at 0.5 like the curve model.
    """
    ber = np.clip(np.asarray(ber_per_symbol, dtype=float), 0.0, 0.999)
    effective_bits = bits_per_symbol / coding_gain
    failure = 1.0 - np.power(1.0 - ber, effective_bits)
    return np.minimum(failure, 0.5)


def calibrate_error_model(
    mcs_name: str = "QAM64-3/4",
    payload_bytes: int = 4090,
    trials: int = 30,
    link: LinkConfig | None = None,
    coding_gain: float = 20.0,
) -> BerCurveErrorModel:
    """Measure the PHY and fit the MAC-layer error model from it.

    Runs the Fig. 13 experiment twice (standard vs RTE decoding of the
    same channel draws), converts raw BER to symbol-failure probabilities,
    and fits the linear bias curve.
    """
    link = link or LinkConfig()
    standard = ber_by_symbol_index(
        mcs_name, payload_bytes, trials, use_rte=False, link=link
    )
    rte = ber_by_symbol_index(mcs_name, payload_bytes, trials, use_rte=True, link=link)
    std_fail = symbol_failure_from_ber(standard.ber_per_symbol, coding_gain)
    rte_fail = symbol_failure_from_ber(rte.ber_per_symbol, coding_gain)
    return fit_ber_curve(std_fail, rte_fail)
