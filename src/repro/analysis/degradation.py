"""Graceful-degradation sweeps: Carpool under faults it was not built for.

Two experiments quantify the robustness additions:

* :func:`degradation_sweep` — MAC-level: throughput of Carpool (as
  published), hardened Carpool-with-fallback (timestamp ACK matching +
  per-receiver demotion to unicast) and plain 802.11, swept over injected
  ACK-loss rates and/or a bursty-loss channel. The published design's
  shared-fate failure modes (one corrupted A-HDR loses the whole
  aggregate; one lost sequential ACK desynchronises the ACK train) make
  it fall *below* 802.11 under heavy impairment — the fallback restores
  the better of the two worlds.
* :func:`rte_burst_resilience` — PHY-level: tail-symbol BER of RTE with
  the naive Eq. (3) update versus the hardened outlier-rejecting
  estimator, under injected impulse-noise bursts whose corrupted symbols
  occasionally pass the 2-bit side-channel CRC and poison the naive
  estimate.

All sweeps run through :func:`repro.runtime.run_trials` and are a pure
function of their seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rte import HARDENED_GUARD, RteGuard
from repro.faults.plan import FaultPlan, FaultSpec
from repro.runtime.trials import run_trials
from repro.util.rng import derive_seed

__all__ = [
    "DegradationPoint",
    "RteResilienceResult",
    "degradation_sweep",
    "make_degradation_plan",
    "rte_burst_resilience",
]

#: The three contenders of the degradation story.
SWEEP_PROTOCOLS = ("Carpool", "Carpool-fallback", "802.11")


@dataclass(frozen=True)
class DegradationPoint:
    """Mean metrics of one (protocol, fault intensity) sweep cell."""

    protocol: str
    ack_loss: float
    bursty: bool
    goodput_bps: float
    useful_goodput_bps: float
    retransmitted_subframes: float
    dropped_frames: float
    trials: int


@dataclass(frozen=True)
class RteResilienceResult:
    """Tail-vs-head BER of one RTE variant under bursty corruption."""

    scheme: str
    ber_per_symbol: np.ndarray
    head_ber: float
    tail_ber: float

    @property
    def tail_head_ratio(self) -> float:
        return self.tail_ber / max(self.head_ber, 1e-12)


def make_degradation_plan(ack_loss: float, bursty: bool = False,
                          horizon: float = 30.0) -> FaultPlan:
    """The fault plan one sweep cell runs under.

    ``ack_loss`` injects per-ACK loss. ``bursty`` adds a mild
    Gilbert–Elliott bursty-loss channel plus periodic A-HDR *outage
    windows* — 60 ms spells (e.g. a frequency-hopping interferer landing
    on the aggregation header) during which every Carpool A-HDR is
    corrupted. The outages are the aggregate's shared fate at its
    starkest: within one window a frame burns through its whole retry
    budget and is dropped, while plain unicast (no A-HDR) sails through —
    exactly the regime the fallback's demote/re-promote cycle is built
    for. ``horizon`` bounds the generated windows (simulation end time).
    """
    specs = []
    if ack_loss > 0.0:
        specs.append(FaultSpec.make("ack_loss", probability=ack_loss))
    if bursty:
        specs.append(FaultSpec.make(
            "mac_burst", probability=1.0, mean_good=0.030, mean_bad=0.004,
        ))
        window, period, t = 0.060, 0.400, 0.200
        index = 0
        while t < horizon:
            specs.append(FaultSpec.make(
                "ahdr_corruption", probability=1.0, miss_probability=1.0,
                start=t, stop=t + window, seed_salt=f"w{index}",
            ))
            t += period
            index += 1
    return FaultPlan.of(*specs)


def _degradation_trial(trial_index, rng, protocol_name, ack_loss, bursty,
                       num_stations, duration):
    """One sweep-cell trial: run the VoIP scenario under the fault plan.

    The hardened contender ("Carpool-fallback") also gets timestamp-based
    sequential-ACK matching; the published design keeps the fragile
    ordinal matcher.
    """
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import VoipScenario

    trial_seed = int(rng.integers(0, np.iinfo(np.int64).max))
    hardened = protocol_name == "Carpool-fallback"
    scenario = VoipScenario(
        num_stations=num_stations,
        num_aps=1,
        duration=duration,
        seed=trial_seed,
        include_uplink=False,
        fault_plan=make_degradation_plan(ack_loss, bursty),
        sequential_ack_recovery=hardened,
    )
    result = scenario.run(PROTOCOLS[protocol_name])
    return (
        result.measured_ap_goodput_bps,
        result.measured_ap_useful_goodput_bps,
        result.retransmitted_subframes,
        result.dropped_frames,
    )


def degradation_sweep(
    ack_loss_rates=(0.0, 0.1, 0.2, 0.3),
    bursty: bool = False,
    protocols=SWEEP_PROTOCOLS,
    num_stations: int = 8,
    duration: float = 4.0,
    trials: int = 3,
    seed: int = 7,
    n_workers: int | None = 1,
) -> dict:
    """Throughput vs injected fault intensity for each contender.

    Returns ``{protocol: [DegradationPoint per ack-loss rate]}``.
    """
    sweep: dict = {name: [] for name in protocols}
    for name in protocols:
        for rate in ack_loss_rates:
            # Common random numbers: every protocol sees the same per-trial
            # scenario seeds (same arrivals, same channel draws), so the
            # cross-protocol comparison is paired and most of the
            # Monte-Carlo variance cancels.
            outcomes = run_trials(
                _degradation_trial,
                trials,
                seed=derive_seed(seed, f"degradation-{rate}-{bursty}"),
                n_workers=n_workers,
                args=(name, float(rate), bursty, num_stations, duration),
            )
            goodput, useful, retx, drops = (np.mean([o[i] for o in outcomes])
                                            for i in range(4))
            sweep[name].append(DegradationPoint(
                protocol=name,
                ack_loss=float(rate),
                bursty=bursty,
                goodput_bps=float(goodput),
                useful_goodput_bps=float(useful),
                retransmitted_subframes=float(retx),
                dropped_frames=float(drops),
                trials=trials,
            ))
    return sweep


#: RTE variants compared by :func:`rte_burst_resilience`: the paper's
#: Eq. (3) with no outlier protection at all, and the hardened guard.
NAIVE_GUARD = RteGuard(outlier_threshold=None, symbol_reject_fraction=None)


def rte_burst_resilience(
    mcs_name: str = "QAM64-3/4",
    payload_bytes: int = 4090,
    trials: int = 20,
    burst_magnitude_db: float = 20.0,
    burst_probability: float = 0.03,
    burst_length: int = 3,
    seed: int = 0,
    n_workers: int | None = 1,
) -> dict:
    """Tail BER of naive vs hardened RTE under impulse-noise bursts.

    A burst-corrupted symbol passes the 2-bit side-channel CRC one time in
    four; the naive estimator folds that garbage into H̃ₙ and every later
    symbol decodes against a poisoned estimate. The hardened guard rejects
    the whole symbol when too many subcarriers jump at once, keeping the
    tail flat. Returns ``{"naive": RteResilienceResult, "hardened": ...}``.
    """
    from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

    plan = FaultPlan.of(FaultSpec.make(
        "impulse_noise",
        probability=burst_probability,
        magnitude=burst_magnitude_db,
        length=burst_length,
    ))
    link = LinkConfig(seed=seed, fault_plan=plan)
    results = {}
    for label, guard in (("naive", NAIVE_GUARD), ("hardened", HARDENED_GUARD)):
        r = ber_by_symbol_index(
            mcs_name, payload_bytes, trials,
            use_rte=True, link=link, rte_guard=guard, n_workers=n_workers,
        )
        ber = r.ber_per_symbol
        quarter = max(1, ber.size // 4)
        results[label] = RteResilienceResult(
            scheme=label,
            ber_per_symbol=ber,
            head_ber=float(ber[:quarter].mean()),
            tail_ber=float(ber[-quarter:].mean()),
        )
    return results
