"""Analytic MAC-efficiency model (the §1/§2 motivation).

The paper's opening argument: per-frame overheads (DIFS, backoff, PLCP
preamble, SIFS, ACK) are fixed in *time*, so as PHY rates climb from
54 Mbit/s to 600 Mbit/s the payload shrinks to a sliver of each exchange
and "MAC efficiency of Wi-Fi networks degrades rapidly". Carpool attacks
exactly this: one set of overheads amortised over up to eight receivers.

These closed forms compute the airtime budget of one channel access per
scheme and the resulting efficiency (payload airtime / total airtime),
matching the simulator's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ahdr import AHDR_SYMBOLS
from repro.mac.airtime import ack_airtime
from repro.mac.parameters import PhyMacParameters

__all__ = ["ExchangeBudget", "single_frame_exchange", "carpool_exchange", "mac_efficiency"]


@dataclass(frozen=True)
class ExchangeBudget:
    """Airtime decomposition of one channel access."""

    contention: float  # DIFS + mean backoff
    headers: float  # PLCP preamble(s), A-HDR, SIGs
    payload: float
    acks: float  # SIFS gaps + ACK frames

    @property
    def total(self) -> float:
        """Whole-exchange airtime."""
        return self.contention + self.headers + self.payload + self.acks

    @property
    def efficiency(self) -> float:
        """Fraction of the exchange spent moving payload bits."""
        return self.payload / self.total


def _mean_backoff(params: PhyMacParameters) -> float:
    """Expected idle backoff of an uncontended access: CWmin/2 slots."""
    return params.cw_min / 2.0 * params.slot_time


def single_frame_exchange(payload_bytes: int, params: PhyMacParameters) -> ExchangeBudget:
    """One legacy 802.11 exchange: DIFS + backoff + frame + SIFS + ACK."""
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    return ExchangeBudget(
        contention=params.difs + _mean_backoff(params),
        headers=params.plcp_header_time,
        payload=8 * payload_bytes / params.phy_rate_bps,
        acks=params.sifs + ack_airtime(params),
    )


def carpool_exchange(payload_bytes_per_receiver: int, num_receivers: int,
                     params: PhyMacParameters) -> ExchangeBudget:
    """One Carpool exchange serving ``num_receivers`` stations.

    One contention + one preamble + the 2-symbol A-HDR + one SIG per
    subframe, then the sequential-ACK train (Eq. 1).
    """
    if payload_bytes_per_receiver <= 0 or num_receivers < 1:
        raise ValueError("invalid payload or receiver count")
    headers = (
        params.plcp_header_time
        + AHDR_SYMBOLS * params.symbol_duration
        + num_receivers * params.symbol_duration  # SIGs
    )
    return ExchangeBudget(
        contention=params.difs + _mean_backoff(params),
        headers=headers,
        payload=8 * payload_bytes_per_receiver * num_receivers / params.phy_rate_bps,
        acks=num_receivers * (params.sifs + ack_airtime(params)),
    )


def mac_efficiency(payload_bytes: int, phy_rate_bps: float,
                   params: PhyMacParameters | None = None,
                   carpool_receivers: int | None = None) -> float:
    """Efficiency of one exchange at a given PHY rate.

    ``carpool_receivers=None`` gives the legacy per-frame exchange; a
    receiver count gives the Carpool exchange carrying ``payload_bytes``
    *per receiver*.
    """
    base = params or PhyMacParameters()
    scaled = PhyMacParameters(
        slot_time=base.slot_time,
        sifs=base.sifs,
        difs=base.difs,
        cw_min=base.cw_min,
        cw_max=base.cw_max,
        plcp_header_time=base.plcp_header_time,
        propagation_delay=base.propagation_delay,
        phy_rate_bps=phy_rate_bps,
        basic_rate_bps=base.basic_rate_bps,
        ack_bytes=base.ack_bytes,
        retry_limit=base.retry_limit,
        symbol_duration=base.symbol_duration,
    )
    if carpool_receivers is None:
        return single_frame_exchange(payload_bytes, scaled).efficiency
    return carpool_exchange(payload_bytes, carpool_receivers, scaled).efficiency
