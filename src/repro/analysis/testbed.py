"""The paper's testbed geometry (Fig. 10): a 10 m × 10 m office.

The Carpool transmitter sits at the room centre; receivers occupy 30
distinct locations. We regenerate an equivalent layout deterministically:
a jittered grid covering the room, with every location at least half a
metre from the transmitter. Per-location link SNR comes from the
log-distance path-loss model, which the PHY experiments and the MAC rate
controller both consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.path_loss import LogDistancePathLoss, link_snr_db
from repro.util.rng import RngStream

__all__ = ["Location", "OfficeTestbed"]

ROOM_SIZE_M = 10.0
NUM_LOCATIONS = 30


@dataclass(frozen=True)
class Location:
    """One receiver spot in the office."""

    index: int
    x: float
    y: float

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance to a point in the room (metres)."""
        return float(np.hypot(self.x - x, self.y - y))


class OfficeTestbed:
    """Fig. 10's layout: centre transmitter, 30 receiver locations.

    Args:
        seed: Placement jitter seed (locations are deterministic per seed).
        path_loss: Propagation model for per-location SNR.
    """

    def __init__(self, seed: int = 10, path_loss: LogDistancePathLoss | None = None,
                 shadowing_sigma_db: float = 6.0):
        self.transmitter_xy = (ROOM_SIZE_M / 2.0, ROOM_SIZE_M / 2.0)
        self.path_loss = path_loss or LogDistancePathLoss()
        self.locations = self._place(seed)
        # Per-location log-normal shadowing: walls, furniture and bodies
        # make two equidistant spots differ by several dB — the spread that
        # makes per-subframe rate adaptation worthwhile.
        gen = RngStream(seed).child("shadowing").generator
        self._shadowing_db = {
            loc.index: float(gen.normal(0.0, shadowing_sigma_db))
            for loc in self.locations
        }

    def _place(self, seed: int) -> list:
        gen = RngStream(seed).child("testbed").generator
        # 6 × 5 grid with jitter, clamped into the room, pushed off the TX.
        locations = []
        index = 0
        tx_x, tx_y = self.transmitter_xy
        for gx in range(6):
            for gy in range(5):
                x = (gx + 0.5) * ROOM_SIZE_M / 6.0 + gen.uniform(-0.5, 0.5)
                y = (gy + 0.5) * ROOM_SIZE_M / 5.0 + gen.uniform(-0.5, 0.5)
                x = float(np.clip(x, 0.2, ROOM_SIZE_M - 0.2))
                y = float(np.clip(y, 0.2, ROOM_SIZE_M - 0.2))
                distance = float(np.hypot(x - tx_x, y - tx_y))
                if distance < 0.5:
                    # Push radially to the 0.5 m exclusion circle.
                    if distance < 1e-6:
                        x, y = tx_x + 0.5, tx_y
                    else:
                        scale = 0.5 / distance
                        x = tx_x + (x - tx_x) * scale
                        y = tx_y + (y - tx_y) * scale
                locations.append(Location(index, x, y))
                index += 1
        assert len(locations) == NUM_LOCATIONS
        return locations

    def distance(self, location: Location) -> float:
        """Distance from the transmitter to ``location`` (metres)."""
        return location.distance_to(*self.transmitter_xy)

    def snr_db(self, location: Location, tx_power_dbm: float = 6.0,
               noise_floor_dbm: float = -65.0) -> float:
        """Link SNR at a location: path loss plus per-location shadowing.

        The 6 dBm default transmit power corresponds to the paper's USRP
        power magnitude 0.2 of the 20 dBm front-end maximum; the −65 dBm
        effective noise floor folds in the front-end noise figure and
        implementation loss of an SDR receive chain (thermal −101 dBm over
        20 MHz would make every indoor link error-free, which USRP links
        demonstrably are not).
        """
        base = link_snr_db(
            self.distance(location), tx_power_dbm, noise_floor_dbm, self.path_loss
        )
        return base + self._shadowing_db[location.index]

    def snr_map(self, **kwargs) -> dict:
        """location index → SNR, for all 30 spots."""
        return {loc.index: self.snr_db(loc, **kwargs) for loc in self.locations}

    def distances(self) -> np.ndarray:
        """Transmitter distance of every location, in index order."""
        return np.array([self.distance(loc) for loc in self.locations])
