"""Deployment-scale protocol comparison (the paper's thesis at N APs).

The single-cell benchmarks show Carpool beating the baselines inside one
collision domain. This sweep asks the deployment-level question the title
poses — *less transmissions, more throughput in public WLANs* — by
running the same multi-BSS deployment (:mod:`repro.net`) under each
protocol and comparing:

* total and useful (deadline-respecting) downlink goodput,
* channel busy airtime summed over cells — "less transmissions" shows up
  directly as airtime saved vs the 802.11 / A-MPDU baselines,
* deployment-wide Jain fairness over per-station delivered bytes,
* roam counts and handoff interruption (identical across protocols: the
  association timeline depends on geometry and mobility, not on the MAC).

Each (config, protocol) cell is one cached :func:`simulate_deployment`
call, so re-running a sweep after editing plotting/reporting code is
free, and every protocol sees the *identical* topology, association
timeline, arrival streams, and interference windows.
"""

from __future__ import annotations

import dataclasses

from repro.net.deployment import (
    DeploymentConfig,
    DeploymentResult,
    simulate_deployment,
)

__all__ = [
    "DEPLOYMENT_PROTOCOLS",
    "deployment_protocol_sweep",
    "airtime_saved_s",
    "deployment_scaling_sweep",
    "format_deployment_table",
]

#: The deployment comparison set: legacy unicast, the strongest standard
#: aggregation baseline, and Carpool.
DEPLOYMENT_PROTOCOLS = ("802.11", "A-MPDU", "Carpool")


def deployment_protocol_sweep(
    config: DeploymentConfig,
    protocols=DEPLOYMENT_PROTOCOLS,
    n_workers: int | None = None,
    use_cache: bool = True,
    shards: int | None = None,
) -> dict:
    """Run one deployment under each protocol; name → DeploymentResult.

    Only ``config.protocol`` varies between runs — placement, association,
    mobility, and interference windows are seed-derived and therefore
    byte-identical across protocols, which is what makes the goodput and
    airtime columns directly comparable.

    ``shards=k`` streams each deployment through worker-side reduction
    (constant parent memory, no per-cell breakdown); deployment-level
    columns are bit-identical either way.
    """
    return {
        name: simulate_deployment(
            dataclasses.replace(config, protocol=name),
            n_workers=n_workers, use_cache=use_cache, shards=shards,
        )
        for name in protocols
    }


def airtime_saved_s(results: dict, protocol: str = "Carpool",
                    baseline: str = "802.11") -> float:
    """Busy airtime ``baseline`` burns that ``protocol`` does not (seconds).

    Positive = the protocol occupies the medium for less time while
    carrying the same offered load — the paper's "less transmissions"
    translated to deployment scale.
    """
    return results[baseline].busy_airtime_s - results[protocol].busy_airtime_s


def deployment_scaling_sweep(
    ap_counts,
    base: DeploymentConfig | None = None,
    protocols=DEPLOYMENT_PROTOCOLS,
    n_workers: int | None = None,
    use_cache: bool = True,
    shards: int | None = None,
) -> dict:
    """n_aps → {protocol → DeploymentResult} over growing deployments.

    Station count scales with the AP count (``stas_per_ap`` held fixed),
    the dense-hotspot growth mode where inter-cell coupling matters most.
    Pass ``shards=`` for large ``ap_counts`` so parent memory stays flat
    as deployments grow.
    """
    base = base or DeploymentConfig()
    return {
        n_aps: deployment_protocol_sweep(
            dataclasses.replace(base, n_aps=n_aps),
            protocols=protocols, n_workers=n_workers, use_cache=use_cache,
            shards=shards,
        )
        for n_aps in ap_counts
    }


def format_deployment_table(results: dict, baseline: str = "802.11") -> str:
    """Human-readable comparison table for one protocol sweep."""
    lines = [
        f"{'scheme':<14s} {'goodput':>10s} {'useful':>10s} "
        f"{'airtime':>9s} {'saved':>8s} {'Jain':>6s} {'roams':>6s}"
    ]
    for name, result in results.items():
        saved = (
            airtime_saved_s(results, protocol=name, baseline=baseline)
            if baseline in results else 0.0
        )
        lines.append(
            f"{name:<14s} "
            f"{result.total_goodput_bps / 1e6:8.3f} M "
            f"{result.total_useful_goodput_bps / 1e6:8.3f} M "
            f"{result.busy_airtime_s:8.2f}s "
            f"{saved:7.2f}s "
            f"{result.jain_fairness:6.3f} "
            f"{result.n_roams:>6d}"
        )
    return "\n".join(lines)
