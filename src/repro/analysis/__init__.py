"""Measurement harness and statistics for the reproduction experiments."""

from repro.analysis.calibration import calibrate_error_model, symbol_failure_from_ber
from repro.analysis.degradation import (
    DegradationPoint,
    RteResilienceResult,
    degradation_sweep,
    make_degradation_plan,
    rte_burst_resilience,
)
from repro.analysis.phy_experiments import (
    LinkConfig,
    OFFICE_PROFILE,
    ber_by_symbol_index,
    data_ber_with_side_channel,
    side_channel_vs_data_ber,
)
from repro.analysis.deployment_sweep import (
    DEPLOYMENT_PROTOCOLS,
    airtime_saved_s,
    deployment_protocol_sweep,
    deployment_scaling_sweep,
    format_deployment_table,
)
from repro.analysis.efficiency import carpool_exchange, mac_efficiency, single_frame_exchange
from repro.analysis.location_sweep import LocationSweepResult, ber_across_locations
from repro.analysis.stats import empirical_cdf, geometric_mean, mean_confidence_interval
from repro.analysis.testbed import Location, OfficeTestbed

__all__ = [
    "DegradationPoint",
    "RteResilienceResult",
    "degradation_sweep",
    "make_degradation_plan",
    "rte_burst_resilience",
    "calibrate_error_model",
    "symbol_failure_from_ber",
    "LinkConfig",
    "OFFICE_PROFILE",
    "ber_by_symbol_index",
    "data_ber_with_side_channel",
    "side_channel_vs_data_ber",
    "empirical_cdf",
    "geometric_mean",
    "mean_confidence_interval",
    "Location",
    "OfficeTestbed",
    "carpool_exchange",
    "mac_efficiency",
    "single_frame_exchange",
    "LocationSweepResult",
    "ber_across_locations",
    "DEPLOYMENT_PROTOCOLS",
    "airtime_saved_s",
    "deployment_protocol_sweep",
    "deployment_scaling_sweep",
    "format_deployment_table",
]
