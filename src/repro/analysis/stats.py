"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["mean_confidence_interval", "empirical_cdf", "geometric_mean"]


def mean_confidence_interval(samples, confidence: float = 0.95):
    """Mean and normal-approximation half-width of a sample set.

    Returns ``(mean, half_width)``; half-width is 0 for fewer than two
    samples.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    mean = float(samples.mean())
    if samples.size < 2:
        return mean, 0.0
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence)
    if z is None:
        raise ValueError(f"unsupported confidence {confidence}")
    half = z * float(samples.std(ddof=1)) / math.sqrt(samples.size)
    return mean, half


def empirical_cdf(samples):
    """Sorted sample values and their cumulative probabilities.

    >>> xs, ps = empirical_cdf([3, 1, 2])
    >>> xs.tolist(), ps.tolist()
    ([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])  # doctest: +SKIP
    """
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size == 0:
        raise ValueError("no samples")
    probs = np.arange(1, samples.size + 1) / samples.size
    return samples, probs


def geometric_mean(values) -> float:
    """Geometric mean of positive values (for speedup summaries)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("no values")
    if (values <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(values).mean()))
