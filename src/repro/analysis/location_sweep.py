"""Per-location BER sweeps over the office testbed (Fig. 13's error bars).

The paper "set[s] transmission power to 0.2 and var[ies] the locations of
the receivers", reporting mean ± standard deviation across spots. This
module replays that methodology: every testbed location gets its own SNR
(path loss + shadowing) and its own independent channel realisations, and
the per-symbol BER curves are aggregated across locations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index
from repro.analysis.testbed import OfficeTestbed

__all__ = ["LocationSweepResult", "ber_across_locations"]


@dataclass
class LocationSweepResult:
    """Aggregated BER-vs-symbol-index statistics across locations."""

    mean_ber_per_symbol: np.ndarray
    std_ber_per_symbol: np.ndarray
    per_location_mean: dict  # location index → mean BER
    locations_used: int
    scheme: str

    @property
    def mean_ber(self) -> float:
        """Mean BER over symbols and locations."""
        return float(self.mean_ber_per_symbol.mean())


def ber_across_locations(
    mcs_name: str = "QAM64-3/4",
    payload_bytes: int = 4090,
    trials_per_location: int = 5,
    use_rte: bool = False,
    testbed: OfficeTestbed | None = None,
    base_link: LinkConfig | None = None,
    max_locations: int | None = None,
    snr_cap_db: float = 30.0,
    min_snr_db: float | None = None,
) -> LocationSweepResult:
    """Run the Fig. 13 experiment at every testbed location.

    Args:
        trials_per_location: Channel realisations per spot (the paper's
            repeated transmissions).
        max_locations: Optionally subsample the 30 spots (tests use 3).
        snr_cap_db: Upper clamp — the closest spots would otherwise sit at
            SNRs where nothing ever errs and the statistic degenerates.
        min_snr_db: Skip spots below this SNR — a measurement campaign
            only reports locations where the modulation under test
            actually links (QAM64 needs ≳22 dB).

    Returns the across-location mean and standard deviation of the
    per-symbol BER curve.
    """
    testbed = testbed or OfficeTestbed()
    base_link = base_link or LinkConfig()
    locations = [
        loc for loc in testbed.locations
        if min_snr_db is None or testbed.snr_db(loc) >= min_snr_db
    ][:max_locations]
    if not locations:
        raise ValueError("no testbed location satisfies the SNR floor")
    curves = []
    per_location = {}
    for location in locations:
        snr = min(testbed.snr_db(location), snr_cap_db)
        link = replace(base_link, snr_db=snr, power_magnitude=None,
                       seed=base_link.seed + location.index)
        result = ber_by_symbol_index(
            mcs_name, payload_bytes, trials_per_location, use_rte=use_rte, link=link
        )
        curves.append(result.ber_per_symbol)
        per_location[location.index] = result.mean_ber
    stacked = np.vstack(curves)
    return LocationSweepResult(
        mean_ber_per_symbol=stacked.mean(axis=0),
        std_ber_per_symbol=stacked.std(axis=0),
        per_location_mean=per_location,
        locations_used=len(locations),
        scheme="RTE" if use_rte else "Standard",
    )
