"""PHY measurement harness: the software twin of the paper's USRP tests.

Each function transmits real frames through the full PHY + channel stack
and measures bit errors, reproducing the methodology of §7.1: identical
frames decoded offline under different schemes, BER per symbol index, BER
per power setting, side-channel vs data-channel reliability.

All experiments run their trials through :mod:`repro.runtime`: every trial
owns an independently seeded channel realisation (via
``np.random.SeedSequence.spawn``), so results are bit-identical whether the
trials run serially or across a process pool — pass ``n_workers`` to any
experiment to fan trials out over cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.fading import FadingProfile
from repro.channel.model import ChannelModel
from repro.core.receiver import (
    decode_subframe_symbols,
    decode_subframe_symbols_frozen_batch,
)
from repro.core.symbol_crc import DEFAULT_CRC_CONFIG, SymbolCrcConfig
from repro.phy import payload_codec
from repro.phy.frontend import acquire
from repro.phy.channel_estimation import equalize
from repro.phy.mcs import Mcs, mcs_by_name
from repro.phy.ofdm import split_symbol
from repro.phy.pilots import track_and_compensate
from repro.phy.transceiver import (
    PAYLOAD_SYMBOL_OFFSET,
    SIG_SYMBOL_OFFSET,
    PhyTransmitter,
)
from repro.runtime.trials import run_trials, shared_payload
from repro.util.rng import RngStream, derive_seed

__all__ = [
    "LinkConfig",
    "OFFICE_PROFILE",
    "ber_by_symbol_index",
    "data_ber_with_side_channel",
    "side_channel_vs_data_ber",
]

# The canonical "office link" standing in for the paper's 10 m × 10 m room
# at a fixed 3 m TX–RX distance: a dominant LOS tap with a weak scattered
# echo (delay spread well inside the CP) and a coherence time in the tens
# of milliseconds. Calibrated so the Fig. 3/13 experiment lands in the
# paper's BER decade (head ≈ 1e-3, tail ≈ a few 1e-2 for QAM64 at the
# maximum power setting).
OFFICE_PROFILE = FadingProfile(
    num_taps=2, delay_spread_taps=0.35, ricean_k_db=18.0, coherence_time=30e-3
)


@dataclass(frozen=True)
class LinkConfig:
    """One point-to-point measurement configuration.

    ``symbol_duration`` defaults to the "2M channel" of Fig. 13 (40 µs
    symbols — ten times 20 MHz timing), which the paper uses to emulate
    10× longer frames; pass 4e-6 for standard 20 MHz links.
    """

    snr_db: float | None = None
    power_magnitude: float | None = 0.2
    profile: FadingProfile = OFFICE_PROFILE
    symbol_duration: float = 40e-6
    cfo_hz: float = 300.0
    sfo_ppm: float = 8.0
    seed: int = 0
    #: Optional :class:`repro.faults.FaultPlan`; its PHY specs become
    #: channel impairments on every instantiated channel.
    fault_plan: object = None

    def channel(self, rng_name: str = "channel") -> ChannelModel:
        """Instantiate the configured channel (independent RNG per name)."""
        impairments = self.fault_plan.phy_impairments() if self.fault_plan else ()
        return ChannelModel(
            snr_db=self.snr_db,
            power_magnitude=self.power_magnitude,
            profile=self.profile,
            cfo_hz=self.cfo_hz,
            sfo_ppm=self.sfo_ppm,
            symbol_duration=self.symbol_duration,
            rng=RngStream(self.seed).child(rng_name),
            impairments=impairments,
        )

    def with_power(self, power_magnitude: float) -> "LinkConfig":
        """A copy of this config at a different USRP power setting."""
        return replace(self, snr_db=None, power_magnitude=power_magnitude)


@dataclass
class SymbolBerResult:
    """Per-symbol-index BER plus side-channel bookkeeping."""

    ber_per_symbol: np.ndarray
    mean_ber: float
    crc_pass_rate: float
    side_bit_error_rate: float
    trials: int
    scheme: str = ""


def _make_frame(payload_bytes: int, mcs: Mcs, crc_config: SymbolCrcConfig,
                inject: bool, seed: int):
    rng = np.random.default_rng(seed)
    payload = bytes(rng.integers(0, 256, payload_bytes, dtype=np.uint8))
    tx = PhyTransmitter(mcs, coded=False)
    if inject:
        bit_matrix = payload_codec.encode_payload_bits(payload, mcs, coded=False)
        side_bits = crc_config.side_bits_for(bit_matrix)
        phases = crc_config.scheme.encode_phases(side_bits.reshape(-1))
        frame = tx.build_frame(payload, phases=phases)
        return frame, side_bits
    frame = tx.build_frame(payload)
    return frame, np.zeros(
        (frame.n_payload_symbols, crc_config.scheme.bits_per_symbol), dtype=np.uint8
    )


def _trial_channel(link: LinkConfig, stream_name: str,
                   rng: np.random.Generator) -> ChannelModel:
    """A fresh, independently seeded channel realisation for one trial."""
    trial_seed = int(rng.integers(0, np.iinfo(np.int64).max))
    return replace(link, seed=trial_seed).channel(stream_name)


def _decode_standard_subframe(received, mcs, crc_config, use_rte, rte_rule,
                              rte_guard=None):
    """Front-end + SIG phase reference + subframe decode shared by trials."""
    front = acquire(received)
    sig_eq = equalize(front.derotated[SIG_SYMBOL_OFFSET], front.channel_estimate)
    _, sig_phase = track_and_compensate(sig_eq, 0)
    return decode_subframe_symbols(
        front.derotated[PAYLOAD_SYMBOL_OFFSET:],
        front.channel_estimate,
        mcs,
        first_pilot_index=1,
        reference_phase=sig_phase,
        crc_config=crc_config,
        use_rte=use_rte,
        rte_rule=rte_rule,
        rte_guard=rte_guard,
    )


#: Trials decoded per stacked call of the batched executors; bounds the
#: working set of the (n_trials, n_symbols, 52) intermediates without
#: changing results (the decode is independent per trial).
_BATCH_TILE = 64


def _frame_tables(frame, true_side_bits) -> dict:
    """The read-only per-run arrays every trial needs, as a ``shared=``
    payload (one shared-memory shipment per worker instead of a pickled
    copy of the frame per chunk)."""
    return {
        "frame_symbols": frame.symbols,
        "payload_bits": frame.payload_bit_matrix,
        "side_bits": np.asarray(true_side_bits),
    }


def _decode_standard_batch(received_list, mcs, crc_config):
    """Front-end per trial, then one stacked frozen decode for all trials.

    The cross-trial analogue of :func:`_decode_standard_subframe` with
    ``use_rte=False``: acquisition and the SIG phase reference stay
    per-trial (they are RNG-cheap), the payload decode runs as a single
    (n_trials, n_symbols, 52) block. Bit-identical per trial.
    """
    fronts = [acquire(received) for received in received_list]
    sig_phases = np.empty(len(fronts))
    for t, front in enumerate(fronts):
        sig_eq = equalize(front.derotated[SIG_SYMBOL_OFFSET], front.channel_estimate)
        _, sig_phases[t] = track_and_compensate(sig_eq, 0)
    payload = np.stack([f.derotated[PAYLOAD_SYMBOL_OFFSET:] for f in fronts])
    estimates = np.stack([f.channel_estimate for f in fronts])
    return decode_subframe_symbols_frozen_batch(
        payload, estimates, mcs, first_pilot_index=1,
        reference_phases=sig_phases, crc_config=crc_config,
    )


def _ber_symbol_trial(trial_index, rng, link, mcs, crc_config, use_rte,
                      rte_rule, rte_guard=None):
    """One Fig. 3/13 trial: returns (per-symbol errors, CRC passes, side errs).

    Reads the frame tables from the run's shared payload
    (:func:`_frame_tables`), shipped to each worker once.
    """
    tables = shared_payload()
    channel = _trial_channel(link, "ber-by-symbol", rng)
    received = channel.transmit(tables["frame_symbols"])
    bit_matrix, side_bits, crc_pass, _phases, _est, _eq = _decode_standard_subframe(
        received, mcs, crc_config, use_rte, rte_rule, rte_guard
    )
    return (
        (bit_matrix != tables["payload_bits"]).sum(axis=1),
        int(crc_pass.sum()),
        int((side_bits != tables["side_bits"]).sum()),
    )


def _ber_symbol_batch(start, rngs, link, mcs, crc_config, use_rte, rte_rule,
                      rte_guard=None):
    """Cross-trial batched executor for :func:`_ber_symbol_trial` chunks.

    Transmits each trial's channel realisation from its own RNG (the
    per-trial streams are untouched), then decodes the whole chunk as one
    stacked frozen call. RTE decoding is sequential within a frame, so
    ``use_rte=True`` falls back to the per-trial oracle.
    """
    if use_rte:
        return [
            _ber_symbol_trial(start + offset, rng, link, mcs, crc_config,
                              use_rte, rte_rule, rte_guard)
            for offset, rng in enumerate(rngs)
        ]
    tables = shared_payload()
    outcomes = []
    for tile_start in range(0, len(rngs), _BATCH_TILE):
        tile = rngs[tile_start:tile_start + _BATCH_TILE]
        received_list = [
            _trial_channel(link, "ber-by-symbol", rng).transmit(
                tables["frame_symbols"])
            for rng in tile
        ]
        bit_matrix, side_bits, crc_pass, _phases, _eq = _decode_standard_batch(
            received_list, mcs, crc_config
        )
        data_errors = (bit_matrix != tables["payload_bits"][None]).sum(axis=2)
        side_errors = (side_bits != tables["side_bits"][None]).sum(axis=(1, 2))
        outcomes.extend(
            (data_errors[t], int(crc_pass[t].sum()), int(side_errors[t]))
            for t in range(len(tile))
        )
    return outcomes


def ber_by_symbol_index(
    mcs_name: str = "QAM64-3/4",
    payload_bytes: int = 4090,
    trials: int = 50,
    use_rte: bool = False,
    link: LinkConfig = LinkConfig(),
    crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
    rte_rule="average",
    rte_guard=None,
    n_workers: int | None = 1,
    batched: bool | None = None,
    chunk_size: int | str | None = None,
) -> SymbolBerResult:
    """BER as a function of OFDM-symbol index within a long frame.

    This is the Fig. 3 / Fig. 13 experiment: 4 KB uncoded frames over the
    time-varying office channel, decoded with either the standard
    (preamble-only) estimator or Carpool's RTE. The same frame is sent
    through a fresh channel realisation per trial, mirroring the paper's
    repeated measurements at different times/locations.

    ``n_workers`` fans the trials out over a process pool (``None``
    auto-detects the core count); results are identical for any value.
    ``batched`` routes whole chunks of trials through the stacked frozen
    decode (one vectorised call per chunk instead of one per trial) —
    ``None`` enables it whenever the frozen path applies
    (``use_rte=False``); ``False`` forces the per-trial reference
    executor. Results are bit-identical either way. ``chunk_size`` is
    forwarded to :func:`run_trials` (``"auto"`` sizes chunks from
    measured IPC cost — bigger chunks also mean bigger batched calls).
    """
    mcs = mcs_by_name(mcs_name)
    frame, true_side_bits = _make_frame(payload_bytes, mcs, crc_config, True, link.seed)
    if batched is None:
        batched = not use_rte
    outcomes = run_trials(
        _ber_symbol_trial,
        trials,
        seed=derive_seed(link.seed, "ber-by-symbol"),
        n_workers=n_workers,
        chunk_size=chunk_size,
        args=(link, mcs, crc_config, use_rte, rte_rule, rte_guard),
        shared=_frame_tables(frame, true_side_bits),
        batch_fn=_ber_symbol_batch if batched else None,
    )
    n_symbols = frame.n_payload_symbols
    bit_errors = np.zeros(n_symbols)
    crc_passes = 0
    side_errors = 0
    for symbol_errors, passes, side in outcomes:
        bit_errors += symbol_errors
        crc_passes += passes
        side_errors += side
    side_bits_total = trials * true_side_bits.size
    bits_per_symbol = frame.payload_bit_matrix.shape[1]
    ber = bit_errors / (trials * bits_per_symbol)
    return SymbolBerResult(
        ber_per_symbol=ber,
        mean_ber=float(ber.mean()),
        crc_pass_rate=crc_passes / (trials * n_symbols),
        side_bit_error_rate=side_errors / max(side_bits_total, 1),
        trials=trials,
        scheme="RTE" if use_rte else "Standard",
    )


def _data_ber_trial(trial_index, rng, stream_name, cfg, mcs, crc_config):
    """One Fig. 11 trial: returns the number of data-bit errors."""
    tables = shared_payload()
    channel = _trial_channel(cfg, stream_name, rng)
    received = channel.transmit(tables["frame_symbols"])
    bit_matrix, _, _, _, _, _ = _decode_standard_subframe(
        received, mcs, crc_config, use_rte=False, rte_rule="average"
    )
    return int((bit_matrix != tables["payload_bits"]).sum())


def _data_ber_batch(start, rngs, stream_name, cfg, mcs, crc_config):
    """Stacked-decode executor for :func:`_data_ber_trial` chunks."""
    tables = shared_payload()
    errors = []
    for tile_start in range(0, len(rngs), _BATCH_TILE):
        tile = rngs[tile_start:tile_start + _BATCH_TILE]
        received_list = [
            _trial_channel(cfg, stream_name, rng).transmit(
                tables["frame_symbols"])
            for rng in tile
        ]
        bit_matrix, _, _, _, _ = _decode_standard_batch(
            received_list, mcs, crc_config
        )
        errors.extend(
            int(n) for n in
            (bit_matrix != tables["payload_bits"][None]).sum(axis=(1, 2))
        )
    return errors


def data_ber_with_side_channel(
    mcs_name: str,
    power_magnitude: float,
    trials: int = 40,
    payload_bytes: int = 1000,
    inject: bool = True,
    link: LinkConfig | None = None,
    crc_config: SymbolCrcConfig = DEFAULT_CRC_CONFIG,
    n_workers: int | None = 1,
) -> float:
    """Raw data BER of a link with or without phase-offset injection.

    The Fig. 11 experiment: identical static-office layouts, standard
    receiver, sweep the power knob, compare the PHY with the side channel
    against the unmodified PHY.
    """
    base = link or LinkConfig(
        profile=FadingProfile(num_taps=2, ricean_k_db=15.0, coherence_time=np.inf),
        symbol_duration=4e-6,
    )
    cfg = base.with_power(power_magnitude)
    mcs = mcs_by_name(mcs_name)
    frame, _ = _make_frame(payload_bytes, mcs, crc_config, inject, cfg.seed)
    stream_name = f"fig11-{mcs_name}-{inject}"
    errors = run_trials(
        _data_ber_trial,
        trials,
        seed=derive_seed(cfg.seed, stream_name),
        n_workers=n_workers,
        args=(stream_name, cfg, mcs, crc_config),
        shared=_frame_tables(frame, np.zeros(0, dtype=np.uint8)),
        batch_fn=_data_ber_batch,
    )
    total = trials * frame.payload_bit_matrix.size
    return sum(errors) / total


def _side_vs_data_trial(trial_index, rng, stream_name, cfg, mcs, crc_config):
    """One Fig. 12 trial: returns (side-bit errors, data-bit errors)."""
    tables = shared_payload()
    channel = _trial_channel(cfg, stream_name, rng)
    received = channel.transmit(tables["frame_symbols"])
    bit_matrix, side_bits, _, _, _, _ = _decode_standard_subframe(
        received, mcs, crc_config, use_rte=False, rte_rule="average"
    )
    return (
        int((side_bits != tables["side_bits"]).sum()),
        int((bit_matrix != tables["payload_bits"]).sum()),
    )


def _side_vs_data_batch(start, rngs, stream_name, cfg, mcs, crc_config):
    """Stacked-decode executor for :func:`_side_vs_data_trial` chunks."""
    tables = shared_payload()
    outcomes = []
    for tile_start in range(0, len(rngs), _BATCH_TILE):
        tile = rngs[tile_start:tile_start + _BATCH_TILE]
        received_list = [
            _trial_channel(cfg, stream_name, rng).transmit(
                tables["frame_symbols"])
            for rng in tile
        ]
        bit_matrix, side_bits, _, _, _ = _decode_standard_batch(
            received_list, mcs, crc_config
        )
        side_errors = (side_bits != tables["side_bits"][None]).sum(axis=(1, 2))
        data_errors = (bit_matrix != tables["payload_bits"][None]).sum(axis=(1, 2))
        outcomes.extend(
            (int(side_errors[t]), int(data_errors[t]))
            for t in range(len(tile))
        )
    return outcomes


def side_channel_vs_data_ber(
    scheme_bits: int,
    power_magnitude: float,
    trials: int = 40,
    payload_bytes: int = 1000,
    link: LinkConfig | None = None,
    n_workers: int | None = 1,
) -> tuple:
    """(side-channel BER, data BER) for one power setting — Fig. 12.

    The 1-bit offset scheme rides on BPSK frames, the 2-bit scheme on QPSK
    frames, so each side channel is compared against the phase-shift-keyed
    data modulation of equal order.
    """
    from repro.core.side_channel import ONE_BIT_SCHEME, TWO_BIT_SCHEME

    if scheme_bits == 1:
        crc_config = SymbolCrcConfig(scheme=ONE_BIT_SCHEME, granularity=2)
        mcs_name = "BPSK-1/2"
    elif scheme_bits == 2:
        crc_config = SymbolCrcConfig(scheme=TWO_BIT_SCHEME, granularity=1)
        mcs_name = "QPSK-1/2"
    else:
        raise ValueError("scheme_bits must be 1 or 2")

    base = link or LinkConfig(
        profile=FadingProfile(num_taps=2, ricean_k_db=15.0, coherence_time=np.inf),
        symbol_duration=4e-6,
    )
    cfg = base.with_power(power_magnitude)
    mcs = mcs_by_name(mcs_name)
    frame, true_side_bits = _make_frame(payload_bytes, mcs, crc_config, True, cfg.seed)
    stream_name = f"fig12-{scheme_bits}bit"
    outcomes = run_trials(
        _side_vs_data_trial,
        trials,
        seed=derive_seed(cfg.seed, stream_name),
        n_workers=n_workers,
        args=(stream_name, cfg, mcs, crc_config),
        shared=_frame_tables(frame, true_side_bits),
        batch_fn=_side_vs_data_batch,
    )
    side_errors = sum(side for side, _ in outcomes)
    data_errors = sum(data for _, data in outcomes)
    side_total = trials * true_side_bits.size
    data_total = trials * frame.payload_bit_matrix.size
    return side_errors / side_total, data_errors / data_total
