"""A classic Bloom filter over a fixed-width bit vector."""

from __future__ import annotations

import numpy as np

from repro.bloom.hashing import hash_positions

__all__ = ["BloomFilter"]


class BloomFilter:
    """Standard Bloom filter: insert-only set membership with false positives.

    >>> bf = BloomFilter(num_bits=48, num_hashes=4)
    >>> bf.insert(b"alice")
    >>> bf.contains(b"alice")
    True
    """

    def __init__(self, num_bits: int, num_hashes: int, set_index: int = 0):
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.set_index = set_index
        self.bits = np.zeros(num_bits, dtype=np.uint8)
        self._count = 0

    def _positions(self, key: bytes) -> tuple:
        return hash_positions(key, self.set_index, self.num_hashes, self.num_bits)

    def insert(self, key: bytes) -> None:
        """Add ``key`` to the set."""
        for pos in self._positions(key):
            self.bits[pos] = 1
        self._count += 1

    def contains(self, key: bytes) -> bool:
        """Membership test: no false negatives, tunable false positives."""
        return all(self.bits[pos] for pos in self._positions(key))

    def __contains__(self, key: bytes) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        """Number of *inserted* keys (not distinct keys)."""
        return self._count

    def fill_ratio(self) -> float:
        """Fraction of bits set — the load that drives false positives."""
        return float(self.bits.mean())

    @classmethod
    def from_bits(cls, bits: np.ndarray, num_hashes: int, set_index: int = 0) -> "BloomFilter":
        """Reconstruct a filter from a received bit vector (count unknown)."""
        bits = np.asarray(bits, dtype=np.uint8)
        bf = cls(bits.size, num_hashes, set_index)
        bf.bits = bits.copy()
        return bf
