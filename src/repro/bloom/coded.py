"""The positional ("coded") Bloom filter behind Carpool's A-HDR.

One shared bit vector; the i-th subframe's receiver address is inserted
under hash set i. A receiver probes every hash set with its own address:
set i matching means "subframe i is (probably) mine". No false negatives —
a receiver never misses its subframe — and false positives only cost the
energy of decoding an irrelevant subframe (paper §4.1, §8).

Also provides the paper's false-positive analysis:

    r_FP = (1 − e^{−hN/m})^h,   optimal h = (m/N)·ln 2
"""

from __future__ import annotations

import math

import numpy as np

from repro.bloom.hashing import HashSet

__all__ = [
    "PositionalBloomFilter",
    "false_positive_ratio",
    "optimal_num_hashes",
]


def false_positive_ratio(num_hashes: int, num_keys: int, num_bits: int = 48) -> float:
    """The paper's approximation r_FP ≈ (1 − e^{−hN/m})^h for one hash set."""
    if num_hashes < 1 or num_keys < 0 or num_bits < 1:
        raise ValueError("invalid Bloom parameters")
    if num_keys == 0:
        return 0.0
    load = num_hashes * num_keys / num_bits
    return (1.0 - math.exp(-load)) ** num_hashes


def optimal_num_hashes(num_keys: int, num_bits: int = 48) -> float:
    """h* = (m/N)·ln 2 — minimiser of :func:`false_positive_ratio` over h."""
    if num_keys < 1:
        raise ValueError("need at least one key")
    return (num_bits / num_keys) * math.log(2.0)


class PositionalBloomFilter:
    """A Bloom filter whose hash-set index encodes an item's position.

    Args:
        num_bits: Filter width; Carpool's A-HDR is 48 bits (two BPSK-1/2
            OFDM symbols).
        num_hashes: Functions per hash set; Carpool fixes h=4 for its ≤8
            receiver limit.
    """

    def __init__(self, num_bits: int = 48, num_hashes: int = 4):
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        if num_hashes < 1:
            raise ValueError("num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = np.zeros(num_bits, dtype=np.uint8)
        self._num_positions = 0

    def insert(self, key: bytes, position: int) -> None:
        """Insert ``key`` as the item at ``position`` (0-based subframe index)."""
        if position < 0:
            raise ValueError("position must be non-negative")
        hash_set = HashSet(position, self.num_hashes, self.num_bits)
        for pos in hash_set.positions(key):
            self.bits[pos] = 1
        self._num_positions = max(self._num_positions, position + 1)

    def matches(self, key: bytes, position: int) -> bool:
        """Does hash set ``position`` claim ``key`` is present?"""
        hash_set = HashSet(position, self.num_hashes, self.num_bits)
        return all(self.bits[p] for p in hash_set.positions(key))

    def matching_positions(self, key: bytes, num_positions: int) -> list:
        """All subframe indices (0-based) that match ``key``.

        The receiver decodes *every* matched subframe (paper: "decoding
        with false positives"), so the true subframe is never missed.
        """
        return [i for i in range(num_positions) if self.matches(key, i)]

    @classmethod
    def from_bits(cls, bits: np.ndarray, num_hashes: int = 4) -> "PositionalBloomFilter":
        """Rebuild from a received 48-bit vector."""
        bits = np.asarray(bits, dtype=np.uint8)
        pbf = cls(bits.size, num_hashes)
        pbf.bits = bits.copy()
        return pbf

    def to_bits(self) -> np.ndarray:
        """A copy of the filter's 48-bit vector (what the A-HDR transmits)."""
        return self.bits.copy()
