"""Hash families for the A-HDR coded Bloom filter.

Carpool needs *indexed hash sets*: the i-th subframe's receiver is inserted
with the i-th set of h hash functions, so membership under hash set i also
reveals the subframe position (paper §4.1). We derive arbitrarily many
independent hash functions from SHA-256 with (set_index, function_index)
domain separation — deterministic across runs and platforms.
"""

from __future__ import annotations

import hashlib

__all__ = ["hash_positions", "HashSet"]


def hash_positions(key: bytes, set_index: int, num_hashes: int, num_bits: int) -> tuple:
    """Map ``key`` to ``num_hashes`` bit positions using hash set ``set_index``.

    Each (set_index, j) pair selects an independent function; positions are
    uniform over ``range(num_bits)`` and *may* collide with each other,
    matching the standard Bloom-filter analysis the paper's false-positive
    formula assumes.
    """
    if num_hashes < 1:
        raise ValueError("need at least one hash function")
    if num_bits < 1:
        raise ValueError("need at least one bit")
    positions = []
    for j in range(num_hashes):
        digest = hashlib.sha256(b"%d|%d|" % (set_index, j) + bytes(key)).digest()
        positions.append(int.from_bytes(digest[:8], "big") % num_bits)
    return tuple(positions)


class HashSet:
    """The ``i``-th hash set: ``h`` functions bound to a filter width."""

    def __init__(self, set_index: int, num_hashes: int, num_bits: int):
        if set_index < 0:
            raise ValueError("set index must be non-negative")
        self.set_index = set_index
        self.num_hashes = num_hashes
        self.num_bits = num_bits

    def positions(self, key: bytes) -> tuple:
        """Bit positions this hash set maps ``key`` to."""
        return hash_positions(key, self.set_index, self.num_hashes, self.num_bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashSet(i={self.set_index}, h={self.num_hashes}, m={self.num_bits})"
