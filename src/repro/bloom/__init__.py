"""Bloom filters: the data structure behind Carpool's aggregation header."""

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.coded import PositionalBloomFilter, false_positive_ratio, optimal_num_hashes
from repro.bloom.hashing import HashSet, hash_positions

__all__ = [
    "BloomFilter",
    "PositionalBloomFilter",
    "false_positive_ratio",
    "optimal_num_hashes",
    "HashSet",
    "hash_positions",
]
