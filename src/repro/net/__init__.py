"""Multi-BSS deployment simulation: public WLANs at hotspot scale.

The paper's claim is about *public WLANs* — dense deployments where many
APs, each serving many bursty clients, share spectrum. The single-cell
engine (:mod:`repro.mac.engine`) reproduces one collision domain; this
package layers the deployment on top of it:

* :mod:`repro.net.topology` — AP/STA placement over an arena and the
  per-link SNR budget (path loss + shadowing).
* :mod:`repro.net.roaming` — strongest-signal association with
  hysteresis, random-waypoint mobility, and the byte-exact §4.3
  association handshake on every (re-)association.
* :mod:`repro.net.interference` — co-channel coupling between
  overlapping BSSs, expressed as :class:`repro.faults.FaultPlan`
  hidden-terminal windows so each cell still runs the proven
  single-cell engine unmodified.
* :mod:`repro.net.deployment` — :func:`simulate_deployment`, sharding
  cells over the :mod:`repro.runtime` pools and aggregating
  deployment-level metrics (goodput, fairness, airtime, roam stats).
"""

from repro.net.deployment import (
    CellResult,
    CellSpec,
    DeploymentConfig,
    DeploymentResult,
    build_cell_specs,
    cell_seed,
    run_cell,
    simulate_deployment,
)
from repro.net.interference import carrier_sense_range, coupling_fault_plans, overlap_factor
from repro.net.roaming import (
    AssociationSegment,
    AssociationTimeline,
    RandomWaypointMobility,
    RoamEvent,
    build_association_timeline,
)
from repro.net.topology import (
    ApSite,
    Arena,
    DeploymentTopology,
    StaSite,
    build_topology,
    place_aps_grid,
    place_aps_poisson,
    place_stas_clustered,
    place_stas_hotspot,
    place_stas_uniform,
)

__all__ = [
    "ApSite",
    "Arena",
    "AssociationSegment",
    "AssociationTimeline",
    "CellResult",
    "CellSpec",
    "DeploymentConfig",
    "DeploymentResult",
    "DeploymentTopology",
    "RandomWaypointMobility",
    "RoamEvent",
    "StaSite",
    "build_association_timeline",
    "build_cell_specs",
    "build_topology",
    "carrier_sense_range",
    "cell_seed",
    "coupling_fault_plans",
    "overlap_factor",
    "place_aps_grid",
    "place_aps_poisson",
    "place_stas_clustered",
    "place_stas_hotspot",
    "place_stas_uniform",
    "run_cell",
    "simulate_deployment",
]
