"""Mergeable, exactly-associative deployment-level aggregation.

:class:`DeploymentAggregate` folds per-cell result dicts (the wire form
``run_cell`` ships) into deployment-wide metrics — goodput/airtime sums,
per-cell moments, Jain fairness, coupling and error counters, and
fixed-bin histograms — using the exactly-associative primitives from
:mod:`repro.runtime.reduction`. That gives the streaming guarantee the
sharded deployment path rests on::

    shard merge ≡ single-shot, bit for bit, at any worker count or
    shard size.

Every float statistic is finalised from exact sums (Shewchuk partials) or
exact integer sums, so *when* and *in what grouping* cells were folded
cannot leak into the result. Jain fairness follows the
:class:`repro.mac.fairness.TimeOccupancyTable` conventions (only stations
that delivered bytes count; empty or all-zero → 1.0) but accumulates
per-station delivered bytes as exact integers:

* static deployments — each station lives in exactly one cell, so its
  per-station total is final the moment its cell is folded and only three
  integers (count, Σv, Σv²) ride in the accumulator;
* mobility deployments (``track_stations=True``) — a roaming station
  delivers through several cells, so per-station integer totals are kept
  and squared only at finalisation.

The accumulator pickles compactly (plain ints and partials lists): it is
the only thing that crosses the worker pipe in a sharded run, and the
bench gates on that traffic staying small.
"""

from __future__ import annotations

from repro.runtime.reduction import ExactSum, MergeableHistogram, StreamMoments

__all__ = [
    "BUSY_FRACTION_EDGES",
    "GOODPUT_EDGES_BPS",
    "DeploymentAggregate",
    "aggregate_factory",
    "reduce_cell",
]

#: Per-cell downlink goodput buckets (bps), log-spaced across the regimes
#: a hotspot cell can land in — idle, trickle, saturated single-cell.
GOODPUT_EDGES_BPS = (
    1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
)

#: Per-cell channel-busy-fraction buckets.
BUSY_FRACTION_EDGES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


class DeploymentAggregate:
    """Streaming deployment aggregate over per-cell result dicts."""

    __slots__ = (
        "track_stations", "n_cells", "n_coupled_cells",
        "collisions", "transmissions", "retransmitted_subframes",
        "dropped_frames", "demotions", "repromotions",
        "goodput", "useful_goodput", "busy_airtime",
        "cell_goodput", "busy_fraction",
        "goodput_hist", "busy_hist",
        "fair_n", "fair_total", "fair_squares", "delivered_by_sta",
    )

    def __init__(self, track_stations: bool = False):
        self.track_stations = bool(track_stations)
        self.n_cells = 0
        self.n_coupled_cells = 0
        self.collisions = 0
        self.transmissions = 0
        self.retransmitted_subframes = 0
        self.dropped_frames = 0
        self.demotions = 0
        self.repromotions = 0
        self.goodput = ExactSum()
        self.useful_goodput = ExactSum()
        self.busy_airtime = ExactSum()
        self.cell_goodput = StreamMoments()
        self.busy_fraction = StreamMoments()
        self.goodput_hist = MergeableHistogram(GOODPUT_EDGES_BPS)
        self.busy_hist = MergeableHistogram(BUSY_FRACTION_EDGES)
        # Static mode: (count, Σbytes, Σbytes²) as exact integers.
        self.fair_n = 0
        self.fair_total = 0
        self.fair_squares = 0
        # Mobility mode: station name → delivered bytes (exact integer).
        self.delivered_by_sta: dict = {}

    # -- folding -------------------------------------------------------------

    def observe_cell(self, cell: dict) -> "DeploymentAggregate":
        """Fold one cell's wire dict (``CellResult.to_dict`` form) in."""
        self.n_cells += 1
        goodput = float(cell["goodput_bps"])
        busy = float(cell["channel_busy_fraction"])
        self.goodput.add(goodput)
        self.useful_goodput.add(float(cell["useful_goodput_bps"]))
        self.busy_airtime.add(float(cell["busy_airtime_s"]))
        self.cell_goodput.observe(goodput)
        self.busy_fraction.observe(busy)
        self.goodput_hist.observe(goodput)
        self.busy_hist.observe(busy)
        self.collisions += int(cell["collisions"])
        self.transmissions += int(cell["transmissions"])
        self.retransmitted_subframes += int(cell["retransmitted_subframes"])
        self.dropped_frames += int(cell["dropped_frames"])
        # .get(): wire dicts cached before the counters existed lack them.
        self.demotions += int(cell.get("demotions", 0))
        self.repromotions += int(cell.get("repromotions", 0))
        if cell["coupled"]:
            self.n_coupled_cells += 1
        for sta, delivered in cell["delivered_bytes_by_sta"].items():
            delivered = int(delivered)
            if self.track_stations:
                self.delivered_by_sta[sta] = (
                    self.delivered_by_sta.get(sta, 0) + delivered
                )
            else:
                # Static cells partition the stations, so this station's
                # per-deployment total is final right here — square it
                # now and never carry the name across the pipe.
                self.fair_n += 1
                self.fair_total += delivered
                self.fair_squares += delivered * delivered
        return self

    def merge(self, other: "DeploymentAggregate") -> "DeploymentAggregate":
        """Fold another shard's accumulator in (exact, any grouping)."""
        if self.track_stations != other.track_stations:
            raise ValueError("cannot merge aggregates of different modes")
        self.n_cells += other.n_cells
        self.n_coupled_cells += other.n_coupled_cells
        self.collisions += other.collisions
        self.transmissions += other.transmissions
        self.retransmitted_subframes += other.retransmitted_subframes
        self.dropped_frames += other.dropped_frames
        self.demotions += other.demotions
        self.repromotions += other.repromotions
        self.goodput.merge(other.goodput)
        self.useful_goodput.merge(other.useful_goodput)
        self.busy_airtime.merge(other.busy_airtime)
        self.cell_goodput.merge(other.cell_goodput)
        self.busy_fraction.merge(other.busy_fraction)
        self.goodput_hist.merge(other.goodput_hist)
        self.busy_hist.merge(other.busy_hist)
        self.fair_n += other.fair_n
        self.fair_total += other.fair_total
        self.fair_squares += other.fair_squares
        for sta, delivered in other.delivered_by_sta.items():
            self.delivered_by_sta[sta] = (
                self.delivered_by_sta.get(sta, 0) + delivered
            )
        return self

    # -- finalisation --------------------------------------------------------

    def jain_fairness(self) -> float:
        """Jain index over per-station delivered bytes (conventions of
        :meth:`repro.mac.fairness.TimeOccupancyTable.jain_index`)."""
        if self.track_stations:
            values = self.delivered_by_sta.values()
            n = len(self.delivered_by_sta)
            total = sum(values)
            squares = sum(v * v for v in values)
        else:
            n, total, squares = self.fair_n, self.fair_total, self.fair_squares
        if n == 0 or squares == 0:
            return 1.0
        # Exact integers right up to the single final division.
        return (total * total) / (n * squares)

    def total_goodput_bps(self) -> float:
        return self.goodput.value()

    def total_useful_goodput_bps(self) -> float:
        return self.useful_goodput.value()

    def busy_airtime_s(self) -> float:
        return self.busy_airtime.value()

    # -- transport -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the full accumulator state.

        Everything is plain ints, floats in Shewchuk-partial lists, and
        strings, so ``json.dumps`` of the dict round-trips the aggregate
        exactly: ``from_dict(json.loads(json.dumps(a.to_dict())))`` folds
        on bit-identically to ``a``. This is the soak checkpoint format —
        a resumed run restores the rolling aggregate from it and must end
        byte-identical to an uninterrupted one.
        """
        return {
            "track_stations": self.track_stations,
            "n_cells": self.n_cells,
            "n_coupled_cells": self.n_coupled_cells,
            "collisions": self.collisions,
            "transmissions": self.transmissions,
            "retransmitted_subframes": self.retransmitted_subframes,
            "dropped_frames": self.dropped_frames,
            "demotions": self.demotions,
            "repromotions": self.repromotions,
            "goodput": self.goodput.to_dict(),
            "useful_goodput": self.useful_goodput.to_dict(),
            "busy_airtime": self.busy_airtime.to_dict(),
            "cell_goodput": self.cell_goodput.to_dict(),
            "busy_fraction": self.busy_fraction.to_dict(),
            "goodput_hist": self.goodput_hist.to_dict(),
            "busy_hist": self.busy_hist.to_dict(),
            "fair_n": self.fair_n,
            "fair_total": self.fair_total,
            "fair_squares": self.fair_squares,
            "delivered_by_sta": dict(self.delivered_by_sta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentAggregate":
        """Rebuild an aggregate from :meth:`to_dict` output (exact)."""
        out = cls(track_stations=data["track_stations"])
        out.n_cells = int(data["n_cells"])
        out.n_coupled_cells = int(data["n_coupled_cells"])
        out.collisions = int(data["collisions"])
        out.transmissions = int(data["transmissions"])
        out.retransmitted_subframes = int(data["retransmitted_subframes"])
        out.dropped_frames = int(data["dropped_frames"])
        # .get(): checkpoints written before the counters existed.
        out.demotions = int(data.get("demotions", 0))
        out.repromotions = int(data.get("repromotions", 0))
        out.goodput = ExactSum.from_dict(data["goodput"])
        out.useful_goodput = ExactSum.from_dict(data["useful_goodput"])
        out.busy_airtime = ExactSum.from_dict(data["busy_airtime"])
        out.cell_goodput = StreamMoments.from_dict(data["cell_goodput"])
        out.busy_fraction = StreamMoments.from_dict(data["busy_fraction"])
        out.goodput_hist = MergeableHistogram.from_dict(data["goodput_hist"])
        out.busy_hist = MergeableHistogram.from_dict(data["busy_hist"])
        out.fair_n = int(data["fair_n"])
        out.fair_total = int(data["fair_total"])
        out.fair_squares = int(data["fair_squares"])
        out.delivered_by_sta = {
            sta: int(v) for sta, v in data["delivered_by_sta"].items()
        }
        return out

    def __reduce__(self):
        # One restore call over plain ints/lists: the accumulator *is*
        # the sharded path's IPC traffic, so its pickle stays minimal.
        return (_restore, (
            self.track_stations, self.n_cells, self.n_coupled_cells,
            self.collisions, self.transmissions,
            self.retransmitted_subframes, self.dropped_frames,
            self.demotions, self.repromotions,
            self.goodput.to_dict()["partials"],
            self.useful_goodput.to_dict()["partials"],
            self.busy_airtime.to_dict()["partials"],
            self.cell_goodput.to_dict(),
            self.busy_fraction.to_dict(),
            self.goodput_hist.counts,
            self.busy_hist.counts,
            self.fair_n, self.fair_total, self.fair_squares,
            self.delivered_by_sta,
        ))


def _restore(track_stations, n_cells, n_coupled, collisions, transmissions,
             retx, dropped, demotions, repromotions, goodput, useful,
             airtime, cell_goodput, busy_fraction, goodput_counts,
             busy_counts, fair_n, fair_total, fair_squares, delivered):
    out = DeploymentAggregate(track_stations=track_stations)
    out.n_cells = n_cells
    out.n_coupled_cells = n_coupled
    out.collisions = collisions
    out.transmissions = transmissions
    out.retransmitted_subframes = retx
    out.dropped_frames = dropped
    out.demotions = demotions
    out.repromotions = repromotions
    out.goodput = ExactSum.from_dict({"partials": goodput})
    out.useful_goodput = ExactSum.from_dict({"partials": useful})
    out.busy_airtime = ExactSum.from_dict({"partials": airtime})
    out.cell_goodput = StreamMoments.from_dict(cell_goodput)
    out.busy_fraction = StreamMoments.from_dict(busy_fraction)
    out.goodput_hist.counts = list(goodput_counts)
    out.busy_hist.counts = list(busy_counts)
    out.fair_n = fair_n
    out.fair_total = fair_total
    out.fair_squares = fair_squares
    out.delivered_by_sta = delivered
    return out


def reduce_cell(acc: DeploymentAggregate, trial_index: int,
                result: dict) -> DeploymentAggregate:
    """``run_trials`` reduce_fn: fold one cell's wire dict into ``acc``."""
    return acc.observe_cell(result)


class aggregate_factory:
    """Picklable ``reduce_init``: builds a mode-matched empty aggregate."""

    __slots__ = ("track_stations",)

    def __init__(self, track_stations: bool = False):
        self.track_stations = bool(track_stations)

    def __call__(self) -> DeploymentAggregate:
        return DeploymentAggregate(track_stations=self.track_stations)

    def __reduce__(self):
        return (aggregate_factory, (self.track_stations,))
