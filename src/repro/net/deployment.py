"""Deployment-scale simulation: many cells, one runtime, one answer.

:func:`simulate_deployment` is the entry point the deployment sweeps and
the ``repro net`` CLI drive. It composes the rest of the package:

1. :func:`~repro.net.topology.build_topology` places APs and STAs and
   fixes every link budget.
2. :func:`~repro.net.roaming.build_association_timeline` associates every
   station (byte-exact §4.3 handshake) and, with mobility, roams it.
3. :func:`~repro.net.interference.coupling_fault_plans` turns co-channel
   overlap into per-cell fault plans.
4. Each cell becomes one :class:`CellSpec` — a picklable, self-seeded
   unit of work — and the cells fan out over the persistent
   :mod:`repro.runtime` pools via :func:`~repro.runtime.trials.run_trials`
   with the spec list shipped once per worker as the ``shared=`` payload.
5. Per-cell metrics fold through the mergeable
   :class:`~repro.net.aggregate.DeploymentAggregate` into a
   :class:`DeploymentResult` (total and useful goodput, busy airtime,
   deployment-wide Jain fairness, roam statistics, per-cell moments and
   histograms), which is stored in the
   :class:`~repro.runtime.cache.ResultCache` keyed by the config content
   and a fingerprint of the producing code.

**Sharded mode** (``shards=k``) is the constant-memory variant of steps
4–5 for large deployments: the parent never materialises the spec list —
workers regenerate their own shard of specs per chunk from the config
(``trial_source=``, with the expensive decomposition memoized per worker
process) — and never collects per-cell results: each worker folds its
chunk into a :class:`~repro.net.aggregate.DeploymentAggregate` before
IPC (``reduce_fn=``), so only small accumulators cross the pipe. Because
the aggregate is exactly associative, a sharded run is bit-identical to
the unsharded path in every deployment-level number; what it gives up is
the per-cell breakdown (``result.cells`` is empty).

Determinism: a cell's result is a pure function of its spec, and every
spec derives its seed from the deployment seed and the AP index — so the
same config gives bit-identical results for any worker count, chunking,
or shard count. A static (no-mobility) cell is executed *through*
:class:`repro.mac.scenarios.CbrScenario` with a derived seed
(:func:`cell_seed`), which makes the degenerate one-AP, coupling-off
deployment reproduce the existing single-cell machinery bit for bit.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.mac.engine import AP_NAME, WlanSimulator
from repro.mac.parameters import DEFAULT_PARAMETERS
from repro.mac.protocols import PROTOCOLS
from repro.mac.protocols.base import AggregationLimits
from repro.mac.protocols.carpool_mixed import CarpoolMixedProtocol
from repro.mac.scenarios import CbrScenario
from repro.faults.plan import FaultPlan
from repro.net.aggregate import DeploymentAggregate, aggregate_factory, reduce_cell
from repro.net.interference import (
    background_duty,
    coupling_fault_plans,
    estimated_duty,
)
from repro.net.roaming import RandomWaypointMobility, build_association_timeline
from repro.net.topology import Arena, build_topology
from repro.obs.log import get_logger
from repro.obs.manifest import manifest_scope
from repro.obs.trace import active_recorder, metrics
from repro.runtime.cache import ResultCache, code_fingerprint, content_key
from repro.runtime.trials import run_trials, shared_payload
from repro.traffic.background import background_uplink_arrivals
from repro.traffic.flows import cbr_downlink_arrivals, merge_arrivals
from repro.util.rng import RngStream, derive_seed

log = get_logger(__name__)

__all__ = [
    "DeploymentConfig",
    "CellSpec",
    "CellResult",
    "DeploymentResult",
    "cell_seed",
    "simulate_deployment",
]

_MAX_FRAME_BYTES = 65535


def cell_seed(root_seed: int, ap_index: int) -> int:
    """The seed cell ``ap_index`` of a deployment simulates under.

    Public because the parity tests (and anyone validating the layering)
    use it to rebuild a cell's reference single-cell scenario directly.
    """
    return derive_seed(root_seed, f"net-cell{ap_index}")


@dataclass(frozen=True)
class DeploymentConfig:
    """Everything that defines one deployment run (and its cache key)."""

    n_aps: int = 4
    stas_per_ap: int = 4
    duration: float = 5.0
    seed: int = 42
    protocol: str = "Carpool"
    # Geometry ---------------------------------------------------------------
    arena_width_m: float = 50.0
    arena_height_m: float = 50.0
    ap_placement: str = "grid"
    sta_placement: str = "uniform"
    channels: int = 3
    shadowing_sigma_db: float = 6.0
    # Workload (CbrScenario conventions) -------------------------------------
    frame_bytes: int = 120
    frames_per_second: float = 100.0
    latency_requirement: float = 0.010
    with_background: bool = True
    background_intensity: float = 3.0
    # Association / roaming --------------------------------------------------
    mobility: bool = False
    hysteresis_db: float = 5.0
    handoff_delay: float = 0.05
    legacy_fraction: float = 0.0
    # Inter-cell coupling ----------------------------------------------------
    coupling: bool = True
    hit_probability: float = 0.35
    #: Deployment-wide :class:`~repro.faults.plan.FaultPlan` applied to
    #: every cell on top of the coupling-derived plan (the soak
    #: scheduler's rolling impairment episodes enter here). ``None`` = no
    #: extra faults; part of the frozen config, so it keys the cache.
    extra_faults: object = None

    def __post_init__(self):
        if self.n_aps < 1:
            raise ValueError("need at least one AP")
        if self.stas_per_ap < 0:
            raise ValueError("stas_per_ap must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; known: {sorted(PROTOCOLS)}"
            )
        if not 0.0 <= self.legacy_fraction <= 1.0:
            raise ValueError("legacy_fraction must be in [0, 1]")

    @property
    def n_stas(self) -> int:
        """Total stations in the deployment."""
        return self.n_aps * self.stas_per_ap

    @property
    def arena(self) -> Arena:
        """The deployment arena."""
        return Arena(self.arena_width_m, self.arena_height_m)

    def to_payload(self) -> dict:
        """JSON-stable dict of every input (the cache-key payload)."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CellSpec:
    """One cell as a self-contained, picklable unit of work.

    ``static=True`` cells carry only a seed: the worker rebuilds the whole
    workload through :class:`~repro.mac.scenarios.CbrScenario`, which is
    what makes static deployments provably the existing single-cell
    machinery. Roaming cells carry their explicit, pre-routed arrival
    list (global station names) instead.
    """

    ap_index: int
    protocol: str
    seed: int
    duration: float
    frame_bytes: int
    frames_per_second: float
    latency_requirement: float
    with_background: bool
    background_intensity: float
    n_stations: int
    static: bool = True
    arrivals: tuple = ()
    station_names: tuple = ()
    #: Static mode: ((local_name, global_name), ...) in station order.
    name_map: tuple = ()
    #: Mixed networks: names (cell-local in static mode, global otherwise)
    #: of the members that negotiated Carpool; ``None`` = pure protocol.
    carpool_stations: tuple | None = None
    fault_plan: object = None


@dataclass
class CellResult:
    """What one cell reports back to the deployment aggregator."""

    ap_index: int
    protocol: str
    n_stations: int
    goodput_bps: float
    useful_goodput_bps: float
    mean_delay_s: float
    p95_delay_s: float
    collisions: int
    transmissions: int
    retransmitted_subframes: int
    dropped_frames: int
    channel_busy_fraction: float
    busy_airtime_s: float
    #: Global station name → delivered payload bytes.
    delivered_bytes_by_sta: dict = field(default_factory=dict)
    coupled: bool = False
    #: Fallback demote/re-promote transitions (0 for protocols without
    #: the cycle). Defaults keep pre-telemetry cached payloads loadable.
    demotions: int = 0
    repromotions: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable form (cache / cross-process transport)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class DeploymentResult:
    """Deployment-level aggregates plus the per-cell breakdown.

    Every deployment-level number is finalised from the exactly-
    associative :class:`~repro.net.aggregate.DeploymentAggregate`, so it
    is identical whether the run was sharded or not. ``cells`` holds the
    per-cell breakdown in the unsharded path and is empty for sharded
    runs (the constant-memory trade: shard mode never materialises
    per-cell results anywhere).
    """

    config: dict
    cells: list
    total_goodput_bps: float
    total_useful_goodput_bps: float
    busy_airtime_s: float
    jain_fairness: float
    n_roams: int
    interruption_time_s: float
    n_coupled_cells: int
    # Streaming-aggregate fields (defaults keep pre-streaming cached
    # payloads loadable).
    n_cells: int = 0
    mean_cell_goodput_bps: float = 0.0
    cell_goodput_stddev_bps: float = 0.0
    mean_cell_busy_fraction: float = 0.0
    goodput_histogram: dict = field(default_factory=dict)
    busy_fraction_histogram: dict = field(default_factory=dict)
    #: Deployment-wide fallback transition totals (defaults keep
    #: pre-telemetry cached payloads loadable).
    demotions: int = 0
    repromotions: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable form (the cached value)."""
        data = dataclasses.asdict(self)
        data["cells"] = [c.to_dict() for c in self.cells]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentResult":
        """Inverse of :meth:`to_dict`."""
        data = dict(data)
        data["cells"] = [CellResult.from_dict(c) for c in data["cells"]]
        return cls(**data)


# --------------------------------------------------------------------------- #
# Cell execution (runs inside pool workers).
# --------------------------------------------------------------------------- #


def _protocol_factory(spec: CellSpec):
    if spec.carpool_stations is None:
        return PROTOCOLS[spec.protocol]
    return lambda params, limits: CarpoolMixedProtocol(
        params, limits, carpool_stations=spec.carpool_stations
    )


def _idle_cell(spec: CellSpec) -> CellResult:
    return CellResult(
        ap_index=spec.ap_index, protocol=spec.protocol, n_stations=0,
        goodput_bps=0.0, useful_goodput_bps=0.0,
        mean_delay_s=0.0, p95_delay_s=0.0,
        collisions=0, transmissions=0, retransmitted_subframes=0,
        dropped_frames=0, channel_busy_fraction=0.0, busy_airtime_s=0.0,
        coupled=spec.fault_plan is not None,
    )


def _run_static_cell(spec: CellSpec) -> CellResult:
    """Run a no-mobility cell *through* the existing CbrScenario."""
    scenario = CbrScenario(
        num_stations=spec.n_stations,
        num_aps=1,
        duration=spec.duration,
        seed=spec.seed,
        frame_bytes=spec.frame_bytes,
        frames_per_second=spec.frames_per_second,
        latency_requirement=spec.latency_requirement,
        with_background=spec.with_background,
        background_intensity=spec.background_intensity,
        fault_plan=spec.fault_plan,
    )
    result = scenario.run(_protocol_factory(spec))
    to_global = dict(spec.name_map)
    delivered = {
        to_global[name]: size
        for name, size in result.delivered_bytes_by_destination.items()
        if name in to_global  # uplink deliveries land on "ap"
    }
    return CellResult(
        ap_index=spec.ap_index,
        protocol=spec.protocol,
        n_stations=spec.n_stations,
        goodput_bps=result.measured_ap_goodput_bps,
        useful_goodput_bps=result.measured_ap_useful_goodput_bps,
        mean_delay_s=result.downlink_mean_delay,
        p95_delay_s=result.downlink_p95_delay,
        collisions=result.collisions,
        transmissions=result.transmissions,
        retransmitted_subframes=result.retransmitted_subframes,
        dropped_frames=result.dropped_frames,
        channel_busy_fraction=result.channel_busy_fraction,
        busy_airtime_s=result.channel_busy_fraction * spec.duration,
        delivered_bytes_by_sta=delivered,
        coupled=spec.fault_plan is not None,
        demotions=result.demotions,
        repromotions=result.repromotions,
    )


def _run_roaming_cell(spec: CellSpec) -> CellResult:
    """Run a cell over its explicit, pre-routed arrival list."""
    limits = AggregationLimits(
        max_frame_bytes=_MAX_FRAME_BYTES,
        max_latency=spec.latency_requirement,
    )
    protocol = _protocol_factory(spec)(DEFAULT_PARAMETERS, limits)
    sim = WlanSimulator(
        protocol,
        num_stations=len(spec.station_names),
        arrivals=list(spec.arrivals),
        rng=RngStream(spec.seed).child("sim"),
        num_aps=1,
        station_names=list(spec.station_names),
        faults=spec.fault_plan,
    )
    summary = sim.run(spec.duration)
    delivered = {
        name: size
        for name, size in sim.metrics.delivered_bytes_by_destination().items()
        if name != AP_NAME
    }
    return CellResult(
        ap_index=spec.ap_index,
        protocol=spec.protocol,
        n_stations=len(spec.station_names),
        goodput_bps=sim.metrics.goodput_of_source(AP_NAME, spec.duration),
        useful_goodput_bps=sim.metrics.goodput_of_source(
            AP_NAME, spec.duration, latency_bound=spec.latency_requirement
        ),
        mean_delay_s=summary.downlink_mean_delay,
        p95_delay_s=summary.downlink_p95_delay,
        collisions=summary.collisions,
        transmissions=summary.transmissions,
        retransmitted_subframes=summary.retransmitted_subframes,
        dropped_frames=summary.dropped_frames,
        channel_busy_fraction=summary.channel_busy_fraction,
        busy_airtime_s=summary.channel_busy_fraction * spec.duration,
        delivered_bytes_by_sta=delivered,
        coupled=spec.fault_plan is not None,
        demotions=int(getattr(protocol, "demotions", 0)),
        repromotions=int(getattr(protocol, "repromotions", 0)),
    )


def run_cell(spec: CellSpec) -> CellResult:
    """Execute one cell spec (pure function of the spec)."""
    with metrics().timer("net.run_cell").time():
        if spec.n_stations == 0:
            result = _idle_cell(spec)
        elif spec.static:
            result = _run_static_cell(spec)
        else:
            result = _run_roaming_cell(spec)
    rec = active_recorder()
    if rec is not None:
        rec.emit(
            "net", "cell_done",
            ap_index=spec.ap_index,
            protocol=spec.protocol,
            n_stations=result.n_stations,
            goodput_bps=round(result.goodput_bps, 3),
            busy_fraction=round(result.channel_busy_fraction, 6),
            coupled=result.coupled,
        )
    return result


def _cell_trial(trial_index: int, rng) -> dict:
    """run_trials adapter: cell ``trial_index`` of the shared spec list.

    The handed RNG is deliberately unused — every cell is seeded by its
    spec, so results cannot depend on worker count or chunking.
    """
    specs = shared_payload()
    return run_cell(specs[trial_index]).to_dict()


# --------------------------------------------------------------------------- #
# Arrival routing for roaming deployments.
# --------------------------------------------------------------------------- #


def _route_arrivals(arrivals: list, segments: list, duration: float) -> dict:
    """Split one station's time-sorted arrivals across its cell segments.

    An arrival inside a segment goes to that cell at its own time; one in
    a handoff gap is deferred to the start of the next segment (the frame
    waits out the handoff in the distribution system and lands in the new
    cell's queue the moment the station is reachable); one after the last
    segment is dropped. The time mapping is monotone, so each per-cell
    output list stays sorted.
    """
    routed: dict = {}
    cursor = 0
    for arrival in arrivals:
        while cursor < len(segments) and arrival.time >= segments[cursor].stop:
            cursor += 1
        if cursor == len(segments):
            break  # roamed past every segment: nothing can deliver this
        segment = segments[cursor]
        if arrival.time >= segment.start:
            routed.setdefault(segment.ap_index, []).append(arrival)
        elif segment.start < duration:
            routed.setdefault(segment.ap_index, []).append(
                dataclasses.replace(arrival, time=segment.start)
            )
    return routed


def _build_roaming_cell_arrivals(config: DeploymentConfig, timeline) -> dict:
    """ap_index → time-sorted arrival list with global station names."""
    rng = RngStream(config.seed)
    per_cell: dict = {}
    for sta_index in range(config.n_stas):
        name = f"sta{sta_index}"
        streams = [
            cbr_downlink_arrivals(
                [name], config.duration, config.frame_bytes,
                config.frames_per_second, rng.child(f"net-cbr-sta{sta_index}"),
                ap_name=AP_NAME,
            )
        ]
        if config.with_background:
            streams.append(
                background_uplink_arrivals(
                    [name], config.duration, rng.child(f"net-bg-sta{sta_index}"),
                    ap_name=AP_NAME, intensity=config.background_intensity,
                )
            )
        segments = timeline.segments_for(sta_index)
        for stream in streams:
            for ap_index, routed in _route_arrivals(
                stream, segments, config.duration
            ).items():
                per_cell.setdefault(ap_index, []).append(routed)
    return {
        ap_index: merge_arrivals(*streams)
        for ap_index, streams in per_cell.items()
    }


# --------------------------------------------------------------------------- #
# The deployment driver.
# --------------------------------------------------------------------------- #


@dataclass
class _DeploymentPlan:
    """The expensive, cell-independent decomposition of a config.

    Everything :func:`_make_cell_spec` needs to mint any single cell's
    spec: built once per process (parent, or each worker in sharded mode)
    and reused for every cell of the deployment.
    """

    timeline: object
    members: dict
    plans: dict
    cell_arrivals: dict
    mixed: bool
    ap_order: tuple


def _deployment_plan(config: DeploymentConfig) -> _DeploymentPlan:
    """Topology → associations → coupling plans → routed arrivals."""
    topology = build_topology(
        config.n_aps, config.n_stas, config.seed,
        arena=config.arena,
        ap_placement=config.ap_placement,
        sta_placement=config.sta_placement,
        channels=config.channels,
        shadowing_sigma_db=config.shadowing_sigma_db,
    )
    mobility = RandomWaypointMobility() if config.mobility else None
    timeline = build_association_timeline(
        topology, config.duration, config.seed,
        mobility=mobility,
        hysteresis_db=config.hysteresis_db,
        handoff_delay=config.handoff_delay,
        legacy_fraction=config.legacy_fraction,
    )
    members = {ap.index: timeline.members(ap.index) for ap in topology.aps}
    if config.coupling:
        plans = coupling_fault_plans(
            topology, config.duration, config.seed,
            duty_by_ap={
                index: min(0.9, estimated_duty(
                    len(stas), config.frames_per_second, config.frame_bytes
                ) + (background_duty(
                    len(stas), intensity=config.background_intensity
                ) if config.with_background else 0.0))
                for index, stas in members.items()
            },
            hit_probability=config.hit_probability,
        )
    else:
        plans = {ap.index: None for ap in topology.aps}

    mixed = config.legacy_fraction > 0.0 and config.protocol == "Carpool"
    cell_arrivals = (
        {} if not config.mobility
        else _build_roaming_cell_arrivals(config, timeline)
    )
    return _DeploymentPlan(
        timeline=timeline,
        members=members,
        plans=plans,
        cell_arrivals=cell_arrivals,
        mixed=mixed,
        ap_order=tuple(ap.index for ap in topology.aps),
    )


def _cell_fault_plan(config: DeploymentConfig, coupling_plan):
    """Compose a cell's coupling plan with the deployment-wide extras.

    Stream independence holds by construction: coupling specs are salted
    ``ap{i}-w{k}`` while soak episodes are salted per epoch, so composing
    the two never collides a fault RNG stream.
    """
    extra = config.extra_faults
    if not extra:
        return coupling_plan
    if not coupling_plan:
        return extra
    return FaultPlan.of(*coupling_plan.specs, *extra.specs)


def _make_cell_spec(config: DeploymentConfig, plan: _DeploymentPlan,
                    ap_index: int) -> CellSpec:
    """Mint one cell's spec from the shared deployment plan."""
    timeline, members = plan.timeline, plan.members
    common = dict(
        ap_index=ap_index,
        protocol=config.protocol,
        seed=cell_seed(config.seed, ap_index),
        duration=config.duration,
        frame_bytes=config.frame_bytes,
        frames_per_second=config.frames_per_second,
        latency_requirement=config.latency_requirement,
        with_background=config.with_background,
        background_intensity=config.background_intensity,
        fault_plan=_cell_fault_plan(config, plan.plans[ap_index]),
    )
    if not config.mobility:
        # Static: local names sta0..n-1 (the CbrScenario convention)
        # mapped back to the deployment's global indices.
        cell_members = members[ap_index]
        name_map = tuple(
            (f"sta{local}", f"sta{global_index}")
            for local, global_index in enumerate(cell_members)
        )
        carpool = None
        if plan.mixed:
            to_local = {g: l for l, g in name_map}
            carpool = tuple(
                to_local[name]
                for name in timeline.carpool_stations(ap_index)
            )
        return CellSpec(
            n_stations=len(cell_members), static=True,
            name_map=name_map, carpool_stations=carpool, **common,
        )
    names = tuple(f"sta{i}" for i in members[ap_index])
    carpool = (
        tuple(timeline.carpool_stations(ap_index)) if plan.mixed else None
    )
    return CellSpec(
        n_stations=len(names), static=False,
        arrivals=tuple(plan.cell_arrivals.get(ap_index, ())),
        station_names=names, carpool_stations=carpool, **common,
    )


def build_cell_specs(config: DeploymentConfig) -> tuple:
    """(specs, timeline, fault_plans) for a deployment config.

    Exposed separately so tests can inspect the decomposition without
    running the cells.
    """
    plan = _deployment_plan(config)
    specs = [_make_cell_spec(config, plan, i) for i in plan.ap_order]
    return specs, plan.timeline, plan.plans


# Worker-side plan memo for sharded runs: a worker serving several chunks
# of the same deployment rebuilds the decomposition once, not per chunk.
# Single entry (keyed by the frozen config) so a worker recycled across
# different deployments cannot accumulate plans — that would breach the
# constant-memory contract shards exist for.
_PLAN_MEMO: dict = {}


def _plan_for(config: DeploymentConfig) -> _DeploymentPlan:
    plan = _PLAN_MEMO.get(config)
    if plan is None:
        _PLAN_MEMO.clear()
        plan = _deployment_plan(config)
        _PLAN_MEMO[config] = plan
    return plan


class _SpecSource:
    """``run_trials`` trial_source: lazily mint one shard of cell specs.

    Pickles as just the config — workers regenerate their own shard of
    specs from the memoized plan, so the parent never materialises (or
    ships) the full spec list.
    """

    __slots__ = ("config",)

    def __init__(self, config: DeploymentConfig):
        self.config = config

    def __call__(self, start: int, stop: int) -> list:
        plan = _plan_for(self.config)
        return [
            _make_cell_spec(self.config, plan, plan.ap_order[i])
            for i in range(start, stop)
        ]

    def __reduce__(self):
        return (_SpecSource, (self.config,))


def _cell_trial_sharded(trial_index: int, rng, spec: CellSpec) -> dict:
    """Sharded run_trials adapter: the spec arrives from the trial source.

    The handed RNG is deliberately unused, exactly as in :func:`_cell_trial`.
    """
    return run_cell(spec).to_dict()


def _finalize(config: DeploymentConfig, agg: DeploymentAggregate, timeline,
              plans: dict, cells: list) -> DeploymentResult:
    """One :class:`DeploymentResult` from the folded aggregate.

    Both execution paths end here with an identical aggregate (the
    primitives are exactly associative), so every deployment-level field
    is bit-identical whether cells were folded in the parent or reduced
    shard-by-shard inside workers.
    """
    return DeploymentResult(
        config=config.to_payload(),
        cells=cells,
        total_goodput_bps=agg.total_goodput_bps(),
        total_useful_goodput_bps=agg.total_useful_goodput_bps(),
        busy_airtime_s=agg.busy_airtime_s(),
        jain_fairness=agg.jain_fairness(),
        n_roams=timeline.n_roams,
        interruption_time_s=timeline.interruption_time,
        n_coupled_cells=sum(1 for plan in plans.values() if plan is not None),
        n_cells=agg.n_cells,
        mean_cell_goodput_bps=agg.cell_goodput.mean(),
        cell_goodput_stddev_bps=agg.cell_goodput.stddev(),
        mean_cell_busy_fraction=agg.busy_fraction.mean(),
        goodput_histogram=agg.goodput_hist.to_dict(),
        busy_fraction_histogram=agg.busy_hist.to_dict(),
        demotions=agg.demotions,
        repromotions=agg.repromotions,
    )


def _emit_handoffs(config: DeploymentConfig, timeline) -> None:
    rec = active_recorder()
    if rec is None or not config.mobility:
        return
    for sta_index in range(config.n_stas):
        segments = timeline.segments_for(sta_index)
        for prev, nxt in zip(segments, segments[1:]):
            rec.emit("net", "handoff", sta=sta_index,
                     t=round(nxt.start, 6),
                     from_ap=prev.ap_index, to_ap=nxt.ap_index)


def simulate_deployment(
    config: DeploymentConfig,
    n_workers: int | None = None,
    cache: ResultCache | None = None,
    use_cache: bool = True,
    manifest_path=None,
    chunk_size: int | str | None = "auto",
    shards: int | None = None,
    return_aggregate: bool = False,
) -> DeploymentResult:
    """Simulate a whole deployment; cells fan out over the runtime pools.

    Each trial is one whole cell, and ``chunk_size`` defaults to
    ``"auto"``: the runtime measures the pool's per-submission IPC cost
    and batches enough cells per chunk to amortise it (cells are coarse,
    so this usually lands at a few cells per chunk). Chunking never
    affects results.

    ``shards=k`` selects the streaming path: cells are generated and
    reduced in ~``n_aps / k`` sized shards, workers fold their shard into
    a :class:`~repro.net.aggregate.DeploymentAggregate` before IPC, and
    the parent merges accumulators instead of collecting per-cell
    results. Deployment-level numbers are bit-identical to the unsharded
    path at any ``shards``/worker combination; ``result.cells`` is empty
    (the memory being saved is exactly that list).

    Results are cached under the ``deployment`` namespace, keyed by the
    full config payload and a fingerprint of every package that shapes
    the outcome — editing the MAC, traffic, fault, or net code invalidates
    stale entries automatically. Sharded results cache under a distinct
    key: the two paths return differently-shaped results (with and
    without ``cells``), so neither may satisfy the other's lookup.
    ``use_cache=False`` forces a recompute (the fresh result is still
    stored).

    ``manifest_path`` writes a provenance record (seed, git SHA, config
    hash, versions, timing) next to wherever the caller stores the result.

    ``return_aggregate=True`` returns ``(result, aggregate)`` — the live
    :class:`~repro.net.aggregate.DeploymentAggregate` the result was
    finalised from, so streaming callers (the :mod:`repro.serve` epoch
    loop) can keep folding it into a rolling deployment-of-deployments
    accumulator. It requires ``use_cache=False`` (a cache hit has no
    aggregate to hand back) and skips the cache write: epoch configs are
    one-shot, and persisting thousands of them would grow the cache
    without a future hit ever reading them.
    """
    if return_aggregate and use_cache:
        raise ValueError("return_aggregate=True requires use_cache=False")
    if shards is not None:
        shards = int(shards)
        if shards < 1:
            raise ValueError("shards must be >= 1")
    streaming = shards is not None
    key_payload = config.to_payload()
    if streaming:
        key_payload = dict(key_payload, result_shape="aggregate-only")
    key = content_key(
        "deployment", key_payload,
        code_fingerprint("repro.net", "repro.mac", "repro.traffic",
                         "repro.faults"),
    )
    cache = cache or ResultCache(namespace="deployment")
    if use_cache:
        cached = cache.get(key)
        if cached is not None:
            log.info("deployment cache hit (%d APs, seed %d)",
                     config.n_aps, config.seed)
            return DeploymentResult.from_dict(cached)
    log.info("simulating deployment: %d APs x %d STAs, %s, seed %d%s",
             config.n_aps, config.stas_per_ap, config.protocol, config.seed,
             f" ({shards} shards)" if streaming else "")
    with manifest_scope(manifest_path, kind="deployment", seed=config.seed,
                        config=config.to_payload()):
        seed = derive_seed(config.seed, "net-cells")
        if streaming:
            with metrics().timer("net.build_specs").time():
                # The parent builds the plan once too — for timeline
                # statistics and handoff events — but never the spec list.
                plan = _deployment_plan(config)
            _emit_handoffs(config, plan.timeline)
            with metrics().timer("net.run_cells").time():
                agg = run_trials(
                    _cell_trial_sharded, config.n_aps,
                    seed=seed,
                    n_workers=n_workers,
                    chunk_size=max(1, math.ceil(config.n_aps / shards)),
                    trial_source=_SpecSource(config),
                    reduce_fn=reduce_cell,
                    reduce_init=aggregate_factory(config.mobility),
                )
            with metrics().timer("net.aggregate").time():
                result = _finalize(config, agg, plan.timeline, plan.plans, [])
        else:
            with metrics().timer("net.build_specs").time():
                specs, timeline, plans = build_cell_specs(config)
            _emit_handoffs(config, timeline)
            with metrics().timer("net.run_cells").time():
                raw = run_trials(
                    _cell_trial, len(specs),
                    seed=seed,
                    n_workers=n_workers,
                    chunk_size=chunk_size,
                    shared=specs,
                )
            with metrics().timer("net.aggregate").time():
                # Fold the same wire dicts the sharded path reduces —
                # identity between the paths holds by construction.
                agg = DeploymentAggregate(track_stations=config.mobility)
                for r in raw:
                    agg.observe_cell(r)
                cells = [CellResult.from_dict(r) for r in raw]
                result = _finalize(config, agg, timeline, plans, cells)
        if not return_aggregate:
            cache.put(key, result.to_dict())
    if return_aggregate:
        return result, agg
    return result
