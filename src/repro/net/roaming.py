"""Association and roaming across a multi-BSS deployment.

Stations associate with the strongest-signal AP and move at pedestrian
speeds under a random-waypoint model (the walking-user traces of the
vehicular/pedestrian WiFi measurement literature reduce to exactly this
shape at hotspot scale: pick a point, walk to it, pause, repeat). A
station roams when another AP beats its current one by a hysteresis
margin — the standard sticky-client rule that suppresses ping-pong at
cell edges — and every (re-)association runs the byte-exact §4.3
handshake (:mod:`repro.mac.association`): the new AP parses the
station's ``AssocRequest``, negotiates capabilities, and records it in
its association table while the old AP drops its entry.

The output is an :class:`AssociationTimeline`: per-station segments of
cell membership with handoff gaps between them, which the deployment
layer uses to route each station's traffic into the right cell and to
account roam-interruption time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.compat import Capability
from repro.core.mac_address import MacAddress
from repro.mac.association import (
    STATUS_SUCCESS,
    ApAssociationService,
    AssocRequest,
    Beacon,
)
from repro.net.topology import DeploymentTopology
from repro.util.rng import RngStream

__all__ = [
    "RandomWaypointMobility",
    "AssociationSegment",
    "RoamEvent",
    "AssociationTimeline",
    "build_association_timeline",
    "sta_mac",
    "ap_bssid",
    "AP_CAPABILITIES",
    "CARPOOL_STA_CAPABILITIES",
    "LEGACY_STA_CAPABILITIES",
]

#: Every deployment AP advertises the full §4.3 capability set.
AP_CAPABILITIES = Capability.DOT11A | Capability.DOT11N | Capability.CARPOOL
CARPOOL_STA_CAPABILITIES = Capability.DOT11N | Capability.CARPOOL
LEGACY_STA_CAPABILITIES = Capability.DOT11A | Capability.DOT11N

#: BSSIDs and STA MACs live in disjoint ranges of the from_int space.
_BSSID_BASE = 0x00AA000000
_STA_BASE = 0x0055000000


def sta_mac(sta_index: int) -> MacAddress:
    """The deterministic MAC of station ``sta_index``."""
    return MacAddress.from_int(_STA_BASE + sta_index)


def ap_bssid(ap_index: int) -> MacAddress:
    """The deterministic BSSID of AP ``ap_index``."""
    return MacAddress.from_int(_BSSID_BASE + ap_index)


@dataclass(frozen=True)
class RandomWaypointMobility:
    """Random-waypoint walking at pedestrian speeds.

    Each station repeatedly draws a waypoint uniform in the arena and a
    speed uniform in ``[min_speed, max_speed]``, walks there in a straight
    line, pauses for ``pause_s``, and repeats. ``sample_interval`` is how
    often association is re-evaluated along the walk.
    """

    min_speed_mps: float = 0.5
    max_speed_mps: float = 1.5
    pause_s: float = 2.0
    sample_interval_s: float = 0.5

    def __post_init__(self):
        if not 0 < self.min_speed_mps <= self.max_speed_mps:
            raise ValueError("need 0 < min_speed <= max_speed")
        if self.pause_s < 0 or self.sample_interval_s <= 0:
            raise ValueError("pause must be >= 0, sample interval > 0")

    def trajectory(self, start_xy: tuple, duration: float, arena,
                   rng: RngStream) -> list:
        """Sampled positions [(t, x, y), ...] at ``sample_interval`` steps.

        Deterministic in ``rng``; the t=0 sample is the start position.
        """
        x, y = start_xy
        samples = [(0.0, x, y)]
        t = 0.0
        target = None
        speed = 0.0
        pause_left = 0.0
        step = self.sample_interval_s
        while t + step <= duration + 1e-12:
            t += step
            remaining = step
            while remaining > 1e-12:
                if pause_left > 0:
                    used = min(pause_left, remaining)
                    pause_left -= used
                    remaining -= used
                    continue
                if target is None:
                    target = (
                        float(rng.uniform(0.0, arena.width_m)),
                        float(rng.uniform(0.0, arena.height_m)),
                    )
                    speed = float(rng.uniform(self.min_speed_mps,
                                              self.max_speed_mps))
                dist = math.hypot(target[0] - x, target[1] - y)
                if dist <= speed * remaining:
                    # Reach the waypoint inside this step, then pause.
                    x, y = target
                    remaining -= dist / speed if speed > 0 else remaining
                    target = None
                    pause_left = self.pause_s
                else:
                    frac = speed * remaining / dist
                    x += (target[0] - x) * frac
                    y += (target[1] - y) * frac
                    remaining = 0.0
            samples.append((t, x, y))
        return samples


@dataclass(frozen=True)
class AssociationSegment:
    """One contiguous span of a station's membership in one cell."""

    sta_index: int
    ap_index: int
    start: float
    stop: float

    def contains(self, t: float) -> bool:
        """Is ``t`` inside this segment's [start, stop) span?"""
        return self.start <= t < self.stop


@dataclass(frozen=True)
class RoamEvent:
    """One re-association: a station moved from one cell to another."""

    time: float
    sta_index: int
    from_ap: int
    to_ap: int


@dataclass
class AssociationTimeline:
    """Who is in which cell, when — plus the roam/handshake record."""

    duration: float
    handoff_delay: float
    segments: list = field(default_factory=list)
    events: list = field(default_factory=list)
    #: sta_index -> negotiated Capability from the §4.3 handshake.
    negotiated: dict = field(default_factory=dict)
    #: AP-side association services, index-aligned with the topology APs.
    services: list = field(default_factory=list)

    def segments_for(self, sta_index: int) -> list:
        """A station's segments in time order."""
        return sorted(
            (s for s in self.segments if s.sta_index == sta_index),
            key=lambda s: s.start,
        )

    def members(self, ap_index: int) -> list:
        """Stations that are ever associated with ``ap_index`` (sorted)."""
        return sorted({s.sta_index for s in self.segments
                       if s.ap_index == ap_index})

    def association_at(self, sta_index: int, t: float):
        """The cell a station is in at ``t`` (None during a handoff gap)."""
        for segment in self.segments:
            if segment.sta_index == sta_index and segment.contains(t):
                return segment.ap_index
        return None

    def carpool_stations(self, ap_index: int) -> list:
        """Global names of the cell's members that negotiated Carpool."""
        return [
            f"sta{i}" for i in self.members(ap_index)
            if self.negotiated.get(i, Capability(0)) & Capability.CARPOOL
        ]

    def legacy_stations(self, ap_index: int) -> list:
        """Global names of the cell's members that did NOT negotiate Carpool."""
        return [
            f"sta{i}" for i in self.members(ap_index)
            if not self.negotiated.get(i, Capability(0)) & Capability.CARPOOL
        ]

    @property
    def n_roams(self) -> int:
        """Total re-association events."""
        return len(self.events)

    @property
    def interruption_time(self) -> float:
        """Total seconds stations spent in handoff gaps."""
        total = 0.0
        for event in self.events:
            total += min(self.handoff_delay, self.duration - event.time)
        return total


def _handshake(service: ApAssociationService, sta_index: int,
               sta_caps: Capability) -> Capability:
    """Run the byte-exact association exchange; return the negotiated set."""
    # The station reads the beacon off the air (byte round-trip) before
    # requesting — exactly the §4.3 sequence; parsing validates the FCS.
    Beacon.from_bytes(service.beacon().to_bytes())
    request = AssocRequest(sta_mac(sta_index), sta_caps)
    response = service.handle_request(request.to_bytes())
    if response.status != STATUS_SUCCESS:  # pragma: no cover - AP_CAPABILITIES
        raise RuntimeError(f"association refused for sta{sta_index}")
    return response.negotiated


def build_association_timeline(
    topology: DeploymentTopology,
    duration: float,
    seed: int,
    mobility: RandomWaypointMobility | None = None,
    hysteresis_db: float = 5.0,
    handoff_delay: float = 0.05,
    legacy_fraction: float = 0.0,
) -> AssociationTimeline:
    """Associate every station and (with mobility) roam it over time.

    * Initial association: strongest signal at the starting position,
      sealed with the full management-frame handshake against the AP's
      :class:`~repro.mac.association.ApAssociationService`.
    * Roaming: along each station's random-waypoint trajectory, a roam
      fires whenever some AP's SNR beats the serving AP's by
      ``hysteresis_db``; the station is unreachable for ``handoff_delay``
      seconds, the old AP drops it from its table, and the new AP runs a
      fresh handshake.
    * ``legacy_fraction`` of stations advertise no Carpool capability
      (drawn from the dedicated "net-caps" stream), letting deployments
      exercise the mixed-network protocol path.

    Deterministic in ``seed`` — mobility uses one child stream per
    station, so station *i*'s walk never depends on how many others move.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= legacy_fraction <= 1.0:
        raise ValueError("legacy_fraction must be in [0, 1]")
    if handoff_delay < 0:
        raise ValueError("handoff_delay must be >= 0")

    timeline = AssociationTimeline(duration=duration, handoff_delay=handoff_delay)
    timeline.services = [
        ApAssociationService(bssid=ap_bssid(ap.index),
                             capabilities=AP_CAPABILITIES)
        for ap in topology.aps
    ]
    caps_rng = RngStream(seed).child("net-caps")
    for sta in topology.stas:
        is_legacy = (legacy_fraction > 0.0
                     and float(caps_rng.uniform()) < legacy_fraction)
        sta_caps = LEGACY_STA_CAPABILITIES if is_legacy else CARPOOL_STA_CAPABILITIES
        serving = topology.strongest_ap(sta.index)
        timeline.negotiated[sta.index] = _handshake(
            timeline.services[serving], sta.index, sta_caps
        )
        segment_start = 0.0
        if mobility is not None:
            walk_rng = RngStream(seed).child(f"net-mobility-sta{sta.index}")
            samples = mobility.trajectory(
                (sta.x, sta.y), duration, topology.arena, walk_rng
            )
            for t, x, y in samples[1:]:
                best = topology.strongest_ap(sta.index, (x, y))
                if best == serving:
                    continue
                gain = (topology.snr_db(best, sta.index, (x, y))
                        - topology.snr_db(serving, sta.index, (x, y)))
                if gain <= hysteresis_db:
                    continue
                # Roam: close the old segment, open a handoff gap, then
                # run the handshake against the new cell.
                timeline.segments.append(AssociationSegment(
                    sta.index, serving, segment_start, min(t, duration)
                ))
                timeline.events.append(RoamEvent(t, sta.index, serving, best))
                timeline.services[serving].disassociate(sta_mac(sta.index))
                timeline.negotiated[sta.index] = _handshake(
                    timeline.services[best], sta.index, sta_caps
                )
                serving = best
                segment_start = min(t + handoff_delay, duration)
        if segment_start < duration:
            timeline.segments.append(AssociationSegment(
                sta.index, serving, segment_start, duration
            ))
    return timeline
