"""Inter-cell coupling: overlapping co-channel BSSs disturb each other.

Instead of simulating one giant collision domain (which would change the
proven single-cell engine), coupling is expressed through the existing
fault machinery: each cell receives a :class:`repro.faults.FaultPlan` of
``hidden_window`` specs — time windows during which a co-channel
neighbour's traffic can fire into the cell's transmissions like a hidden
terminal the carrier sense cannot suppress. This matches the physics of
partially-overlapping cells: the neighbour's AP/STAs are outside the
cell's carrier-sense range (otherwise they would simply share the
domain), yet close enough for their frames to collide at the receivers.

The construction keeps three properties the deployment layer relies on:

* **Engine-unmodified** — each cell still runs the plain
  :class:`~repro.mac.engine.WlanSimulator`; the plan is just another
  ``faults=`` argument.
* **Bit-identical when disabled** — no overlap (or ``coupling=False``)
  yields ``None`` plans, and a cell with ``faults=None`` performs zero
  extra draws: N decoupled cells are exactly N independent simulations.
* **One physical schedule per neighbour** — a cell's busy windows are
  drawn once from its own dedicated stream and seen identically by every
  neighbour it disturbs.
"""

from __future__ import annotations

import math

from repro.channel.path_loss import LogDistancePathLoss
from repro.faults.plan import FaultPlan, FaultSpec
from repro.mac.airtime import single_frame_airtime
from repro.mac.parameters import DEFAULT_PARAMETERS, PhyMacParameters
from repro.net.topology import TX_POWER_DBM, DeploymentTopology
from repro.traffic.trace_models import SIGCOMM08, TraceModel
from repro.util.rng import RngStream

__all__ = [
    "carrier_sense_range",
    "overlap_factor",
    "estimated_duty",
    "background_duty",
    "neighbor_busy_windows",
    "coupling_fault_plans",
    "DEFAULT_CS_THRESHOLD_DBM",
]

#: 802.11 preamble-detection threshold (received power, dBm).
DEFAULT_CS_THRESHOLD_DBM = -82.0


def carrier_sense_range(
    path_loss: LogDistancePathLoss | None = None,
    tx_power_dbm: float = TX_POWER_DBM,
    cs_threshold_dbm: float = DEFAULT_CS_THRESHOLD_DBM,
) -> float:
    """Distance (m) at which a transmission drops below the CS threshold.

    Inverts the log-distance model: beyond this range a neighbour cannot
    be carrier-sensed, so its cell is a separate collision domain.
    """
    model = path_loss or LogDistancePathLoss()
    budget_db = tx_power_dbm - cs_threshold_dbm
    if budget_db <= model.reference_loss_db:
        return model.reference_distance_m
    return model.reference_distance_m * 10.0 ** (
        (budget_db - model.reference_loss_db) / (10.0 * model.exponent)
    )


def overlap_factor(distance_m: float, cs_range_m: float) -> float:
    """How strongly two cells at AP separation ``distance_m`` couple.

    0 when the APs are at least two carrier-sense ranges apart (their
    coverage discs cannot touch), rising linearly to 1 as they collapse
    onto each other. A deliberately simple geometric proxy — the coverage
    disc intersection normalised by disc area has the same endpoints and
    near-linear middle.
    """
    if cs_range_m <= 0:
        raise ValueError("carrier-sense range must be positive")
    return max(0.0, min(1.0, 1.0 - distance_m / (2.0 * cs_range_m)))


def estimated_duty(
    n_stations: int,
    frames_per_second: float,
    frame_bytes: int,
    params: PhyMacParameters = DEFAULT_PARAMETERS,
    ceiling: float = 0.9,
) -> float:
    """A cell's estimated channel-busy fraction from its offered CBR load.

    Offered airtime = stations × rate × single-frame airtime; clamped to
    ``ceiling`` because a saturated cell still leaves contention gaps.
    """
    if n_stations <= 0 or frames_per_second <= 0:
        return 0.0
    airtime = single_frame_airtime(frame_bytes, params)
    return min(ceiling, n_stations * frames_per_second * airtime)


def background_duty(
    n_stations: int,
    model: TraceModel = SIGCOMM08,
    intensity: float = 1.0,
    params: PhyMacParameters = DEFAULT_PARAMETERS,
    ceiling: float = 0.9,
) -> float:
    """Busy fraction from trace-driven uplink background load.

    Combines the model's TCP and UDP per-client rates (scaled by
    ``intensity``) with the mean frame size of its size distribution —
    the same first-order estimate :func:`estimated_duty` makes for CBR.
    """
    if n_stations <= 0 or intensity <= 0:
        return 0.0
    rate = intensity * (1.0 / model.tcp_interarrival + 1.0 / model.udp_interarrival)
    sizes = model.size_points
    mean_bytes = sum(
        size * (cum - prev_cum)
        for (size, cum), (_prev, prev_cum) in zip(sizes, [(0, 0.0)] + list(sizes))
    )
    airtime = single_frame_airtime(max(1, int(mean_bytes)), params)
    return min(ceiling, n_stations * rate * airtime)


def neighbor_busy_windows(
    duration: float,
    duty: float,
    rng: RngStream,
    mean_busy_s: float = 0.25,
    max_windows: int = 32,
) -> list:
    """Alternating idle/busy windows with the given long-run busy fraction.

    Sojourns are exponential (memoryless on/off activity, the standard
    hotspot burst model); the window list is capped at ``max_windows``
    so a fault plan stays a small, picklable artefact.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= duty < 1.0:
        raise ValueError(f"duty must be in [0, 1), got {duty}")
    if duty == 0.0:
        return []
    mean_idle = mean_busy_s * (1.0 - duty) / duty
    windows = []
    t = float(rng.exponential(mean_idle))
    while t < duration and len(windows) < max_windows:
        busy = float(rng.exponential(mean_busy_s))
        windows.append((t, min(t + busy, duration)))
        t += busy + float(rng.exponential(mean_idle))
    return windows


def coupling_fault_plans(
    topology: DeploymentTopology,
    duration: float,
    seed: int,
    duty_by_ap: dict,
    cs_threshold_dbm: float = DEFAULT_CS_THRESHOLD_DBM,
    hit_probability: float = 0.35,
    mean_busy_s: float = 0.25,
    max_windows: int = 32,
) -> dict:
    """Per-cell fault plans expressing co-channel neighbour interference.

    For every co-channel AP pair whose cells overlap geometrically, each
    cell receives ``hidden_window`` specs covering the *other* cell's
    busy windows, with per-transmission hit probability scaled by the
    geometric overlap. Cells with no overlapping co-channel neighbour map
    to ``None`` — by construction bit-identical to an uncoupled run.

    Windows are drawn once per source cell from the dedicated
    ``net-interference-cell<j>`` stream of ``seed``, so both members of a
    pair see the same physical schedule and results never depend on
    iteration order or worker count.
    """
    if not 0.0 <= hit_probability <= 1.0:
        raise ValueError("hit_probability must be in [0, 1]")
    cs_range = carrier_sense_range(
        topology.path_loss, cs_threshold_dbm=cs_threshold_dbm
    )
    windows_cache: dict = {}

    def windows_of(ap_index: int) -> list:
        if ap_index not in windows_cache:
            rng = RngStream(seed).child(f"net-interference-cell{ap_index}")
            windows_cache[ap_index] = neighbor_busy_windows(
                duration, float(duty_by_ap.get(ap_index, 0.0)), rng,
                mean_busy_s=mean_busy_s, max_windows=max_windows,
            )
        return windows_cache[ap_index]

    specs_by_cell: dict = {ap.index: [] for ap in topology.aps}
    for i, j in topology.co_channel_pairs():
        a, b = topology.aps[i], topology.aps[j]
        factor = overlap_factor(math.hypot(a.x - b.x, a.y - b.y), cs_range)
        if factor <= 0.0:
            continue
        for victim, source in ((i, j), (j, i)):
            for k, (start, stop) in enumerate(windows_of(source)):
                specs_by_cell[victim].append(FaultSpec.make(
                    "hidden_window",
                    start=start, stop=stop,
                    probability=hit_probability * factor,
                    seed_salt=f"ap{source}-w{k}",
                ))
    return {
        index: (FaultPlan.of(*specs) if specs else None)
        for index, specs in specs_by_cell.items()
    }
