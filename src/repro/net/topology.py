"""Deployment geometry: AP and STA placement, per-link SNR.

A deployment is an *arena* (a rectangle of pavement, mall floor, or
conference hall), a set of AP sites, and a set of STA sites. Placement is
deterministic under :class:`repro.util.rng.RngStream` children of the
deployment seed, like every stochastic component in this repository.

Link budgets reuse the single-cell conventions (`analysis/testbed.py`):
log-distance path loss (:mod:`repro.channel.path_loss`) plus per-link
log-normal shadowing, with the same SDR-calibrated TX power and noise
floor the office testbed uses — so a 1-AP deployment sees the same SNR
regime as the paper's Fig. 10 setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.channel.path_loss import LogDistancePathLoss, link_snr_db
from repro.util.rng import RngStream

__all__ = [
    "Arena",
    "ApSite",
    "StaSite",
    "DeploymentTopology",
    "place_aps_grid",
    "place_aps_poisson",
    "place_stas_uniform",
    "place_stas_clustered",
    "place_stas_hotspot",
    "build_topology",
    "DEFAULT_CHANNELS",
]

#: Non-overlapping 2.4 GHz channels — co-channel APs interfere, others don't.
DEFAULT_CHANNELS = 3

#: Testbed-calibrated link budget (see OfficeTestbed.snr_db).
TX_POWER_DBM = 6.0
NOISE_FLOOR_DBM = -65.0


@dataclass(frozen=True)
class Arena:
    """The deployment area, metres."""

    width_m: float = 50.0
    height_m: float = 50.0

    def __post_init__(self):
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("arena dimensions must be positive")

    def clamp(self, x: float, y: float, margin: float = 0.2) -> tuple:
        """Clamp a point into the arena, ``margin`` metres off the walls."""
        return (
            float(np.clip(x, margin, self.width_m - margin)),
            float(np.clip(y, margin, self.height_m - margin)),
        )


@dataclass(frozen=True)
class ApSite:
    """One access point: position and channel."""

    index: int
    x: float
    y: float
    channel: int = 0


@dataclass(frozen=True)
class StaSite:
    """One station's (initial) position."""

    index: int
    x: float
    y: float

    @property
    def name(self) -> str:
        """The station's global name ("sta0", "sta1", …)."""
        return f"sta{self.index}"


def _distance(ax: float, ay: float, bx: float, by: float) -> float:
    return math.hypot(ax - bx, ay - by)


def place_aps_grid(n_aps: int, arena: Arena,
                   channels: int = DEFAULT_CHANNELS) -> list:
    """APs on a near-square grid covering the arena (hotspot ceiling mounts).

    Channels are assigned round-robin across the grid, the standard
    1/6/11-style reuse pattern; with ``channels=1`` every AP is
    co-channel (the worst-case coupling the paper's §7.2.1 two-AP setup
    samples).
    """
    if n_aps < 1:
        raise ValueError("need at least one AP")
    cols = int(math.ceil(math.sqrt(n_aps)))
    rows = int(math.ceil(n_aps / cols))
    sites = []
    for index in range(n_aps):
        gx, gy = index % cols, index // cols
        x = (gx + 0.5) * arena.width_m / cols
        y = (gy + 0.5) * arena.height_m / rows
        sites.append(ApSite(index, x, y, channel=index % max(1, channels)))
    return sites


def place_aps_poisson(n_aps: int, arena: Arena, rng: RngStream,
                      channels: int = DEFAULT_CHANNELS) -> list:
    """APs dropped uniformly at random (uncoordinated hotspot operators)."""
    if n_aps < 1:
        raise ValueError("need at least one AP")
    sites = []
    for index in range(n_aps):
        x = float(rng.uniform(0.0, arena.width_m))
        y = float(rng.uniform(0.0, arena.height_m))
        x, y = arena.clamp(x, y)
        sites.append(ApSite(index, x, y, channel=index % max(1, channels)))
    return sites


def place_stas_uniform(n_stas: int, arena: Arena, rng: RngStream) -> list:
    """STAs uniform over the whole arena."""
    return [
        StaSite(i, *arena.clamp(float(rng.uniform(0.0, arena.width_m)),
                                float(rng.uniform(0.0, arena.height_m))))
        for i in range(n_stas)
    ]


def place_stas_clustered(n_stas: int, aps: list, arena: Arena, rng: RngStream,
                         spread_m: float = 8.0) -> list:
    """STAs Gaussian-clustered around AP sites, round-robin (café seating)."""
    if not aps:
        raise ValueError("clustered placement needs AP sites")
    sites = []
    for i in range(n_stas):
        ap = aps[i % len(aps)]
        x = ap.x + float(rng.normal(0.0, spread_m))
        y = ap.y + float(rng.normal(0.0, spread_m))
        sites.append(StaSite(i, *arena.clamp(x, y)))
    return sites


def place_stas_hotspot(n_stas: int, arena: Arena, rng: RngStream,
                       n_blobs: int = 3, spread_m: float = 5.0) -> list:
    """STAs in a few dense blobs dropped at random (queues, gates, stages).

    Blob centres are drawn first, then stations Gaussian-scatter around a
    blob chosen uniformly per station — the clumped, AP-agnostic crowd
    shape that stresses association balance.
    """
    if n_blobs < 1:
        raise ValueError("need at least one blob")
    centres = [
        (float(rng.uniform(0.0, arena.width_m)),
         float(rng.uniform(0.0, arena.height_m)))
        for _ in range(n_blobs)
    ]
    sites = []
    for i in range(n_stas):
        cx, cy = centres[int(rng.integers(0, n_blobs))]
        x = cx + float(rng.normal(0.0, spread_m))
        y = cy + float(rng.normal(0.0, spread_m))
        sites.append(StaSite(i, *arena.clamp(x, y)))
    return sites


@dataclass
class DeploymentTopology:
    """Geometry + link budget of one deployment.

    Shadowing is drawn once per (AP, STA) link from a dedicated child
    stream of the topology seed — stable across the run (slow fading),
    deterministic per seed, and independent of every other stream.
    """

    arena: Arena
    aps: list
    stas: list
    path_loss: LogDistancePathLoss = field(default_factory=LogDistancePathLoss)
    shadowing_sigma_db: float = 6.0
    seed: int = 0

    def __post_init__(self):
        gen = RngStream(self.seed).child("net-shadowing").generator
        # One draw per link in (ap, sta) index order: reproducible and
        # insensitive to later queries.
        self._shadowing_db = gen.normal(
            0.0, self.shadowing_sigma_db, size=(len(self.aps), len(self.stas))
        ) if self.aps and self.stas else np.zeros((len(self.aps), len(self.stas)))
        self._snr_matrix_cache: np.ndarray | None = None

    def distance(self, ap_index: int, sta_index: int,
                 sta_xy: tuple | None = None) -> float:
        """AP→STA distance; ``sta_xy`` overrides for a moved station."""
        ap = self.aps[ap_index]
        if sta_xy is None:
            sta = self.stas[sta_index]
            sta_xy = (sta.x, sta.y)
        return max(_distance(ap.x, ap.y, *sta_xy), 1e-3)

    def snr_db(self, ap_index: int, sta_index: int,
               sta_xy: tuple | None = None) -> float:
        """Link SNR: path loss at the (possibly moved) position + the
        link's frozen shadowing term."""
        base = link_snr_db(
            self.distance(ap_index, sta_index, sta_xy),
            TX_POWER_DBM, NOISE_FLOOR_DBM, self.path_loss,
        )
        return base + float(self._shadowing_db[ap_index, sta_index])

    def snr_matrix(self) -> np.ndarray:
        """(n_aps, n_stas) SNR of every link at the initial positions.

        Positions and shadowing are frozen at construction, so the matrix
        is computed once and memoized — association sweeps (and the
        sharded deployment path, which rebuilds the topology in every
        worker process) reuse it instead of re-deriving every link
        budget. A copy is returned so callers cannot corrupt the cache.
        """
        if self._snr_matrix_cache is None:
            self._snr_matrix_cache = np.array([
                [self.snr_db(a, s) for s in range(len(self.stas))]
                for a in range(len(self.aps))
            ])
        return self._snr_matrix_cache.copy()

    def strongest_ap(self, sta_index: int, sta_xy: tuple | None = None) -> int:
        """The AP with the best SNR to a station (ties → lowest index)."""
        if sta_xy is None and self.aps and self.stas:
            # Initial-position query: one memoized matrix column instead
            # of n_aps fresh link-budget evaluations. The entries are the
            # exact floats snr_db would return, so selection is unchanged.
            if self._snr_matrix_cache is None:
                self.snr_matrix()
            return int(np.argmax(self._snr_matrix_cache[:, sta_index]))
        snrs = [self.snr_db(a, sta_index, sta_xy) for a in range(len(self.aps))]
        return int(np.argmax(snrs))

    def co_channel_pairs(self) -> list:
        """Unordered AP index pairs sharing a channel (coupling candidates)."""
        return [
            (a.index, b.index)
            for i, a in enumerate(self.aps)
            for b in self.aps[i + 1:]
            if a.channel == b.channel
        ]


def build_topology(
    n_aps: int,
    n_stas: int,
    seed: int,
    arena: Arena | None = None,
    ap_placement: str = "grid",
    sta_placement: str = "uniform",
    channels: int = DEFAULT_CHANNELS,
    shadowing_sigma_db: float = 6.0,
    path_loss: LogDistancePathLoss | None = None,
) -> DeploymentTopology:
    """Assemble a deployment topology from placement-kind names.

    Placement draws come from dedicated children of ``seed`` ("net-aps",
    "net-stas"), so the same seed always produces the same deployment and
    adding STAs does not move the APs.
    """
    arena = arena or Arena()
    rng = RngStream(seed)
    if ap_placement == "grid":
        aps = place_aps_grid(n_aps, arena, channels=channels)
    elif ap_placement == "poisson":
        aps = place_aps_poisson(n_aps, arena, rng.child("net-aps"),
                                channels=channels)
    else:
        raise ValueError(f"unknown AP placement {ap_placement!r}; "
                         f"known: grid, poisson")
    sta_rng = rng.child("net-stas")
    if sta_placement == "uniform":
        stas = place_stas_uniform(n_stas, arena, sta_rng)
    elif sta_placement == "clustered":
        stas = place_stas_clustered(n_stas, aps, arena, sta_rng)
    elif sta_placement == "hotspot":
        stas = place_stas_hotspot(n_stas, arena, sta_rng)
    else:
        raise ValueError(f"unknown STA placement {sta_placement!r}; "
                         f"known: uniform, clustered, hotspot")
    return DeploymentTopology(
        arena=arena, aps=aps, stas=stas,
        path_loss=path_loss or LogDistancePathLoss(),
        shadowing_sigma_db=shadowing_sigma_db, seed=seed,
    )
