"""Command-line interface: run the reproduction's experiments directly.

    python -m repro list
    python -m repro phy --mcs QAM64-3/4 --trials 30
    python -m repro mac --stations 30 --background --duration 8
    python -m repro testbed
    python -m repro energy

Each subcommand drives the same library code the benchmarks use, with
knobs exposed for quick exploration.

Observability: the experiment subcommands accept ``--trace PATH`` (write
a structured JSONL event trace plus a ``.manifest.json`` provenance
record) and ``--metrics`` (print the merged counter/timer table after
the run); ``repro report PATH`` renders a trace into per-layer summary
tables, and the global ``--log-level`` flag turns on the library's
otherwise-silent ``repro`` logger.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_obs_flags(sub) -> None:
    """Observability flags shared by the experiment subcommands."""
    sub.add_argument("--trace", metavar="PATH", default=None,
                     help="write a structured JSONL event trace to PATH "
                          "(plus PATH.manifest.json provenance); render it "
                          "with `repro report PATH`")
    sub.add_argument("--trace-sample", type=_positive_int, default=None,
                     metavar="N",
                     help="with --trace: also record every N-th per-symbol "
                          "PHY snapshot (EVM, estimate, CRC); default: none")
    sub.add_argument("--metrics", action="store_true",
                     help="collect counters/timers across the run and print "
                          "the merged table afterwards")


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Carpool (ICDCS 2015) reproduction — experiment runner",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "debug", "info",
                 "warning", "error"),
        help="attach a stderr handler to the `repro` logger at LEVEL "
             "(default: library stays silent)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    phy = sub.add_parser("phy", help="BER-vs-symbol-index (Fig. 3/13) experiment")
    phy.add_argument("--mcs", default="QAM64-3/4")
    phy.add_argument("--trials", type=int, default=30)
    phy.add_argument("--payload", type=int, default=4090)
    phy.add_argument("--power", type=float, default=0.2)
    phy.add_argument("--seed", type=int, default=0)
    phy.add_argument("--workers", type=_positive_int, default=None,
                     help="process count for the trial runner (default: auto)")
    phy.add_argument("--profile", action="store_true",
                     help="run under cProfile, print top-20 by cumulative time")
    _add_obs_flags(phy)

    mac = sub.add_parser("mac", help="MAC goodput/latency comparison (Fig. 15/16)")
    mac.add_argument("--stations", type=int, default=30)
    mac.add_argument("--duration", type=float, default=8.0)
    mac.add_argument("--background", action="store_true")
    mac.add_argument("--seed", type=int, default=42)
    mac.add_argument("--protocols", nargs="*", default=None,
                     help="subset of: 802.11 A-MPDU MU-Aggregation WiFox Carpool")
    _add_obs_flags(mac)

    sub.add_parser("testbed", help="Fig. 10 office layout, SNRs and rates")
    sub.add_parser("energy", help="§8 energy-overhead estimate")

    faults = sub.add_parser(
        "faults", help="robustness sweeps: graceful degradation + RTE hardening")
    faults.add_argument("--mode", choices=["degradation", "rte"],
                        default="degradation",
                        help="degradation: MAC sweep under ACK loss / bursty "
                             "fades; rte: naive-vs-hardened estimator BER")
    faults.add_argument("--ack-loss", nargs="*", type=float,
                        default=[0.0, 0.1, 0.2, 0.3],
                        help="injected ACK-loss rates (degradation mode)")
    faults.add_argument("--bursty", action="store_true",
                        help="add Gilbert–Elliott fades + A-HDR outage windows")
    faults.add_argument("--stations", type=int, default=25)
    faults.add_argument("--duration", type=float, default=3.0)
    faults.add_argument("--trials", type=int, default=3)
    faults.add_argument("--mcs", default="QAM64-3/4",
                        help="modulation for rte mode")
    faults.add_argument("--seed", type=int, default=7)
    faults.add_argument("--workers", type=_positive_int, default=None,
                        help="process count for the trial runner (default: auto)")
    _add_obs_flags(faults)

    net = sub.add_parser(
        "net", help="multi-BSS deployment: protocol comparison at scale")
    net.add_argument("--aps", type=_positive_int, default=9)
    net.add_argument("--stas-per-ap", type=int, default=6)
    net.add_argument("--duration", type=float, default=3.0)
    net.add_argument("--seed", type=int, default=42)
    net.add_argument("--channels", type=_positive_int, default=1,
                     help="non-overlapping channels (1 = worst-case coupling)")
    net.add_argument("--sta-placement", choices=("uniform", "clustered", "hotspot"),
                     default="uniform")
    net.add_argument("--ap-placement", choices=("grid", "poisson"), default="grid")
    net.add_argument("--mobility", action="store_true",
                     help="random-waypoint pedestrian mobility with roaming")
    net.add_argument("--legacy-fraction", type=float, default=0.0,
                     help="fraction of STAs without Carpool capability")
    net.add_argument("--no-coupling", action="store_true",
                     help="disable inter-cell interference coupling")
    net.add_argument("--protocols", nargs="*", default=None,
                     help="subset of: 802.11 A-MPDU A-MSDU MU-Aggregation "
                          "WiFox Carpool (default: 802.11 A-MPDU Carpool)")
    net.add_argument("--no-cache", action="store_true",
                     help="bypass the deployment result cache")
    net.add_argument("--shards", type=_positive_int, default=None,
                     help="stream the deployment in K shards: workers "
                          "reduce cells before IPC, parent memory stays "
                          "constant (per-cell breakdown is skipped; "
                          "totals are bit-identical)")
    net.add_argument("--workers", type=_positive_int, default=None,
                     help="process count for the cell fan-out (default: auto)")
    _add_obs_flags(net)

    soak = sub.add_parser(
        "soak", help="long-running resumable soak service: epoch workloads "
                     "replayed through sharded deployments with rolling faults")
    soak.add_argument("--checkpoint", default="soak-checkpoint", metavar="DIR",
                      help="checkpoint directory (state.json / metrics.jsonl / "
                           "manifest.json); default: ./soak-checkpoint")
    soak.add_argument("--resume", action="store_true",
                      help="continue from the checkpoint (bit-identical to an "
                           "uninterrupted run of the same budgets)")
    soak.add_argument("--epochs", type=int, default=None,
                      help="stop once this many epochs have completed "
                           "(absolute count; default: no cap)")
    soak.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                      help="wall-clock budget for this invocation; the epoch "
                           "in flight finishes and the run stays resumable")
    soak.add_argument("--users", type=int, default=None,
                      help="stop once this many cumulative users "
                           "(station-epochs) have been served")
    soak.add_argument("--fault-profile", default="none",
                      choices=("none", "bursty-loss", "hidden-terminal",
                               "deep-fade", "mixed"),
                      help="rolling impairment schedule sliding across epochs")
    soak.add_argument("--traffic", choices=("cbr", "voip", "trace-mixed"),
                      default="cbr", help="epoch traffic shape")
    soak.add_argument("--trace-model", default="SIGCOMM'08",
                      help="trace CDF for --traffic trace-mixed "
                           "(SIGCOMM'04 / SIGCOMM'08 / Library)")
    soak.add_argument("--seed", type=int, default=42)
    soak.add_argument("--aps", type=_positive_int, default=9)
    soak.add_argument("--max-stas-per-ap", type=_positive_int, default=16)
    soak.add_argument("--target-active-stas", type=float, default=6.0,
                      help="mean active STAs per AP the churn model targets")
    soak.add_argument("--epoch-duration", type=float, default=2.0,
                      help="simulated seconds per epoch")
    soak.add_argument("--channels", type=_positive_int, default=1)
    soak.add_argument("--protocol", default="Carpool")
    soak.add_argument("--background", action="store_true",
                      help="inject background uplink traffic in every cell")
    soak.add_argument("--shards", type=_positive_int, default=None,
                      help="stream each epoch's deployment in K shards "
                           "(constant parent memory)")
    soak.add_argument("--workers", type=_positive_int, default=None,
                      help="process count per epoch (default: auto)")
    soak.add_argument("--checkpoint-every", type=_positive_int, default=1,
                      metavar="N", help="rewrite state.json every N epochs")
    soak.add_argument("--telemetry", action="store_true",
                      help="write per-epoch telemetry.jsonl + health.json "
                           "beside the checkpoint (watch with `repro status`)")
    soak.add_argument("--slo", action="append", default=[], metavar="SPEC",
                      dest="slos",
                      help="SLO rule evaluated each epoch (implies "
                           "--telemetry); e.g. 'goodput_bps<2e6', "
                           "'mean:goodput_bps<2e6@5', "
                           "'trend:goodput_bps<-1e5@5!drain'; policies: "
                           "log (default) / checkpoint / drain; repeatable")
    soak.add_argument("--profile", action="store_true",
                      help="capture cross-worker profiles; aggregated into "
                           "the manifest's profile section")
    _add_obs_flags(soak)

    status = sub.add_parser(
        "status", help="render a soak checkpoint's live health, telemetry "
                       "tail, and cross-worker profile")
    status.add_argument("dir", help="soak checkpoint directory")
    status.add_argument("--follow", action="store_true",
                        help="re-render every --interval seconds until "
                             "interrupted")
    status.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="polling period for --follow (default: 2)")
    status.add_argument("--tail", type=_positive_int, default=8,
                        help="telemetry epochs to show (default: 8)")
    status.add_argument("--top", type=_positive_int, default=10,
                        help="profile function rows (default: 10)")

    bench = sub.add_parser(
        "bench", help="timing harness → BENCH_phy.json / BENCH_mac.json / BENCH_net.json")
    bench.add_argument("--suite", choices=("phy", "mac", "net", "soak", "all"),
                       default="phy",
                       help="which benchmark suite to run (default: phy)")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny workloads; validates the schema in seconds "
                            "(output goes to a temp dir unless --out/--out-dir)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (single suite only; default: "
                            "BENCH_<suite>.json, temp dir in smoke mode)")
    bench.add_argument("--out-dir", default=None,
                       help="directory for BENCH_<suite>.json outputs")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="baseline JSON file, or directory holding committed "
                            "BENCH_<suite>.json files; exit 1 on regression")
    bench.add_argument("--threshold", type=float, default=0.2,
                       help="relative regression tolerance for --compare "
                            "(default: 0.2 = 20%%)")
    bench.add_argument("--workers", type=_positive_int, default=None,
                       help="process count for the parallel legs (default: auto)")
    bench.add_argument("--scaling-out", metavar="PATH", default=None,
                       help="also write the speedup-vs-workers curves of every "
                            "pool section to PATH as one JSON artifact")

    report = sub.add_parser(
        "report", help="render a JSONL trace into per-layer summary tables "
                       "(or, given a soak checkpoint directory, its status)")
    report.add_argument("path", help="trace file written by --trace, or a "
                                     "soak checkpoint directory")
    report.add_argument("--top", type=_positive_int, default=15,
                        help="timer-table rows (default: 15)")
    report.add_argument("--timeline", type=_positive_int, default=60,
                        help="fault-timeline rows (default: 60)")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    print("  phy      — BER vs symbol index, standard vs RTE (Figs. 3/13)")
    print("  mac      — five-scheme goodput/latency comparison (Figs. 15/16)")
    print("  testbed  — office geometry, per-location SNR and selected MCS")
    print("  energy   — Bloom-filter false positives → energy overhead (§8)")
    print("  faults   — robustness: degradation sweep / RTE burst hardening")
    print("  net      — multi-BSS deployment: protocols at hotspot scale")
    print("\nfull reproduction tables: pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_phy(args) -> int:
    from repro.analysis import LinkConfig, ber_by_symbol_index

    link = LinkConfig(seed=args.seed).with_power(args.power)
    print(f"{args.mcs}, {args.payload} B frames, power {args.power}, "
          f"{args.trials} trials per scheme")
    std = ber_by_symbol_index(args.mcs, args.payload, args.trials,
                              use_rte=False, link=link, n_workers=args.workers)
    rte = ber_by_symbol_index(args.mcs, args.payload, args.trials,
                              use_rte=True, link=link, n_workers=args.workers)
    print(f"{'symbols':>10s}  {'standard':>10s}  {'RTE':>10s}")
    for start in range(0, std.ber_per_symbol.size, 10):
        end = min(start + 10, std.ber_per_symbol.size)
        print(f"{start + 1:>4d}–{end:<5d}  "
              f"{std.ber_per_symbol[start:end].mean():10.2e}  "
              f"{rte.ber_per_symbol[start:end].mean():10.2e}")
    print(f"\nmean: standard {std.mean_ber:.2e}, RTE {rte.mean_ber:.2e}")
    return 0


def _cmd_mac(args) -> int:
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import VoipScenario

    names = args.protocols or list(PROTOCOLS)
    unknown = [n for n in names if n not in PROTOCOLS]
    if unknown:
        print(f"unknown protocols: {unknown}; have {sorted(PROTOCOLS)}",
              file=sys.stderr)
        return 2
    scenario = VoipScenario(num_stations=args.stations, duration=args.duration,
                            with_background=args.background, seed=args.seed)
    print(f"{args.stations} STAs/AP × 2 APs, {args.duration:.0f} s, "
          f"background={'on' if args.background else 'off'}\n")
    print(f"{'scheme':<16s} {'goodput':>10s} {'delay':>10s} {'retx':>6s}")
    for name in names:
        result = scenario.run(PROTOCOLS[name])
        print(f"{result.protocol:<16s} "
              f"{result.measured_ap_useful_goodput_bps / 1e6:8.3f} M "
              f"{result.downlink_mean_delay * 1e3:8.1f} ms "
              f"{result.retransmitted_subframes:>6d}")
    return 0


def _cmd_testbed() -> int:
    from repro.analysis.testbed import OfficeTestbed
    from repro.mac.rate_control import select_mcs

    testbed = OfficeTestbed()
    print("Fig. 10 office (10 m × 10 m, transmitter at centre):\n")
    print(f"{'loc':>4s} {'x':>6s} {'y':>6s} {'dist':>6s} {'SNR':>7s}  MCS")
    for loc in testbed.locations:
        snr = testbed.snr_db(loc)
        mcs = select_mcs(snr)
        print(f"{loc.index:>4d} {loc.x:6.2f} {loc.y:6.2f} "
              f"{testbed.distance(loc):6.2f} {snr:6.1f}dB  {mcs.name}")
    return 0


def _cmd_energy() -> int:
    from repro.core.energy import carpool_energy_overhead

    print(f"{'receivers':>10s} {'extra RX power':>15s} {'total overhead':>15s}")
    for n in range(2, 9):
        overhead = carpool_energy_overhead(num_receivers=n)
        print(f"{n:>10d} {overhead['extra_rx_power_fraction']:>14.4%} "
              f"{overhead['total_energy_overhead']:>14.4%}")
    return 0


def _cmd_faults(args) -> int:
    if args.mode == "rte":
        from repro.analysis.degradation import rte_burst_resilience

        print(f"RTE under impulse-noise bursts, {args.mcs}, "
              f"{args.trials} trials per scheme")
        results = rte_burst_resilience(mcs_name=args.mcs, trials=args.trials,
                                       seed=args.seed, n_workers=args.workers)
        print(f"{'estimator':<10s} {'head BER':>10s} {'tail BER':>10s} "
              f"{'tail/head':>10s}")
        for label, r in results.items():
            print(f"{label:<10s} {r.head_ber:>10.3e} {r.tail_ber:>10.3e} "
                  f"{r.tail_head_ratio:>10.2f}")
        return 0

    from repro.analysis.degradation import SWEEP_PROTOCOLS, degradation_sweep

    print(f"{args.stations} STAs, {args.duration:.1f} s, "
          f"bursty={'on' if args.bursty else 'off'}, "
          f"{args.trials} trials per cell\n")
    sweep = degradation_sweep(
        ack_loss_rates=args.ack_loss, bursty=args.bursty,
        num_stations=args.stations, duration=args.duration,
        trials=args.trials, seed=args.seed, n_workers=args.workers,
    )
    print(f"{'scheme':<18s} {'ack loss':>8s} {'goodput':>10s} "
          f"{'retx':>8s} {'drops':>7s}")
    for name in SWEEP_PROTOCOLS:
        for point in sweep[name]:
            print(f"{name:<18s} {point.ack_loss:>8.2f} "
                  f"{point.goodput_bps / 1e6:>8.3f} M "
                  f"{point.retransmitted_subframes:>8.0f} "
                  f"{point.dropped_frames:>7.0f}")
    return 0


def _cmd_net(args) -> int:
    from repro.analysis.deployment_sweep import (
        DEPLOYMENT_PROTOCOLS,
        deployment_protocol_sweep,
        format_deployment_table,
    )
    from repro.mac import PROTOCOLS
    from repro.net import DeploymentConfig

    names = tuple(args.protocols) if args.protocols else DEPLOYMENT_PROTOCOLS
    unknown = [n for n in names if n not in PROTOCOLS]
    if unknown:
        print(f"unknown protocols: {unknown}; have {sorted(PROTOCOLS)}",
              file=sys.stderr)
        return 2
    config = DeploymentConfig(
        n_aps=args.aps, stas_per_ap=args.stas_per_ap,
        duration=args.duration, seed=args.seed, channels=args.channels,
        ap_placement=args.ap_placement, sta_placement=args.sta_placement,
        mobility=args.mobility, legacy_fraction=args.legacy_fraction,
        coupling=not args.no_coupling,
    )
    print(f"{args.aps} APs × {args.stas_per_ap} STAs, "
          f"{args.duration:.1f} s, {args.channels} channel(s), "
          f"placement {args.ap_placement}/{args.sta_placement}, "
          f"mobility={'on' if args.mobility else 'off'}, "
          f"coupling={'off' if args.no_coupling else 'on'}"
          + (f", {args.shards} shards (streaming)" if args.shards else "")
          + "\n")
    results = deployment_protocol_sweep(
        config, protocols=names, n_workers=args.workers,
        use_cache=not args.no_cache, shards=args.shards,
    )
    baseline = "802.11" if "802.11" in results else names[0]
    print(format_deployment_table(results, baseline=baseline))
    first = next(iter(results.values()))
    if first.n_roams:
        print(f"\nroams: {first.n_roams}, handoff interruption "
              f"{first.interruption_time_s:.2f} s (identical across schemes)")
    if first.n_coupled_cells:
        print(f"coupled cells: {first.n_coupled_cells}/{args.aps}")
    return 0


def _print_scaling(label: str, section: dict) -> None:
    """One-line speedup curve of a pool section's ``scaling`` subsection."""
    scaling = section.get("scaling")
    if not scaling:
        return
    points = ", ".join(
        f"{w}w x{body['speedup_vs_serial']:.2f}"
        for w, body in sorted(scaling["workers"].items(), key=lambda kv: int(kv[0]))
    )
    print(f"{label}: {points} vs serial "
          f"({scaling['serial_seconds']:.3f}s / {section.get('trials', section.get('aps'))} "
          f"{scaling['unit']})")


def _print_phy_bench(payload) -> None:
    enc, vit = payload["encode"], payload["viterbi"]
    rx, mc = payload["rx_chain"], payload["monte_carlo"]
    print(f"encode     : {enc['mbit_per_s']:8.1f} Mbit/s "
          f"({enc['seconds_per_frame'] * 1e3:.2f} ms / {enc['n_bits']}-bit frame)")
    print(f"viterbi    : {vit['mbit_per_s']:8.1f} Mbit/s "
          f"({vit['seconds_per_frame'] * 1e3:.2f} ms; "
          f"{vit['speedup_vs_reference']:.1f}x reference; "
          f"bit-exact={vit['bit_exact_vs_reference']})")
    print(f"rx chain   : {rx['frames_per_s']:8.1f} frames/s "
          f"({rx['payload_bytes']} B {rx['mcs']})")
    print(f"monte carlo: {mc['serial_trials_per_s']:8.2f} trials/s serial, "
          f"{mc['parallel_trials_per_s']:.2f} trials/s x{mc['parallel_workers']} "
          f"workers (crossover={mc['crossover_workers']}, "
          f"identical={mc['identical_serial_parallel']})")
    _print_scaling("  scaling  ", mc)


def _print_mac_bench(payload) -> None:
    eng, sweep, pool = payload["engine"], payload["sweep"], payload["trials_pool"]
    print(f"engine     : batched x{eng['speedup_batched']:.2f} vs scalar "
          f"({eng['stations']} stations, {eng['runs']} runs; "
          f"identical={eng['identical_metrics']})")
    print(f"sweep      : batched+cached x{sweep['speedup']:.1f} vs "
          f"scalar+uncached ({sweep['points']} points, "
          f"{sweep['batched_cached_seconds']:.2f}s vs "
          f"{sweep['scalar_uncached_seconds']:.2f}s; "
          f"identical={sweep['identical_results']})")
    print(f"trials pool: {pool['serial_trials_per_s']:8.2f} trials/s serial, "
          f"{pool['parallel_trials_per_s']:.2f} trials/s "
          f"x{pool['parallel_workers']} workers "
          f"(crossover={pool['crossover_workers']}, "
          f"identical={pool['identical_serial_parallel']})")
    _print_scaling("  scaling  ", pool)


def _print_net_bench(payload) -> None:
    dep, rep = payload["deployment"], payload["replay"]
    print(f"deployment : {dep['serial_cells_per_s']:8.2f} cells/s serial, "
          f"{dep['parallel_cells_per_s']:.2f} cells/s "
          f"x{dep['parallel_workers']} workers "
          f"({dep['aps']} APs x {dep['stas_per_ap']} STAs, "
          f"crossover={dep['crossover_workers']}, "
          f"identical={dep['identical_serial_parallel']})")
    _print_scaling("  scaling  ", dep)
    print(f"replay     : cold {rep['cold_seconds']:.2f}s, "
          f"warm cache hit {rep['warm_seconds'] * 1e3:.1f} ms "
          f"(identical={rep['identical_cold_warm']})")
    stream = payload.get("streaming")
    if stream:
        print(f"streaming  : IPC {stream['unsharded_ipc_bytes'] / 1e3:.1f} kB"
              f" -> {stream['sharded_ipc_bytes'] / 1e3:.1f} kB "
              f"(x{stream['ipc_reduction_factor']:.1f} reduced, "
              f"{stream['shards']} shards); peak RSS "
              f"{stream['small_peak_rss_mb']:.0f} -> "
              f"{stream['large_peak_rss_mb']:.0f} MB over "
              f"{stream['small_aps']} -> {stream['large_aps']} APs "
              f"(identical={stream['identical_sharded_unsharded']})")


def _print_soak_bench(payload) -> None:
    sus, res = payload["sustained"], payload["resume"]
    print(f"sustained  : {sus['frames_per_s']:8.1f} frames/s over "
          f"{sus['epochs']} epochs x{sus['shards']} shards "
          f"({sus['cumulative_users']} users; RSS "
          f"{sus['warm_peak_rss_mb']:.0f} -> {sus['end_peak_rss_mb']:.0f} MB, "
          f"x{sus['rss_growth_factor']:.2f} <= "
          f"x{sus['rss_growth_threshold']:.2f}: {sus['rss_flat_ok']})")
    tel = payload.get("telemetry")
    if tel:
        print(f"telemetry  : x{tel['overhead_factor']:.3f} overhead "
              f"(<= x{tel['overhead_threshold']:.2f}: {tel['overhead_ok']}; "
              f"{tel['telemetry_records']} records, "
              f"health {tel['health_status']})")
    print(f"resume     : kill at epoch {res['resume_epoch']}/{res['epochs']}, "
          f"bit-identical={res['identical_resume']}"
          + (f", telemetry={res['identical_telemetry']}"
             if "identical_telemetry" in res else ""))


def _cmd_soak(args) -> int:
    from repro.serve import SoakConfig, SoakWorkload, run_soak

    workload = SoakWorkload(
        seed=args.seed,
        n_aps=args.aps,
        max_stas_per_ap=args.max_stas_per_ap,
        target_active_stas=args.target_active_stas,
        epoch_duration=args.epoch_duration,
        traffic=args.traffic,
        trace_model=args.trace_model,
        protocol=args.protocol,
        channels=args.channels,
        with_background=args.background,
    )
    config = SoakConfig(
        workload=workload,
        fault_profile=args.fault_profile,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        epochs=args.epochs,
        max_users=args.users,
        max_wall_seconds=args.duration,
        n_workers=args.workers,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        telemetry=args.telemetry,
        slos=tuple(args.slos),
        profile=args.profile,
    )
    try:
        summary = run_soak(config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 2
    print(f"soak {summary.config_hash}: "
          f"{summary.epochs_this_run} epoch(s) this run, "
          f"{summary.epochs_completed} total")
    print(f"  users      : {summary.cumulative_users} cumulative")
    print(f"  frames     : {summary.cumulative_frames} transmissions")
    print(f"  goodput    : {summary.total_goodput_bps / 1e6:.2f} Mbit/s "
          f"(useful {summary.total_useful_goodput_bps / 1e6:.2f})")
    print(f"  fairness   : {summary.jain_fairness:.4f} (Jain)")
    if args.telemetry or args.slos:
        print(f"  slo        : {summary.slo_status} "
              f"({len(args.slos)} rule(s); status: repro status "
              f"{summary.checkpoint_dir})")
    print(f"  wall       : {summary.wall_seconds:.2f}s; checkpoint "
          f"{summary.checkpoint_dir}"
          f"{' [interrupted: resumable]' if summary.interrupted else ''}")
    return 0


def _cmd_bench(args) -> int:
    import json
    import os
    import tempfile

    from repro.runtime.bench import (
        compare_bench,
        run_mac_bench,
        run_net_bench,
        run_phy_bench,
        run_soak_bench,
    )

    suites = (("phy", "mac", "net", "soak") if args.suite == "all"
              else (args.suite,))
    if args.out and len(suites) > 1:
        print("--out takes a single suite; use --out-dir with --suite all",
              file=sys.stderr)
        return 2

    out_dir = args.out_dir
    if out_dir is None and args.out is None:
        # Smoke runs exercise the code paths, not the machine: never let
        # them overwrite the committed full-run baselines in-place.
        out_dir = tempfile.mkdtemp(prefix="repro-bench-") if args.smoke else os.getcwd()

    runners = {"phy": run_phy_bench, "mac": run_mac_bench,
               "net": run_net_bench, "soak": run_soak_bench}
    printers = {"phy": _print_phy_bench, "mac": _print_mac_bench,
                "net": _print_net_bench, "soak": _print_soak_bench}
    status = 0
    scaling_curves = {}
    for suite in suites:
        out_path = args.out or os.path.join(out_dir, f"BENCH_{suite}.json")
        if not os.path.isdir(os.path.dirname(os.path.abspath(out_path))):
            print(f"output directory does not exist: {out_path}", file=sys.stderr)
            return 2
        payload = runners[suite](smoke=args.smoke, n_workers=args.workers,
                                 out_path=out_path)
        print(f"--- {suite} suite ---")
        printers[suite](payload)
        for section, body in payload.items():
            if isinstance(body, dict) and "scaling" in body:
                scaling_curves[f"{suite}.{section}"] = {
                    "crossover_workers": body.get("crossover_workers"),
                    **body["scaling"],
                }
        obs = payload.get("observability")
        if obs:
            print(f"obs        : pools {obs['pool_spawned']} spawned / "
                  f"{obs['pool_reused']} reused, cache {obs['cache_hits']} "
                  f"hits / {obs['cache_misses']} misses, "
                  f"{obs['chunk_retries']} chunk retries")
        print(f"wrote {out_path}")
        if not args.compare:
            continue
        baseline_path = args.compare
        if os.path.isdir(baseline_path):
            baseline_path = os.path.join(baseline_path, f"BENCH_{suite}.json")
        if not os.path.isfile(baseline_path):
            print(f"no {suite} baseline at {baseline_path}; skipping compare")
            continue
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        regressions = compare_bench(payload, baseline, threshold=args.threshold)
        if regressions:
            status = 1
            for line in regressions:
                print(f"REGRESSION [{suite}] {line}", file=sys.stderr)
        else:
            print(f"no regression vs {baseline_path} "
                  f"(threshold {args.threshold:.0%})")
    if args.scaling_out:
        with open(args.scaling_out, "w") as handle:
            json.dump({"smoke": args.smoke, "curves": scaling_curves},
                      handle, indent=2)
            handle.write("\n")
        print(f"wrote scaling curves to {args.scaling_out}")
    return status


def _cmd_report(args) -> int:
    import os

    from repro.obs.report import format_report, format_status

    if os.path.isdir(args.path):
        # A soak checkpoint directory: render its live status instead.
        try:
            print(format_status(args.path, top=args.top), end="")
        except ValueError as exc:
            print(f"malformed telemetry: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        print(format_report(args.path, top=args.top,
                            timeline_limit=args.timeline), end="")
    except FileNotFoundError as exc:
        print(f"trace file not found: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_status(args) -> int:
    import os
    import time

    from repro.obs.report import format_status
    from repro.obs.slo import read_health
    from repro.obs.telemetry import telemetry_paths

    if not os.path.isdir(args.dir):
        print(f"no checkpoint directory at {args.dir}", file=sys.stderr)
        return 2
    paths = telemetry_paths(args.dir)
    has_artifacts = (os.path.exists(paths["telemetry"])
                     or os.path.exists(paths["health"])
                     or os.path.exists(os.path.join(args.dir, "state.json")))
    if not has_artifacts:
        print(f"no soak artifacts in {args.dir} "
              "(expected telemetry.jsonl / health.json / state.json)",
              file=sys.stderr)
        return 2
    try:
        while True:
            try:
                rendered = format_status(args.dir, tail=args.tail,
                                         top=args.top)
            except ValueError as exc:
                print(f"malformed telemetry: {exc}", file=sys.stderr)
                return 2
            if args.follow:
                # Clear-screen render, like `watch`: cursor home + erase.
                print("\033[H\033[J" + rendered, end="", flush=True)
                time.sleep(args.interval)
            else:
                print(rendered, end="")
                break
    except KeyboardInterrupt:
        pass
    health = read_health(args.dir)
    if health is not None and health.get("status") == "breached":
        return 1
    return 0


def _print_metrics_summary(snapshot: dict) -> None:
    """The ``--metrics`` table: counters, gauges, and timers after a run."""
    from repro.obs.report import timer_rows

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        print("\n--- metrics: counters ---")
        names = sorted(counters) + sorted(gauges)
        width = max(len(n) for n in names)
        for name in sorted(counters):
            print(f"{name:<{width}}  {counters[name]:>12}")
        for name in sorted(gauges):
            print(f"{name:<{width}}  {gauges[name]['value']!r:>12}")
    rows = timer_rows(snapshot)
    if rows:
        print("\n--- metrics: timers (by total time) ---")
        width = max(len(name) for name, *_ in rows)
        print(f"{'timer':<{width}}  {'count':>8}  {'total':>10}  {'mean':>10}")
        for name, count, total, mean, _max_s in rows:
            print(f"{name:<{width}}  {count:>8}  {total:>9.4f}s  {mean:>9.6f}s")


def _profiled(fn, args) -> int:
    """Run ``fn(args)`` under cProfile; print the top 20 by cumulative time."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    status = profiler.runcall(fn, args)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    print("\n--- cProfile: top 20 by cumulative time ---")
    stats.sort_stats("cumulative").print_stats(20)
    return status


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "phy":
        if args.profile:
            return _profiled(_cmd_phy, args)
        return _cmd_phy(args)
    if args.command == "mac":
        return _cmd_mac(args)
    if args.command == "testbed":
        return _cmd_testbed()
    if args.command == "energy":
        return _cmd_energy()
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "net":
        return _cmd_net(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "status":
        return _cmd_status(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        from repro.obs.log import configure_logging

        configure_logging(args.log_level)

    trace_path = getattr(args, "trace", None)
    metrics_on = getattr(args, "metrics", False)
    if trace_path is None and not metrics_on:
        return _dispatch(args)

    from repro.obs.trace import ObsSession

    config = {k: v for k, v in sorted(vars(args).items())
              if k not in ("trace", "trace_sample", "metrics", "log_level")}
    with ObsSession(
        trace_path=trace_path,
        metrics_on=metrics_on,
        sample_every=getattr(args, "trace_sample", None) or 0,
        manifest_kind=args.command,
        manifest_config=config,
        seed=getattr(args, "seed", None),
    ) as session:
        status = _dispatch(args)
    if metrics_on and session.registry is not None:
        _print_metrics_summary(session.registry.to_dict())
    if trace_path is not None:
        print(f"\ntrace: {trace_path} ({len(session.recorder)} events); "
              f"manifest: {session.manifest_path}\n"
              f"render with: python -m repro report {trace_path}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
