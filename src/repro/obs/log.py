"""Library-wide logging under the ``repro`` logger hierarchy.

The library never configures handlers on import — the root ``repro``
logger gets a :class:`logging.NullHandler`, so embedding applications
stay silent unless they opt in. The CLI's ``--log-level`` flag calls
:func:`configure_logging` to attach a stderr handler for the session.

Modules obtain their logger once at import time::

    from ..obs.log import get_logger
    log = get_logger(__name__)          # -> "repro.runtime.cache"
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging", "REPRO_LOGGER"]

REPRO_LOGGER = logging.getLogger("repro")
REPRO_LOGGER.addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A child of the ``repro`` logger.

    Accepts either a dotted suffix (``"runtime.cache"``) or a module
    ``__name__`` (``"repro.runtime.cache"``) — both map to the same logger.
    """
    if not name or name == "repro":
        return REPRO_LOGGER
    if name.startswith("repro."):
        name = name[len("repro."):]
    return REPRO_LOGGER.getChild(name)


def configure_logging(level="WARNING", stream=None) -> logging.Logger:
    """Attach a stderr handler at ``level`` to the ``repro`` logger.

    Idempotent: a second call re-levels the existing handler instead of
    stacking a new one. Returns the configured root ``repro`` logger.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    handler = next(
        (h for h in REPRO_LOGGER.handlers
         if getattr(h, "_repro_cli_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_cli_handler = True
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        ))
        REPRO_LOGGER.addHandler(handler)
    handler.setLevel(level)
    REPRO_LOGGER.setLevel(level)
    return REPRO_LOGGER
