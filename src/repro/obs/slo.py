"""Declarative SLO watchdogs over the telemetry series.

A soak run that only logs is a run nobody is watching. :class:`SloSpec`
states an objective over the deterministic telemetry fields — three rule
kinds:

``threshold``
    Breach when the latest epoch's value violates the bound.
``window``
    Breach when the **mean over the last N epochs** violates the bound
    (evaluated only once N samples exist — one bad epoch under a fault
    window is weather, N bad epochs are climate).
``trend``
    Breach when the **per-epoch slope** over the last N epochs violates
    the bound (``(last - first) / (N - 1)``) — the rule that catches a
    slow leak long before a threshold trips.

Specs parse from a compact CLI string form::

    goodput_bps<2e6                  threshold, policy log
    mean:goodput_bps<2e6@5           5-epoch rolling mean
    trend:goodput_bps<-1e5@5!drain   slope rule with a drain policy

The watchdog (:class:`SloWatchdog`) is evaluated each epoch inside
``run_soak``; every breach emits an ``slo_breach`` trace event and the
run's ``health.json`` is atomically rewritten with the overall status:

* ``ok`` — no rule currently breached,
* ``degraded`` — only ``log``-policy rules breached,
* ``breached`` — a ``checkpoint``- or ``drain``-policy rule breached.

Policies: ``log`` (default) records and continues; ``checkpoint`` forces
a ``state.json`` rewrite this epoch regardless of cadence; ``drain``
requests the same graceful stop as SIGTERM — the epoch finishes, the
checkpoint lands, the run stays resumable.

Watchdog history is rebuilt from ``telemetry.jsonl`` on resume, so a
rolling-window rule sees the same samples whether the run was
interrupted or not.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Iterable, Optional

__all__ = [
    "HEALTH_SCHEMA",
    "SloSpec",
    "SloBreach",
    "SloWatchdog",
    "write_health",
    "read_health",
]

HEALTH_SCHEMA = 1

_OPS = {
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
}

_KINDS = ("threshold", "window", "trend")
_POLICIES = ("log", "checkpoint", "drain")

_SPEC_RE = re.compile(
    r"^(?:(?P<kind>mean|trend):)?"
    r"(?P<metric>[A-Za-z_][\w.]*)"
    r"(?P<op><=|>=|<|>)"
    r"(?P<bound>[-+0-9.eE]+)"
    r"(?:@(?P<window>\d+))?"
    r"(?:!(?P<policy>\w+))?$"
)


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a deterministic telemetry field."""

    metric: str
    op: str
    bound: float
    kind: str = "threshold"
    window: int = 1
    policy: str = "log"

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r}")
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"known: {_KINDS}")
        if self.policy not in _POLICIES:
            raise ValueError(f"unknown SLO policy {self.policy!r}; "
                             f"known: {_POLICIES}")
        if self.window < 1:
            raise ValueError("SLO window must be >= 1")
        if self.kind == "trend" and self.window < 2:
            raise ValueError("trend rules need a window of >= 2 epochs")

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """Parse the compact CLI form (see module docstring)."""
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ValueError(
                f"cannot parse SLO spec {text!r}; expected e.g. "
                "'goodput_bps<2e6', 'mean:goodput_bps<2e6@5' or "
                "'trend:goodput_bps<-1e5@5!drain'"
            )
        groups = match.groupdict()
        window = int(groups["window"]) if groups["window"] else 1
        prefix = groups["kind"]
        if prefix == "trend":
            kind = "trend"
        elif prefix == "mean" or window > 1:
            kind = "window"
        else:
            kind = "threshold"
        if kind == "trend" and not groups["window"]:
            window = 2
        return cls(
            metric=groups["metric"],
            op=groups["op"],
            bound=float(groups["bound"]),
            kind=kind,
            window=window,
            policy=groups["policy"] or "log",
        )

    def describe(self) -> str:
        """The canonical compact form (round-trips through :meth:`parse`)."""
        prefix = {"threshold": "", "window": "mean:", "trend": "trend:"}[self.kind]
        suffix = f"@{self.window}" if self.window > 1 else ""
        policy = f"!{self.policy}" if self.policy != "log" else ""
        return f"{prefix}{self.metric}{self.op}{self.bound:g}{suffix}{policy}"

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class SloBreach:
    """One rule violation at one epoch (JSON-safe)."""

    epoch: int
    spec: SloSpec
    value: float

    def to_dict(self) -> dict:
        return {"epoch": self.epoch, "slo": self.spec.describe(),
                "metric": self.spec.metric, "kind": self.spec.kind,
                "policy": self.spec.policy, "value": self.value,
                "bound": self.spec.bound, "op": self.spec.op}


class SloWatchdog:
    """Evaluate a set of :class:`SloSpec` rules epoch by epoch."""

    def __init__(self, specs: Iterable):
        self.specs = tuple(
            spec if isinstance(spec, SloSpec) else SloSpec.parse(spec)
            for spec in specs
        )
        depth = max((s.window for s in self.specs), default=1)
        self._history: deque = deque(maxlen=depth)
        self._last_breaches: list = []
        self._last_epoch: Optional[int] = None

    def seed_history(self, det_samples: Iterable[dict]) -> None:
        """Rebuild rolling state from prior telemetry records (resume)."""
        for sample in det_samples:
            self._history.append(sample)

    def _evaluate(self, spec: SloSpec, epoch: int) -> Optional[SloBreach]:
        samples = [s.get(spec.metric) for s in self._history]
        samples = [s for s in samples if isinstance(s, (int, float))]
        if not samples:
            return None
        if spec.kind == "threshold":
            value = samples[-1]
        elif spec.kind == "window":
            if len(samples) < spec.window:
                return None
            tail = samples[-spec.window:]
            value = sum(tail) / len(tail)
        else:  # trend
            if len(samples) < spec.window:
                return None
            tail = samples[-spec.window:]
            value = (tail[-1] - tail[0]) / (spec.window - 1)
        if _OPS[spec.op](value, spec.bound):
            return SloBreach(epoch=epoch, spec=spec, value=value)
        return None

    def observe(self, epoch: int, det: dict) -> list:
        """Fold one epoch's deterministic sample in; return its breaches."""
        self._history.append(det)
        self._last_epoch = epoch
        self._last_breaches = [
            breach for spec in self.specs
            if (breach := self._evaluate(spec, epoch)) is not None
        ]
        return self._last_breaches

    def status(self) -> str:
        """``ok`` / ``degraded`` / ``breached`` for the latest epoch."""
        if not self._last_breaches:
            return "ok"
        if any(b.spec.policy in ("checkpoint", "drain")
               for b in self._last_breaches):
            return "breached"
        return "degraded"

    def wants_drain(self) -> bool:
        return any(b.spec.policy == "drain" for b in self._last_breaches)

    def wants_checkpoint(self) -> bool:
        return any(b.spec.policy in ("checkpoint", "drain")
                   for b in self._last_breaches)

    def health_payload(self, *, epoch: int, det: dict,
                       epochs_completed: int) -> dict:
        """The ``health.json`` body (wall-domain: carries a timestamp)."""
        return {
            "schema_version": HEALTH_SCHEMA,
            "status": self.status(),
            "epoch": epoch,
            "epochs_completed": epochs_completed,
            "slos": [spec.describe() for spec in self.specs],
            "breaches": [b.to_dict() for b in self._last_breaches],
            "last_sample": dict(det),
            "updated_unix": time.time(),
        }


def write_health(directory, payload: dict) -> str:
    """Atomically (tmp + rename) write ``health.json`` — a monitor may be
    reading it mid-write, and must never see a torn file.

    No fsync: the rename already guarantees a reader sees old-or-new,
    never torn, and the file is advisory wall-domain state rewritten
    every epoch — after a power loss the next epoch regenerates it.
    Syncing here would put ~1ms of disk latency on every epoch of a
    telemetry-enabled soak for nothing the crash story needs.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(os.fspath(directory), "health.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_health(directory) -> Optional[dict]:
    """The current ``health.json`` payload, or ``None`` when absent."""
    path = os.path.join(os.fspath(directory), "health.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
