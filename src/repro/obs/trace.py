"""Structured trace recording and the ambient observability state.

The recorder emits typed JSONL events::

    {"seq": 0, "ts": 0.000012, "layer": "mac", "event": "demote",
     "cid": "t00003-9f2c11aa", "node": "STA1", ...}

* ``seq`` — monotone per-recorder sequence number (re-stamped when worker
  events are ingested, so a merged trace has one gap-free ordering).
* ``ts`` — seconds since the recorder was created (``time.monotonic``
  based). Omitted entirely in *deterministic* mode so traces from
  identical seeded runs are byte-identical regardless of wall time or
  worker count.
* ``layer``/``event`` — dotted taxonomy (``phy.crc``, ``runtime.chunk_retry``).
* ``cid`` — correlation id, set via :meth:`TraceRecorder.correlate`; trial
  ids come from :func:`trial_correlation_id`, which derives from the run
  seed and the trial's ``SeedSequence`` spawn position — never from
  ``id()`` or the clock — so parallel traces match serial ones.

This module also owns the **ambient state**: the module-global recorder
and metrics registry that instrumented code looks up. The contract for
hot paths is::

    rec = active_recorder()        # hoisted once per frame/subframe
    ...
    if rec is not None:            # one pointer test when disabled
        rec.emit("phy", "crc", ok=passed)

and for metrics, ``metrics()`` returns :data:`~repro.obs.metrics.NULL_REGISTRY`
when disabled, whose instruments are shared no-ops — no conditional needed.

Worker processes never write the parent's trace file. ``runtime.trials``
ships a picklable spec (:func:`worker_spec`) to each chunk; the worker
wraps execution in :func:`chunk_capture`, which installs a fresh
buffering recorder/registry, and returns an :class:`ObsChunk` whose
events/metrics the parent folds back in span order (= trial order) via
:func:`ingest_chunk`. A pid guard in the recorder additionally drops
emissions from forked children that inherited the parent's recorder.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from typing import Optional

from ..util.rng import derive_seed
from .metrics import NULL_REGISTRY, MetricsRegistry
from .profile import (
    ProfileCollector,
    disable_profiling,
    enable_profiling,
    profile_collector,
    profiling_enabled,
)

__all__ = [
    "TraceRecorder",
    "ObsChunk",
    "ObsSession",
    "active_recorder",
    "set_recorder",
    "metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "collecting",
    "suspended",
    "worker_spec",
    "chunk_capture",
    "ingest_chunk",
    "trial_correlation_id",
]


class TraceRecorder:
    """Buffering JSONL event recorder.

    Parameters
    ----------
    path:
        Destination file. ``None`` buffers in memory only (worker-side
        recorders and tests read :attr:`events` directly).
    sample_every:
        Rate for high-frequency *sampled* events (per-symbol EVM, per-CRC
        snapshots): :meth:`sample` returns True for every ``sample_every``-th
        index. ``0`` (the default) disables sampling entirely, so an
        enabled-but-unsampled recorder emits no per-symbol events and the
        decode path stays bit-identical to the disabled one.
    deterministic:
        Omit wall-clock ``ts`` fields so traces of identical seeded runs
        are byte-identical across worker counts and machines.
    """

    def __init__(self, path=None, *, sample_every: int = 0,
                 deterministic: bool = False):
        self.path = os.fspath(path) if path is not None else None
        self.sample_every = int(sample_every)
        self.deterministic = bool(deterministic)
        self.events: list = []
        self._seq = 0
        self._t0 = time.monotonic()
        self._pid = os.getpid()
        self._cid: Optional[str] = None
        self._written = 0  # events already flushed to disk

    # -- emission -------------------------------------------------------------

    def emit(self, layer: str, event: str, **fields) -> None:
        """Record one event. Silently dropped in forked children that
        inherited this recorder (workers get their own, see
        :func:`chunk_capture`)."""
        if os.getpid() != self._pid:
            return
        record: dict = {"seq": self._seq}
        if not self.deterministic:
            record["ts"] = round(time.monotonic() - self._t0, 9)
        record["layer"] = layer
        record["event"] = event
        if self._cid is not None:
            record["cid"] = self._cid
        record.update(fields)
        self.events.append(record)
        self._seq += 1

    @contextlib.contextmanager
    def correlate(self, cid: str):
        """Attach ``cid`` to every event emitted inside the block."""
        previous = self._cid
        self._cid = cid
        try:
            yield self
        finally:
            self._cid = previous

    def sample(self, index: int) -> bool:
        """True when the high-frequency event at ``index`` should be kept."""
        return self.sample_every > 0 and index % self.sample_every == 0

    # -- merging & persistence ------------------------------------------------

    def ingest(self, events) -> None:
        """Fold events captured elsewhere (a worker chunk) into this
        recorder, re-stamping ``seq`` so the merged trace has a single
        gap-free ordering. Caller is responsible for span order."""
        if os.getpid() != self._pid:
            return
        for record in events:
            merged = {"seq": self._seq}
            merged.update((k, v) for k, v in record.items() if k != "seq")
            self.events.append(merged)
            self._seq += 1

    def flush(self) -> None:
        """Append any unwritten events to :attr:`path` as JSONL."""
        if self.path is None or os.getpid() != self._pid:
            return
        pending = self.events[self._written:]
        if not pending:
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in pending:
                fh.write(json.dumps(record, separators=(", ", ": ")))
                fh.write("\n")
        self._written = len(self.events)

    def close(self) -> None:
        self.flush()

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------------
# Ambient state: the recorder and registry instrumented code looks up.
# --------------------------------------------------------------------------

_RECORDER: Optional[TraceRecorder] = None
_REGISTRY = NULL_REGISTRY
_SHIP_METRICS = False  # capture metrics inside pool workers too?


def active_recorder() -> Optional[TraceRecorder]:
    """The installed recorder, or ``None`` when tracing is disabled.

    Hot paths hoist this once per frame and branch on ``is not None``.
    """
    return _RECORDER


def set_recorder(recorder: Optional[TraceRecorder]):
    """Install (or with ``None``, remove) the ambient recorder.
    Returns the previous one so callers can restore it."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def metrics():
    """The ambient metrics registry — :data:`NULL_REGISTRY` (all no-op
    instruments) unless :func:`enable_metrics` installed a real one."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _REGISTRY is not NULL_REGISTRY


def enable_metrics(registry: Optional[MetricsRegistry] = None, *,
                   ship_to_workers: bool = False) -> MetricsRegistry:
    """Install a real metrics registry and return it.

    ``ship_to_workers=False`` (the default, what the bench harness uses)
    captures parent-side metrics only — pool lifecycle, cache hits, chunk
    retries — leaving the benchmarked worker chunk path untouched.
    ``ship_to_workers=True`` (the CLI ``--metrics`` session) also collects
    per-worker registries and merges them in.
    """
    global _REGISTRY, _SHIP_METRICS
    if registry is None:
        registry = MetricsRegistry()
    _REGISTRY = registry
    _SHIP_METRICS = bool(ship_to_workers)
    return registry


def disable_metrics() -> None:
    """Restore the no-op registry."""
    global _REGISTRY, _SHIP_METRICS
    _REGISTRY = NULL_REGISTRY
    _SHIP_METRICS = False


@contextlib.contextmanager
def collecting(*, ship_to_workers: bool = False):
    """Install a fresh registry for the duration of the block and yield it,
    restoring the prior ambient state on exit.

    The bench harness uses this to fold pool/cache/retry counts into the
    ``observability`` section of ``BENCH_*.json`` without disturbing an
    outer ``--metrics`` session (the previous registry comes back intact).
    """
    global _REGISTRY, _SHIP_METRICS
    prev_registry, prev_ship = _REGISTRY, _SHIP_METRICS
    registry = MetricsRegistry()
    _REGISTRY, _SHIP_METRICS = registry, bool(ship_to_workers)
    try:
        yield registry
    finally:
        _REGISTRY, _SHIP_METRICS = prev_registry, prev_ship


@contextlib.contextmanager
def suspended():
    """Temporarily disable all ambient observability.

    Used around work that would double-count — e.g. the in-process probe
    trials of ``autotune_chunk_size``, whose results are discarded.
    """
    global _REGISTRY, _SHIP_METRICS
    prev_recorder = set_recorder(None)
    prev_registry, prev_ship = _REGISTRY, _SHIP_METRICS
    _REGISTRY, _SHIP_METRICS = NULL_REGISTRY, False
    try:
        yield
    finally:
        set_recorder(prev_recorder)
        _REGISTRY, _SHIP_METRICS = prev_registry, prev_ship


# --------------------------------------------------------------------------
# Worker-side capture for runtime.trials pools.
# --------------------------------------------------------------------------


@dataclass
class ObsChunk:
    """What an instrumented worker chunk returns: the trial results plus
    the events/metrics/profile captured while computing them."""

    results: list
    events: Optional[list] = None
    metrics: Optional[dict] = None
    profile: Optional[dict] = None


def worker_spec() -> Optional[dict]:
    """Picklable description of the ambient obs config for pool workers,
    or ``None`` when nothing needs capturing worker-side.

    Tracing always ships (a trace with holes where the workers ran is
    useless); metrics ship only when :func:`enable_metrics` was called
    with ``ship_to_workers=True``; profile capture ships whenever the
    ambient profile collector is installed.
    """
    want_trace = _RECORDER is not None
    want_metrics = metrics_enabled() and _SHIP_METRICS
    want_profile = profiling_enabled()
    if not want_trace and not want_metrics and not want_profile:
        return None
    spec = {"trace": want_trace, "metrics": want_metrics,
            "profile": want_profile,
            "sample_every": 0, "deterministic": False}
    if want_trace:
        spec["sample_every"] = _RECORDER.sample_every
        spec["deterministic"] = _RECORDER.deterministic
    return spec


@contextlib.contextmanager
def chunk_capture(spec: Optional[dict]):
    """Run a worker chunk under a fresh, local obs capture.

    Installs a buffering recorder and/or registry per ``spec`` (always
    replacing whatever fork inheritance left behind), yields a function
    that wraps the chunk's results into an :class:`ObsChunk`, and restores
    the prior state afterwards. With ``spec=None`` the wrapper is the
    identity — zero overhead on the uninstrumented path.
    """
    if spec is None:
        yield lambda results: results
        return
    recorder = None
    if spec.get("trace"):
        recorder = TraceRecorder(None, sample_every=spec["sample_every"],
                                 deterministic=spec["deterministic"])
    registry = MetricsRegistry() if spec.get("metrics") else None
    collector = ProfileCollector() if spec.get("profile") else None

    global _REGISTRY, _SHIP_METRICS
    prev_recorder = set_recorder(recorder)
    prev_registry, prev_ship = _REGISTRY, _SHIP_METRICS
    if registry is not None:
        _REGISTRY, _SHIP_METRICS = registry, False
    prev_collector = None
    if collector is not None:
        prev_collector = disable_profiling()
        enable_profiling(collector)
    try:
        yield lambda results: ObsChunk(
            results=results,
            events=recorder.events if recorder is not None else None,
            metrics=registry.to_dict() if registry is not None else None,
            profile=collector.snapshot() if collector is not None else None,
        )
    finally:
        set_recorder(prev_recorder)
        _REGISTRY, _SHIP_METRICS = prev_registry, prev_ship
        if collector is not None:
            if prev_collector is not None:
                enable_profiling(prev_collector)
            else:
                disable_profiling()


def ingest_chunk(chunk):
    """Parent-side: fold an :class:`ObsChunk` into the ambient obs state
    and return the bare results. Plain (non-chunk) results pass through."""
    if not isinstance(chunk, ObsChunk):
        return chunk
    if chunk.events:
        recorder = active_recorder()
        if recorder is not None:
            recorder.ingest(chunk.events)
    if chunk.metrics:
        metrics().merge_dict(chunk.metrics)
    if chunk.profile:
        collector = profile_collector()
        if collector is not None:
            collector.merge_snapshot(chunk.profile)
    return chunk.results


def trial_correlation_id(seed, index: int) -> str:
    """Deterministic correlation id for trial ``index`` of a seeded run.

    Derived from the run seed and the trial's spawn position via
    :func:`repro.util.rng.derive_seed` — the same id whether the trial
    runs serially, in a 2-worker pool, or a 16-worker pool.
    """
    return f"t{index:05d}-{derive_seed(seed, f'trial{index}') & 0xFFFFFFFF:08x}"


# --------------------------------------------------------------------------
# Session wrapper used by the CLI and bench entry points.
# --------------------------------------------------------------------------


class ObsSession:
    """Install observability for one run, then tear it down cleanly.

    On exit the session appends a final ``obs.metrics`` event carrying the
    merged registry snapshot to the trace (so ``repro report`` renders the
    timer table from a single JSONL file), flushes the trace, writes a run
    manifest next to it, and restores the previous ambient state.
    """

    def __init__(self, *, trace_path=None, metrics_on: bool = False,
                 sample_every: int = 0, deterministic: bool = False,
                 manifest_kind: str = "run", manifest_config=None, seed=None):
        self.trace_path = os.fspath(trace_path) if trace_path is not None else None
        self.metrics_on = metrics_on or trace_path is not None
        self.sample_every = sample_every
        self.deterministic = deterministic
        self.manifest_kind = manifest_kind
        self.manifest_config = manifest_config
        self.seed = seed
        self.recorder: Optional[TraceRecorder] = None
        self.registry = None
        self.manifest_path: Optional[str] = None

    def __enter__(self) -> "ObsSession":
        if self.trace_path is not None:
            # Truncate any stale trace from a previous run at this path.
            open(self.trace_path, "w", encoding="utf-8").close()
            self.recorder = TraceRecorder(
                self.trace_path, sample_every=self.sample_every,
                deterministic=self.deterministic)
            self._prev_recorder = set_recorder(self.recorder)
        else:
            self._prev_recorder = None
        if self.metrics_on:
            self.registry = enable_metrics(ship_to_workers=True)
        self._t_wall = time.perf_counter()
        self._t_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb):
        wall = time.perf_counter() - self._t_wall
        cpu = time.process_time() - self._t_cpu
        snapshot = self.registry.to_dict() if self.registry is not None else {}
        if self.recorder is not None:
            if snapshot:
                self.recorder.emit("obs", "metrics", metrics=snapshot)
            self.recorder.close()
            set_recorder(self._prev_recorder)
        if self.registry is not None:
            disable_metrics()
        if self.trace_path is not None and exc_type is None:
            from .manifest import write_manifest

            self.manifest_path = self.trace_path + ".manifest.json"
            write_manifest(
                self.manifest_path,
                kind=self.manifest_kind,
                seed=self.seed,
                config=self.manifest_config,
                metrics=snapshot,
                wall_seconds=wall,
                cpu_seconds=cpu,
                trace_path=self.trace_path,
                n_events=len(self.recorder) if self.recorder is not None else 0,
            )
        return False
