"""repro.obs — observability for the PHY/MAC/runtime/net stack.

Three pieces, all zero-dependency and disabled by default:

* a process-local **metrics registry** (:mod:`repro.obs.metrics`) whose
  disabled fast path hands out shared no-op instruments,
* a **structured trace recorder** (:mod:`repro.obs.trace`) emitting typed
  JSONL events with deterministic correlation ids, safe across
  ``runtime.trials`` worker pools,
* **run manifests** (:mod:`repro.obs.manifest`) recording seed, git SHA,
  config hash, versions and timing next to run output,

plus the live-run layer grown for soak-scale service:

* **telemetry** (:mod:`repro.obs.telemetry`) — append-only, mergeable
  per-epoch samples with deterministic fields segregated from wall-clock
  ones, written beside the soak checkpoint,
* **SLO watchdogs** (:mod:`repro.obs.slo`) — declarative threshold /
  rolling-window / trend rules over those series, driving ``health.json``
  and breach policies (log / checkpoint / drain),
* **cross-worker profiling** (:mod:`repro.obs.profile`) — mergeable
  per-stage timings and top-function cProfile stats folded back from
  ``runtime.trials`` workers like trace chunks,

and a renderer (:mod:`repro.obs.report`) behind the CLI ``report``/
``status`` subcommands plus the library-wide ``repro`` logger
(:mod:`repro.obs.log`).
"""

from .log import configure_logging, get_logger
from .manifest import RunManifest, config_hash, git_sha, write_manifest
from .profile import (
    ProfileCollector,
    disable_profiling,
    enable_profiling,
    profile_capture,
    profile_collector,
    profiling_enabled,
)
from .slo import SloBreach, SloSpec, SloWatchdog, read_health, write_health
from .telemetry import (
    TelemetrySeries,
    append_telemetry_record,
    deterministic_view,
    deterministic_view_bytes,
    fault_occupancy,
    make_record,
    read_telemetry_records,
    telemetry_paths,
    trim_telemetry_records,
)
from .metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    Timer,
)
from .report import format_report, load_events
from .trace import (
    ObsChunk,
    ObsSession,
    TraceRecorder,
    active_recorder,
    chunk_capture,
    collecting,
    disable_metrics,
    enable_metrics,
    ingest_chunk,
    metrics,
    metrics_enabled,
    set_recorder,
    suspended,
    trial_correlation_id,
    worker_spec,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullInstrument",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "TraceRecorder",
    "ObsChunk",
    "ObsSession",
    "active_recorder",
    "set_recorder",
    "metrics",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "collecting",
    "suspended",
    "worker_spec",
    "chunk_capture",
    "ingest_chunk",
    "trial_correlation_id",
    "RunManifest",
    "write_manifest",
    "git_sha",
    "config_hash",
    "ProfileCollector",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "profile_collector",
    "profile_capture",
    "SloSpec",
    "SloBreach",
    "SloWatchdog",
    "write_health",
    "read_health",
    "TelemetrySeries",
    "telemetry_paths",
    "make_record",
    "append_telemetry_record",
    "read_telemetry_records",
    "trim_telemetry_records",
    "deterministic_view",
    "deterministic_view_bytes",
    "fault_occupancy",
    "get_logger",
    "configure_logging",
    "format_report",
    "load_events",
]
