"""repro.obs — observability for the PHY/MAC/runtime/net stack.

Three pieces, all zero-dependency and disabled by default:

* a process-local **metrics registry** (:mod:`repro.obs.metrics`) whose
  disabled fast path hands out shared no-op instruments,
* a **structured trace recorder** (:mod:`repro.obs.trace`) emitting typed
  JSONL events with deterministic correlation ids, safe across
  ``runtime.trials`` worker pools,
* **run manifests** (:mod:`repro.obs.manifest`) recording seed, git SHA,
  config hash, versions and timing next to run output,

plus a renderer (:mod:`repro.obs.report`) behind the CLI ``report``
subcommand and the library-wide ``repro`` logger (:mod:`repro.obs.log`).
"""

from .log import configure_logging, get_logger
from .manifest import RunManifest, config_hash, git_sha, write_manifest
from .metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullInstrument,
    Timer,
)
from .report import format_report, load_events
from .trace import (
    ObsChunk,
    ObsSession,
    TraceRecorder,
    active_recorder,
    chunk_capture,
    collecting,
    disable_metrics,
    enable_metrics,
    ingest_chunk,
    metrics,
    metrics_enabled,
    set_recorder,
    suspended,
    trial_correlation_id,
    worker_spec,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullInstrument",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "TraceRecorder",
    "ObsChunk",
    "ObsSession",
    "active_recorder",
    "set_recorder",
    "metrics",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "collecting",
    "suspended",
    "worker_spec",
    "chunk_capture",
    "ingest_chunk",
    "trial_correlation_id",
    "RunManifest",
    "write_manifest",
    "git_sha",
    "config_hash",
    "get_logger",
    "configure_logging",
    "format_report",
    "load_events",
]
