"""Append-only, mergeable per-epoch telemetry for soak-scale runs.

``telemetry.jsonl`` lives beside the soak checkpoint: one record per
completed epoch, written with the same crash discipline as
``metrics.jsonl`` (append + fsync *before* the state cursor advances, a
streaming trim of at-most-one orphan on resume).

Every record segregates its fields into two namespaces:

``det``
    Values that are a **pure function of (workload, fault profile,
    epoch index)** — goodput, transmissions, demote/re-promote counts,
    fault-window occupancy. The *deterministic view* (``det`` plus the
    epoch key, canonical JSON) must be byte-identical across kill/resume
    at any worker/shard count: the same contract ``state.json`` and
    ``metrics.jsonl`` already honour, extended to live telemetry.

``wall``
    Everything the machine and the execution geometry leak into — epoch
    wall seconds, frames per wall-second, parent RSS, pool/IPC counters,
    worker and shard counts. Legitimately different between runs;
    excluded from every identity gate.

:class:`TelemetrySeries` makes the layer mergeable: series from disjoint
shards of a run (any partition, any order) merge bit-identically to the
single-shot series, mirroring the ``DeploymentAggregate`` fold contract.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator, Optional

__all__ = [
    "TELEMETRY_SCHEMA",
    "TELEMETRY_FILE",
    "HEALTH_FILE",
    "TelemetrySeries",
    "telemetry_paths",
    "make_record",
    "append_telemetry_record",
    "read_telemetry_records",
    "trim_telemetry_records",
    "deterministic_view",
    "deterministic_view_bytes",
    "fault_occupancy",
    "rss_mb",
]

TELEMETRY_SCHEMA = 1

TELEMETRY_FILE = "telemetry.jsonl"
HEALTH_FILE = "health.json"


def telemetry_paths(directory) -> dict:
    """Absolute paths of the telemetry artifacts in a checkpoint dir."""
    directory = os.fspath(directory)
    return {
        "telemetry": os.path.join(directory, TELEMETRY_FILE),
        "health": os.path.join(directory, HEALTH_FILE),
    }


def fault_occupancy(schedule: dict, epoch_duration: float) -> float:
    """Fraction of the epoch covered by ≥1 impairment window.

    Computed from :func:`repro.serve.scheduler.schedule_position` output —
    a pure function of (profile, epoch index, epoch duration), so the
    figure belongs in the deterministic namespace. Overlapping episode
    windows are unioned, keeping the fraction in ``[0, 1]``.
    """
    episodes = schedule.get("episodes", ())
    if not episodes or epoch_duration <= 0:
        return 0.0
    intervals = sorted(tuple(e["window"]) for e in episodes)
    covered = 0.0
    span_start, span_stop = intervals[0]
    for start, stop in intervals[1:]:
        if start > span_stop:
            covered += span_stop - span_start
            span_start, span_stop = start, stop
        else:
            span_stop = max(span_stop, stop)
    covered += span_stop - span_start
    return min(1.0, covered / epoch_duration)


def rss_mb() -> float:
    """Parent-process peak RSS in MiB (the ``wall.rss_mb`` sample).

    Same unit normalisation as ``repro.runtime.bench.peak_rss_mb`` —
    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS — duplicated here
    rather than imported because the bench module pulls the whole suite
    in, and telemetry must stay import-light on the hot service path.
    """
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def make_record(*, epoch: int, det: dict, wall: dict) -> dict:
    """One telemetry record with the det/wall segregation made explicit."""
    return {
        "schema_version": TELEMETRY_SCHEMA,
        "epoch": int(epoch),
        "det": dict(det),
        "wall": dict(wall),
    }


def append_telemetry_record(directory, record: dict) -> None:
    """Append one record (fsynced), mirroring ``append_epoch_record``:
    called *before* the state cursor advances, so a hard kill leaves at
    most one orphan for :func:`trim_telemetry_records` to drop."""
    os.makedirs(directory, exist_ok=True)
    path = telemetry_paths(directory)["telemetry"]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_telemetry_records(directory) -> Iterator[dict]:
    """Yield records in file order (streaming, constant memory).

    A truncated *final* line — what a kill mid-append leaves — is
    skipped silently: it is the same ≤1-orphan artifact the resume path
    trims, and a live ``repro status`` reader must tolerate it.
    """
    path = telemetry_paths(directory)["telemetry"]
    if not os.path.exists(path):
        return
    bad: Optional[str] = None
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if bad is not None:
                # A malformed line *followed by more data* is corruption,
                # not a truncated tail.
                raise ValueError(
                    f"{path}: malformed telemetry record: {bad[:80]!r}")
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad = line
                continue
            yield record
    if bad is not None and not line_is_tail_tolerable(bad):
        raise ValueError(f"{path}: malformed telemetry record: {bad[:80]!r}")


def line_is_tail_tolerable(line: str) -> bool:
    """True when a non-parsing final line looks like a truncated record
    (a kill mid-append) rather than corruption: it must at least open a
    JSON object."""
    return line.startswith("{")


def trim_telemetry_records(directory, next_epoch: int) -> int:
    """Drop records at or past the cursor; return how many were dropped.

    The telemetry twin of ``trim_epoch_records``: streaming rewrite, one
    atomic rename. Unparsable lines (the truncated tail a kill leaves)
    are dropped as orphans too.
    """
    path = telemetry_paths(directory)["telemetry"]
    if not os.path.exists(path):
        return 0
    dropped = 0
    tmp = path + ".tmp"
    with open(path, encoding="utf-8") as src, \
            open(tmp, "w", encoding="utf-8") as dst:
        for line in src:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if record["epoch"] >= next_epoch:
                dropped += 1
                continue
            dst.write(stripped + "\n")
        dst.flush()
        os.fsync(dst.fileno())
    os.replace(tmp, path)
    return dropped


def deterministic_view(records: Iterable[dict]) -> list:
    """The identity-gated projection: epoch + ``det`` fields only."""
    return [
        {"schema_version": r["schema_version"], "epoch": r["epoch"],
         "det": r["det"]}
        for r in records
    ]


def deterministic_view_bytes(directory) -> bytes:
    """Canonical JSONL bytes of the deterministic view of a checkpoint's
    telemetry — what the kill/resume gates byte-compare."""
    lines = [json.dumps(entry, sort_keys=True)
             for entry in deterministic_view(read_telemetry_records(directory))]
    return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


class TelemetrySeries:
    """An in-memory, mergeable slice of a run's telemetry.

    Merging series from disjoint epoch ranges — any partition of the
    run, folded in any order — yields the same sorted record list as
    reading the single-shot file, bit for bit. Duplicate epochs are an
    error: two shards claiming the same epoch means the partition was
    not a partition.
    """

    def __init__(self, records: Optional[Iterable[dict]] = None):
        self.records: list = []
        self._epochs: set = set()
        if records is not None:
            for record in records:
                self.append(record)

    def append(self, record: dict) -> None:
        epoch = record["epoch"]
        if epoch in self._epochs:
            raise ValueError(f"duplicate telemetry record for epoch {epoch}")
        self._epochs.add(epoch)
        self.records.append(record)
        # Keep sorted: appends are in-order in the service loop, so this
        # is O(1) there; merges re-sort below.
        if len(self.records) > 1 and self.records[-2]["epoch"] > epoch:
            self.records.sort(key=lambda r: r["epoch"])

    def merge(self, other: "TelemetrySeries") -> "TelemetrySeries":
        """Fold ``other`` in (disjoint epochs required); returns self."""
        for record in other.records:
            self.append(record)
        return self

    @classmethod
    def from_directory(cls, directory) -> "TelemetrySeries":
        return cls(read_telemetry_records(directory))

    def deterministic_view(self) -> list:
        return deterministic_view(self.records)

    def det_bytes(self) -> bytes:
        lines = [json.dumps(entry, sort_keys=True)
                 for entry in self.deterministic_view()]
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""

    def tail(self, n: int) -> list:
        return self.records[-n:]

    def __len__(self) -> int:
        return len(self.records)
