"""Process-local, zero-dependency metrics registry.

Four instrument kinds cover everything the stack reports:

* :class:`Counter` — monotonically increasing event counts (cache hits,
  pool reuses, CRC passes).
* :class:`Gauge` — last-written values (current pool size, demoted-set
  size).
* :class:`Histogram` — fixed-bucket-edge distributions (subframe sizes,
  per-chunk trial counts).
* :class:`Timer` — accumulated wall-time spans with count/min/max (the
  per-layer timer table ``repro report`` renders).

Design constraints, in priority order:

1. **Disabled is free.** Observability is off by default; every accessor
   then returns a shared :class:`NullInstrument` whose methods are empty
   — instrumented hot paths pay one no-op method call, no allocation, no
   branching on configuration.
2. **Picklable and mergeable.** ``runtime.trials`` workers build their own
   registries; :meth:`MetricsRegistry.merge` (or ``merge_dict`` on the
   ``to_dict`` form) reduces them into the parent's, summing counters,
   histograms and timers. Instruments are plain-``__slots__`` objects, so
   a registry round-trips through pickle and JSON.
3. **Named scopes.** ``registry.scope("phy")`` returns a view whose
   instruments land in the same store under a ``phy.`` prefix, so a layer
   can be handed one object and stay oblivious to global naming.
"""

from __future__ import annotations

import time
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullInstrument",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
]


class _NullContext:
    """Reusable no-op context manager (the disabled ``Timer.time()``)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullInstrument:
    """The disabled fast path: every instrument method is a no-op.

    A single shared instance stands in for every instrument kind, so code
    can hoist ``registry.counter("x")`` once and call ``inc()`` in a hot
    loop with no conditional.
    """

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def time(self):
        return _NULL_CONTEXT


NULL_INSTRUMENT = NullInstrument()


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: float = 0):
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_value(self):
        return self.value

    @classmethod
    def from_value(cls, value) -> "Counter":
        return cls(value)


class Gauge:
    """Last-written value (merge keeps the most recently written one)."""

    __slots__ = ("value", "writes")
    kind = "gauge"

    def __init__(self, value=None, writes: int = 0):
        self.value = value
        self.writes = writes

    def set(self, value) -> None:
        self.value = value
        self.writes += 1

    def merge(self, other: "Gauge") -> None:
        if other.writes:
            self.value = other.value
            self.writes += other.writes

    def to_value(self):
        return {"value": self.value, "writes": self.writes}

    @classmethod
    def from_value(cls, data) -> "Gauge":
        return cls(data["value"], data["writes"])


#: Log-spaced default edges: fine enough for latencies in seconds and
#: sizes in bytes alike without per-call configuration.
DEFAULT_EDGES = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
    500.0, 1000.0,
)


class Histogram:
    """Fixed-bucket-edge distribution; ``counts[i]`` holds values ≤ edge i,
    with one overflow bucket at the end."""

    __slots__ = ("edges", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, edges=DEFAULT_EDGES, counts=None, count: int = 0,
                 total: float = 0.0):
        self.edges = tuple(edges)
        self.counts = list(counts) if counts is not None else [0] * (len(self.edges) + 1)
        self.count = count
        self.total = total

    def observe(self, value) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total

    def to_value(self):
        return {"edges": list(self.edges), "counts": list(self.counts),
                "count": self.count, "total": self.total}

    @classmethod
    def from_value(cls, data) -> "Histogram":
        return cls(data["edges"], data["counts"], data["count"], data["total"])


class _TimerContext:
    """One timed span; created per ``with timer.time():`` block."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: "Timer"):
        self._timer = timer

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.observe(time.perf_counter() - self._start)
        return False


class Timer:
    """Accumulated wall-time spans (count, total, min, max)."""

    __slots__ = ("count", "total", "min", "max")
    kind = "timer"

    def __init__(self, count: int = 0, total: float = 0.0,
                 min_s: float = float("inf"), max_s: float = 0.0):
        self.count = count
        self.total = total
        self.min = min_s
        self.max = max_s

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def time(self) -> _TimerContext:
        return _TimerContext(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Timer") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_value(self):
        return {
            "count": self.count, "total": self.total,
            "min": self.min if self.count else 0.0, "max": self.max,
        }

    @classmethod
    def from_value(cls, data) -> "Timer":
        min_s = data["min"] if data["count"] else float("inf")
        return cls(data["count"], data["total"], min_s, data["max"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "timer": Timer}


class MetricsRegistry:
    """A named store of instruments; picklable, mergeable, scopable.

    >>> reg = MetricsRegistry()
    >>> reg.counter("runtime.cache_hits").inc()
    >>> reg.scope("runtime").counter("cache_hits").inc()
    >>> reg.counter("runtime.cache_hits").value
    2
    """

    def __init__(self):
        self._metrics: dict = {}  # name -> instrument

    # -- instrument accessors (get-or-create) --------------------------------

    def _get(self, name: str, factory, *args):
        instrument = self._metrics.get(name)
        if instrument is None:
            instrument = self._metrics[name] = factory(*args)
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, edges=DEFAULT_EDGES) -> Histogram:
        """Get or create the histogram ``name`` (edges fixed at creation)."""
        return self._get(name, Histogram, edges)

    def timer(self, name: str) -> Timer:
        """Get or create the timer ``name``."""
        return self._get(name, Timer)

    def scope(self, prefix: str) -> "_ScopedRegistry":
        """A view of this registry that prefixes every name with ``prefix.``."""
        return _ScopedRegistry(self, prefix)

    # -- introspection / reduction -------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (sums counters/histograms/
        timers, keeps the freshest gauge writes)."""
        for name, instrument in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                # Re-create rather than alias: the other registry may keep
                # mutating its instruments (e.g. the next chunk).
                self._metrics[name] = _KINDS[instrument.kind].from_value(
                    instrument.to_value()
                )
            elif mine.kind != instrument.kind:
                raise TypeError(
                    f"metric {name!r}: cannot merge {instrument.kind} "
                    f"into {mine.kind}"
                )
            else:
                mine.merge(instrument)

    def merge_dict(self, data: dict) -> None:
        """Fold a ``to_dict`` snapshot (e.g. from a pool worker) in."""
        self.merge(MetricsRegistry.from_dict(data))

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot: ``{kind: {name: value}}``."""
        out: dict = {}
        for name in sorted(self._metrics):
            instrument = self._metrics[name]
            out.setdefault(instrument.kind + "s", {})[name] = instrument.to_value()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        for plural, entries in data.items():
            kind = _KINDS[plural[:-1]]
            for name, value in entries.items():
                registry._metrics[name] = kind.from_value(value)
        return registry


class _ScopedRegistry:
    """A prefixing view over a parent registry (shares the store)."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent, prefix: str):
        self._parent = parent
        self._prefix = prefix.rstrip(".") + "."

    def counter(self, name: str):
        return self._parent.counter(self._prefix + name)

    def gauge(self, name: str):
        return self._parent.gauge(self._prefix + name)

    def histogram(self, name: str, edges=DEFAULT_EDGES):
        return self._parent.histogram(self._prefix + name, edges)

    def timer(self, name: str):
        return self._parent.timer(self._prefix + name)

    def scope(self, prefix: str) -> "_ScopedRegistry":
        return _ScopedRegistry(self._parent, self._prefix + prefix)


class NullRegistry:
    """Registry stand-in when metrics are disabled: every accessor returns
    the shared :data:`NULL_INSTRUMENT`, scopes return ``self``, reductions
    are no-ops. One shared instance (:data:`NULL_REGISTRY`)."""

    __slots__ = ()

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str, edges=DEFAULT_EDGES):
        return NULL_INSTRUMENT

    def timer(self, name: str):
        return NULL_INSTRUMENT

    def scope(self, prefix: str):
        return self

    def merge(self, other):
        pass

    def merge_dict(self, data):
        pass

    def to_dict(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
