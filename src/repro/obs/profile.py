"""Cross-worker profiling: mergeable per-stage timings + cProfile stats.

The single-process ``--profile`` flag from the CLI answers "where did
*this interpreter* spend its time" — useless for a soak run whose hot
path executes inside ``runtime.trials`` pool workers. This module makes
profiles **mergeable and shippable**, the same trick the trace recorder
and metrics registry already play:

* :class:`ProfileCollector` accumulates per-stage wall/CPU chunk timings
  and per-function ``cProfile`` statistics keyed ``file:line:name``.
  Snapshots are plain dicts (picklable, JSON-safe) and fold with plain
  addition, so worker-side captures merge into the parent collector in
  deterministic span order exactly like trace chunks.
* The **ambient collector** mirrors the recorder/registry contract:
  ``profiling_enabled()`` is one pointer test, :func:`profile_capture`
  is a no-op context manager when disabled, and
  :func:`~repro.obs.trace.worker_spec` ships the enable bit to workers.
* ``cProfile`` cannot nest within a thread, so captures guard on a
  module flag: an inner capture under an active profiler records its
  wall/CPU stage timing but skips function stats (the outer profiler is
  already attributing them).

Profiles are strictly **wall-domain**: they land in the run manifest's
``profile`` section and the CLI renders them, but they never touch
``state.json`` / ``metrics.jsonl`` / the deterministic telemetry view —
profiling on or off cannot move a deterministic artifact by a byte.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from typing import Optional

__all__ = [
    "PROFILE_SCHEMA",
    "ProfileCollector",
    "StageCapture",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "profile_collector",
    "profile_capture",
    "function_layer",
]

PROFILE_SCHEMA = 1

#: Function rows kept per capture snapshot (by cumulative time). Merging
#: sums whatever rows survive the cap, so the aggregate stays bounded no
#: matter how many chunks a soak run folds in.
TOP_FUNCTIONS_PER_CAPTURE = 40


def function_layer(key: str) -> str:
    """Map a ``file:line:name`` stat key onto a repro layer.

    ``.../src/repro/mac/protocols/fallback.py:112:_demote`` → ``mac``;
    anything outside the ``repro`` package (numpy, stdlib, builtins)
    lands in ``other``.
    """
    path = key.rsplit(":", 2)[0].replace("\\", "/")
    marker = "repro/"
    at = path.rfind(marker)
    if at < 0:
        return "other"
    rest = path[at + len(marker):]
    head = rest.split("/", 1)[0]
    return head[:-3] if head.endswith(".py") else head


class ProfileCollector:
    """Mergeable profile store: stage timings + function statistics."""

    def __init__(self):
        #: stage -> {"count", "wall_s", "cpu_s"}
        self.stages: dict = {}
        #: "file:line:name" -> {"ncalls", "tottime", "cumtime"}
        self.functions: dict = {}

    def record_stage(self, stage: str, wall_s: float, cpu_s: float) -> None:
        entry = self.stages.get(stage)
        if entry is None:
            entry = self.stages[stage] = {"count": 0, "wall_s": 0.0,
                                          "cpu_s": 0.0}
        entry["count"] += 1
        entry["wall_s"] += wall_s
        entry["cpu_s"] += cpu_s

    def record_profile(self, profiler: cProfile.Profile) -> None:
        """Fold one finished profiler's top functions in."""
        stats = pstats.Stats(profiler)
        rows = sorted(
            stats.stats.items(),  # (file, line, name) -> (cc, nc, tt, ct, …)
            key=lambda item: item[1][3], reverse=True,
        )[:TOP_FUNCTIONS_PER_CAPTURE]
        for (filename, line, name), (_cc, ncalls, tottime, cumtime, _callers) in rows:
            key = f"{filename}:{line}:{name}"
            entry = self.functions.get(key)
            if entry is None:
                entry = self.functions[key] = {
                    "ncalls": 0, "tottime": 0.0, "cumtime": 0.0,
                }
            entry["ncalls"] += ncalls
            entry["tottime"] += tottime
            entry["cumtime"] += cumtime

    # -- reduction ----------------------------------------------------------

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a worker-side :meth:`snapshot` in (plain addition)."""
        if not snapshot:
            return
        for stage, data in snapshot.get("stages", {}).items():
            entry = self.stages.get(stage)
            if entry is None:
                self.stages[stage] = dict(data)
            else:
                entry["count"] += data["count"]
                entry["wall_s"] += data["wall_s"]
                entry["cpu_s"] += data["cpu_s"]
        for key, data in snapshot.get("functions", {}).items():
            entry = self.functions.get(key)
            if entry is None:
                self.functions[key] = dict(data)
            else:
                entry["ncalls"] += data["ncalls"]
                entry["tottime"] += data["tottime"]
                entry["cumtime"] += data["cumtime"]

    def snapshot(self) -> Optional[dict]:
        """Picklable/JSON form, or ``None`` when nothing was captured."""
        if not self.stages and not self.functions:
            return None
        return {
            "schema_version": PROFILE_SCHEMA,
            "stages": {k: dict(v) for k, v in sorted(self.stages.items())},
            "functions": {k: dict(v)
                          for k, v in sorted(self.functions.items())},
        }

    # -- rendering helpers --------------------------------------------------

    def per_layer(self) -> dict:
        """``tottime`` by repro layer (phy/mac/net/runtime/serve/other)."""
        layers: dict = {}
        for key, data in self.functions.items():
            layer = function_layer(key)
            layers[layer] = layers.get(layer, 0.0) + data["tottime"]
        return dict(sorted(layers.items(), key=lambda kv: -kv[1]))

    def top_functions(self, n: int = 15) -> list:
        """``(key, ncalls, tottime, cumtime)`` rows by total time."""
        rows = [(key, d["ncalls"], d["tottime"], d["cumtime"])
                for key, d in self.functions.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def to_manifest_section(self) -> Optional[dict]:
        """The ``profile`` section a run manifest carries: stage and
        per-layer aggregates plus the top functions — small enough to
        rewrite every epoch, rich enough for ``repro status``."""
        if not self.stages and not self.functions:
            return None
        return {
            "schema_version": PROFILE_SCHEMA,
            "stages": {k: dict(v) for k, v in sorted(self.stages.items())},
            "layers": self.per_layer(),
            "top_functions": [
                {"function": key, "ncalls": ncalls,
                 "tottime": tottime, "cumtime": cumtime}
                for key, ncalls, tottime, cumtime in self.top_functions()
            ],
        }


# --------------------------------------------------------------------------
# Ambient state, mirroring the recorder/registry contract in obs.trace.
# --------------------------------------------------------------------------

_COLLECTOR: Optional[ProfileCollector] = None
#: PID owning the live cProfile, or ``None``. cProfile cannot nest within
#: a thread, so captures under an active profiler record timings only —
#: and a forked child that inherited a stale flag must not be locked out,
#: hence the pid comparison rather than a plain boolean.
_PROFILER_OWNER: Optional[int] = None


def _profiler_active() -> bool:
    return _PROFILER_OWNER == os.getpid()


def profiling_enabled() -> bool:
    return _COLLECTOR is not None


def profile_collector() -> Optional[ProfileCollector]:
    """The ambient collector, or ``None`` when profiling is disabled."""
    return _COLLECTOR


def enable_profiling(collector: Optional[ProfileCollector] = None
                     ) -> ProfileCollector:
    """Install (and return) the ambient profile collector."""
    global _COLLECTOR
    if collector is None:
        collector = ProfileCollector()
    _COLLECTOR = collector
    return collector


def disable_profiling() -> Optional[ProfileCollector]:
    """Remove the ambient collector; returns it for a final snapshot."""
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = None
    return previous


class StageCapture:
    """One profiled span with explicit ``start``/``stop`` so callers that
    cannot use a ``with`` block (the worker chunk wrapper) still capture
    correctly. ``stop`` is idempotent."""

    def __init__(self, collector: ProfileCollector, stage: str):
        self._collector = collector
        self._stage = stage
        self._profiler: Optional[cProfile.Profile] = None
        self._running = False
        self._t_wall = 0.0
        self._t_cpu = 0.0

    def start(self) -> "StageCapture":
        global _PROFILER_OWNER
        self._running = True
        if not _profiler_active():
            self._profiler = cProfile.Profile()
            _PROFILER_OWNER = os.getpid()
            self._profiler.enable()
        self._t_wall = time.perf_counter()
        self._t_cpu = time.process_time()
        return self

    def stop(self) -> None:
        global _PROFILER_OWNER
        if not self._running:
            return
        self._running = False
        wall = time.perf_counter() - self._t_wall
        cpu = time.process_time() - self._t_cpu
        if self._profiler is not None:
            self._profiler.disable()
            _PROFILER_OWNER = None
            self._collector.record_profile(self._profiler)
            self._profiler = None
        self._collector.record_stage(self._stage, wall, cpu)

    def __enter__(self) -> "StageCapture":
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False


class _NullCapture:
    """Shared no-op capture for the disabled path: one pointer test per
    ``profile_capture`` call, nothing else."""

    __slots__ = ()

    def start(self):
        return self

    def stop(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CAPTURE = _NullCapture()


def profile_capture(stage: str):
    """A capture for ``stage`` against the ambient collector — the shared
    no-op when profiling is disabled, so instrumented call sites need no
    conditional."""
    collector = _COLLECTOR
    if collector is None:
        return _NULL_CAPTURE
    return StageCapture(collector, stage)
