"""Render a JSONL trace into per-layer summary tables.

``repro report run.trace.jsonl`` prints, from a single trace file:

* per-layer event counts (what actually happened, at a glance),
* the top timers from the merged metrics snapshot the
  :class:`~repro.obs.trace.ObsSession` appended as the final
  ``obs.metrics`` event,
* a fault-event timeline (injected faults, A-HDR misses/false matches,
  RTE guard rejections, chunk retries),
* the fallback protocol's state transitions (demote → re-promote), the
  first thing to look at when goodput collapses under a fault plan.
"""

from __future__ import annotations

import json
import os

__all__ = [
    "load_events",
    "final_metrics",
    "event_counts",
    "timer_rows",
    "fault_timeline",
    "fallback_transitions",
    "format_report",
    "format_status",
]

#: Event names (beyond the ``fault-*`` family) that belong on the fault
#: timeline.
FAULT_EVENT_NAMES = frozenset({
    "ahdr_miss", "ahdr_false_match", "ack_desync",
    "rte_reject", "rte_recover",
    "chunk_retry", "chunk_salvage", "chunk_failed",
})

#: Fallback protocol state transitions.
TRANSITION_EVENT_NAMES = frozenset({"demote", "repromote"})


def load_events(path) -> list:
    """Parse a JSONL trace file into a list of event dicts.

    A *final* line that opens a JSON object but fails to parse is
    tolerated and skipped — that is the ≤1-orphan artifact a hard kill
    mid-append leaves, the same one ``trim_epoch_records`` trims on
    resume. A malformed line anywhere else (or a final line that is not
    even truncated JSON) is corruption and raises ``ValueError``.
    """
    events = []
    held: tuple | None = None  # (line_no, line, exc) awaiting tail check
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if held is not None:
                bad_no, bad_line, exc = held
                raise ValueError(
                    f"{path}:{bad_no}: not valid JSON: {exc}") from exc
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                held = (line_no, line, exc)
    if held is not None and not held[1].startswith("{"):
        bad_no, _bad_line, exc = held
        raise ValueError(f"{path}:{bad_no}: not valid JSON: {exc}") from exc
    return events


def final_metrics(events) -> dict:
    """The merged metrics snapshot from the last ``obs.metrics`` event."""
    for record in reversed(events):
        if record.get("layer") == "obs" and record.get("event") == "metrics":
            return record.get("metrics", {})
    return {}


def event_counts(events) -> dict:
    """``{(layer, event): count}`` over every trace record."""
    counts: dict = {}
    for record in events:
        key = (record.get("layer", "?"), record.get("event", "?"))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _is_fault_event(name: str) -> bool:
    return name.startswith("fault") or name in FAULT_EVENT_NAMES


def timer_rows(metrics: dict, top: int = 15) -> list:
    """Timer table rows ``(name, count, total_s, mean_s, max_s)`` sorted
    by total time descending."""
    rows = []
    for name, data in metrics.get("timers", {}).items():
        count = data["count"]
        mean = data["total"] / count if count else 0.0
        rows.append((name, count, data["total"], mean, data["max"]))
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows[:top]


def fault_timeline(events, limit: int = 60) -> list:
    """Fault-related events, in trace order (capped at ``limit``)."""
    timeline = [r for r in events if _is_fault_event(r.get("event", ""))]
    return timeline[:limit]


def fallback_transitions(events) -> list:
    """Demote / re-promote events from the fallback protocol, in order."""
    return [r for r in events if r.get("event") in TRANSITION_EVENT_NAMES]


def _fmt_event_line(record) -> str:
    head = f"  #{record.get('seq', '?'):>6}"
    ts = record.get("ts")
    if ts is not None:
        head += f"  {ts:>10.6f}s"
    cid = record.get("cid")
    body = f"  {record.get('layer', '?')}.{record.get('event', '?')}"
    extras = {k: v for k, v in record.items()
              if k not in ("seq", "ts", "layer", "event", "cid", "metrics")}
    if cid:
        body += f"  [{cid}]"
    if extras:
        body += "  " + " ".join(f"{k}={v}" for k, v in extras.items())
    return head + body


def format_report(path, *, top: int = 15, timeline_limit: int = 60) -> str:
    """The full human-readable report for one trace file."""
    events = load_events(path)
    lines = [f"Trace report: {path}", f"  {len(events)} events", ""]

    counts = event_counts(events)
    if counts:
        lines.append("Event counts by layer")
        width = max(len(f"{layer}.{event}") for layer, event in counts)
        for (layer, event), n in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {f'{layer}.{event}':<{width}}  {n:>8}")
        lines.append("")

    metrics = final_metrics(events)
    rows = timer_rows(metrics, top=top)
    if rows:
        lines.append(f"Top timers (by total time, top {top})")
        width = max(len(name) for name, *_ in rows)
        lines.append(
            f"  {'timer':<{width}}  {'count':>8}  {'total':>10}  "
            f"{'mean':>10}  {'max':>10}")
        for name, count, total, mean, max_s in rows:
            lines.append(
                f"  {name:<{width}}  {count:>8}  {total:>9.4f}s  "
                f"{mean:>9.6f}s  {max_s:>9.6f}s")
        lines.append("")
    counters = metrics.get("counters", {})
    if counters:
        lines.append("Counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>10}")
        lines.append("")

    timeline = fault_timeline(events, limit=timeline_limit)
    if timeline:
        lines.append(f"Fault timeline (first {len(timeline)})")
        lines.extend(_fmt_event_line(r) for r in timeline)
        lines.append("")

    transitions = fallback_transitions(events)
    if transitions:
        demotes = sum(1 for r in transitions if r["event"] == "demote")
        lines.append(
            f"Fallback transitions ({demotes} demote, "
            f"{len(transitions) - demotes} repromote)")
        lines.extend(_fmt_event_line(r) for r in transitions)
        lines.append("")

    if len(lines) == 3:
        lines.append("(empty trace)")
    return "\n".join(lines).rstrip() + "\n"


def _fmt_rate(bps: float) -> str:
    return f"{bps / 1e6:.2f}"


def format_status(directory, *, tail: int = 8, top: int = 10) -> str:
    """One render of a soak checkpoint's live state: ``health.json``
    verdict, the last ``tail`` telemetry epochs, and the manifest's
    cross-worker profile — what ``repro status <dir>`` prints.

    Reads only the atomic / append-only artifacts, so it is safe to run
    against a directory a live soak is actively writing.
    """
    from .slo import read_health
    from .telemetry import read_telemetry_records, telemetry_paths

    directory = os.fspath(directory)
    lines = [f"Soak status: {directory}"]

    health = read_health(directory)
    if health is not None:
        lines.append(
            f"  health: {health.get('status', '?')} "
            f"(epoch {health.get('epoch', '?')}, "
            f"{health.get('epochs_completed', '?')} epochs completed)")
        for slo in health.get("slos", ()):
            lines.append(f"  slo: {slo}")
        for breach in health.get("breaches", ()):
            lines.append(
                f"  BREACH {breach.get('slo', '?')}: value "
                f"{breach.get('value', float('nan')):.6g} at epoch "
                f"{breach.get('epoch', '?')} (policy "
                f"{breach.get('policy', '?')})")
    else:
        lines.append("  health: (no health.json — run without SLO watchdogs?)")
    lines.append("")

    if os.path.exists(telemetry_paths(directory)["telemetry"]):
        window: list = []
        for record in read_telemetry_records(directory):
            window.append(record)
            if len(window) > tail:
                window.pop(0)
        if window:
            lines.append(f"Last {len(window)} epoch(s)")
            lines.append(
                f"  {'epoch':>6}  {'goodput':>9}  {'useful':>9}  "
                f"{'tx':>7}  {'coll':>6}  {'dem':>4}  {'rep':>4}  "
                f"{'fault%':>6}  {'wall':>7}  {'fr/s':>8}  {'rss':>7}")
            lines.append(
                f"  {'':>6}  {'Mbit/s':>9}  {'Mbit/s':>9}  "
                f"{'':>7}  {'':>6}  {'':>4}  {'':>4}  "
                f"{'':>6}  {'s':>7}  {'':>8}  {'MiB':>7}")
            for record in window:
                det, wall = record.get("det", {}), record.get("wall", {})
                lines.append(
                    f"  {record.get('epoch', '?'):>6}"
                    f"  {_fmt_rate(det.get('goodput_bps', 0.0)):>9}"
                    f"  {_fmt_rate(det.get('useful_goodput_bps', 0.0)):>9}"
                    f"  {det.get('transmissions', 0):>7}"
                    f"  {det.get('collisions', 0):>6}"
                    f"  {det.get('demotions', 0):>4}"
                    f"  {det.get('repromotions', 0):>4}"
                    f"  {det.get('fault_occupancy', 0.0) * 100:>5.1f}%"
                    f"  {wall.get('wall_seconds', 0.0):>6.2f}s"
                    f"  {wall.get('frames_per_wall_s', 0.0):>8.0f}"
                    f"  {wall.get('rss_mb', 0.0):>7.1f}")
            lines.append("")
    else:
        lines.append("(no telemetry.jsonl — run with --telemetry)")
        lines.append("")

    manifest_path = os.path.join(directory, "manifest.json")
    profile = None
    if os.path.exists(manifest_path):
        with open(manifest_path, encoding="utf-8") as fh:
            profile = json.load(fh).get("profile")
    if profile:
        stages = profile.get("stages", {})
        if stages:
            lines.append("Profile stages")
            width = max(len(s) for s in stages)
            for stage in sorted(stages):
                data = stages[stage]
                lines.append(
                    f"  {stage:<{width}}  {data['count']:>7}x  "
                    f"wall {data['wall_s']:>9.4f}s  cpu {data['cpu_s']:>9.4f}s")
            lines.append("")
        layers = profile.get("layers", {})
        if layers:
            lines.append("Profile by layer (tottime)")
            width = max(len(layer) for layer in layers)
            for layer, seconds in layers.items():
                lines.append(f"  {layer:<{width}}  {seconds:>9.4f}s")
            lines.append("")
        functions = profile.get("top_functions", ())[:top]
        if functions:
            lines.append(f"Top functions (by tottime, top {len(functions)})")
            for row in functions:
                name = row["function"]
                if len(name) > 72:
                    name = "…" + name[-71:]
                lines.append(
                    f"  {row['tottime']:>9.4f}s  {row['ncalls']:>9}  {name}")
            lines.append("")

    return "\n".join(lines).rstrip() + "\n"
