"""Render a JSONL trace into per-layer summary tables.

``repro report run.trace.jsonl`` prints, from a single trace file:

* per-layer event counts (what actually happened, at a glance),
* the top timers from the merged metrics snapshot the
  :class:`~repro.obs.trace.ObsSession` appended as the final
  ``obs.metrics`` event,
* a fault-event timeline (injected faults, A-HDR misses/false matches,
  RTE guard rejections, chunk retries),
* the fallback protocol's state transitions (demote → re-promote), the
  first thing to look at when goodput collapses under a fault plan.
"""

from __future__ import annotations

import json

__all__ = [
    "load_events",
    "final_metrics",
    "event_counts",
    "timer_rows",
    "fault_timeline",
    "fallback_transitions",
    "format_report",
]

#: Event names (beyond the ``fault-*`` family) that belong on the fault
#: timeline.
FAULT_EVENT_NAMES = frozenset({
    "ahdr_miss", "ahdr_false_match", "ack_desync",
    "rte_reject", "rte_recover",
    "chunk_retry", "chunk_salvage", "chunk_failed",
})

#: Fallback protocol state transitions.
TRANSITION_EVENT_NAMES = frozenset({"demote", "repromote"})


def load_events(path) -> list:
    """Parse a JSONL trace file into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON: {exc}") from exc
    return events


def final_metrics(events) -> dict:
    """The merged metrics snapshot from the last ``obs.metrics`` event."""
    for record in reversed(events):
        if record.get("layer") == "obs" and record.get("event") == "metrics":
            return record.get("metrics", {})
    return {}


def event_counts(events) -> dict:
    """``{(layer, event): count}`` over every trace record."""
    counts: dict = {}
    for record in events:
        key = (record.get("layer", "?"), record.get("event", "?"))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _is_fault_event(name: str) -> bool:
    return name.startswith("fault") or name in FAULT_EVENT_NAMES


def timer_rows(metrics: dict, top: int = 15) -> list:
    """Timer table rows ``(name, count, total_s, mean_s, max_s)`` sorted
    by total time descending."""
    rows = []
    for name, data in metrics.get("timers", {}).items():
        count = data["count"]
        mean = data["total"] / count if count else 0.0
        rows.append((name, count, data["total"], mean, data["max"]))
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows[:top]


def fault_timeline(events, limit: int = 60) -> list:
    """Fault-related events, in trace order (capped at ``limit``)."""
    timeline = [r for r in events if _is_fault_event(r.get("event", ""))]
    return timeline[:limit]


def fallback_transitions(events) -> list:
    """Demote / re-promote events from the fallback protocol, in order."""
    return [r for r in events if r.get("event") in TRANSITION_EVENT_NAMES]


def _fmt_event_line(record) -> str:
    head = f"  #{record.get('seq', '?'):>6}"
    ts = record.get("ts")
    if ts is not None:
        head += f"  {ts:>10.6f}s"
    cid = record.get("cid")
    body = f"  {record.get('layer', '?')}.{record.get('event', '?')}"
    extras = {k: v for k, v in record.items()
              if k not in ("seq", "ts", "layer", "event", "cid", "metrics")}
    if cid:
        body += f"  [{cid}]"
    if extras:
        body += "  " + " ".join(f"{k}={v}" for k, v in extras.items())
    return head + body


def format_report(path, *, top: int = 15, timeline_limit: int = 60) -> str:
    """The full human-readable report for one trace file."""
    events = load_events(path)
    lines = [f"Trace report: {path}", f"  {len(events)} events", ""]

    counts = event_counts(events)
    if counts:
        lines.append("Event counts by layer")
        width = max(len(f"{layer}.{event}") for layer, event in counts)
        for (layer, event), n in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {f'{layer}.{event}':<{width}}  {n:>8}")
        lines.append("")

    metrics = final_metrics(events)
    rows = timer_rows(metrics, top=top)
    if rows:
        lines.append(f"Top timers (by total time, top {top})")
        width = max(len(name) for name, *_ in rows)
        lines.append(
            f"  {'timer':<{width}}  {'count':>8}  {'total':>10}  "
            f"{'mean':>10}  {'max':>10}")
        for name, count, total, mean, max_s in rows:
            lines.append(
                f"  {name:<{width}}  {count:>8}  {total:>9.4f}s  "
                f"{mean:>9.6f}s  {max_s:>9.6f}s")
        lines.append("")
    counters = metrics.get("counters", {})
    if counters:
        lines.append("Counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>10}")
        lines.append("")

    timeline = fault_timeline(events, limit=timeline_limit)
    if timeline:
        lines.append(f"Fault timeline (first {len(timeline)})")
        lines.extend(_fmt_event_line(r) for r in timeline)
        lines.append("")

    transitions = fallback_transitions(events)
    if transitions:
        demotes = sum(1 for r in transitions if r["event"] == "demote")
        lines.append(
            f"Fallback transitions ({demotes} demote, "
            f"{len(transitions) - demotes} repromote)")
        lines.extend(_fmt_event_line(r) for r in transitions)
        lines.append("")

    if len(lines) == 3:
        lines.append("(empty trace)")
    return "\n".join(lines).rstrip() + "\n"
