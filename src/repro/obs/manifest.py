"""Run manifests: provenance records written next to run output.

A manifest answers "what produced this file?" months later: the seed,
the exact code revision, a stable hash of the run configuration, the
interpreter and numpy versions, and how long the run took — plus the
merged metrics snapshot when observability was on.

Manifests are plain JSON with sorted keys, so two runs of the same
configuration differ only in the timing/provenance fields.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = [
    "RunManifest",
    "manifest_scope",
    "write_manifest",
    "git_sha",
    "config_hash",
]

MANIFEST_VERSION = 1


def git_sha(cwd=None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout (or
    when git itself is unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _jsonable(value):
    """Best-effort conversion of config payloads (dataclasses, tuples,
    numpy scalars) into JSON-serialisable structures."""
    if hasattr(value, "__dataclass_fields__"):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return repr(value)


def config_hash(config) -> Optional[str]:
    """Stable sha256 over the canonical JSON form of a run configuration."""
    if config is None:
        return None
    payload = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunManifest:
    """Provenance for one invocation (``run_trials`` batch, deployment,
    or bench suite)."""

    kind: str
    seed: Optional[int] = None
    git_sha: Optional[str] = None
    config_hash: Optional[str] = None
    config: Optional[dict] = None
    python_version: str = field(default_factory=platform.python_version)
    numpy_version: Optional[str] = None
    platform: str = field(default_factory=platform.platform)
    wall_seconds: Optional[float] = None
    cpu_seconds: Optional[float] = None
    trace_path: Optional[str] = None
    n_events: int = 0
    metrics: dict = field(default_factory=dict)
    #: Aggregated cross-worker profile (see
    #: :meth:`repro.obs.profile.ProfileCollector.to_manifest_section`),
    #: or ``None`` when the run was not profiled.
    profile: Optional[dict] = None
    manifest_version: int = MANIFEST_VERSION
    argv: list = field(default_factory=lambda: list(sys.argv))

    def to_dict(self) -> dict:
        return asdict(self)


def write_manifest(path, *, kind, seed=None, config=None, metrics=None,
                   wall_seconds=None, cpu_seconds=None, trace_path=None,
                   n_events=0, profile=None) -> RunManifest:
    """Build a :class:`RunManifest` and write it to ``path`` atomically."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    manifest = RunManifest(
        kind=kind,
        seed=seed,
        git_sha=git_sha(),
        config_hash=config_hash(config),
        config=_jsonable(config) if config is not None else None,
        numpy_version=numpy_version,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        trace_path=os.fspath(trace_path) if trace_path is not None else None,
        n_events=n_events,
        metrics=metrics or {},
        profile=profile,
    )
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return manifest


@contextmanager
def manifest_scope(path=None, *, kind, seed=None, config=None):
    """Time a run and write its manifest on exit.

    The boilerplate every long-running driver repeats — snapshot wall and
    CPU clocks, run, write a manifest carrying the timings and the
    ambient metrics — in one scope. ``path=None`` still measures but
    writes nothing, so callers can wrap unconditionally. Deployment runs
    use this today; the planned ``serve``/soak drivers are expected to
    share it.

    The metrics snapshot is taken at exit from the ambient registry
    (:func:`repro.obs.trace.metrics`), which is a no-op dict when
    metrics collection is off.
    """
    t_wall = time.perf_counter()
    t_cpu = time.process_time()
    yield
    if path is None:
        return
    from .trace import metrics

    write_manifest(
        path,
        kind=kind,
        seed=seed,
        config=config,
        metrics=metrics().to_dict(),
        wall_seconds=time.perf_counter() - t_wall,
        cpu_seconds=time.process_time() - t_cpu,
    )
