"""Additive white Gaussian noise."""

from __future__ import annotations

import numpy as np

from repro.util.rng import RngStream
from repro.util.units import db_to_linear

__all__ = ["noise_variance_for_snr", "add_awgn"]


def noise_variance_for_snr(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex noise variance that yields ``snr_db`` for the given signal power."""
    return signal_power / db_to_linear(snr_db)


def add_awgn(symbols: np.ndarray, snr_db: float, rng: RngStream,
             signal_power: float = 1.0) -> np.ndarray:
    """Add circularly-symmetric complex Gaussian noise to ``symbols``.

    ``signal_power`` is the reference average power per subcarrier; with
    unit-power constellations and unit-average-power channels the default
    of 1.0 makes ``snr_db`` the per-subcarrier SNR.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    sigma = np.sqrt(noise_variance_for_snr(snr_db, signal_power))
    return symbols + rng.complex_normal(scale=sigma, size=symbols.shape)
