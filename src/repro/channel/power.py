"""Calibration between USRP "power magnitude" and link SNR.

The paper sweeps the UHD transmission gain as a unitless *power magnitude*
between 0.0125 and 0.2 of the daughterboard's 20 dBm maximum (§7.1.1). We
have no radio, so we map that knob to a per-subcarrier SNR with a
log-linear rule calibrated so the BER curves land in the ranges Fig. 11
reports (BPSK reaching ~1e-6 at 0.2; QAM64 unusable at 0.0125):

    SNR(p) = SNR_REF + 20·log10(p / 1.0)   [dB]

Transmit amplitude scales linearly with the magnitude, so received power —
and SNR at fixed noise floor — goes with 20·log10.
"""

from __future__ import annotations

__all__ = ["POWER_MAGNITUDES", "snr_for_power", "SNR_AT_UNIT_POWER_DB"]

# The five power settings the paper's PHY evaluation sweeps.
POWER_MAGNITUDES = (0.0125, 0.025, 0.05, 0.1, 0.2)

SNR_AT_UNIT_POWER_DB = 40.0


def snr_for_power(power_magnitude: float, snr_at_unit_power_db: float = SNR_AT_UNIT_POWER_DB) -> float:
    """Per-subcarrier SNR (dB) for a USRP power-magnitude setting."""
    if power_magnitude <= 0:
        raise ValueError("power magnitude must be positive")
    import math

    return snr_at_unit_power_db + 20.0 * math.log10(power_magnitude)
