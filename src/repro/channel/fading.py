"""Time-varying multipath fading.

The paper's BER-bias phenomenon (Fig. 3) arises because the indoor channel
decorrelates over the airtime of a long frame while the receiver's estimate
stays frozen at the preamble. We reproduce the mechanism with a standard
model:

* **Multipath**: L taps with an exponential power-delay profile; tap 0 may
  carry a Ricean line-of-sight component (indoor office, fixed 3 m link).
* **Time variation**: each tap's scattered component is a Jakes
  sum-of-sinusoids process — M plane waves with random arrival angles and
  phases, Doppler spread f_d ≈ 0.423 / T_coherence. Unlike a first-order
  AR process, this reproduces the J₀-shaped autocorrelation whose fast
  initial (quadratic-in-lag) decay is what actually decorrelates a channel
  over one frame.

The channel is applied per OFDM symbol in the frequency domain, which is
exact (identical to time-domain circular convolution) whenever the delay
spread fits inside the cyclic prefix — true for all taps we generate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.constants import FFT_SIZE, USED_SUBCARRIER_INDICES
from repro.phy.ofdm import logical_to_fft_bins
from repro.util.rng import RngStream

__all__ = ["FadingProfile", "FadingProcess", "doppler_from_coherence_time", "jakes_correlation"]

_USED_BINS = logical_to_fft_bins(USED_SUBCARRIER_INDICES)

_NUM_SINUSOIDS = 16


def doppler_from_coherence_time(coherence_time: float) -> float:
    """Doppler spread f_d (Hz) from coherence time via T_c ≈ 0.423 / f_d."""
    if coherence_time <= 0:
        raise ValueError("coherence time must be positive")
    if np.isinf(coherence_time):
        return 0.0
    return 0.423 / coherence_time


def jakes_correlation(doppler_hz: float, lag: float) -> float:
    """Theoretical channel autocorrelation J₀(2π·f_d·lag) under Jakes' model.

    Power-series J₀, accurate for arguments below ~3 and clamped to
    [-0.5, 1] beyond (only used for reporting/tests, not simulation).
    """
    x = 2.0 * np.pi * doppler_hz * lag
    if x < 3.0:
        term = 1.0
        total = 1.0
        half_sq = (x / 2.0) ** 2
        for m in range(1, 25):
            term *= -half_sq / (m * m)
            total += term
        return float(total)
    return 0.0


@dataclass(frozen=True)
class FadingProfile:
    """Static description of a fading environment.

    Attributes:
        num_taps: Multipath taps (1 = flat fading).
        delay_spread_taps: Exponential PDP decay constant, in tap units.
        ricean_k_db: LOS-to-scattered power ratio of tap 0 in dB;
            ``-inf`` for pure Rayleigh. The default (10 dB) reflects the
            paper's short line-of-sight office links.
        coherence_time: Channel coherence time in seconds; ``inf`` freezes
            the channel (the "controlled static environment" of §7.1.1).
    """

    num_taps: int = 3
    delay_spread_taps: float = 1.0
    ricean_k_db: float = 10.0
    coherence_time: float = 20e-3

    def __post_init__(self):
        if self.num_taps < 1:
            raise ValueError("need at least one tap")
        if self.num_taps > 16:
            raise ValueError("delay spread would exceed the cyclic prefix")

    def tap_powers(self) -> np.ndarray:
        """Per-tap average powers, normalised to sum to 1."""
        powers = np.exp(-np.arange(self.num_taps) / self.delay_spread_taps)
        return powers / powers.sum()

    def los_amplitude(self) -> float:
        """Amplitude of the deterministic LOS component of tap 0."""
        if np.isneginf(self.ricean_k_db):
            return 0.0
        k = 10.0 ** (self.ricean_k_db / 10.0)
        p0 = self.tap_powers()[0]
        return float(np.sqrt(p0 * k / (k + 1.0)))

    def scattered_powers(self) -> np.ndarray:
        """Average power of the *scattered* (random) part of each tap."""
        powers = self.tap_powers()
        if not np.isneginf(self.ricean_k_db):
            k = 10.0 ** (self.ricean_k_db / 10.0)
            powers = powers.copy()
            powers[0] = powers[0] / (k + 1.0)
        return powers

    def doppler_hz(self) -> float:
        """Doppler spread implied by the coherence time."""
        return doppler_from_coherence_time(self.coherence_time)


class FadingProcess:
    """A realised, evolving channel: call :meth:`step` once per OFDM symbol.

    Each tap is a sum of ``M`` complex sinusoids with Doppler shifts
    f_d·cos(α_m) for uniformly random arrival angles α_m. The process can
    run continuously across frames (MAC-style links) or be re-drawn per
    frame via :meth:`reset` (independent "locations", as in the paper's
    30-location measurements).
    """

    def __init__(self, profile: FadingProfile, symbol_duration: float, rng: RngStream):
        self.profile = profile
        self.symbol_duration = symbol_duration
        self._rng = rng
        self._doppler = profile.doppler_hz()
        self._sigma = np.sqrt(profile.scattered_powers())
        self._los = profile.los_amplitude()
        self._omega: np.ndarray | None = None  # (L, M) angular Doppler per wave
        self._phi: np.ndarray | None = None  # (L, M) initial phases
        self._time = 0.0

    def reset(self) -> None:
        """Draw a fresh independent channel realisation and restart time."""
        shape = (self.profile.num_taps, _NUM_SINUSOIDS)
        angles = self._rng.uniform(0.0, 2.0 * np.pi, size=shape)
        self._omega = 2.0 * np.pi * self._doppler * np.cos(angles)
        self._phi = self._rng.uniform(0.0, 2.0 * np.pi, size=shape)
        self._time = 0.0

    def taps(self) -> np.ndarray:
        """Current time-domain taps (LOS + scattered)."""
        if self._omega is None:
            self.reset()
        phases = self._omega * self._time + self._phi
        scattered = np.exp(1j * phases).sum(axis=1) / np.sqrt(_NUM_SINUSOIDS)
        taps = scattered * self._sigma
        taps[0] += self._los
        return taps

    def frequency_response(self) -> np.ndarray:
        """Current channel over the 52 used subcarriers."""
        grid = np.fft.fft(self.taps(), FFT_SIZE)
        return grid[_USED_BINS]

    def step(self, dt: float | None = None) -> None:
        """Advance channel time by ``dt`` seconds (default: one OFDM symbol)."""
        if self._omega is None:
            self.reset()
        self._time += self.symbol_duration if dt is None else dt
