"""The composable link model: fading × CFO × AWGN, applied per OFDM symbol.

This is the stand-in for the paper's over-the-air path (USRP → office →
USRP). A :class:`ChannelModel` owns a fading process, a carrier frequency
offset and a noise level, and transforms the (n_symbols, 52) symbol arrays
produced by the PHY transmitter into what the receiver sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import add_awgn
from repro.channel.fading import FadingProcess, FadingProfile
from repro.channel.power import snr_for_power
from repro.phy.cfo import phase_step_from_cfo
from repro.phy.constants import (
    FFT_SIZE,
    SYMBOL_DURATION_20MHZ,
    SYMBOL_SAMPLES,
    USED_SUBCARRIER_INDICES,
)
from repro.util.rng import RngStream

__all__ = ["ChannelModel", "ChannelTrace"]


@dataclass
class ChannelTrace:
    """Ground-truth record of what the channel did to one frame.

    Kept for instrumentation: the RTE evaluation compares the receiver's
    running estimate against ``responses``.
    """

    responses: np.ndarray  # (n_symbols, 52) true frequency response per symbol
    cfo_hz: float
    initial_phase: float
    snr_db: float


class ChannelModel:
    """A point-to-point link with time-varying fading, CFO and noise.

    Args:
        snr_db: Per-subcarrier SNR. Alternatively pass ``power_magnitude``
            to use the paper's USRP power-knob calibration.
        profile: Fading environment; defaults to the indoor-office profile.
        cfo_hz: Carrier frequency offset between the node pair. The PHY
            receiver estimates and removes most of it from the LTF; what
            the pilots see is the residual.
        sfo_ppm: Sampling-frequency offset in parts-per-million. SFO puts a
            phase ramp on each subcarrier that grows with *both* the symbol
            index and the subcarrier index, so pilot common-phase tracking
            cannot remove it — a second real-world source of the BER bias
            a preamble-only channel estimate suffers on long frames.
        symbol_duration: OFDM symbol duration (4 µs at 20 MHz; the paper's
            Fig. 13 runs a "2M channel", i.e. 40 µs symbols, to emulate
            10× longer frames).
        rng: Seeded random stream; fading/noise/phase each use a child.
        continuous: If True the fading process persists across frames
            (a single physical link observed over time); if False every
            frame sees a fresh realisation (independent locations).
        impairments: Optional fault injectors (:mod:`repro.faults.phy`)
            applied to every frame. Their draws come from a dedicated
            ``faults`` child stream created only when impairments are
            present, so a model without impairments is bit-identical to
            one built before the hook existed.
    """

    def __init__(
        self,
        snr_db: float | None = None,
        *,
        power_magnitude: float | None = None,
        profile: FadingProfile | None = None,
        cfo_hz: float = 300.0,
        sfo_ppm: float = 10.0,
        symbol_duration: float = SYMBOL_DURATION_20MHZ,
        rng: RngStream | None = None,
        continuous: bool = False,
        impairments=(),
    ):
        if (snr_db is None) == (power_magnitude is None):
            raise ValueError("specify exactly one of snr_db / power_magnitude")
        self.snr_db = snr_db if snr_db is not None else snr_for_power(power_magnitude)
        self.profile = profile or FadingProfile()
        self.cfo_hz = cfo_hz
        self.sfo_ppm = sfo_ppm
        self.symbol_duration = symbol_duration
        self.continuous = continuous
        rng = rng or RngStream(seed=0)
        self._noise_rng = rng.child("noise")
        self._phase_rng = rng.child("phase")
        self._fading = FadingProcess(self.profile, symbol_duration, rng.child("fading"))
        self.impairments = tuple(impairments)
        self._fault_rng = rng.child("faults") if self.impairments else None
        self.last_trace: ChannelTrace | None = None

    def transmit(self, symbols: np.ndarray) -> np.ndarray:
        """Propagate one frame; returns the received symbol array.

        Applies, in order: per-symbol fading (evolving within the frame),
        a CFO phase ramp with random initial phase, and AWGN at the model's
        SNR.
        """
        symbols = np.asarray(symbols, dtype=np.complex128)
        n = symbols.shape[0]
        if not self.continuous:
            self._fading.reset()
        responses = np.empty_like(symbols)
        faded = np.empty_like(symbols)
        for i in range(n):
            h = self._fading.frequency_response()
            responses[i] = h
            faded[i] = h * symbols[i]
            self._fading.step()

        phase_step = phase_step_from_cfo(self.cfo_hz, self.symbol_duration)
        initial_phase = float(self._phase_rng.uniform(0.0, 2.0 * np.pi))
        ramp = np.exp(1j * (initial_phase + phase_step * np.arange(n)))
        faded *= ramp[:, None]

        if self.sfo_ppm:
            # Phase on logical subcarrier k at symbol index i:
            # 2π · k · ε · i · (symbol_samples / fft_size).
            delta = self.sfo_ppm * 1e-6 * (SYMBOL_SAMPLES / FFT_SIZE)
            k = USED_SUBCARRIER_INDICES[None, :]
            i = np.arange(n)[:, None]
            faded *= np.exp(2j * np.pi * k * delta * i)

        for impairment in self.impairments:
            if impairment.stage == "pre_noise":
                faded = impairment.apply(faded, self._fault_rng, self.symbol_duration)

        received = add_awgn(faded, self.snr_db, self._noise_rng)

        for impairment in self.impairments:
            if impairment.stage == "post_noise":
                received = impairment.apply(received, self._fault_rng, self.symbol_duration)

        self.last_trace = ChannelTrace(
            responses=responses,
            cfo_hz=self.cfo_hz,
            initial_phase=initial_phase,
            snr_db=self.snr_db,
        )
        return received
