"""Wireless channel substrate: fading, noise, CFO, path loss, power calibration."""

from repro.channel.awgn import add_awgn, noise_variance_for_snr
from repro.channel.fading import (
    FadingProcess,
    FadingProfile,
    doppler_from_coherence_time,
    jakes_correlation,
)
from repro.channel.model import ChannelModel, ChannelTrace
from repro.channel.path_loss import LogDistancePathLoss, link_snr_db
from repro.channel.statistics import (
    empirical_pdp,
    estimate_ricean_k,
    level_crossing_rate,
    realise_tap_series,
    temporal_autocorrelation,
)
from repro.channel.power import POWER_MAGNITUDES, SNR_AT_UNIT_POWER_DB, snr_for_power

__all__ = [
    "add_awgn",
    "noise_variance_for_snr",
    "FadingProfile",
    "FadingProcess",
    "doppler_from_coherence_time",
    "jakes_correlation",
    "ChannelModel",
    "ChannelTrace",
    "LogDistancePathLoss",
    "link_snr_db",
    "POWER_MAGNITUDES",
    "SNR_AT_UNIT_POWER_DB",
    "snr_for_power",
    "empirical_pdp",
    "estimate_ricean_k",
    "level_crossing_rate",
    "realise_tap_series",
    "temporal_autocorrelation",
]
