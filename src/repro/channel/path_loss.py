"""Log-distance path loss for indoor node placement.

Used by the MAC evaluation to assign per-STA link SNRs from the testbed
geometry (Fig. 10: transmitter at the room centre, receivers at 30 spots in
a 10 m × 10 m office).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LogDistancePathLoss", "link_snr_db"]


@dataclass(frozen=True)
class LogDistancePathLoss:
    """PL(d) = PL(d0) + 10·n·log10(d/d0) dB.

    Defaults follow common indoor-office measurements at 2.4 GHz:
    free-space loss at the 1 m reference (≈40 dB) and exponent 3.0.
    """

    reference_loss_db: float = 40.0
    exponent: float = 3.0
    reference_distance_m: float = 1.0

    def loss_db(self, distance_m: float) -> float:
        """Path loss in dB at ``distance_m``."""
        if distance_m <= 0:
            raise ValueError("distance must be positive")
        d = max(distance_m, self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(
            d / self.reference_distance_m
        )


def link_snr_db(
    distance_m: float,
    tx_power_dbm: float = 20.0,
    noise_floor_dbm: float = -90.0,
    model: LogDistancePathLoss | None = None,
) -> float:
    """Received SNR for a link of ``distance_m`` metres.

    The default TX power is the XCVR2450's 20 dBm maximum (§7.1.1); the
    noise floor bundles thermal noise and receiver noise figure over 20 MHz.
    """
    model = model or LogDistancePathLoss()
    return tx_power_dbm - model.loss_db(distance_m) - noise_floor_dbm
