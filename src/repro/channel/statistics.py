"""Statistical validation tools for the fading substrate.

The trustworthiness of every PHY experiment rests on the channel model
actually having the advertised statistics. These estimators measure, from
realised processes, the quantities the model is parameterised by:

* temporal autocorrelation (→ Jakes' J₀ shape, coherence time),
* power-delay profile (→ exponential decay, delay spread),
* Ricean K-factor (→ LOS dominance, via the moment estimator),
* envelope level-crossing rate (→ Doppler spread, by Rice's formula).
"""

from __future__ import annotations

import numpy as np

from repro.channel.fading import FadingProcess, FadingProfile
from repro.util.rng import RngStream

__all__ = [
    "temporal_autocorrelation",
    "empirical_pdp",
    "estimate_ricean_k",
    "level_crossing_rate",
    "realise_tap_series",
]


def realise_tap_series(profile: FadingProfile, symbol_duration: float,
                       n_samples: int, rng: RngStream, tap: int = 0) -> np.ndarray:
    """One tap's complex time series over ``n_samples`` symbol intervals."""
    process = FadingProcess(profile, symbol_duration, rng)
    process.reset()
    series = np.empty(n_samples, dtype=np.complex128)
    for i in range(n_samples):
        series[i] = process.taps()[tap]
        process.step()
    return series


def temporal_autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalised autocorrelation R(τ)/R(0) of a complex process.

    The mean (LOS component) is removed first so the result describes the
    scattered part — the quantity Jakes' J₀ models.
    """
    series = np.asarray(series, dtype=np.complex128)
    if max_lag >= series.size:
        raise ValueError("max_lag must be smaller than the series")
    centred = series - series.mean()
    r0 = float(np.mean(np.abs(centred) ** 2))
    if r0 <= 0:
        raise ValueError("series has no scattered power")
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = float(
            np.real(np.mean(centred[lag:] * np.conj(centred[: centred.size - lag])))
        ) / r0
    return out


def empirical_pdp(profile: FadingProfile, rng: RngStream,
                  realisations: int = 500) -> np.ndarray:
    """Average per-tap power over many independent realisations."""
    process = FadingProcess(profile, symbol_duration=4e-6, rng=rng)
    acc = np.zeros(profile.num_taps)
    for _ in range(realisations):
        process.reset()
        acc += np.abs(process.taps()) ** 2
    return acc / realisations


def estimate_ricean_k(envelope_power: np.ndarray) -> float:
    """Moment-based K-factor estimator from |h|² samples.

    K̂ = sqrt(1 − var(P)/mean(P)²) mapped through K = sqrt(1−γ)/(1−sqrt(1−γ));
    returns 0 for Rayleigh-like data and ``inf`` for a constant envelope.
    """
    power = np.asarray(envelope_power, dtype=float)
    if power.size < 2:
        raise ValueError("need at least two samples")
    mean = power.mean()
    if mean <= 0:
        raise ValueError("power samples must be positive on average")
    gamma = power.var() / (mean * mean)
    if gamma <= 0:
        return float("inf")
    if gamma >= 1:
        return 0.0
    root = np.sqrt(1.0 - gamma)
    return float(root / (1.0 - root))


def level_crossing_rate(envelope: np.ndarray, threshold: float,
                        sample_interval: float) -> float:
    """Upward crossings of ``threshold`` per second (Rice's LCR)."""
    envelope = np.asarray(envelope, dtype=float)
    if envelope.size < 2:
        raise ValueError("need at least two samples")
    below = envelope[:-1] < threshold
    above = envelope[1:] >= threshold
    crossings = int(np.count_nonzero(below & above))
    return crossings / ((envelope.size - 1) * sample_interval)
