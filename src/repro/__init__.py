"""Carpool: multi-receiver PHY frame aggregation for public WLANs.

A from-scratch Python reproduction of "Less Transmissions, More
Throughput: Bringing Carpool to Public WLANs" (ICDCS 2015): the Carpool
PHY/MAC design plus every substrate it is evaluated on — an 802.11-style
OFDM PHY, a time-varying indoor channel, Bloom filters, an event-driven
CSMA/CA MAC simulator with all baseline protocols, and trace-statistics
traffic models.

Packages:
    repro.core     — Carpool itself: A-HDR, side channel, RTE, sequential
                     ACK, aggregation policy, energy model.
    repro.phy      — OFDM PHY: modulation, coding, interleaving, preamble,
                     SIG, pilots, channel estimation, CFO, transceivers.
    repro.channel  — fading/AWGN/CFO/SFO link models, power calibration.
    repro.bloom    — (positional) Bloom filters.
    repro.mac      — CSMA/CA simulator, protocols, scenarios, metrics.
    repro.traffic  — VoIP (Brady), SIGCOMM/library trace synthesizers.
    repro.analysis — measurement harness and statistics.
    repro.util     — seeded RNG trees, bit packing, units.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
