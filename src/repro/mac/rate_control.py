"""Per-station rate adaptation from link SNR.

Carpool lets every subframe use its own MCS (§4.1), so the AP can serve a
nearby station at QAM64 and a distant one at BPSK inside the same frame.
This module supplies the missing piece: a standard SNR-threshold rate
selector, with thresholds at the operating points where each 802.11a rate
crosses ~10 % frame error on an AWGN-ish link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.mcs import MCS_TABLE, Mcs

__all__ = ["SNR_THRESHOLDS_DB", "select_mcs", "RateTable"]

# Minimum SNR (dB) to run each rate; classic 802.11a waterfall figures.
SNR_THRESHOLDS_DB = {
    "BPSK-1/2": 5.0,
    "BPSK-3/4": 8.0,
    "QPSK-1/2": 10.0,
    "QPSK-3/4": 13.0,
    "QAM16-1/2": 16.0,
    "QAM16-3/4": 19.0,
    "QAM64-2/3": 23.0,
    "QAM64-3/4": 25.0,
}


def select_mcs(snr_db: float, margin_db: float = 0.0) -> Mcs:
    """The fastest MCS whose threshold clears ``snr_db − margin``.

    Below the lowest threshold the basic rate is returned anyway — a link
    that bad relies on retransmissions, as real NICs do.
    """
    effective = snr_db - margin_db
    best = MCS_TABLE[0]
    for mcs in MCS_TABLE:
        if effective >= SNR_THRESHOLDS_DB[mcs.name]:
            best = mcs
    return best


@dataclass
class RateTable:
    """The AP's per-station rate state.

    SNR reports (e.g. from ACK receptions) update entries; lookups fall
    back to the basic rate for unknown stations.
    """

    margin_db: float = 0.0
    _snr: dict = field(default_factory=dict)

    def report_snr(self, station: str, snr_db: float, smoothing: float = 0.25) -> None:
        """Fold a new SNR observation into the station's running estimate."""
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if station in self._snr:
            self._snr[station] = (
                (1.0 - smoothing) * self._snr[station] + smoothing * snr_db
            )
        else:
            self._snr[station] = snr_db

    def snr_of(self, station: str) -> float | None:
        """Smoothed SNR estimate for a station (None if never reported)."""
        return self._snr.get(station)

    def mcs_for(self, station: str) -> Mcs:
        """The MCS to use toward a station (basic rate when unknown)."""
        snr = self._snr.get(station)
        if snr is None:
            return MCS_TABLE[0]
        return select_mcs(snr, self.margin_db)

    def rate_map(self) -> dict:
        """station → selected MCS for every reported station."""
        return {station: self.mcs_for(station) for station in self._snr}
