"""Airtime accounting for every frame format in the evaluation.

All durations are derived from the parameter set so the MAC benchmarks and
the analytic overhead checks (§3's 59 µs-vs-20 µs example) use one source
of truth.
"""

from __future__ import annotations

from repro.core.ahdr import AHDR_SYMBOLS
from repro.mac.parameters import PhyMacParameters

__all__ = [
    "payload_airtime",
    "single_frame_airtime",
    "ack_airtime",
    "aggregated_frame_airtime",
    "carpool_frame_airtime",
    "sequential_ack_airtime",
    "sig_symbol_time",
]


def payload_airtime(payload_bytes: int, params: PhyMacParameters) -> float:
    """Time to send ``payload_bytes`` at the data rate (no headers)."""
    if payload_bytes < 0:
        raise ValueError("negative payload")
    return 8 * payload_bytes / params.phy_rate_bps


def sig_symbol_time(params: PhyMacParameters) -> float:
    """One OFDM symbol — each Carpool subframe's SIG costs this."""
    return params.symbol_duration


def single_frame_airtime(payload_bytes: int, params: PhyMacParameters) -> float:
    """A legacy single-destination frame: PLCP header + payload."""
    return params.plcp_header_time + payload_airtime(payload_bytes, params)


def ack_airtime(params: PhyMacParameters) -> float:
    """An ACK frame: PLCP header + 14 bytes at the basic rate."""
    return params.plcp_header_time + 8 * params.ack_bytes / params.basic_rate_bps


def aggregated_frame_airtime(total_payload_bytes: int, params: PhyMacParameters) -> float:
    """An A-MPDU-style aggregate: one PLCP header, merged payload.

    Per-MPDU delimiters (4 B each) are folded into the payload byte count
    by the caller.
    """
    return single_frame_airtime(total_payload_bytes, params)


def carpool_frame_airtime(subframe_bytes: list, params: PhyMacParameters) -> float:
    """A Carpool frame: PLCP preamble + A-HDR + per-subframe (SIG + payload)."""
    if not subframe_bytes:
        raise ValueError("need at least one subframe")
    duration = params.plcp_header_time
    duration += AHDR_SYMBOLS * params.symbol_duration
    for nbytes in subframe_bytes:
        duration += sig_symbol_time(params) + payload_airtime(nbytes, params)
    return duration


def sequential_ack_airtime(num_receivers: int, params: PhyMacParameters) -> float:
    """N × (SIFS + ACK): the tail of every Carpool exchange (Eq. 1)."""
    if num_receivers < 1:
        raise ValueError("need at least one receiver")
    return num_receivers * (params.sifs + ack_airtime(params))
