"""BlockAck: selective acknowledgement of aggregated MPDUs.

802.11n acknowledges an A-MPDU with a compressed BlockAck — a starting
sequence number plus a 64-bit bitmap, one bit per MPDU of the window.
Carpool inherits the mechanism per subframe: each receiver's sequential
ACK slot can carry a BlockAck for the MPDUs inside its subframe, so only
the genuinely lost MPDUs retransmit.

This module provides the receiver-side scoreboard, the BlockAck record
itself (with byte-exact serialisation), and the transmitter-side
reconciliation that decides what to retransmit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["BLOCK_ACK_WINDOW", "BlockAck", "ReorderScoreboard", "missing_sequences"]

BLOCK_ACK_WINDOW = 64
_SEQ_MODULO = 1 << 12


@dataclass(frozen=True)
class BlockAck:
    """A compressed BlockAck: start sequence + 64-bit bitmap."""

    start_sequence: int
    bitmap: int

    def __post_init__(self):
        if not 0 <= self.start_sequence < _SEQ_MODULO:
            raise ValueError("sequence numbers are 12 bits")
        if not 0 <= self.bitmap < (1 << BLOCK_ACK_WINDOW):
            raise ValueError("bitmap is 64 bits")

    def acknowledges(self, sequence: int) -> bool:
        """Is ``sequence`` inside the window and marked received?"""
        offset = (sequence - self.start_sequence) % _SEQ_MODULO
        if offset >= BLOCK_ACK_WINDOW:
            return False
        return bool((self.bitmap >> offset) & 1)

    def to_bytes(self) -> bytes:
        """Starting-sequence control (2 B) + bitmap (8 B), little endian."""
        return struct.pack("<HQ", self.start_sequence << 4, self.bitmap)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BlockAck":
        """Parse the 10-byte compressed BlockAck body."""
        if len(raw) != 10:
            raise ValueError("a compressed BlockAck body is 10 bytes")
        ssc, bitmap = struct.unpack("<HQ", raw)
        return cls(start_sequence=ssc >> 4, bitmap=bitmap)

    @property
    def received_count(self) -> int:
        """How many MPDUs of the window the bitmap acknowledges."""
        return bin(self.bitmap).count("1")


class ReorderScoreboard:
    """Receiver-side record of which MPDUs of a window arrived intact."""

    def __init__(self, start_sequence: int):
        if not 0 <= start_sequence < _SEQ_MODULO:
            raise ValueError("sequence numbers are 12 bits")
        self.start_sequence = start_sequence
        self._received: set = set()

    def mark_received(self, sequence: int) -> None:
        """Record one FCS-clean MPDU; out-of-window sequences are ignored
        (they belong to a different originator window)."""
        offset = (sequence - self.start_sequence) % _SEQ_MODULO
        if offset < BLOCK_ACK_WINDOW:
            self._received.add(offset)

    def to_block_ack(self) -> BlockAck:
        """Freeze the scoreboard into a transmittable BlockAck."""
        bitmap = 0
        for offset in self._received:
            bitmap |= 1 << offset
        return BlockAck(start_sequence=self.start_sequence, bitmap=bitmap)


def missing_sequences(block_ack: BlockAck, sent_sequences: list) -> list:
    """Transmitter-side reconciliation: which of the sent MPDUs to resend.

    Preserves the original send order, as retransmissions re-enter the
    head of the aggregate.
    """
    return [seq for seq in sent_sequences if not block_ack.acknowledges(seq)]
