"""MAC nodes: queue + DCF backoff state.

Every node — the AP and each STA — contends for the medium with the
standard binary-exponential-backoff DCF. WiFox's downlink prioritisation is
modelled with a per-node contention-window scale the scheduler adjusts from
the AP's backlog (§7.2.1's WiFox baseline).
"""

from __future__ import annotations

from collections import deque

from repro.mac.frames import MacFrame
from repro.mac.parameters import PhyMacParameters
from repro.util.rng import RngStream

__all__ = ["Node"]


class Node:
    """One contending station (or the AP).

    Attributes:
        name: Unique node name ("ap", "sta3", ...).
        is_ap: Access points run the downlink aggregation protocol.
        queue: FIFO of pending :class:`MacFrame`.
        backoff_slots: Remaining backoff (None = not drawn yet).
        cw: Current contention window.
        cw_scale: Multiplier on CW bounds (<1 prioritises this node).
    """

    def __init__(self, name: str, params: PhyMacParameters, rng: RngStream,
                 is_ap: bool = False):
        self.name = name
        self.is_ap = is_ap
        self.params = params
        self.queue: deque = deque()
        self.backoff_slots: int | None = None
        self.cw = self._scaled(params.cw_min)
        self.cw_scale = 1.0
        self._rng = rng

    def _scaled(self, cw: int) -> int:
        return max(1, int(cw * getattr(self, "cw_scale", 1.0)))

    # Queue management -------------------------------------------------------

    def enqueue(self, frame: MacFrame) -> None:
        """Append a frame to the transmit queue."""
        self.queue.append(frame)

    def requeue_front(self, frames: list) -> None:
        """Put failed frames back at the head (retransmission priority)."""
        for frame in reversed(frames):
            self.queue.appendleft(frame)

    @property
    def backlogged(self) -> bool:
        """Does this node have anything to send?"""
        return bool(self.queue)

    @property
    def pending_bytes(self) -> int:
        """Total bytes queued."""
        return sum(f.size_bytes for f in self.queue)

    def oldest_arrival(self) -> float | None:
        """Arrival time of the oldest queued frame (None if empty)."""
        if not self.queue:
            return None
        return min(f.arrival_time for f in self.queue)

    # DCF backoff -------------------------------------------------------------

    def ensure_backoff(self) -> int:
        """Draw a backoff if none is pending; return the current counter."""
        if self.backoff_slots is None:
            self.backoff_slots = int(self._rng.integers(0, self.cw + 1))
        return self.backoff_slots

    def consume_slots(self, slots: int) -> None:
        """Count down ``slots`` idle backoff slots."""
        if self.backoff_slots is None:
            raise RuntimeError(f"{self.name}: no backoff drawn")
        if slots > self.backoff_slots:
            raise ValueError("consuming more slots than remain")
        self.backoff_slots -= slots

    def on_success(self) -> None:
        """Reset contention state after a successful exchange."""
        self.cw = max(1, int(self.params.cw_min * self.cw_scale))
        self.backoff_slots = None

    def on_collision(self) -> None:
        """Binary exponential backoff after a collision."""
        self.cw = min(2 * self.cw + 1, max(1, int(self.params.cw_max * self.cw_scale)))
        self.backoff_slots = None

    def set_priority_scale(self, scale: float) -> None:
        """Adjust CW scaling (WiFox-style AP prioritisation)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.cw_scale = scale
        self.cw = max(1, int(self.params.cw_min * scale))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name}, queue={len(self.queue)}, cw={self.cw})"
