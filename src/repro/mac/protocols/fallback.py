"""Graceful degradation: Carpool that demotes struggling receivers.

Carpool's aggregate is a single point of failure under impairments its
design never anticipated — a corrupted A-HDR loses *every* subframe, a
bursty channel kills long aggregates disproportionately, and a lost
sequential ACK can desynchronise the whole ACK train. When that happens a
receiver is better served by plain 802.11 unicast, which carries none of
that shared-fate risk.

:class:`FallbackCarpoolProtocol` watches per-receiver subframe outcomes
through the engine's :meth:`on_subframe_result` feedback hook. When a
receiver's recent failure rate crosses ``failure_threshold`` the AP
*demotes* it to legacy unicast (exactly the coexistence path
:class:`CarpoolMixedProtocol` already implements for never-capable
stations). After ``cooldown`` seconds the receiver is re-promoted and
Carpool service resumes — if the impairment persists it will simply be
demoted again, giving a bounded duty cycle of probing.
"""

from __future__ import annotations

from collections import deque

from repro.mac.protocols.carpool_mixed import CarpoolMixedProtocol
from repro.obs.trace import active_recorder, metrics

__all__ = ["FallbackCarpoolProtocol"]


class FallbackCarpoolProtocol(CarpoolMixedProtocol):
    """Carpool with per-receiver demotion to 802.11 unicast.

    Args:
        params: PHY/MAC constants.
        limits: Aggregation stop conditions.
        failure_threshold: Demote when the windowed subframe failure rate
            exceeds this.
        window: Number of recent subframe outcomes tracked per receiver.
        min_attempts: Outcomes required before the rate is trusted (avoids
            demoting on one unlucky subframe).
        fail_fast: Demote immediately after this many *consecutive*
            failures, regardless of the windowed rate. This is the path
            that reacts to outages: a receiver with a long success history
            would otherwise need ``window/2`` failures to move the rate,
            by which time the frame has burned its whole retry budget.
        cooldown: Seconds a demoted receiver stays on unicast before the
            AP probes Carpool again.
        carpool_stations: Optional capability whitelist; empty means every
            station negotiated Carpool (the pure-Carpool deployment).
    """

    name = "Carpool-fallback"

    def __init__(self, params, limits=None, failure_threshold=0.5,
                 window=20, min_attempts=4, fail_fast=3, cooldown=0.25,
                 carpool_stations=()):
        super().__init__(params, limits, carpool_stations=carpool_stations)
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_attempts = min_attempts
        self.fail_fast = fail_fast
        self.cooldown = cooldown
        self._history: dict = {}  # destination -> deque of bool outcomes
        self._streak: dict = {}  # destination -> consecutive failures
        self._demoted: dict = {}  # destination -> demotion time
        self.demotions = 0
        self.repromotions = 0

    # --- capability gate ---------------------------------------------------

    def is_carpool(self, destination: str) -> bool:
        """Capable AND not currently demoted."""
        if self.carpool_stations and destination not in self.carpool_stations:
            return False
        return destination not in self._demoted

    # --- engine feedback ---------------------------------------------------

    def on_subframe_result(self, destination: str, ok: bool, now: float) -> None:
        """Track outcomes; demote a receiver whose failure rate spikes."""
        if destination in self._demoted:
            return  # already on unicast; the cooldown owns re-promotion
        history = self._history.get(destination)
        if history is None:
            history = self._history[destination] = deque(maxlen=self.window)
        history.append(ok)
        streak = 0 if ok else self._streak.get(destination, 0) + 1
        self._streak[destination] = streak
        if self.fail_fast and streak >= self.fail_fast:
            self._demote(destination, now)
            return
        if len(history) < self.min_attempts:
            return
        failure_rate = 1.0 - sum(history) / len(history)
        if failure_rate > self.failure_threshold:
            self._demote(destination, now)

    def _demote(self, destination: str, now: float) -> None:
        self._demoted[destination] = now
        self.demotions += 1
        self._history[destination].clear()
        self._streak[destination] = 0
        # Transitions are rare (bounded by the cooldown duty cycle), so the
        # ambient lookup here costs nothing on the per-subframe path.
        metrics().counter("mac.demotions").inc()
        rec = active_recorder()
        if rec is not None:
            rec.emit("mac", "demote", t=round(now, 9), node=destination,
                     demoted=len(self._demoted))

    def _maybe_repromote(self, now: float) -> None:
        expired = [d for d, t in self._demoted.items() if now - t >= self.cooldown]
        for destination in expired:
            del self._demoted[destination]
            self.repromotions += 1
            metrics().counter("mac.repromotions").inc()
            rec = active_recorder()
            if rec is not None:
                rec.emit("mac", "repromote", t=round(now, 9),
                         node=destination, demoted=len(self._demoted))

    def ready_time(self, node, now: float):
        """Re-promotion piggybacks on the scheduler's polling."""
        if node.is_ap and self._demoted:
            self._maybe_repromote(now)
        return super().ready_time(node, now)

    def demoted_stations(self) -> set:
        """Receivers currently served by plain 802.11 unicast."""
        return set(self._demoted)
