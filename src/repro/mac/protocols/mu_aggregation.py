"""MU-Aggregation: multi-receiver MAC aggregation *without* RTE.

The multi-user frame-aggregation proposals the paper compares against
([8], [13]): frames for several receivers share one transmission, with
each receiver indicated by an explicit per-subframe MAC header, and the
receivers decode with standard (preamble-only) channel estimation.

Two costs separate it from Carpool (§7.2.1):
* explicit addressing — each subframe carries a full MAC header
  (destination + length + sequence control ≈ 14 bytes) instead of sharing
  one 48-bit Bloom filter;
* no RTE — the long aggregated frame suffers the BER bias, so tail
  subframes fail disproportionately often and get retransmitted.
"""

from __future__ import annotations

from repro.mac.protocols.multi_receiver import MultiReceiverProtocol

__all__ = ["MuAggregationProtocol", "SUBFRAME_MAC_HEADER_BYTES"]

SUBFRAME_MAC_HEADER_BYTES = 14


class MuAggregationProtocol(MultiReceiverProtocol):
    """The "MU-Aggregation" baseline of Figs. 15–16."""

    name = "MU-Aggregation"
    uses_rte = False
    header_symbols = 0
    subframe_header_symbols = 0
    subframe_header_bytes = SUBFRAME_MAC_HEADER_BYTES
    # One BlockAck window shared across all receivers of the aggregate.
    max_total_frames = 64
