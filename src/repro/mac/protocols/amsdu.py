"""A-MSDU: MAC service-unit aggregation with a single FCS.

The other 802.11n aggregation flavour (§9): sub-MSDUs for one receiver
share one MPDU and therefore one frame check sequence — a single symbol
error anywhere voids the *entire* aggregate, and everything retransmits.
The standard caps an A-MSDU at 7935 bytes.

This is the scheme whose goodput the paper's §7.2.2 text describes as
"tapering off quickly": without per-MPDU CRCs, the BER bias of long
frames under standard channel estimation is fatal rather than partial.
"""

from __future__ import annotations

from repro.mac.airtime import ack_airtime
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.protocols.base import Protocol, SubframeTx, Transmission

__all__ = ["AmsduProtocol", "AMSDU_MAX_BYTES", "SUBHEADER_BYTES"]

AMSDU_MAX_BYTES = 7935
SUBHEADER_BYTES = 14  # per-MSDU subframe header (DA/SA/length)


class AmsduProtocol(Protocol):
    """Single-receiver aggregation, one CRC for the whole aggregate."""

    name = "A-MSDU"
    uses_rte = False

    def build(self, node: Node, now: float) -> Transmission:
        """Aggregate the head destination's frames under a single FCS."""
        if not node.is_ap:
            return self.build_uplink(node, now)
        head: MacFrame = node.queue[0]
        destination = head.destination
        chosen = []
        total = 0
        remaining = []
        for frame in node.queue:
            cost = frame.size_bytes + SUBHEADER_BYTES
            if frame.destination == destination and (
                not chosen or total + cost <= AMSDU_MAX_BYTES
            ):
                chosen.append(frame)
                total += cost
            else:
                remaining.append(frame)
        node.queue.clear()
        node.queue.extend(remaining)

        # One subframe = one CRC: all frames live or die together.
        n_symbols = self.payload_symbols(total, destination)
        airtime = self.params.plcp_header_time + n_symbols * self.params.symbol_duration
        return Transmission(
            node_name=node.name,
            airtime=airtime,
            ack_time=self.params.sifs + ack_airtime(self.params),
            subframes=[
                SubframeTx(
                    destination=destination,
                    frames=chosen,
                    start_symbol=0,
                    n_symbols=n_symbols,
                    rte=False,
                )
            ],
        )
