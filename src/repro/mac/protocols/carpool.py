"""Carpool: multi-receiver PHY aggregation with RTE and sequential ACK."""

from __future__ import annotations

from repro.bloom.coded import false_positive_ratio
from repro.core.ahdr import AHDR_NUM_HASHES, AHDR_SYMBOLS, MAX_RECEIVERS
from repro.mac.protocols.multi_receiver import MultiReceiverProtocol

__all__ = ["CarpoolProtocol"]


class CarpoolProtocol(MultiReceiverProtocol):
    """The paper's scheme.

    * Frame-level header: the 2-symbol Bloom-filter A-HDR.
    * Per-subframe header: one SIG symbol (length + MCS).
    * Receivers decode with real-time channel estimation, so long
      aggregates stay reliable (the ``rte=True`` flag routes subframe
      error draws to the flat RTE curve).
    * ACKs return sequentially, one slot per receiver.
    """

    name = "Carpool"
    uses_rte = True
    header_symbols = AHDR_SYMBOLS
    subframe_header_symbols = 1  # each subframe's SIG
    subframe_header_bytes = 0
    overhear_symbols = AHDR_SYMBOLS  # bystanders read the A-HDR, then drop
    overhear_false_positive = false_positive_ratio(AHDR_NUM_HASHES, MAX_RECEIVERS)
