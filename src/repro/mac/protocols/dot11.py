"""Plain IEEE 802.11: one frame, one receiver, one ACK per channel access."""

from __future__ import annotations

from repro.mac.node import Node
from repro.mac.protocols.base import Protocol, Transmission

__all__ = ["Dot11Protocol"]


class Dot11Protocol(Protocol):
    """The unaggregated baseline ("802.11" in Figs. 15–17)."""

    name = "802.11"
    uses_rte = False

    def build(self, node: Node, now: float) -> Transmission:
        """One frame, one receiver, one ACK."""
        return self.build_single(node)
