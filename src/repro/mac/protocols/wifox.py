"""WiFox: adaptive downlink prioritisation (no aggregation).

WiFox (Gupta, Min & Rhee, CoNEXT'12) attacks the traffic-asymmetry problem
purely by scheduling: when the AP's queue builds up, the AP contends with
higher priority (a smaller contention window), draining the downlink
backlog faster. It changes neither the PHY nor the frame format — each
channel access still carries one frame for one receiver — which is why it
beats plain 802.11 in the paper's Fig. 15 but stays well below the
aggregation schemes, and below Carpool in particular.

We model the priority as a contention-window scale stepped down as the AP
backlog grows, re-evaluated before every access — the queue-length-driven
adaptive priority the WiFox paper describes.
"""

from __future__ import annotations

from repro.mac.node import Node
from repro.mac.protocols.base import Transmission
from repro.mac.protocols.dot11 import Dot11Protocol

__all__ = ["WifoxProtocol"]


class WifoxProtocol(Dot11Protocol):
    """The "WiFox" baseline of Figs. 15–16."""

    name = "WiFox"
    uses_rte = False

    #: backlog (frames) → CW scale; deeper backlog, stronger priority.
    PRIORITY_STEPS = ((40, 0.125), (20, 0.25), (8, 0.5))

    def ready_time(self, node: Node, now: float) -> float | None:
        """Re-evaluate AP priority from its backlog before contending."""
        if node.is_ap:
            self._adapt_priority(node)
        return super().ready_time(node, now)

    def build(self, node: Node, now: float) -> Transmission:
        """Plain single-frame build, with the AP's priority refreshed."""
        if node.is_ap:
            self._adapt_priority(node)
        return super().build(node, now)

    def _adapt_priority(self, ap: Node) -> None:
        backlog = len(ap.queue)
        scale = 1.0
        for threshold, step_scale in self.PRIORITY_STEPS:
            if backlog >= threshold:
                scale = step_scale
                break
        if scale != ap.cw_scale:
            ap.set_priority_scale(scale)
