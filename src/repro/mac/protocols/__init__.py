"""Downlink transmission policies: the five schemes of the evaluation."""

from repro.mac.protocols.ampdu import AmpduProtocol
from repro.mac.protocols.amsdu import AmsduProtocol
from repro.mac.protocols.base import AggregationLimits, Protocol, SubframeTx, Transmission
from repro.mac.protocols.carpool import CarpoolProtocol
from repro.mac.protocols.dot11 import Dot11Protocol
from repro.mac.protocols.fallback import FallbackCarpoolProtocol
from repro.mac.protocols.mu_aggregation import MuAggregationProtocol
from repro.mac.protocols.multi_receiver import MultiReceiverProtocol, select_multi_receiver_batch
from repro.mac.protocols.wifox import WifoxProtocol

PROTOCOLS = {
    p.name: p
    for p in (Dot11Protocol, AmpduProtocol, AmsduProtocol, MuAggregationProtocol,
              WifoxProtocol, CarpoolProtocol, FallbackCarpoolProtocol)
}

__all__ = [
    "Protocol",
    "Transmission",
    "SubframeTx",
    "AggregationLimits",
    "Dot11Protocol",
    "AmpduProtocol",
    "AmsduProtocol",
    "MuAggregationProtocol",
    "MultiReceiverProtocol",
    "select_multi_receiver_batch",
    "WifoxProtocol",
    "CarpoolProtocol",
    "FallbackCarpoolProtocol",
    "PROTOCOLS",
]
