"""Shared machinery for multi-receiver aggregation (Carpool, MU-Aggregation).

Both schemes feed frames for several receivers into one PHY transmission
and collect sequential ACKs; they differ in header format and in whether
receivers decode with RTE.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.mac.airtime import ack_airtime
from repro.mac.node import Node
from repro.mac.parameters import PhyMacParameters
from repro.mac.protocols.base import AggregationLimits, Protocol, SubframeTx, Transmission

__all__ = ["select_multi_receiver_batch", "MultiReceiverProtocol"]


def default_selection_key(frame):
    """Delay-sensitive first, then FIFO — the §8 default priority rule."""
    return (not frame.delay_sensitive, frame.arrival_time, frame.frame_id)


def select_multi_receiver_batch(node: Node, limits: AggregationLimits,
                                max_total_frames: int | None = None,
                                selection_key=default_selection_key) -> "OrderedDict":
    """Pop up to ``max_receivers`` destinations' worth of frames.

    Delay-sensitive frames first, then FIFO — the §8 priority rule. The
    first frame always ships so an oversized head can never wedge the
    queue. Per-subframe limits honour the 12-bit SIG LENGTH
    (``max_subframe_bytes``) and the per-receiver BlockAck window
    (``max_mpdus``); ``max_total_frames`` additionally caps the whole
    aggregate (MU-Aggregation shares one BlockAck window across receivers).
    Returns destination → [frames] in subframe order.
    """
    ordered = sorted(node.queue, key=selection_key)
    chosen: "OrderedDict[str, list]" = OrderedDict()
    per_destination_bytes: dict = {}
    total = 0
    count = 0
    taken = set()
    for frame in ordered:
        if max_total_frames is not None and count >= max_total_frames and chosen:
            break
        is_new = frame.destination not in chosen
        if is_new and len(chosen) >= limits.max_receivers:
            continue
        if chosen and total + frame.size_bytes > limits.max_frame_bytes:
            continue
        dest_bytes = per_destination_bytes.get(frame.destination, 0)
        if chosen and dest_bytes + frame.size_bytes > limits.max_subframe_bytes:
            continue
        if frame.destination in chosen and len(chosen[frame.destination]) >= limits.max_mpdus:
            continue
        chosen.setdefault(frame.destination, []).append(frame)
        per_destination_bytes[frame.destination] = dest_bytes + frame.size_bytes
        taken.add(frame.frame_id)
        total += frame.size_bytes
        count += 1
    kept = [f for f in node.queue if f.frame_id not in taken]
    node.queue.clear()
    node.queue.extend(kept)
    return chosen


class MultiReceiverProtocol(Protocol):
    """Base for schemes that aggregate across receivers.

    Subclasses set :attr:`uses_rte`, :attr:`header_symbols` (frame-level
    header, e.g. Carpool's 2-symbol A-HDR), :attr:`subframe_header_symbols`
    (per-subframe symbols, e.g. Carpool's SIG) and
    :attr:`subframe_header_bytes` (per-subframe byte overhead at the data
    rate, e.g. MU-Aggregation's explicit address headers).
    """

    header_symbols: int = 0
    subframe_header_symbols: int = 0
    subframe_header_bytes: int = 0
    wait_for_aggregation: bool = True
    #: Cap on frames per aggregate, across receivers (None = per-subframe
    #: limits only). MU-Aggregation shares one BlockAck window.
    max_total_frames: int | None = None

    def __init__(self, params: PhyMacParameters, limits: AggregationLimits | None = None,
                 rate_table=None):
        super().__init__(params, limits, rate_table)

    def ready_time(self, node: Node, now: float) -> float | None:
        """APs may hold back briefly to let the aggregate fill (§7.2)."""
        if not node.backlogged:
            return None
        if not node.is_ap or not self.wait_for_aggregation:
            return now
        if node.pending_bytes >= self.limits.max_frame_bytes:
            return now
        if len({f.destination for f in node.queue}) >= self.limits.max_receivers:
            return now
        deadline = node.oldest_arrival() + self.limits.max_latency
        return max(now, deadline) if deadline > now else now

    def selection_key(self, frame):
        """Frame-ordering hook; fairness-aware subclasses override this."""
        return default_selection_key(frame)

    def build(self, node: Node, now: float) -> Transmission:
        """Select a multi-receiver batch and lay it out as subframes."""
        if not node.is_ap:
            return self.build_uplink(node, now)
        batch = select_multi_receiver_batch(
            node, self.limits, self.max_total_frames, self.selection_key
        )
        subframes = []
        cursor = self.header_symbols
        for destination, frames in batch.items():
            cursor += self.subframe_header_symbols
            nbytes = sum(f.size_bytes for f in frames) + self.subframe_header_bytes
            n_symbols = self.payload_symbols(nbytes, destination)
            subframes.append(
                SubframeTx(
                    destination=destination,
                    frames=frames,
                    start_symbol=cursor,
                    n_symbols=n_symbols,
                    rte=self.uses_rte,
                )
            )
            cursor += n_symbols
        airtime = self.params.plcp_header_time + cursor * self.params.symbol_duration
        num_receivers = len(subframes)
        ack_time = num_receivers * (self.params.sifs + ack_airtime(self.params))
        return Transmission(
            node_name=node.name, airtime=airtime, ack_time=ack_time, subframes=subframes
        )
