"""Carpool in a mixed network: Carpool STAs + legacy STAs on one AP (§4.3).

The AP speaks Carpool only to stations that negotiated it at association
time, and plain 802.11 to everyone else. The oldest pending frame decides
the mode of the next access: if it belongs to a legacy station the AP
sends a single legacy frame; otherwise it builds a Carpool aggregate over
the Carpool-capable backlog (legacy frames stay queued — their turn comes
when one of them becomes the oldest).
"""

from __future__ import annotations

from repro.mac.node import Node
from repro.mac.protocols.base import Transmission
from repro.mac.protocols.carpool import CarpoolProtocol

__all__ = ["CarpoolMixedProtocol"]


class CarpoolMixedProtocol(CarpoolProtocol):
    """Carpool for capable stations, 802.11 unicast for legacy ones."""

    name = "Carpool-mixed"

    def __init__(self, params, limits=None, carpool_stations=()):
        super().__init__(params, limits)
        self.carpool_stations = set(carpool_stations)

    def is_carpool(self, destination: str) -> bool:
        """Does ``destination`` currently speak Carpool?

        The single capability gate: subclasses (e.g. the fault-hardened
        fallback protocol) override this to demote degraded receivers.
        """
        return destination in self.carpool_stations

    def _oldest_is_legacy(self, node: Node) -> bool:
        oldest = min(node.queue, key=lambda f: (not f.delay_sensitive, f.arrival_time))
        return not self.is_carpool(oldest.destination)

    def ready_time(self, node: Node, now: float):
        """Legacy-headed queues contend immediately; Carpool backlogs may wait."""
        if not node.backlogged:
            return None
        if not node.is_ap:
            return now
        if self._oldest_is_legacy(node):
            return now  # legacy frames never wait for aggregation
        return super().ready_time(node, now)

    def build(self, node: Node, now: float) -> Transmission:
        """Serve the oldest frame's population: legacy unicast or Carpool batch."""
        if not node.is_ap:
            return self.build_uplink(node, now)
        if self._oldest_is_legacy(node):
            # Pop the oldest legacy frame specifically, then ship it alone.
            oldest = min(
                node.queue, key=lambda f: (not f.delay_sensitive, f.arrival_time)
            )
            node.queue.remove(oldest)
            node.queue.appendleft(oldest)
            return self.build_single(node)
        # Aggregate only the Carpool-capable backlog: stash legacy frames
        # aside so the selector never sees them.
        legacy = [f for f in node.queue if not self.is_carpool(f.destination)]
        capable = [f for f in node.queue if self.is_carpool(f.destination)]
        node.queue.clear()
        node.queue.extend(capable)
        try:
            transmission = super().build(node, now)
        finally:
            node.queue.extend(legacy)
        return transmission
