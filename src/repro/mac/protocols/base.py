"""Protocol interface for the MAC simulator.

A protocol decides what a node transmits when it wins the channel: how
many queued frames ride in the PHY frame, for how many receivers, what the
header/ACK overheads are, and whether the receiver decodes with RTE. The
engine handles contention, collisions and error draws.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.mac.airtime import ack_airtime
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.parameters import PhyMacParameters

__all__ = ["SubframeTx", "Transmission", "Protocol", "AggregationLimits"]


@dataclass(frozen=True)
class AggregationLimits:
    """Aggregation stop conditions (mirrors §7.2's policy knobs).

    ``max_subframe_bytes`` reflects Carpool's 12-bit SIG LENGTH field: one
    subframe carries at most 4095 bytes (§4.1's frame structure).
    ``max_mpdus`` is 802.11n's BlockAck window: an A-MPDU carries at most
    64 MPDUs regardless of byte budget.
    """

    max_frame_bytes: int = 65535
    max_latency: float = 0.010
    max_receivers: int = 8
    max_subframe_bytes: int = 4095
    max_mpdus: int = 64


@dataclass
class SubframeTx:
    """One per-receiver slice of a PHY transmission."""

    destination: str
    frames: list
    start_symbol: int
    n_symbols: int
    rte: bool

    @property
    def payload_bytes(self) -> int:
        """Payload bytes this subframe carries."""
        return sum(f.size_bytes for f in self.frames)


@dataclass
class Transmission:
    """A fully-specified channel occupation: data frame + ACK sequence."""

    node_name: str
    airtime: float
    ack_time: float
    subframes: list = field(default_factory=list)

    @property
    def total_duration(self) -> float:
        """Data airtime plus the ACK tail."""
        return self.airtime + self.ack_time

    @property
    def total_payload_bytes(self) -> int:
        """Payload bytes across all subframes."""
        return sum(sf.payload_bytes for sf in self.subframes)


class Protocol(ABC):
    """Downlink transmission policy of one evaluated scheme."""

    name: str = "base"
    uses_rte: bool = False
    #: OFDM symbols a non-addressed station must receive beyond the PLCP
    #: header before it can drop the frame (Carpool: the 2-symbol A-HDR).
    overhear_symbols: int = 0
    #: Probability that a non-addressed station decodes one irrelevant
    #: subframe anyway (Carpool: the A-HDR false-positive ratio, §8).
    overhear_false_positive: float = 0.0

    def __init__(self, params: PhyMacParameters, limits: AggregationLimits | None = None,
                 rate_table=None):
        self.params = params
        self.limits = limits or AggregationLimits()
        #: Optional per-station rate adaptation (repro.mac.rate_control.
        #: RateTable); stations without an SNR report use the default rate.
        self.rate_table = rate_table

    # --- engine hooks -------------------------------------------------------

    def ready_time(self, node: Node, now: float) -> float | None:
        """Earliest time this node should contend; None if nothing queued.

        Default: contend as soon as anything is queued. Aggregating
        protocols may override to wait for the aggregation deadline.
        """
        return now if node.backlogged else None

    @abstractmethod
    def build(self, node: Node, now: float) -> Transmission:
        """Pop frames from ``node`` and shape one transmission."""

    def on_subframe_result(self, destination: str, ok: bool, now: float) -> None:
        """Feedback hook: the engine reports each AP subframe's ACK outcome.

        Default: ignore. Adaptive protocols (e.g. the fault-hardened
        fallback Carpool) track per-receiver failure rates here.
        """

    # --- shared helpers ------------------------------------------------------

    def rate_for(self, destination: str | None) -> float:
        """Data rate (bit/s) toward ``destination``.

        With a rate table, the station's MCS scales the configured PHY
        rate (the table's top rate, QAM64-3/4, maps to ``phy_rate_bps``);
        without one — or for unreported stations — the default applies.
        """
        if self.rate_table is None or destination is None:
            return self.params.phy_rate_bps
        if self.rate_table.snr_of(destination) is None:
            return self.params.phy_rate_bps
        mcs = self.rate_table.mcs_for(destination)
        return self.params.phy_rate_bps * mcs.rate_mbps / 54.0

    def payload_symbols(self, nbytes: int, destination: str | None = None) -> int:
        """OFDM symbols needed for ``nbytes`` at the destination's rate."""
        bits_per_symbol = self.rate_for(destination) * self.params.symbol_duration
        return max(1, math.ceil(8 * nbytes / bits_per_symbol))

    def build_single(self, node: Node, rte: bool = False) -> Transmission:
        """A plain 802.11 single-frame exchange (uplink default)."""
        frame: MacFrame = node.queue.popleft()
        n_symbols = self.payload_symbols(frame.size_bytes, frame.destination)
        airtime = self.params.plcp_header_time + n_symbols * self.params.symbol_duration
        return Transmission(
            node_name=node.name,
            airtime=airtime,
            ack_time=self.params.sifs + ack_airtime(self.params),
            subframes=[
                SubframeTx(
                    destination=frame.destination,
                    frames=[frame],
                    start_symbol=0,
                    n_symbols=n_symbols,
                    rte=rte,
                )
            ],
        )

    def build_uplink(self, node: Node, now: float) -> Transmission:
        """STAs always send single legacy frames in every scheme."""
        return self.build_single(node)
