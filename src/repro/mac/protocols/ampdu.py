"""A-MPDU: IEEE 802.11n MAC aggregation for a single receiver.

The AP merges the queued frames of *one* destination — the head of the
FIFO — into one PHY frame (up to 64 KB / the latency deadline), answered by
a single block ACK. Each MPDU has its own delimiter+CRC, so decode failures
are per-MPDU and only failed MPDUs are retransmitted.

The single-receiver restriction is the scheme's weakness in large audience
environments: with many STAs each holding a few small frames, aggregates
stay short and every other STA's traffic waits for its own channel access
(§7.2.2).
"""

from __future__ import annotations

from repro.mac.airtime import ack_airtime
from repro.mac.frames import MacFrame
from repro.mac.node import Node
from repro.mac.protocols.base import Protocol, SubframeTx, Transmission

__all__ = ["AmpduProtocol", "MPDU_DELIMITER_BYTES"]

MPDU_DELIMITER_BYTES = 4


class AmpduProtocol(Protocol):
    """The "A-MPDU" baseline of Figs. 15–17."""

    name = "A-MPDU"
    uses_rte = False

    def build(self, node: Node, now: float) -> Transmission:
        """Aggregate the head destination's frames into one A-MPDU."""
        if not node.is_ap:
            return self.build_uplink(node, now)
        head: MacFrame = node.queue[0]
        destination = head.destination
        chosen = []
        total = 0
        remaining = []
        for frame in node.queue:
            cost = frame.size_bytes + MPDU_DELIMITER_BYTES
            if (
                frame.destination == destination
                and len(chosen) < self.limits.max_mpdus
                and (not chosen or total + cost <= self.limits.max_frame_bytes)
            ):
                chosen.append(frame)
                total += cost
            else:
                remaining.append(frame)
        node.queue.clear()
        node.queue.extend(remaining)

        subframes = []
        cursor = 0
        for frame in chosen:
            n_symbols = self.payload_symbols(
                frame.size_bytes + MPDU_DELIMITER_BYTES, destination
            )
            subframes.append(
                SubframeTx(
                    destination=destination,
                    frames=[frame],
                    start_symbol=cursor,
                    n_symbols=n_symbols,
                    rte=False,
                )
            )
            cursor += n_symbols
        airtime = self.params.plcp_header_time + cursor * self.params.symbol_duration
        return Transmission(
            node_name=node.name,
            airtime=airtime,
            ack_time=self.params.sifs + ack_airtime(self.params),
            subframes=subframes,
        )
