"""Fast system-level MAC sweeps: goodput/airtime vs receivers × payload.

The paper's headline results (Figs. 10–14) are sweeps over exactly these
axes — receiver count, payload size, loss regime — each point a
Monte-Carlo average of full CSMA/CA simulations driven by a trace-driven
error model. This module is the fast path those sweeps run on, combining
the three layers the rest of this package provides:

* **calibration caching** — every point calls
  :func:`~repro.analysis.calibration.calibrate_error_model`, exactly as a
  real sweep whose points may differ in SNR/MCS must; points sharing a
  configuration hit the :mod:`repro.runtime.cache` instead of re-running
  the PHY chain (``cache=False`` reproduces the old cost).
* **batched simulation** — trials run the engine's vectorised
  :meth:`~repro.mac.engine.WlanSimulator.simulate_batch` draw path
  (``batched=False`` keeps the scalar parity oracle). Metrics are
  bit-identical either way at equal seeds.
* **persistent parallel trials** — the whole receivers×payload grid
  flattens into *one* :func:`repro.runtime.run_trials` call with
  ``granularity=config.trials``: each chunk carries whole cells (tiles)
  of trials, the per-cell error models ship once per worker as a
  ``shared=`` payload, and the worker pool is reused across sweeps. The
  per-cell seeds are derived exactly as the old cell-at-a-time fan-out
  derived them, so flattening changes wall time only, never results.

``repro.runtime.bench.run_mac_bench`` times this sweep both ways
(batched+cached vs scalar+uncached) and asserts the results agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.trials import run_trials, shared_payload
from repro.util.rng import derive_seed

__all__ = ["SweepConfig", "SweepCell", "goodput_airtime_sweep"]


@dataclass(frozen=True)
class SweepConfig:
    """One receivers×payload sweep specification.

    ``receiver_counts`` and ``payload_bytes`` span the grid; every cell
    runs ``trials`` independent simulations of ``duration`` seconds and
    averages the per-run metrics. ``calibration_*`` size the per-point
    PHY calibration (small defaults keep the uncached leg affordable).
    """

    receiver_counts: tuple = (2, 4, 8)
    payload_bytes: tuple = (256, 1024, 4095)
    protocol: str = "Carpool"
    duration: float = 2.0
    trials: int = 3
    seed: int = 0
    mcs_name: str = "QAM64-3/4"
    calibration_payload: int = 1000
    calibration_trials: int = 4
    batched: bool = True
    cache: bool = True


@dataclass
class SweepCell:
    """Averaged metrics of one (receivers, payload) grid point."""

    num_receivers: int
    payload_bytes: int
    goodput_bps: float
    useful_goodput_bps: float
    airtime_fraction: float
    mean_delay: float
    retransmitted_subframes: float
    trials: int
    per_trial_goodput: list = field(default_factory=list)


def _sweep_trial(trial_index, rng, num_receivers, payload_bytes, config, error_model):
    """One cell trial: a full CBR downlink run at a derived seed.

    Module-level (pickles into pool workers). The seed comes from the
    trial's own RNG, so results are identical for any worker count or
    chunking, and paired across batched/scalar legs.
    """
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import CbrScenario

    scenario = CbrScenario(
        num_stations=num_receivers,
        num_aps=1,
        duration=config.duration,
        seed=int(rng.integers(0, 2**31 - 1)),
        frame_bytes=payload_bytes,
        with_background=False,
        error_model=error_model,
        batched=config.batched,
    )
    result = scenario.run(PROTOCOLS[config.protocol])
    return (
        result.measured_ap_goodput_bps,
        result.measured_ap_useful_goodput_bps,
        result.channel_busy_fraction,
        result.downlink_mean_delay,
        result.retransmitted_subframes,
    )


def _cell_seed(config: SweepConfig, num_receivers: int, payload: int) -> int:
    """The root seed of one grid cell — same derivation the old
    cell-at-a-time fan-out used, so flattened sweeps reproduce it."""
    return derive_seed(config.seed, "mac-sweep",
                       f"r{num_receivers}", f"p{payload}")


def _sweep_flat_trial(trial_index, rng, config):
    """One trial of the flattened receivers×payload grid.

    ``trial_index`` addresses (cell, repeat) in row-major order; the cell
    specs (receivers, payload, error model, cell seed) come from the
    run's shared payload. The per-trial RNG is re-derived from the *cell*
    seed — ``SeedSequence(cell_seed).spawn(trials)[repeat]`` — exactly as
    a standalone per-cell ``run_trials`` would hand it out, so the
    flattened sweep is bit-identical to the historical one. The flat
    run's own ``rng`` goes unused for the same reason.
    """
    cells = shared_payload()["cells"]
    cell_index, repeat = divmod(trial_index, config.trials)
    num_receivers, payload, model, cell_seed = cells[cell_index]
    cell_rng = np.random.default_rng(
        np.random.SeedSequence(cell_seed).spawn(config.trials)[repeat])
    return _sweep_trial(repeat, cell_rng, num_receivers, payload, config, model)


def goodput_airtime_sweep(
    config: SweepConfig = SweepConfig(),
    n_workers: int | None = 1,
    chunk_size: int | str | None = None,
) -> list:
    """Run the receivers×payload grid; one :class:`SweepCell` per point.

    Every point re-derives its error model through the calibration cache
    (the uncached leg of the bench re-runs the PHY chain per point — the
    cost this subsystem removes), then the whole grid runs as one
    flattened :func:`run_trials` call with ``granularity=config.trials``:
    chunks carry whole cells, never fragments of one. Cell results are
    deterministic in ``config.seed`` for any ``n_workers`` /
    ``chunk_size`` (pass ``"auto"`` to size chunks from measured IPC
    cost).
    """
    from repro.analysis.calibration import calibrate_error_model

    specs = []
    for num_receivers in config.receiver_counts:
        for payload in config.payload_bytes:
            # Per-point calibration, like a sweep whose points vary in
            # SNR/MCS; identical points are cache hits when enabled.
            model = calibrate_error_model(
                mcs_name=config.mcs_name,
                payload_bytes=config.calibration_payload,
                trials=config.calibration_trials,
                cache=config.cache,
            )
            specs.append((num_receivers, payload, model,
                          _cell_seed(config, num_receivers, payload)))
    outcomes = run_trials(
        _sweep_flat_trial,
        len(specs) * config.trials,
        seed=config.seed,
        n_workers=n_workers,
        chunk_size=chunk_size,
        args=(config,),
        shared={"cells": specs},
        granularity=config.trials,
    )
    cells = []
    for index, (num_receivers, payload, _model, _seed) in enumerate(specs):
        tile = outcomes[index * config.trials:(index + 1) * config.trials]
        goodputs = [o[0] for o in tile]
        cells.append(SweepCell(
            num_receivers=num_receivers,
            payload_bytes=payload,
            goodput_bps=sum(goodputs) / len(goodputs),
            useful_goodput_bps=sum(o[1] for o in tile) / len(tile),
            airtime_fraction=sum(o[2] for o in tile) / len(tile),
            mean_delay=sum(o[3] for o in tile) / len(tile),
            retransmitted_subframes=sum(o[4] for o in tile) / len(tile),
            trials=config.trials,
            per_trial_goodput=goodputs,
        ))
    return cells
