"""Fast system-level MAC sweeps: goodput/airtime vs receivers × payload.

The paper's headline results (Figs. 10–14) are sweeps over exactly these
axes — receiver count, payload size, loss regime — each point a
Monte-Carlo average of full CSMA/CA simulations driven by a trace-driven
error model. This module is the fast path those sweeps run on, combining
the three layers the rest of this package provides:

* **calibration caching** — every point calls
  :func:`~repro.analysis.calibration.calibrate_error_model`, exactly as a
  real sweep whose points may differ in SNR/MCS must; points sharing a
  configuration hit the :mod:`repro.runtime.cache` instead of re-running
  the PHY chain (``cache=False`` reproduces the old cost).
* **batched simulation** — trials run the engine's vectorised
  :meth:`~repro.mac.engine.WlanSimulator.simulate_batch` draw path
  (``batched=False`` keeps the scalar parity oracle). Metrics are
  bit-identical either way at equal seeds.
* **persistent parallel trials** — cells fan out through
  :func:`repro.runtime.run_trials`, which reuses worker pools across
  cells instead of respawning per call.

``repro.runtime.bench.run_mac_bench`` times this sweep both ways
(batched+cached vs scalar+uncached) and asserts the results agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.trials import run_trials
from repro.util.rng import derive_seed

__all__ = ["SweepConfig", "SweepCell", "goodput_airtime_sweep"]


@dataclass(frozen=True)
class SweepConfig:
    """One receivers×payload sweep specification.

    ``receiver_counts`` and ``payload_bytes`` span the grid; every cell
    runs ``trials`` independent simulations of ``duration`` seconds and
    averages the per-run metrics. ``calibration_*`` size the per-point
    PHY calibration (small defaults keep the uncached leg affordable).
    """

    receiver_counts: tuple = (2, 4, 8)
    payload_bytes: tuple = (256, 1024, 4095)
    protocol: str = "Carpool"
    duration: float = 2.0
    trials: int = 3
    seed: int = 0
    mcs_name: str = "QAM64-3/4"
    calibration_payload: int = 1000
    calibration_trials: int = 4
    batched: bool = True
    cache: bool = True


@dataclass
class SweepCell:
    """Averaged metrics of one (receivers, payload) grid point."""

    num_receivers: int
    payload_bytes: int
    goodput_bps: float
    useful_goodput_bps: float
    airtime_fraction: float
    mean_delay: float
    retransmitted_subframes: float
    trials: int
    per_trial_goodput: list = field(default_factory=list)


def _sweep_trial(trial_index, rng, num_receivers, payload_bytes, config, error_model):
    """One cell trial: a full CBR downlink run at a derived seed.

    Module-level (pickles into pool workers). The seed comes from the
    trial's own RNG, so results are identical for any worker count or
    chunking, and paired across batched/scalar legs.
    """
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import CbrScenario

    scenario = CbrScenario(
        num_stations=num_receivers,
        num_aps=1,
        duration=config.duration,
        seed=int(rng.integers(0, 2**31 - 1)),
        frame_bytes=payload_bytes,
        with_background=False,
        error_model=error_model,
        batched=config.batched,
    )
    result = scenario.run(PROTOCOLS[config.protocol])
    return (
        result.measured_ap_goodput_bps,
        result.measured_ap_useful_goodput_bps,
        result.channel_busy_fraction,
        result.downlink_mean_delay,
        result.retransmitted_subframes,
    )


def goodput_airtime_sweep(
    config: SweepConfig = SweepConfig(),
    n_workers: int | None = 1,
) -> list:
    """Run the receivers×payload grid; one :class:`SweepCell` per point.

    Every point re-derives its error model through the calibration cache
    (the uncached leg of the bench re-runs the PHY chain per point — the
    cost this subsystem removes). Cell trials are deterministic in
    ``config.seed`` for any ``n_workers``.
    """
    from repro.analysis.calibration import calibrate_error_model

    cells = []
    for num_receivers in config.receiver_counts:
        for payload in config.payload_bytes:
            # Per-point calibration, like a sweep whose points vary in
            # SNR/MCS; identical points are cache hits when enabled.
            model = calibrate_error_model(
                mcs_name=config.mcs_name,
                payload_bytes=config.calibration_payload,
                trials=config.calibration_trials,
                cache=config.cache,
            )
            outcomes = run_trials(
                _sweep_trial,
                config.trials,
                seed=derive_seed(config.seed, "mac-sweep",
                                 f"r{num_receivers}", f"p{payload}"),
                n_workers=n_workers,
                args=(num_receivers, payload, config, model),
            )
            goodputs = [o[0] for o in outcomes]
            cells.append(SweepCell(
                num_receivers=num_receivers,
                payload_bytes=payload,
                goodput_bps=sum(goodputs) / len(goodputs),
                useful_goodput_bps=sum(o[1] for o in outcomes) / len(outcomes),
                airtime_fraction=sum(o[2] for o in outcomes) / len(outcomes),
                mean_delay=sum(o[3] for o in outcomes) / len(outcomes),
                retransmitted_subframes=sum(o[4] for o in outcomes) / len(outcomes),
                trials=config.trials,
                per_trial_goodput=goodputs,
            ))
    return cells
