"""The Network Allocation Vector: virtual carrier sensing (§4.2).

Every 802.11 node keeps a NAV counter: frames it overhears carry a
Duration field reserving the medium; while the counter runs, the medium
counts as busy regardless of energy detection. Carpool's sequential-ACK
design is implemented entirely through this mechanism: the data frame
reserves the whole ACK train (Eq. 1), each receiver self-defers by its
slot (Eq. 2), and each ACK re-advertises the remaining train.

:class:`NavCounter` is the per-node state machine; `simulate_ack_train`
drives one data-plus-ACKs exchange through real NAV updates and verifies
nothing overlaps — the executable form of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sequential_ack import AckTiming, SequentialAckPlan

__all__ = ["NavCounter", "simulate_ack_train"]


class NavCounter:
    """One node's NAV: medium reservations learned from overheard frames."""

    def __init__(self):
        self._until = 0.0

    def update(self, now: float, duration: float) -> None:
        """Process an overheard Duration field.

        Per the standard, the NAV only moves *forward*: a shorter
        reservation never truncates a longer one already in force.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        candidate = now + duration
        if candidate > self._until:
            self._until = candidate

    def busy(self, now: float) -> bool:
        """Virtual carrier sense: is the medium reserved at ``now``?"""
        return now < self._until

    def idle_at(self) -> float:
        """When the current reservation expires."""
        return self._until

    def reset(self) -> None:
        """Clear any reservation."""
        self._until = 0.0


@dataclass
class _Event:
    time: float
    kind: str
    who: str


@dataclass
class AckTrainResult:
    """Outcome of one simulated data + sequential-ACK exchange."""

    events: list = field(default_factory=list)
    overlaps: int = 0
    bystander_blocked_until: float = 0.0


def simulate_ack_train(num_receivers: int, payload_duration: float,
                       timing: AckTiming) -> AckTrainResult:
    """Run one Carpool exchange through real NAV bookkeeping.

    A transmitter sends the data frame with NAV_data; each receiver
    defers by its NAV_i and replies in turn with NAV_{N−j+1}; a bystander
    node tracks its NAV from everything it overhears. Returns the event
    log, any ACK overlaps (must be zero), and how long the bystander's
    virtual carrier sense stayed busy (must cover the whole train).
    """
    plan = SequentialAckPlan(num_receivers, timing)
    bystander = NavCounter()
    result = AckTrainResult()

    # Data frame: reserves until the end of the ACK train (Eq. 1).
    data_end = payload_duration
    bystander.update(0.0, payload_duration + plan.nav_data(0.0))
    result.events.append(_Event(0.0, "data-start", "ap"))
    result.events.append(_Event(data_end, "data-end", "ap"))

    previous_end = None
    for position in range(num_receivers):
        start = data_end + plan.ack_start_time(position)
        end = data_end + plan.ack_end_time(position)
        if previous_end is not None and start < previous_end:
            result.overlaps += 1
        previous_end = end
        # Each ACK carries the NAV for the remaining train.
        bystander.update(start, (end - start) + plan.ack_nav(position))
        result.events.append(_Event(start, "ack-start", f"sta{position}"))
        result.events.append(_Event(end, "ack-end", f"sta{position}"))

    result.bystander_blocked_until = bystander.idle_at()
    return result
