"""Ready-made evaluation scenarios (the §7.2 setups).

Each scenario assembles the topology (two APs sharing one collision
domain, N STAs per AP), the workload, and the trace-driven error model,
and runs any of the five protocols over it — so every MAC benchmark and
example drives the exact same machinery with only the protocol swapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mac.engine import AP_NAME, WlanSimulator
from repro.mac.error_model import DEFAULT_ERROR_MODEL
from repro.mac.parameters import DEFAULT_PARAMETERS, PhyMacParameters
from repro.mac.protocols.base import AggregationLimits
from repro.traffic.trace_models import SIGCOMM08, TraceModel
from repro.traffic.voip import BradyModel
from repro.util.rng import RngStream

# The arrival generators are imported lazily inside build_arrivals() to
# keep `import repro.traffic` → `repro.mac.frames` → `repro.mac` (this
# module) from forming an import cycle; trace_models is safe (no mac
# dependency).

__all__ = ["ScenarioResult", "VoipScenario", "CbrScenario", "EVALUATION_VOIP_MODEL"]

# The evaluation's VoIP load: 96 kbit/s peak with a high activity factor, so
# offered downlink load grows ≈ 0.086·N Mbit/s and crosses the baselines'
# saturation point inside the paper's 10–30 STA sweep.
EVALUATION_VOIP_MODEL = BradyModel(mean_on=9.0, mean_off=1.0)


@dataclass
class ScenarioResult:
    """What a benchmark reports for one (scenario, protocol) pair.

    ``measured_ap_useful_goodput_bps`` counts only frames delivered within
    the scenario's latency bound — the goodput a deadline-driven (VoIP)
    application actually experiences, and the quantity the paper's goodput
    plots respond to.
    """

    protocol: str
    num_stations: int
    measured_ap_goodput_bps: float
    measured_ap_useful_goodput_bps: float
    total_downlink_goodput_bps: float
    downlink_mean_delay: float
    downlink_p95_delay: float
    collisions: int
    transmissions: int
    retransmitted_subframes: int
    dropped_frames: int
    channel_busy_fraction: float
    #: Destination → delivered payload bytes; feeds per-station fairness
    #: accounting (e.g. deployment-wide Jain index in ``repro.net``).
    delivered_bytes_by_destination: dict = field(default_factory=dict)
    #: Fallback-protocol state transitions (0 for protocols without a
    #: demote/re-promote cycle) — deterministic simulation outputs, so
    #: they ride the result rather than the metrics registry.
    demotions: int = 0
    repromotions: int = 0


def _ap_station_names(ap_index: int, count: int) -> list:
    prefix = "" if ap_index == 0 else f"b{ap_index}_"
    return [f"{prefix}sta{i}" for i in range(count)]


def _ap_name(ap_index: int) -> str:
    return AP_NAME if ap_index == 0 else f"ap{ap_index}"


@dataclass
class VoipScenario:
    """Fig. 15/16: VoIP downlink per STA, optional uplink + background.

    Args:
        num_stations: STAs associated with *each* AP.
        num_aps: Co-channel APs (the paper's setup has two).
        duration: Simulated seconds.
        voip_model: Brady ON/OFF parameters.
        include_uplink: Conversational uplink VoIP from every STA.
        with_background: Inject SIGCOMM'08 uplink TCP/UDP (Fig. 16).
        limits: Aggregation stop conditions.
    """

    num_stations: int
    num_aps: int = 2
    duration: float = 15.0
    seed: int = 42
    voip_model: BradyModel = field(default_factory=lambda: EVALUATION_VOIP_MODEL)
    include_uplink: bool = True
    with_background: bool = False
    background_model: TraceModel = SIGCOMM08
    limits: AggregationLimits = field(default_factory=AggregationLimits)
    params: PhyMacParameters = DEFAULT_PARAMETERS
    error_model: object = DEFAULT_ERROR_MODEL
    #: VoIP playout deadline: frames later than this are useless.
    latency_bound: float = 0.4
    #: Optional :class:`repro.faults.FaultPlan` applied to every run.
    fault_plan: object = None
    #: Timestamp-based sequential-ACK matching (see WlanSimulator).
    sequential_ack_recovery: bool = False
    #: Vectorised subframe error draws (bit-identical metrics; see
    #: WlanSimulator.simulate_batch).
    batched: bool = False

    def build_arrivals(self) -> tuple:
        """Returns (arrivals, all_station_names)."""
        from repro.traffic.background import background_uplink_arrivals
        from repro.traffic.flows import merge_arrivals
        from repro.traffic.voip import voip_downlink_arrivals, voip_uplink_arrivals

        rng = RngStream(self.seed)
        streams = []
        all_stations = []
        for ap_index in range(self.num_aps):
            stations = _ap_station_names(ap_index, self.num_stations)
            all_stations.extend(stations)
            ap = _ap_name(ap_index)
            streams.append(
                voip_downlink_arrivals(
                    stations, self.duration, rng.child(f"down{ap_index}"),
                    self.voip_model, ap_name=ap,
                )
            )
            if self.include_uplink:
                streams.append(
                    voip_uplink_arrivals(
                        stations, self.duration, rng.child(f"up{ap_index}"),
                        self.voip_model, ap_name=ap,
                    )
                )
            if self.with_background:
                streams.append(
                    background_uplink_arrivals(
                        stations, self.duration, rng.child(f"bg{ap_index}"),
                        self.background_model, ap_name=ap,
                    )
                )
        return merge_arrivals(*streams), all_stations

    def run(self, protocol_cls) -> ScenarioResult:
        """Run one protocol over this scenario."""
        arrivals, stations = self.build_arrivals()
        protocol = protocol_cls(self.params, self.limits)
        sim = WlanSimulator(
            protocol,
            num_stations=len(stations),
            arrivals=arrivals,
            params=self.params,
            error_model=self.error_model,
            rng=RngStream(self.seed).child("sim"),
            num_aps=self.num_aps,
            station_names=stations,
            faults=self.fault_plan,
            sequential_ack_recovery=self.sequential_ack_recovery,
            batched=self.batched,
        )
        summary = sim.run(self.duration)
        return ScenarioResult(
            protocol=protocol.name,
            num_stations=self.num_stations,
            measured_ap_goodput_bps=sim.metrics.goodput_of_source(AP_NAME, self.duration),
            measured_ap_useful_goodput_bps=sim.metrics.goodput_of_source(
                AP_NAME, self.duration, latency_bound=self.latency_bound
            ),
            total_downlink_goodput_bps=summary.downlink_goodput_bps,
            downlink_mean_delay=summary.downlink_mean_delay,
            downlink_p95_delay=summary.downlink_p95_delay,
            collisions=summary.collisions,
            transmissions=summary.transmissions,
            retransmitted_subframes=summary.retransmitted_subframes,
            dropped_frames=summary.dropped_frames,
            channel_busy_fraction=summary.channel_busy_fraction,
            delivered_bytes_by_destination=sim.metrics.delivered_bytes_by_destination(),
            demotions=int(getattr(protocol, "demotions", 0)),
            repromotions=int(getattr(protocol, "repromotions", 0)),
        )


@dataclass
class CbrScenario:
    """Fig. 17: fixed-size downlink flows with a latency requirement.

    The latency requirement doubles as the aggregation deadline: the AP
    flushes its aggregate when the oldest frame has waited that long.
    """

    num_stations: int = 30
    num_aps: int = 2
    duration: float = 15.0
    seed: int = 42
    frame_bytes: int = 120
    frames_per_second: float = 100.0
    latency_requirement: float = 0.010
    with_background: bool = True
    background_model: TraceModel = SIGCOMM08
    #: Uplink load multiplier — Fig. 17 runs in the saturated busy-network
    #: regime where background traffic keeps STAs contending continuously.
    background_intensity: float = 3.0
    params: PhyMacParameters = DEFAULT_PARAMETERS
    error_model: object = DEFAULT_ERROR_MODEL
    max_frame_bytes: int = 65535
    #: Optional :class:`repro.faults.FaultPlan` applied to every run.
    fault_plan: object = None
    #: Timestamp-based sequential-ACK matching (see WlanSimulator).
    sequential_ack_recovery: bool = False
    #: Vectorised subframe error draws (bit-identical metrics; see
    #: WlanSimulator.simulate_batch).
    batched: bool = False

    def build_arrivals(self) -> tuple:
        """Returns (arrivals, all_station_names)."""
        from repro.traffic.background import background_uplink_arrivals
        from repro.traffic.flows import cbr_downlink_arrivals, merge_arrivals

        rng = RngStream(self.seed)
        streams = []
        all_stations = []
        for ap_index in range(self.num_aps):
            stations = _ap_station_names(ap_index, self.num_stations)
            all_stations.extend(stations)
            ap = _ap_name(ap_index)
            streams.append(
                cbr_downlink_arrivals(
                    stations, self.duration, self.frame_bytes,
                    self.frames_per_second, rng.child(f"cbr{ap_index}"), ap_name=ap,
                )
            )
            if self.with_background:
                streams.append(
                    background_uplink_arrivals(
                        stations, self.duration, rng.child(f"bg{ap_index}"),
                        self.background_model, ap_name=ap,
                        intensity=self.background_intensity,
                    )
                )
        return merge_arrivals(*streams), all_stations

    def run(self, protocol_cls) -> ScenarioResult:
        """Run one protocol over this scenario with the latency requirement as aggregation deadline."""
        arrivals, stations = self.build_arrivals()
        limits = AggregationLimits(
            max_frame_bytes=self.max_frame_bytes,
            max_latency=self.latency_requirement,
        )
        protocol = protocol_cls(self.params, limits)
        sim = WlanSimulator(
            protocol,
            num_stations=len(stations),
            arrivals=arrivals,
            params=self.params,
            error_model=self.error_model,
            rng=RngStream(self.seed).child("sim"),
            num_aps=self.num_aps,
            station_names=stations,
            faults=self.fault_plan,
            sequential_ack_recovery=self.sequential_ack_recovery,
            batched=self.batched,
        )
        summary = sim.run(self.duration)
        return ScenarioResult(
            protocol=protocol.name,
            num_stations=self.num_stations,
            measured_ap_goodput_bps=sim.metrics.goodput_of_source(AP_NAME, self.duration),
            measured_ap_useful_goodput_bps=sim.metrics.goodput_of_source(
                AP_NAME, self.duration, latency_bound=self.latency_requirement
            ),
            total_downlink_goodput_bps=summary.downlink_goodput_bps,
            downlink_mean_delay=summary.downlink_mean_delay,
            downlink_p95_delay=summary.downlink_p95_delay,
            collisions=summary.collisions,
            transmissions=summary.transmissions,
            retransmitted_subframes=summary.retransmitted_subframes,
            dropped_frames=summary.dropped_frames,
            channel_busy_fraction=summary.channel_busy_fraction,
            delivered_bytes_by_destination=sim.metrics.delivered_bytes_by_destination(),
            demotions=int(getattr(protocol, "demotions", 0)),
            repromotions=int(getattr(protocol, "repromotions", 0)),
        )
