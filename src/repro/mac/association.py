"""Association handshake: how stations negotiate Carpool (§4.3).

"STAs indicate their supported protocols, including Carpool and versions
of legacy protocols, to APs during association." This module implements
that exchange with byte-exact management frames:

    Beacon         — AP advertises its capability set (Carpool bit).
    AssocRequest   — STA submits its own capability set.
    AssocResponse  — AP grants an AID and echoes the *negotiated* set
                     (the intersection; Carpool runs only if both ends
                     support it).

:class:`ApAssociationService` is the AP-side handler that feeds the
:class:`~repro.core.compat.AssociationTable` the Carpool protocol stack
consults when aggregating.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.compat import AssociationTable, Capability
from repro.core.mac_address import MacAddress
from repro.phy.crc import crc32

__all__ = [
    "Beacon",
    "AssocRequest",
    "AssocResponse",
    "ApAssociationService",
    "negotiate",
    "STATUS_SUCCESS",
    "STATUS_REFUSED",
]

_FC_BEACON = 0x0080
_FC_ASSOC_REQ = 0x0000
_FC_ASSOC_RESP = 0x0010

STATUS_SUCCESS = 0
STATUS_REFUSED = 1


def _caps_to_int(caps: Capability) -> int:
    return caps.value


def _caps_from_int(value: int) -> Capability:
    return Capability(value)


def _with_fcs(body: bytes) -> bytes:
    return body + struct.pack("<I", crc32(body))


def _check_fcs(raw: bytes, expected_fc: int) -> bytes:
    if len(raw) < 6:
        raise ValueError("frame too short")
    body, fcs = raw[:-4], struct.unpack("<I", raw[-4:])[0]
    if crc32(body) != fcs:
        raise ValueError("FCS mismatch")
    (fc,) = struct.unpack("<H", body[:2])
    if fc != expected_fc:
        raise ValueError("unexpected frame type")
    return body


@dataclass(frozen=True)
class Beacon:
    """The AP's periodic advertisement."""

    bssid: MacAddress
    capabilities: Capability

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<H", _FC_BEACON) + bytes(self.bssid)
        body += struct.pack("<H", _caps_to_int(self.capabilities))
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Beacon":
        """Parse and FCS-verify."""
        body = _check_fcs(raw, _FC_BEACON)
        return cls(
            bssid=MacAddress(body[2:8]),
            capabilities=_caps_from_int(struct.unpack("<H", body[8:10])[0]),
        )


@dataclass(frozen=True)
class AssocRequest:
    """A station's association request with its capability set."""

    station: MacAddress
    capabilities: Capability

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<H", _FC_ASSOC_REQ) + bytes(self.station)
        body += struct.pack("<H", _caps_to_int(self.capabilities))
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AssocRequest":
        """Parse and FCS-verify."""
        body = _check_fcs(raw, _FC_ASSOC_REQ)
        return cls(
            station=MacAddress(body[2:8]),
            capabilities=_caps_from_int(struct.unpack("<H", body[8:10])[0]),
        )


@dataclass(frozen=True)
class AssocResponse:
    """The AP's answer: status, AID and the negotiated capabilities."""

    station: MacAddress
    status: int
    association_id: int
    negotiated: Capability

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<H", _FC_ASSOC_RESP) + bytes(self.station)
        body += struct.pack("<HHH", self.status, self.association_id,
                            _caps_to_int(self.negotiated))
        return _with_fcs(body)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AssocResponse":
        """Parse and FCS-verify."""
        body = _check_fcs(raw, _FC_ASSOC_RESP)
        status, aid, caps = struct.unpack("<HHH", body[8:14])
        return cls(
            station=MacAddress(body[2:8]),
            status=status,
            association_id=aid,
            negotiated=_caps_from_int(caps),
        )


def negotiate(ap_caps: Capability, sta_caps: Capability) -> Capability:
    """The protocol set both ends run: the capability intersection."""
    return ap_caps & sta_caps


class ApAssociationService:
    """AP-side association handling, backed by the §4.3 table."""

    def __init__(self, bssid: MacAddress, capabilities: Capability,
                 table: AssociationTable | None = None):
        self.bssid = bssid
        self.capabilities = capabilities
        self.table = table or AssociationTable()
        self._next_aid = 1

    def beacon(self) -> Beacon:
        """The AP's capability advertisement."""
        return Beacon(bssid=self.bssid, capabilities=self.capabilities)

    def handle_request(self, raw: bytes) -> AssocResponse:
        """Process an AssocRequest; on success the station is recorded
        with the *negotiated* capability set."""
        request = AssocRequest.from_bytes(raw)
        negotiated = negotiate(self.capabilities, request.capabilities)
        if not negotiated & (Capability.DOT11A | Capability.DOT11N):
            return AssocResponse(
                station=request.station, status=STATUS_REFUSED,
                association_id=0, negotiated=Capability(0),
            )
        self.table.associate(request.station, negotiated)
        response = AssocResponse(
            station=request.station, status=STATUS_SUCCESS,
            association_id=self._next_aid, negotiated=negotiated,
        )
        self._next_aid += 1
        return response

    def disassociate(self, station: MacAddress) -> None:
        """Forget a station that roamed away (idempotent).

        Roaming re-association (``repro.net.roaming``) moves a station
        between APs: the new AP runs the full :meth:`handle_request`
        handshake while the old one drops its table entry here.
        """
        self.table.disassociate(station)

    def carpool_capable_stations(self) -> list:
        """Associated stations that negotiated Carpool."""
        return self.table.carpool_stations()
