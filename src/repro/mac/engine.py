"""The event-driven CSMA/CA simulator.

One AP and N STAs share a single collision domain (all nodes within
carrier-sense range, as in the paper's §7.2.1 setup). The engine advances
time between three kinds of events — traffic arrivals, backoff expiries and
busy periods — using standard slot-jumping DCF simulation:

* every backlogged node holds a backoff counter drawn from its CW;
* the medium stays idle for DIFS + k slots where k is the smallest counter;
* the node(s) reaching zero transmit; simultaneous zeros collide;
* after any busy period, a fresh DIFS precedes the next countdown.

Frame-decoding outcomes come from the pluggable error model (trace-driven
from this package's PHY); failed subframes are retransmitted with priority,
frames exceeding the retry limit are dropped.
"""

from __future__ import annotations

import math
from copy import copy

import numpy as np

from repro.mac.airtime import ack_airtime, single_frame_airtime
from repro.mac.error_model import DEFAULT_ERROR_MODEL
from repro.mac.frames import Arrival, MacFrame
from repro.mac.metrics import MetricsCollector, MetricsSummary
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS, PhyMacParameters
from repro.mac.protocols.base import Protocol
from repro.obs.metrics import NULL_INSTRUMENT
from repro.obs.trace import active_recorder, metrics
from repro.util.rng import RngStream

__all__ = ["WlanSimulator", "AP_NAME"]

AP_NAME = "ap"

_OBS_COUNTER_NAMES = ("transmissions", "collisions", "ahdr_miss",
                      "ahdr_false_match", "ack_lost", "ack_desync")
_DISABLED_COUNTERS = {name: NULL_INSTRUMENT for name in _OBS_COUNTER_NAMES}

_RTS_BYTES = 20
_CTS_BYTES = 14


class _BatchedErrorDraws:
    """Block-buffered, vectorised subframe error draws (the batched path).

    The scalar engine asks the error model for one Bernoulli outcome per
    subframe: one probability computation plus one scalar ``uniform()``
    per call. This helper pre-draws uniforms from the *same* error stream
    in blocks and compares whole transmissions' worth of them against the
    model's memoised exact probabilities in one vector operation.

    Bit-exactness: a block ``uniform(size=k)`` reads the identical stream
    values as ``k`` sequential scalar draws, each subframe still consumes
    exactly one uniform in subframe order, and the probabilities are the
    exact floats the scalar path computes — so every outcome matches the
    scalar engine's. The unconsumed tail of the final block is invisible:
    the ``errors`` child stream feeds nothing else.
    """

    def __init__(self, error_model, rng: RngStream, block: int = 1024):
        self._model = error_model
        self._rng = rng
        self._block = block
        self._buffer: list = []
        self._pos = 0

    def _take(self, n: int) -> list:
        # Fast path: serve straight out of the current block (Python
        # floats via tolist — cheaper than boxing np.float64 per element).
        end = self._pos + n
        if end <= len(self._buffer):
            out = self._buffer[self._pos:end]
            self._pos = end
            return out
        out = []
        while len(out) < n:
            if self._pos >= len(self._buffer):
                self._buffer = np.atleast_1d(
                    self._rng.uniform(size=self._block)).tolist()
                self._pos = 0
            take = min(n - len(out), len(self._buffer) - self._pos)
            out.extend(self._buffer[self._pos:self._pos + take])
            self._pos += take
        return out

    def draw(self, subframes: list) -> list:
        """Decode outcomes for one transmission's subframes (ordered)."""
        if not subframes:
            return []
        prob = self._model.subframe_success_probability
        return [
            u < prob(sf.start_symbol, sf.n_symbols, sf.rte)
            for u, sf in zip(self._take(len(subframes)), subframes)
        ]


class WlanSimulator:
    """Runs one scenario: a protocol, a station population, a workload.

    Args:
        protocol: Downlink transmission policy (one of the five schemes).
        num_stations: STAs associated with the AP.
        arrivals: Time-sorted iterable of :class:`Arrival`. Downlink
            arrivals name the AP as source; uplink arrivals name a STA.
        params: PHY/MAC constants (Table 2 defaults).
        error_model: Subframe decode-failure model.
        rng: Root random stream (backoff and error draws use children).
        use_rts_cts: Prepend an RTS/CTS(-sequence) exchange to every
            downlink transmission (§4.2's hidden-terminal mechanism).
        faults: Optional :class:`repro.faults.FaultPlan` (or a pre-built
            :class:`repro.faults.mac.MacFaultInjector`). MAC faults draw
            from a dedicated ``faults`` child stream — with ``None`` the
            engine performs zero extra draws and runs bit-identically to
            the pre-fault-framework simulator.
        sequential_ack_recovery: Harden the AP's sequential-ACK handling:
            with timestamp-based slot matching a lost ACK costs only its
            own subframe; without it (the naive ordinal matcher) the first
            unexplained ACK gap desynchronises the rest of the sequence
            and every later subframe is conservatively retransmitted.
        batched: Vectorise subframe error draws (block-buffered uniforms
            compared against memoised exact probabilities) — bit-identical
            metrics to the scalar path at a fraction of the cost. Requires
            an error model whose ``draw_subframe`` is a uniform-vs-
            ``subframe_success_probability`` comparison (both built-in
            models are); models without that method fall back to scalar
            draws. :meth:`simulate_batch` enables this after construction.
    """

    def __init__(
        self,
        protocol: Protocol,
        num_stations: int,
        arrivals,
        params: PhyMacParameters = DEFAULT_PARAMETERS,
        error_model=DEFAULT_ERROR_MODEL,
        rng: RngStream | None = None,
        use_rts_cts: bool = False,
        num_aps: int = 1,
        station_names: list | None = None,
        hidden_pairs: set | None = None,
        faults=None,
        sequential_ack_recovery: bool = False,
        batched: bool = False,
    ):
        if num_stations < 1 and not station_names:
            raise ValueError("need at least one station")
        if num_aps < 1:
            raise ValueError("need at least one AP")
        self.protocol = protocol
        self.params = params
        self.error_model = error_model
        self.use_rts_cts = use_rts_cts
        rng = rng or RngStream(seed=0)
        self._error_rng = rng.child("errors")
        # AP names: "ap", "ap1", "ap2", … — the first is the measured AP;
        # extras model co-channel APs sharing the collision domain (the
        # paper's §7.2.1 setup has two APs in carrier-sense range).
        ap_names = [AP_NAME] + [f"ap{i}" for i in range(1, num_aps)]
        self.aps = {
            name: Node(name, params, rng.child(f"backoff-{name}"), is_ap=True)
            for name in ap_names
        }
        self.ap = self.aps[AP_NAME]
        if station_names is None:
            station_names = [f"sta{i}" for i in range(num_stations)]
        self.stations = {
            name: Node(name, params, rng.child(f"backoff-{name}"))
            for name in station_names
        }
        self.nodes = {**self.aps, **self.stations}
        self._arrivals = iter(arrivals)
        self._pending_arrival: Arrival | None = None
        self.metrics = MetricsCollector()
        self.now = 0.0
        self._difs_pending = False
        self._consecutive_failures: dict = {}
        # Hidden-terminal topology: unordered name pairs that cannot carrier-
        # sense each other. Everyone else shares one collision domain.
        self._hidden: set = set()
        for pair in hidden_pairs or ():
            a, b = pair
            self._hidden.add(frozenset((a, b)))
        self._hidden_rng = rng.child("hidden")
        self.hidden_collisions = 0
        # Fault injection: a dedicated child stream, never shared with the
        # backoff/error/hidden streams above, so enabling a plan cannot
        # perturb the baseline trajectory of unaffected trials.
        self._faults = None
        self.sequential_ack_recovery = sequential_ack_recovery
        if faults is not None:
            from repro.faults.mac import MacFaultInjector

            if isinstance(faults, MacFaultInjector):
                self._faults = faults
            else:
                self._faults = MacFaultInjector(faults, rng.child("faults"))
        # Per-node radio airtime for the §8 energy analysis.
        self.airtime_by_node = {
            name: {"tx": 0.0, "rx": 0.0} for name in self.nodes
        }
        # Optional event timeline for debugging/teaching: call
        # enable_timeline() before run(); events land in self.timeline.
        self.timeline: list | None = None
        # Ambient obs hooks, looked up once per run() so disabled runs pay
        # a single None check per logged event.
        self._rec = None
        self._obs_counters = _DISABLED_COUNTERS
        # Batched error draws (see _BatchedErrorDraws): None = scalar oracle.
        self._batched_draws: _BatchedErrorDraws | None = None
        if batched:
            self.enable_batched_draws()

    def enable_batched_draws(self) -> None:
        """Switch subframe error draws to the vectorised batched path.

        Must be called before :meth:`run` (the two paths consume the error
        stream compatibly, but switching mid-run would strand buffered
        draws). Silently stays scalar for error models that don't expose
        ``subframe_success_probability``.
        """
        if hasattr(self.error_model, "subframe_success_probability"):
            self._batched_draws = _BatchedErrorDraws(self.error_model, self._error_rng)

    def simulate_batch(self, duration: float) -> MetricsSummary:
        """:meth:`run` with vectorised, pre-drawn subframe error outcomes.

        The batched path pre-draws blocks of uniforms from the same
        ``errors`` child stream the scalar path uses and resolves each
        transmission's subframes in one vector comparison — metrics are
        bit-identical to :meth:`run` (the scalar parity oracle) at every
        seed; the parity suite in ``tests/mac/test_engine_batch_parity.py``
        enforces this.
        """
        self.enable_batched_draws()
        return self.run(duration)

    # ------------------------------------------------------------------ #

    def enable_timeline(self) -> None:
        """Record (time, event, node, detail) tuples during run()."""
        self.timeline = []

    def _log(self, event: str, node: str, detail: str = "") -> None:
        if self.timeline is not None:
            self.timeline.append((self.now, event, node, detail))
        if self._rec is not None:
            self._rec.emit("mac", event, t=round(self.now, 9), node=node,
                           detail=detail)

    def run(self, duration: float) -> MetricsSummary:
        """Simulate ``duration`` seconds and return the metrics summary."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._rec = active_recorder()
        scope = metrics().scope("mac")
        self._obs_counters = {
            name: scope.counter(name) for name in _OBS_COUNTER_NAMES
        }
        while self.now < duration:
            self._inject_arrivals()
            ready, wake_time = self._ready_nodes()
            if not ready:
                next_time = self._next_event_time(wake_time)
                if next_time is None or next_time >= duration:
                    break
                self.now = max(self.now, next_time)
                continue
            self._contend(ready, duration)
        return self.metrics.summary(duration)

    # ------------------------------------------------------------------ #

    def _inject_arrivals(self) -> None:
        while True:
            arrival = self._peek_arrival()
            if arrival is None or arrival.time > self.now:
                return
            self._pop_arrival()
            node = self.nodes.get(arrival.source)
            if node is None:
                raise KeyError(f"arrival for unknown node {arrival.source!r}")
            node.enqueue(MacFrame.from_arrival(arrival))
            self.metrics.record_offered()
            self._log("arrival", node.name, f"{arrival.size_bytes} B")

    def _peek_arrival(self) -> Arrival | None:
        if self._pending_arrival is None:
            self._pending_arrival = next(self._arrivals, None)
        return self._pending_arrival

    def _pop_arrival(self) -> None:
        self._pending_arrival = None

    def _ready_nodes(self):
        """Nodes allowed to contend now, plus the earliest future wake time."""
        ready = []
        wake = None
        for node in self.nodes.values():
            t = self.protocol.ready_time(node, self.now)
            if t is None:
                continue
            if t <= self.now:
                ready.append(node)
            else:
                wake = t if wake is None else min(wake, t)
        return ready, wake

    def _next_event_time(self, wake_time):
        arrival = self._peek_arrival()
        candidates = [t for t in (wake_time, arrival.time if arrival else None) if t is not None]
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------ #

    def _contend(self, ready: list, duration: float) -> None:
        for node in ready:
            node.ensure_backoff()
        k = min(node.backoff_slots for node in ready)
        difs = self.params.difs if self._difs_pending else 0.0
        tx_start = self.now + difs + k * self.params.slot_time

        arrival = self._peek_arrival()
        if arrival is not None and arrival.time < tx_start:
            # An arrival lands mid-countdown: credit the elapsed idle slots
            # and re-enter with the new frame in its queue.
            idle = arrival.time - self.now - difs
            if idle >= 0:
                self._difs_pending = False
                elapsed_slots = min(k, int(idle // self.params.slot_time))
                for node in ready:
                    node.consume_slots(elapsed_slots)
            self.now = arrival.time
            return

        for node in ready:
            node.consume_slots(k)
        self.now = tx_start
        winners = [node for node in ready if node.backoff_slots == 0]
        if len(winners) > 1:
            self._collide(winners)
        else:
            self._transmit(winners[0])
        self._difs_pending = True

    # ------------------------------------------------------------------ #

    def _collide(self, winners: list) -> None:
        busy = max(self._estimate_airtime(node) for node in winners)
        self._obs_counters["collisions"].inc()
        self._log("collision", "+".join(sorted(n.name for n in winners)),
                  f"busy={busy * 1e6:.0f}us")
        self.metrics.record_collision(busy)
        for node in winners:
            failures = self._consecutive_failures.get(node.name, 0) + 1
            if failures > self.params.retry_limit and node.queue:
                dropped = node.queue.popleft()
                self.metrics.record_drop(dropped)
                self._consecutive_failures[node.name] = 0
                node.on_success()  # CW resets after a drop per the standard
            else:
                self._consecutive_failures[node.name] = failures
                node.on_collision()
        self.now += busy

    def _estimate_airtime(self, node: Node) -> float:
        """Airtime the node's next transmission would occupy (no side effects)."""
        saved_queue = copy(node.queue)
        try:
            transmission = self.protocol.build(node, self.now)
            return transmission.airtime
        finally:
            node.queue.clear()
            node.queue.extend(saved_queue)

    def _hidden_interferers(self, node: Node) -> list:
        if not self._hidden:
            return []
        return [
            other for other in self.nodes.values()
            if other is not node
            and other.backlogged
            and frozenset((node.name, other.name)) in self._hidden
        ]

    def _hidden_hit(self, interferers: list, vulnerable: float) -> Node | None:
        """Does a hidden node start transmitting inside the window?

        Each hidden backlogged node fires after roughly DIFS plus half its
        contention window (it cannot sense the victim, so it counts down
        freely); the chance of overlap scales with the window length.
        """
        for other in interferers:
            mean_access = self.params.difs + 0.5 * other.cw * self.params.slot_time
            probability = min(1.0, vulnerable / max(mean_access, 1e-9))
            if self._hidden_rng.uniform() < probability:
                return other
        return None

    def _transmit(self, node: Node) -> None:
        transmission = self.protocol.build(node, self.now)
        protected = self.use_rts_cts and node.is_ap
        overhead = self._rts_cts_overhead(len(transmission.subframes)) if protected else 0.0

        # Injected hidden-terminal window: interference the carrier-sense
        # (and RTS/CTS) machinery cannot suppress destroys the whole
        # exchange, like an unprotected hidden-node collision.
        if self._faults is not None and self._faults.hidden_window_hit(self.now):
            self.hidden_collisions += 1
            total = overhead + transmission.total_duration
            self._log("fault-hidden", node.name, f"busy={total * 1e6:.0f}us")
            self.metrics.record_collision(total)
            for _subframe in transmission.subframes:
                self.metrics.record_retransmission()
            self._requeue_transmission(node, transmission, count_retry=True)
            node.on_collision()
            self.now += total
            return

        interferers = self._hidden_interferers(node)
        if interferers:
            if protected:
                # Only the short RTS is vulnerable; a CTS sequence then
                # silences the hidden nodes (§4.2, Fig. 7).
                rts_time = single_frame_airtime(_RTS_BYTES, self.params)
                culprit = self._hidden_hit(interferers, rts_time)
                if culprit is not None:
                    self.hidden_collisions += 1
                    busy = rts_time + self.params.difs
                    self.metrics.record_collision(busy)
                    node.on_collision()
                    culprit.on_collision()
                    self._requeue_transmission(node, transmission)
                    self.now += busy
                    return
            else:
                culprit = self._hidden_hit(
                    interferers, overhead + transmission.airtime
                )
                if culprit is not None:
                    self.hidden_collisions += 1
                    total = overhead + transmission.total_duration
                    self.metrics.record_collision(total)
                    for subframe in transmission.subframes:
                        self.metrics.record_retransmission()
                    self._requeue_transmission(node, transmission, count_retry=True)
                    node.on_collision()
                    culprit.on_collision()
                    self.now += total
                    return

        # Injected RTS/CTS failure: a lost CTS aborts the exchange after
        # the RTS + one CTS slot's worth of airtime.
        if protected and self._faults is not None and self._faults.cts_lost(self.now):
            rts_time = single_frame_airtime(_RTS_BYTES, self.params)
            cts_time = self.params.plcp_header_time + 8 * _CTS_BYTES / self.params.basic_rate_bps
            busy = rts_time + self.params.sifs + cts_time + self.params.difs
            self._log("fault-cts-loss", node.name, f"busy={busy * 1e6:.0f}us")
            self.metrics.record_collision(busy)
            node.on_collision()
            self._requeue_transmission(node, transmission)
            self.now += busy
            return

        total = overhead + transmission.total_duration
        self.metrics.record_transmission(total)
        self._obs_counters["transmissions"].inc()
        self._log("transmit", node.name,
                  f"{len(transmission.subframes)} subframes, "
                  f"{transmission.total_payload_bytes} B")
        self._consecutive_failures[node.name] = 0
        self._account_airtime(node, transmission, overhead)

        data_end = self.now + overhead + transmission.airtime
        if self._batched_draws is not None:
            decoded = self._batched_draws.draw(transmission.subframes)
        else:
            decoded = [
                self.error_model.draw_subframe(
                    self._error_rng, subframe.start_symbol, subframe.n_symbols, subframe.rte
                )
                for subframe in transmission.subframes
            ]
        if self._faults is not None:
            decoded = self._apply_subframe_faults(transmission, decoded, overhead)
            acked = self._apply_ack_faults(transmission, decoded)
        else:
            acked = decoded

        failed_frames = []
        for subframe, ok, ack_ok in zip(transmission.subframes, decoded, acked):
            if ok:
                for frame in subframe.frames:
                    if not frame.delivered:
                        self.metrics.record_delivery(frame, data_end, source=node.name)
                        frame.delivered = True
            if ack_ok:
                continue
            # No (attributable) ACK: the AP must assume the subframe was
            # lost and retransmit — even if it was in fact delivered.
            self.metrics.record_retransmission()
            for frame in subframe.frames:
                frame.retries += 1
                if frame.retries > self.params.retry_limit:
                    if not frame.delivered:
                        self.metrics.record_drop(frame)
                else:
                    failed_frames.append(frame)
        if node.is_ap:
            for subframe, ack_ok in zip(transmission.subframes, acked):
                self.protocol.on_subframe_result(subframe.destination, ack_ok, self.now)
        node.requeue_front(failed_frames)
        if any(acked) or not transmission.subframes:
            node.on_success()
        else:
            node.on_collision()  # no ACK at all: double CW like a collision
        self.now += total

    def _apply_subframe_faults(self, transmission, decoded: list, overhead: float) -> list:
        """Overlay A-HDR corruption and bursty-loss outcomes on decode draws."""
        t_sym = self.params.symbol_duration
        plcp = self.params.plcp_header_time
        # Only Carpool-style aggregates carry an A-HDR (their subframes
        # decode with RTE); plain unicast / legacy frames are immune.
        ahdr_spec = None
        if any(sf.rte for sf in transmission.subframes):
            ahdr_spec = self._faults.ahdr_corrupted(self.now)
        outcomes = []
        data_start = self.now + overhead + plcp
        for subframe, ok in zip(transmission.subframes, decoded):
            if ok and ahdr_spec is not None and self._faults.ahdr_subframe_missed(ahdr_spec):
                # The intended STA never finds its subframe in the
                # corrupted header — an undecoded subframe from the AP's
                # point of view.
                ok = False
                self._obs_counters["ahdr_miss"].inc()
                if self._rec is not None:
                    self._rec.emit("mac", "ahdr_miss", t=round(self.now, 9),
                                   node=subframe.destination)
            if ok:
                t0 = data_start + subframe.start_symbol * t_sym
                t1 = t0 + subframe.n_symbols * t_sym
                if self._faults.subframe_burst_failed(t0, t1):
                    ok = False
            outcomes.append(ok)
        if ahdr_spec is not None:
            self._charge_false_matches(transmission, ahdr_spec)
        return outcomes

    def _charge_false_matches(self, transmission, ahdr_spec) -> None:
        """Bystanders that falsely match a corrupted A-HDR decode one
        irrelevant subframe — pure receive-energy waste."""
        subframes = transmission.subframes
        if not subframes:
            return
        addressed = {sf.destination for sf in subframes}
        # sum/len over integer symbol counts is exact (and much cheaper
        # than np.mean on a short list).
        mean_subframe = (
            sum(sf.n_symbols for sf in subframes) / len(subframes)
        ) * self.params.symbol_duration
        for name in self.stations:
            if name in addressed:
                continue
            if self._faults.ahdr_false_match(ahdr_spec):
                self.airtime_by_node[name]["rx"] += mean_subframe
                self._obs_counters["ahdr_false_match"].inc()
                if self._rec is not None:
                    self._rec.emit("mac", "ahdr_false_match",
                                   t=round(self.now, 9), node=name)

    def _apply_ack_faults(self, transmission, decoded: list) -> list:
        """Overlay ACK loss; model the sequential-ACK desync failure mode.

        Each decoded subframe's ACK is lost independently. In a
        multi-receiver sequence, the naive AP matches ACKs to subframes
        *ordinally*: the first injected gap desynchronises the remainder,
        so every later subframe is conservatively treated as lost. With
        ``sequential_ack_recovery`` the AP matches ACKs to slots by
        timestamp (:meth:`SequentialAckPlan.match_ack_to_subframe`) and a
        lost ACK costs only its own subframe.
        """
        acked = list(decoded)
        first_gap = None
        for i, ok in enumerate(decoded):
            if ok and self._faults.ack_lost(self.now):
                acked[i] = False
                if first_gap is None:
                    first_gap = i
                self._obs_counters["ack_lost"].inc()
                if self._rec is not None:
                    self._rec.emit(
                        "mac", "ack_lost", t=round(self.now, 9),
                        node=transmission.subframes[i].destination, slot=i)
        if (
            first_gap is not None
            and len(transmission.subframes) > 1
            and not self.sequential_ack_recovery
        ):
            for i in range(first_gap, len(acked)):
                acked[i] = False
            self._obs_counters["ack_desync"].inc()
            if self._rec is not None:
                self._rec.emit(
                    "mac", "ack_desync", t=round(self.now, 9),
                    first_gap=first_gap,
                    slots_lost=len(acked) - first_gap - 1)
        return acked

    def _account_airtime(self, node: Node, transmission, overhead: float) -> None:
        """Charge per-node radio time for the §8 energy analysis.

        The transmitter pays TX for the frame and RX for the ACK sequence.
        Every addressed station receives from the frame start to the end
        of its own subframe and transmits its ACK. Non-addressed stations
        receive the PLCP header plus the protocol's overhear span (the
        A-HDR for Carpool) and, with the A-HDR false-positive probability,
        one irrelevant subframe.
        """
        t_sym = self.params.symbol_duration
        plcp = self.params.plcp_header_time
        self.airtime_by_node[node.name]["tx"] += overhead + transmission.airtime
        self.airtime_by_node[node.name]["rx"] += transmission.ack_time

        subframes = transmission.subframes
        if not subframes:
            return
        last_symbol_by_dest: dict = {}
        for sf in subframes:
            end = sf.start_symbol + sf.n_symbols
            last_symbol_by_dest[sf.destination] = max(
                last_symbol_by_dest.get(sf.destination, 0), end
            )
        ack = ack_airtime(self.params)
        for dest, end in last_symbol_by_dest.items():
            if dest in self.airtime_by_node:
                record = self.airtime_by_node[dest]
                record["rx"] += plcp + end * t_sym
                record["tx"] += ack

        mean_subframe = (sum(sf.n_symbols for sf in subframes) / len(subframes)) * t_sym
        overhear = (
            plcp
            + self.protocol.overhear_symbols * t_sym
            + self.protocol.overhear_false_positive * mean_subframe
        )
        for name, other in self.stations.items():
            if name not in last_symbol_by_dest and other is not node:
                self.airtime_by_node[name]["rx"] += overhear

    def energy_report(self, duration: float, power_model=None) -> dict:
        """Per-node energy (joules) over ``duration`` under a power model.

        Defaults to the WPC55AG model the paper uses; idle time is
        whatever the node spent neither transmitting nor receiving.
        """
        if power_model is None:
            from repro.core.energy import WPC55AG as power_model  # noqa: N811
        report = {}
        for name, record in self.airtime_by_node.items():
            tx = min(record["tx"], duration)
            rx = min(record["rx"], max(duration - tx, 0.0))
            idle = max(duration - tx - rx, 0.0)
            report[name] = power_model.energy(tx, rx, idle)
        return report

    def _requeue_transmission(self, node: Node, transmission, count_retry: bool = False) -> None:
        """Put a destroyed transmission's frames back at the queue head."""
        frames = []
        for subframe in transmission.subframes:
            for frame in subframe.frames:
                if count_retry:
                    frame.retries += 1
                    if frame.retries > self.params.retry_limit:
                        self.metrics.record_drop(frame)
                        continue
                frames.append(frame)
        node.requeue_front(frames)

    def _rts_cts_overhead(self, num_receivers: int) -> float:
        """Multicast RTS followed by per-receiver CTSs (§4.2, Fig. 7)."""
        rts = single_frame_airtime(_RTS_BYTES, self.params)
        cts = self.params.plcp_header_time + 8 * _CTS_BYTES / self.params.basic_rate_bps
        return rts + max(1, num_receivers) * (self.params.sifs + cts) + self.params.sifs

    # Convenience ------------------------------------------------------------

    def station_names(self) -> list:
        """Names of all non-AP nodes."""
        return list(self.stations)


def ack_sequence_time(num_receivers: int, params: PhyMacParameters) -> float:
    """Total sequential-ACK tail for ``num_receivers`` (helper for tests)."""
    return num_receivers * (params.sifs + ack_airtime(params))


def estimate_slot_count(duration: float, params: PhyMacParameters) -> int:
    """How many idle slots fit in ``duration`` (helper for tests)."""
    return int(math.floor(duration / params.slot_time))
