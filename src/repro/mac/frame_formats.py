"""On-the-wire 802.11 MAC frame formats.

The MAC data units Carpool carries in its subframes are ordinary 802.11
frames; the sequential-ACK design manipulates their **Duration/NAV**
field (§4.2). This module provides byte-exact build/parse for the frame
types the design touches — data, ACK, RTS, CTS — including the CRC-32
FCS, so tests and examples can exercise real frames rather than opaque
byte counts.

Layout implemented (802.11-2012 §8.2/8.3, simplified to the three-address
data frame):

    data:  FC(2) Dur(2) A1(6) A2(6) A3(6) Seq(2) payload FCS(4)
    ACK:   FC(2) Dur(2) RA(6) FCS(4)                     = 14 bytes
    RTS:   FC(2) Dur(2) RA(6) TA(6) FCS(4)               = 20 bytes
    CTS:   FC(2) Dur(2) RA(6) FCS(4)                     = 14 bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.mac_address import MacAddress
from repro.phy.crc import crc32

__all__ = [
    "FrameType",
    "DataFrame",
    "AckFrame",
    "RtsFrame",
    "CtsFrame",
    "encode_duration",
    "decode_duration",
    "parse_frame",
    "FcsError",
]

# Frame-control (type, subtype) values, already shifted into FC bits 2–7.
_FC_DATA = 0x0008
_FC_ACK = 0x00D4
_FC_RTS = 0x00B4
_FC_CTS = 0x00C4

_DURATION_MAX_US = 32767


class FcsError(ValueError):
    """Raised when a parsed frame's FCS does not match its contents."""


class FrameType:
    """String labels for the implemented frame kinds."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"


def encode_duration(seconds: float) -> int:
    """Seconds → the 15-bit Duration/ID field (microseconds, rounded up)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    microseconds = int(-(-seconds * 1e6 // 1))
    if microseconds > _DURATION_MAX_US:
        raise ValueError(f"duration {microseconds} µs exceeds the 15-bit field")
    return microseconds


def decode_duration(field: int) -> float:
    """Duration/ID field → seconds."""
    if not 0 <= field <= _DURATION_MAX_US:
        raise ValueError("not a duration value")
    return field * 1e-6


def _with_fcs(body: bytes) -> bytes:
    return body + struct.pack("<I", crc32(body))


def _check_fcs(raw: bytes) -> bytes:
    if len(raw) < 4:
        raise FcsError("frame too short for an FCS")
    body, fcs = raw[:-4], struct.unpack("<I", raw[-4:])[0]
    if crc32(body) != fcs:
        raise FcsError("FCS mismatch")
    return body


@dataclass(frozen=True)
class DataFrame:
    """A three-address 802.11 data frame."""

    receiver: MacAddress
    transmitter: MacAddress
    bssid: MacAddress
    payload: bytes
    duration: float = 0.0
    sequence: int = 0

    def __post_init__(self):
        if not 0 <= self.sequence < (1 << 12):
            raise ValueError("sequence number is 12 bits")

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        header = struct.pack("<HH", _FC_DATA, encode_duration(self.duration))
        header += bytes(self.receiver) + bytes(self.transmitter) + bytes(self.bssid)
        header += struct.pack("<H", self.sequence << 4)
        return _with_fcs(header + self.payload)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DataFrame":
        """Parse and FCS-verify."""
        body = _check_fcs(raw)
        fc, duration = struct.unpack("<HH", body[:4])
        if fc != _FC_DATA:
            raise ValueError("not a data frame")
        receiver = MacAddress(body[4:10])
        transmitter = MacAddress(body[10:16])
        bssid = MacAddress(body[16:22])
        (seq_ctl,) = struct.unpack("<H", body[22:24])
        return cls(
            receiver=receiver,
            transmitter=transmitter,
            bssid=bssid,
            payload=body[24:],
            duration=decode_duration(duration),
            sequence=seq_ctl >> 4,
        )

    @property
    def overhead_bytes(self) -> int:
        """Header + FCS bytes around the payload."""
        return 24 + 4  # header + FCS


@dataclass(frozen=True)
class AckFrame:
    """An ACK; the sequential-ACK design sets its NAV (§4.2)."""

    receiver: MacAddress
    duration: float = 0.0

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<HH", _FC_ACK, encode_duration(self.duration))
        return _with_fcs(body + bytes(self.receiver))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AckFrame":
        """Parse and FCS-verify."""
        body = _check_fcs(raw)
        fc, duration = struct.unpack("<HH", body[:4])
        if fc != _FC_ACK:
            raise ValueError("not an ACK")
        return cls(receiver=MacAddress(body[4:10]), duration=decode_duration(duration))


@dataclass(frozen=True)
class RtsFrame:
    """A request-to-send; Carpool's variant carries an A-HDR (§4.2)."""

    receiver: MacAddress
    transmitter: MacAddress
    duration: float = 0.0

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<HH", _FC_RTS, encode_duration(self.duration))
        return _with_fcs(body + bytes(self.receiver) + bytes(self.transmitter))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "RtsFrame":
        """Parse and FCS-verify."""
        body = _check_fcs(raw)
        fc, duration = struct.unpack("<HH", body[:4])
        if fc != _FC_RTS:
            raise ValueError("not an RTS")
        return cls(
            receiver=MacAddress(body[4:10]),
            transmitter=MacAddress(body[10:16]),
            duration=decode_duration(duration),
        )


@dataclass(frozen=True)
class CtsFrame:
    """A clear-to-send; its NAV shields the rest of the exchange."""

    receiver: MacAddress
    duration: float = 0.0

    def to_bytes(self) -> bytes:
        """Serialise with FCS."""
        body = struct.pack("<HH", _FC_CTS, encode_duration(self.duration))
        return _with_fcs(body + bytes(self.receiver))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "CtsFrame":
        """Parse and FCS-verify."""
        body = _check_fcs(raw)
        fc, duration = struct.unpack("<HH", body[:4])
        if fc != _FC_CTS:
            raise ValueError("not a CTS")
        return cls(receiver=MacAddress(body[4:10]), duration=decode_duration(duration))


_PARSERS = {
    _FC_DATA: (FrameType.DATA, DataFrame),
    _FC_ACK: (FrameType.ACK, AckFrame),
    _FC_RTS: (FrameType.RTS, RtsFrame),
    _FC_CTS: (FrameType.CTS, CtsFrame),
}


def parse_frame(raw: bytes):
    """Dispatch on the frame-control field; returns ``(type, frame)``.

    Raises :class:`FcsError` for corrupt frames and ``ValueError`` for
    unknown types.
    """
    if len(raw) < 8:
        raise ValueError("frame too short")
    (fc,) = struct.unpack("<H", raw[:2])
    if fc not in _PARSERS:
        raise ValueError(f"unknown frame control {fc:#06x}")
    kind, cls = _PARSERS[fc]
    return kind, cls.from_bytes(raw)
