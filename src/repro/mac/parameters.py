"""PHY/MAC timing parameters (paper Table 2, IEEE 802.11n values)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhyMacParameters", "DEFAULT_PARAMETERS"]


@dataclass(frozen=True)
class PhyMacParameters:
    """Timing and contention constants of the simulated WLAN.

    Defaults reproduce the paper's Table 2; ``phy_rate_bps`` is the 65
    Mbit/s data rate its MAC evaluation uses, ``basic_rate_bps`` the 6.5
    Mbit/s rate control frames and PHY headers are sent at.
    """

    slot_time: float = 9e-6
    sifs: float = 10e-6
    difs: float = 28e-6
    cw_min: int = 15
    cw_max: int = 1023
    plcp_header_time: float = 28e-6
    propagation_delay: float = 1e-6
    phy_rate_bps: float = 65e6
    basic_rate_bps: float = 6.5e6
    ack_bytes: int = 14
    retry_limit: int = 7
    symbol_duration: float = 4e-6

    def __post_init__(self):
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError("invalid contention window bounds")
        if min(self.slot_time, self.sifs, self.difs) <= 0:
            raise ValueError("timing constants must be positive")
        if self.phy_rate_bps <= 0 or self.basic_rate_bps <= 0:
            raise ValueError("rates must be positive")

    @property
    def eifs(self) -> float:
        """EIFS after an undecodable frame: SIFS + ACK@basic + DIFS."""
        ack_time = 8 * self.ack_bytes / self.basic_rate_bps
        return self.sifs + ack_time + self.difs


DEFAULT_PARAMETERS = PhyMacParameters()
