"""Frame and arrival records used by the MAC simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Arrival", "MacFrame", "Direction"]


class Direction:
    """Traffic direction labels."""
    DOWNLINK = "downlink"
    UPLINK = "uplink"


_frame_ids = itertools.count()


@dataclass(frozen=True)
class Arrival:
    """A packet handed to a node's MAC queue at a point in time."""

    time: float
    source: str  # node name whose queue receives the frame
    destination: str
    size_bytes: int
    delay_sensitive: bool = False
    direction: str = Direction.DOWNLINK

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError("arrival size must be positive")
        if self.time < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass
class MacFrame:
    """One MAC frame sitting in (or moving through) a transmit queue."""

    destination: str
    size_bytes: int
    arrival_time: float
    delay_sensitive: bool = False
    direction: str = Direction.DOWNLINK
    retries: int = 0
    #: Set once the receiver has decoded this frame; guards double-counting
    #: when an ACK-lost (but correctly decoded) frame is retransmitted.
    delivered: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @classmethod
    def from_arrival(cls, arrival: Arrival) -> "MacFrame":
        """Wrap an arrival into a queued MAC frame."""
        return cls(
            destination=arrival.destination,
            size_bytes=arrival.size_bytes,
            arrival_time=arrival.time,
            delay_sensitive=arrival.delay_sensitive,
            direction=arrival.direction,
        )
