"""Trace-driven frame-error models for the MAC evaluation.

The paper's MAC simulator replays frame-decoding outcomes measured on the
USRP testbed (§7.2.1). Our equivalent: the PHY layer of this package is run
offline over the simulated channel to fit a per-OFDM-symbol decode-failure
curve, and the MAC simulator draws subframe outcomes from that curve.

Two curves matter (Fig. 13):

* **standard channel estimation** — symbol-error probability *grows with
  the symbol's index in the frame* (BER bias): e(n) = e₀·(1 + γ·n).
* **RTE** — flat: e(n) = e_r.

A subframe spanning symbols [s, s+L) succeeds iff every symbol decodes:
P_success = ∏ (1 − e(n)). Aggregation schemes without RTE therefore pay a
steep reliability price on long frames — the paper's central mechanism.

Performance: the models sit on the MAC hot path (one probability + one
Bernoulli draw per subframe per transmission), so they carry two fast
paths the sweep engine leans on:

* scalar probabilities are **memoised** per ``(start, n, rte)`` — sweeps
  revisit the same subframe geometries constantly — and the memo returns
  the exact float the un-memoised computation produced;
* ``subframe_success_probability`` accepts **arrays** of starts/lengths
  (cumulative-log-survival table, O(1) per subframe after the table), and
  :meth:`draw_subframes` vectorises whole transmissions' Bernoulli draws
  while consuming the RNG stream bit-identically to sequential
  :meth:`draw_subframe` calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream

__all__ = ["BerCurveErrorModel", "FixedFerModel", "fit_ber_curve", "DEFAULT_ERROR_MODEL"]


@dataclass(frozen=True)
class BerCurveErrorModel:
    """Per-symbol decode-failure curves for standard CE vs RTE.

    Attributes:
        base_symbol_error: e₀ — failure probability of the first symbol
            (identical for both schemes: RTE cannot beat the preamble
            estimate at the head of the frame).
        bias_growth: γ — relative growth per symbol index under standard
            channel estimation (Fig. 3/13's BER bias).
        rte_symbol_error: Flat per-symbol failure probability under RTE.
        max_symbol_error: Cap on any per-symbol probability.
    """

    # Defaults calibrated against this package's PHY running the Fig. 3/13
    # experiment: symbol-decode failures grow roughly linearly with symbol
    # index under standard CE (e(113) ≈ 50× e(0) extrapolates the measured
    # trend to the multi-KB aggregates of §7.2), and stay flat under RTE.
    base_symbol_error: float = 2e-4
    bias_growth: float = 0.5
    rte_symbol_error: float = 2e-4
    max_symbol_error: float = 0.5

    def __post_init__(self):
        if not 0 <= self.base_symbol_error <= 1:
            raise ValueError("base_symbol_error must be a probability")
        if self.bias_growth < 0:
            raise ValueError("bias_growth must be non-negative")
        # Memo of exact scalar probabilities, (start, n, rte) -> float, plus
        # the cumulative log-survival tables backing the array fast path.
        # Not a dataclass field: invisible to __eq__/__hash__/repr.
        object.__setattr__(self, "_p_cache", {})
        object.__setattr__(self, "_cum_log", {})

    def symbol_error(self, index, rte: bool):
        """Decode-failure probability of the symbol at ``index``.

        ``index`` may be a scalar or an ``np.ndarray`` of indices (the
        array path returns an array of the same shape).
        """
        if rte:
            value = np.full_like(np.asarray(index, dtype=float), self.rte_symbol_error)
        else:
            value = self.base_symbol_error * (1.0 + self.bias_growth * np.asarray(index, dtype=float))
        return np.minimum(value, self.max_symbol_error)

    def _success_probability_exact(self, start_symbol: int, n_symbols: int, rte: bool) -> float:
        """The original scalar computation — the bit-exactness oracle."""
        if n_symbols <= 0:
            raise ValueError("subframe must span at least one symbol")
        indices = np.arange(start_symbol, start_symbol + n_symbols)
        errors = self.symbol_error(indices, rte)
        return float(np.exp(np.log1p(-errors).sum()))

    def _cum_table(self, upto: int, rte: bool) -> np.ndarray:
        """``cum[k] = Σ_{i<k} log(1 − e(i))``, grown on demand."""
        table = self._cum_log.get(rte)
        if table is None or table.size < upto + 1:
            size = max(upto + 1, 256)
            log_survival = np.log1p(-self.symbol_error(np.arange(size), rte))
            table = np.concatenate(([0.0], np.cumsum(log_survival)))
            self._cum_log[rte] = table
        return table

    def subframe_success_probability(self, start_symbol, n_symbols, rte: bool):
        """P(all symbols in [start, start+n) decode).

        Scalars return the memoised exact float; passing arrays of starts
        and lengths returns an array computed from a cumulative
        log-survival table (agrees with the scalar path to machine
        precision — the summation order differs, so not bit-for-bit).
        """
        if isinstance(start_symbol, np.ndarray) or isinstance(n_symbols, np.ndarray):
            starts = np.asarray(start_symbol, dtype=np.int64)
            lengths = np.asarray(n_symbols, dtype=np.int64)
            if np.any(lengths <= 0):
                raise ValueError("subframe must span at least one symbol")
            cum = self._cum_table(int(np.max(starts + lengths)), rte)
            return np.exp(cum[starts + lengths] - cum[starts])
        key = (int(start_symbol), int(n_symbols), bool(rte))
        p = self._p_cache.get(key)
        if p is None:
            p = self._success_probability_exact(*key)
            self._p_cache[key] = p
        return p

    def draw_subframe(self, rng: RngStream, start_symbol: int, n_symbols: int, rte: bool) -> bool:
        """Sample one subframe outcome (True = decoded)."""
        p = self.subframe_success_probability(start_symbol, n_symbols, rte)
        return bool(rng.uniform() < p)

    def draw_subframes(self, rng: RngStream, start_symbols, n_symbols, rte) -> np.ndarray:
        """Vectorised :meth:`draw_subframe` over whole arrays of subframes.

        ``rte`` may be one bool or a per-subframe sequence. Consumes
        exactly ``len(start_symbols)`` uniforms in subframe order — one
        batched ``uniform(size=n)`` draw reads the identical stream values
        as ``n`` sequential scalar draws — and compares them against the
        memoised exact scalar probabilities, so the returned outcomes are
        bit-identical to a sequential-draw run.
        """
        starts = np.atleast_1d(np.asarray(start_symbols, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(n_symbols, dtype=np.int64))
        flags = np.broadcast_to(np.atleast_1d(rte), starts.shape)
        p = np.array([
            self.subframe_success_probability(int(s), int(n), bool(f))
            for s, n, f in zip(starts, lengths, flags)
        ])
        return rng.uniform(size=p.size) < p


@dataclass(frozen=True)
class FixedFerModel:
    """Constant frame-error rate regardless of position/length — for tests."""

    fer: float = 0.0

    def subframe_success_probability(self, start_symbol, n_symbols, rte: bool):
        """Always ``1 − fer`` regardless of position or length."""
        if isinstance(start_symbol, np.ndarray) or isinstance(n_symbols, np.ndarray):
            return np.full(np.broadcast(start_symbol, n_symbols).shape, 1.0 - self.fer)
        return 1.0 - self.fer

    def draw_subframe(self, rng: RngStream, start_symbol: int, n_symbols: int, rte: bool) -> bool:
        """Bernoulli draw at the fixed success probability."""
        return bool(rng.uniform() < 1.0 - self.fer)

    def draw_subframes(self, rng: RngStream, start_symbols, n_symbols, rte) -> np.ndarray:
        """Vectorised draws — same stream consumption as sequential draws."""
        n = np.atleast_1d(np.asarray(start_symbols)).size
        return rng.uniform(size=n) < (1.0 - self.fer)


def fit_ber_curve(symbol_error_by_index: np.ndarray, rte_error_by_index: np.ndarray) -> BerCurveErrorModel:
    """Fit a :class:`BerCurveErrorModel` to measured per-symbol error curves.

    Args:
        symbol_error_by_index: Standard-CE per-symbol decode-failure rates
            (index 0 = first payload symbol), e.g. from running the PHY of
            this package over its channel model.
        rte_error_by_index: Same under RTE.

    Fits e₀ and γ by least squares on the standard curve and takes the mean
    of the RTE curve.
    """
    standard = np.asarray(symbol_error_by_index, dtype=float)
    rte = np.asarray(rte_error_by_index, dtype=float)
    if standard.size < 2:
        raise ValueError("need at least two points to fit the bias")
    n = np.arange(standard.size)
    # e(n) = e0 + e0·γ·n — linear regression.
    coeffs = np.polyfit(n, standard, 1)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    e0 = max(intercept, 1e-9)
    gamma = max(slope / e0, 0.0)
    return BerCurveErrorModel(
        base_symbol_error=e0,
        bias_growth=gamma,
        rte_symbol_error=float(max(rte.mean(), 1e-9)),
    )


DEFAULT_ERROR_MODEL = BerCurveErrorModel()
