"""Time-fairness control on top of Carpool (§8, "Fairness").

The paper: "time fairness control can be implemented on Carpool by
maintaining a time occupancy table for all STAs. The scheduling module in
AP periodically checks the time occupancy table and assigns higher
priority to STAs with smaller time occupancy."

:class:`TimeOccupancyTable` is that table; :class:`FairCarpoolProtocol`
plugs it into the aggregation selector so under-served stations go to the
front of the batch (and therefore also to the earlier, more reliable
positions of the aggregated frame).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.mac.node import Node
from repro.mac.protocols.base import AggregationLimits, Transmission
from repro.mac.protocols.carpool import CarpoolProtocol

__all__ = ["TimeOccupancyTable", "FairCarpoolProtocol"]


@dataclass
class TimeOccupancyTable:
    """Cumulative downlink airtime served to each station."""

    _airtime: dict = field(default_factory=dict)

    def charge(self, station: str, airtime: float) -> None:
        """Add served airtime to a station's tally."""
        if airtime < 0:
            raise ValueError("airtime must be non-negative")
        self._airtime[station] = self._airtime.get(station, 0.0) + airtime

    def occupancy(self, station: str) -> float:
        """Cumulative airtime served to a station (0 for unknown)."""
        return self._airtime.get(station, 0.0)

    def rank(self, stations) -> list:
        """Stations ordered by ascending occupancy (least-served first)."""
        return sorted(stations, key=lambda s: (self.occupancy(s), s))

    def jain_index(self) -> float:
        """Jain's fairness index of the served airtimes (1.0 = equal)."""
        values = list(self._airtime.values())
        if not values:
            return 1.0
        total = sum(values)
        squares = sum(v * v for v in values)
        if squares == 0:
            return 1.0
        return total * total / (len(values) * squares)


class FairCarpoolProtocol(CarpoolProtocol):
    """Carpool whose aggregation order follows the time-occupancy table.

    Under-served destinations sort first, so when the receiver/byte limits
    bind they win the contested aggregation slots; served airtime is
    charged back into the table after every transmission.
    """

    name = "Carpool-fair"

    def __init__(self, params, limits: AggregationLimits | None = None,
                 occupancy: TimeOccupancyTable | None = None):
        super().__init__(params, limits)
        self.occupancy = occupancy or TimeOccupancyTable()

    def selection_key(self, frame):
        """Delay-sensitive first, then least-served destination, then FIFO."""
        return (
            not frame.delay_sensitive,
            self.occupancy.occupancy(frame.destination),
            frame.arrival_time,
            frame.frame_id,
        )

    def build(self, node: Node, now: float) -> Transmission:
        """Build as Carpool, then charge the served airtime back into the table."""
        transmission = super().build(node, now)
        if node.is_ap:
            for subframe in transmission.subframes:
                duration = subframe.n_symbols * self.params.symbol_duration
                self.occupancy.charge(subframe.destination, duration)
        return transmission
