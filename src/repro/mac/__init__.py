"""Event-driven CSMA/CA MAC simulator and the five evaluated protocols."""

from repro.mac.airtime import (
    ack_airtime,
    aggregated_frame_airtime,
    carpool_frame_airtime,
    payload_airtime,
    sequential_ack_airtime,
    single_frame_airtime,
)
from repro.mac.engine import AP_NAME, WlanSimulator
from repro.mac.error_model import (
    DEFAULT_ERROR_MODEL,
    BerCurveErrorModel,
    FixedFerModel,
    fit_ber_curve,
)
from repro.mac.frames import Arrival, Direction, MacFrame
from repro.mac.metrics import MetricsCollector, MetricsSummary
from repro.mac.node import Node
from repro.mac.parameters import DEFAULT_PARAMETERS, PhyMacParameters
from repro.mac.association import ApAssociationService, AssocRequest, AssocResponse, Beacon
from repro.mac.block_ack import BLOCK_ACK_WINDOW, BlockAck, ReorderScoreboard, missing_sequences
from repro.mac.frame_formats import AckFrame, CtsFrame, DataFrame, RtsFrame, parse_frame
from repro.mac.nav import NavCounter, simulate_ack_train
from repro.mac.fairness import FairCarpoolProtocol, TimeOccupancyTable
from repro.mac.protocols.carpool_mixed import CarpoolMixedProtocol
from repro.mac.protocols.fallback import FallbackCarpoolProtocol
from repro.mac.rate_control import RateTable, select_mcs
from repro.mac.scenarios import CbrScenario, ScenarioResult, VoipScenario
from repro.mac.protocols import (
    PROTOCOLS,
    AggregationLimits,
    AmpduProtocol,
    CarpoolProtocol,
    Dot11Protocol,
    MuAggregationProtocol,
    Protocol,
    SubframeTx,
    Transmission,
    WifoxProtocol,
)

__all__ = [
    "ack_airtime",
    "aggregated_frame_airtime",
    "carpool_frame_airtime",
    "payload_airtime",
    "sequential_ack_airtime",
    "single_frame_airtime",
    "AP_NAME",
    "WlanSimulator",
    "DEFAULT_ERROR_MODEL",
    "BerCurveErrorModel",
    "FixedFerModel",
    "fit_ber_curve",
    "Arrival",
    "Direction",
    "MacFrame",
    "MetricsCollector",
    "MetricsSummary",
    "Node",
    "DEFAULT_PARAMETERS",
    "PhyMacParameters",
    "PROTOCOLS",
    "AggregationLimits",
    "AmpduProtocol",
    "CarpoolProtocol",
    "Dot11Protocol",
    "MuAggregationProtocol",
    "Protocol",
    "SubframeTx",
    "Transmission",
    "WifoxProtocol",
    "CarpoolMixedProtocol",
    "FallbackCarpoolProtocol",
    "FairCarpoolProtocol",
    "TimeOccupancyTable",
    "DataFrame",
    "AckFrame",
    "RtsFrame",
    "CtsFrame",
    "parse_frame",
    "NavCounter",
    "simulate_ack_train",
    "ApAssociationService",
    "AssocRequest",
    "AssocResponse",
    "Beacon",
    "BLOCK_ACK_WINDOW",
    "BlockAck",
    "ReorderScoreboard",
    "missing_sequences",
    "RateTable",
    "select_mcs",
    "VoipScenario",
    "CbrScenario",
    "ScenarioResult",
]
