"""Goodput / delay / channel-efficiency accounting for MAC runs.

Goodput can be computed against a *latency bound*: a VoIP frame delivered
after its playout deadline is worthless, so the Fig. 15–17 benchmarks count
only frames delivered within the bound ("useful goodput"), exactly the
metric the paper's latency-requirement sweep (Fig. 17(a)) varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mac.frames import Direction, MacFrame

__all__ = ["MetricsCollector", "MetricsSummary"]


@dataclass
class MetricsSummary:
    """Aggregated results of one simulation run."""

    duration: float
    downlink_goodput_bps: float
    uplink_goodput_bps: float
    downlink_mean_delay: float
    downlink_p95_delay: float
    uplink_mean_delay: float
    transmissions: int
    collisions: int
    retransmitted_subframes: int
    dropped_frames: int
    delivered_downlink_frames: int
    delivered_uplink_frames: int
    channel_busy_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"goodput↓ {self.downlink_goodput_bps / 1e6:.3f} Mbit/s, "
            f"delay↓ {self.downlink_mean_delay * 1e3:.1f} ms, "
            f"collisions {self.collisions}, drops {self.dropped_frames}"
        )


@dataclass
class MetricsCollector:
    """Streaming accumulator the engine feeds during a run."""

    _down: list = field(default_factory=list)  # (size_bytes, delay, source)
    _up: list = field(default_factory=list)
    _bytes_by_destination: dict = field(default_factory=dict)
    transmissions: int = 0
    collisions: int = 0
    retransmitted_subframes: int = 0
    dropped_frames: int = 0
    offered_frames: int = 0
    busy_time: float = 0.0

    def record_delivery(self, frame: MacFrame, delivery_time: float,
                        source: str | None = None) -> None:
        """Record one delivered frame (its delay, bytes, direction, source)."""
        delay = delivery_time - frame.arrival_time
        record = (frame.size_bytes, delay, source)
        self._bytes_by_destination[frame.destination] = (
            self._bytes_by_destination.get(frame.destination, 0) + frame.size_bytes
        )
        if frame.direction == Direction.DOWNLINK:
            self._down.append(record)
        else:
            self._up.append(record)

    def delivered_bytes_by_destination(self) -> dict:
        """Destination → delivered payload bytes (per-station fairness)."""
        return dict(self._bytes_by_destination)

    def record_transmission(self, duration: float) -> None:
        """Count one successful channel occupation of ``duration`` seconds."""
        self.transmissions += 1
        self.busy_time += duration

    def record_collision(self, duration: float) -> None:
        """Count one collision busying the medium for ``duration`` seconds."""
        self.collisions += 1
        self.busy_time += duration

    def record_retransmission(self, num_subframes: int = 1) -> None:
        """Count subframes that failed and will retransmit."""
        self.retransmitted_subframes += num_subframes

    def record_drop(self, frame: MacFrame) -> None:
        """Count a frame abandoned at the retry limit."""
        self.dropped_frames += 1

    def record_offered(self, count: int = 1) -> None:
        """Count frames entering a transmit queue (conservation checks)."""
        self.offered_frames += count

    @property
    def delivered_frames(self) -> int:
        """Total delivered frames, both directions (conservation checks)."""
        return len(self._down) + len(self._up)

    def goodput_of_source(self, source: str, duration: float,
                          latency_bound: float | None = None) -> float:
        """Delivered bits/s originated by one node (e.g. the measured AP).

        With ``latency_bound``, only frames delivered within the bound
        count — the "useful goodput" of deadline-driven traffic.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        total = sum(
            size
            for size, delay, src in self._down + self._up
            if src == source and (latency_bound is None or delay <= latency_bound)
        )
        return 8 * total / duration

    def _goodput(self, records: list, duration: float,
                 latency_bound: float | None = None) -> float:
        total = sum(
            size for size, delay, _ in records
            if latency_bound is None or delay <= latency_bound
        )
        return 8 * total / duration

    def summary(self, duration: float, latency_bound: float | None = None) -> MetricsSummary:
        """Aggregate everything recorded into a summary for ``duration``
        seconds (optionally counting only frames within ``latency_bound``)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        down_delays = np.array([d for _, d, _ in self._down]) if self._down else np.zeros(0)
        up_delays = np.array([d for _, d, _ in self._up]) if self._up else np.zeros(0)
        return MetricsSummary(
            duration=duration,
            downlink_goodput_bps=self._goodput(self._down, duration, latency_bound),
            uplink_goodput_bps=self._goodput(self._up, duration, latency_bound),
            downlink_mean_delay=float(down_delays.mean()) if down_delays.size else 0.0,
            downlink_p95_delay=float(np.percentile(down_delays, 95)) if down_delays.size else 0.0,
            uplink_mean_delay=float(up_delays.mean()) if up_delays.size else 0.0,
            transmissions=self.transmissions,
            collisions=self.collisions,
            retransmitted_subframes=self.retransmitted_subframes,
            dropped_frames=self.dropped_frames,
            delivered_downlink_frames=len(self._down),
            delivered_uplink_frames=len(self._up),
            channel_busy_fraction=min(self.busy_time / duration, 1.0),
        )
