"""SIGCOMM-trace-driven UDP/TCP background traffic (§7.2.2, Fig. 16).

The paper injects uplink TCP/UDP according to the SIGCOMM'08 trace:
mean inter-packet arrivals of 47 ms (TCP) and 88 ms (UDP) per client, with
frame sizes drawn from the trace's size distribution. Arrival processes
are Poisson (exponential gaps), the standard reduction for trace-driven
background load.
"""

from __future__ import annotations

from repro.mac.frames import Arrival, Direction
from repro.traffic.trace_models import SIGCOMM08, TraceModel, sample_frame_sizes
from repro.util.rng import RngStream

__all__ = ["background_uplink_arrivals", "trace_mixed_arrivals"]


def _poisson_flow(source: str, destination: str, direction: str, duration: float,
                  mean_interarrival: float, model: TraceModel, rng: RngStream) -> list:
    arrivals = []
    t = float(rng.exponential(mean_interarrival))
    while t < duration:
        size = int(sample_frame_sizes(model, 1, rng)[0])
        arrivals.append(
            Arrival(time=t, source=source, destination=destination,
                    size_bytes=size, delay_sensitive=False, direction=direction)
        )
        t += float(rng.exponential(mean_interarrival))
    return arrivals


def background_uplink_arrivals(station_names: list, duration: float, rng: RngStream,
                               model: TraceModel = SIGCOMM08, ap_name: str = "ap",
                               intensity: float = 1.0) -> list:
    """Per-STA uplink TCP + UDP background load, SIGCOMM'08 statistics.

    ``intensity`` scales the arrival rates: 1.0 is the per-client mean of
    the trace; the Fig. 17 benchmarks use a higher value to reach the
    saturated busy-network regime the paper evaluates there.
    """
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    arrivals = []
    for sta in station_names:
        arrivals.extend(
            _poisson_flow(sta, ap_name, Direction.UPLINK, duration,
                          model.tcp_interarrival / intensity, model,
                          rng.child(f"tcp-{sta}"))
        )
        arrivals.extend(
            _poisson_flow(sta, ap_name, Direction.UPLINK, duration,
                          model.udp_interarrival / intensity, model,
                          rng.child(f"udp-{sta}"))
        )
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def trace_mixed_arrivals(station_names: list, duration: float, rng: RngStream,
                         model: TraceModel, packets_per_second: float = 200.0,
                         ap_name: str = "ap") -> list:
    """A full synthetic trace with the model's downlink/uplink volume split.

    Used by the Fig. 1 reproduction to verify the synthesizers match the
    published downlink ratios; the MAC benchmarks use the more specific
    generators above.
    """
    arrivals = []
    gen = rng.child("mixed")
    t = 0.0
    mean_gap = 1.0 / packets_per_second
    sta_count = len(station_names)
    if sta_count == 0:
        raise ValueError("need at least one station")
    while t < duration:
        t += float(gen.exponential(mean_gap))
        if t >= duration:
            break
        size = int(sample_frame_sizes(model, 1, gen)[0])
        sta = station_names[int(gen.integers(0, sta_count))]
        # Volume split: route bytes downlink with probability = ratio.
        if gen.uniform() < model.downlink_ratio:
            arrivals.append(Arrival(time=t, source=ap_name, destination=sta,
                                    size_bytes=size, direction=Direction.DOWNLINK))
        else:
            arrivals.append(Arrival(time=t, source=sta, destination=ap_name,
                                    size_bytes=size, direction=Direction.UPLINK))
    return arrivals
