"""Generic flows and stream plumbing."""

from __future__ import annotations

import heapq

from repro.mac.frames import Arrival, Direction
from repro.util.rng import RngStream

__all__ = [
    "cbr_downlink_arrivals",
    "iter_merge_arrivals",
    "merge_arrivals",
    "offered_load_bps",
]


def cbr_downlink_arrivals(station_names: list, duration: float, frame_bytes: int,
                          frames_per_second: float, rng: RngStream,
                          ap_name: str = "ap", delay_sensitive: bool = True,
                          jitter: float = 0.1) -> list:
    """Constant-bit-rate downlink flows (Fig. 17's workload).

    Each STA receives ``frames_per_second`` frames of ``frame_bytes``; start
    phases are randomised and inter-arrival times jittered by ``jitter``
    (fraction of the nominal gap) so flows do not synchronise. ``jitter``
    must stay strictly below 1: at 1.0 the jittered gap can reach zero
    (stalling the arrival clock at one instant) and beyond it the gap can
    go negative, walking time backwards.
    """
    if frame_bytes <= 0 or frames_per_second <= 0:
        raise ValueError("frame size and rate must be positive")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    arrivals = []
    gap = 1.0 / frames_per_second
    for sta in station_names:
        gen = rng.child(f"cbr-{sta}")
        t = float(gen.uniform(0.0, gap))
        while t < duration:
            arrivals.append(
                Arrival(time=t, source=ap_name, destination=sta,
                        size_bytes=frame_bytes, delay_sensitive=delay_sensitive,
                        direction=Direction.DOWNLINK)
            )
            t += gap * (1.0 + float(gen.uniform(-jitter, jitter)))
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def iter_merge_arrivals(*streams):
    """Lazily merge time-sorted arrival streams into one sorted iterator.

    Accepts any mix of lists and iterators; holds only one pending arrival
    per input stream, so merging unbounded generators (the soak workload
    streamer) never materialises a whole epoch. The merge is stable:
    arrivals with equal timestamps come out in stream order, matching
    :func:`merge_arrivals` element for element.
    """
    return heapq.merge(*streams, key=lambda a: a.time)


def merge_arrivals(*streams) -> list:
    """Merge time-sorted arrival lists into one time-sorted list."""
    return list(iter_merge_arrivals(*streams))


def offered_load_bps(arrivals: list, duration: float, direction: str | None = None) -> float:
    """Average offered load of an arrival list (optionally one direction)."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    total = sum(
        a.size_bytes for a in arrivals if direction is None or a.direction == direction
    )
    return 8 * total / duration
