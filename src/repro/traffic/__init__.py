"""Traffic substrate: VoIP (Brady), SIGCOMM/library trace synthesizers, CBR."""

from repro.traffic.background import background_uplink_arrivals, trace_mixed_arrivals
from repro.traffic.flows import (
    cbr_downlink_arrivals,
    iter_merge_arrivals,
    merge_arrivals,
    offered_load_bps,
)
from repro.traffic.trace_models import (
    LIBRARY,
    SIGCOMM04,
    SIGCOMM08,
    TRACE_MODELS,
    TraceModel,
    active_sta_timeseries,
    sample_frame_sizes,
)
from repro.traffic.voip import BradyModel, voip_downlink_arrivals, voip_uplink_arrivals

__all__ = [
    "background_uplink_arrivals",
    "trace_mixed_arrivals",
    "cbr_downlink_arrivals",
    "iter_merge_arrivals",
    "merge_arrivals",
    "offered_load_bps",
    "LIBRARY",
    "SIGCOMM04",
    "SIGCOMM08",
    "TRACE_MODELS",
    "TraceModel",
    "active_sta_timeseries",
    "sample_frame_sizes",
    "BradyModel",
    "voip_downlink_arrivals",
    "voip_uplink_arrivals",
]
