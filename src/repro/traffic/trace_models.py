"""Statistical models of the public-WLAN traces the paper characterises.

We have no access to the raw SIGCOMM'04/'08 pcaps or the authors' campus
library captures, so — per the reproduction's substitution rules — each
trace is replaced by a synthesizer matched to the *published statistics*
(Fig. 1): frame-size CDF, downlink traffic ratio and, for the library
trace, the active-STA process (mean 7.63 concurrently active STAs per AP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream

__all__ = [
    "TraceModel",
    "SIGCOMM04",
    "SIGCOMM08",
    "LIBRARY",
    "TRACE_MODELS",
    "sample_frame_sizes",
    "active_sta_timeseries",
]


@dataclass(frozen=True)
class TraceModel:
    """A public-WLAN trace reduced to its reproducible statistics.

    Attributes:
        name: Trace label.
        downlink_ratio: Fraction of traffic volume on the downlink
            (Fig. 1(c): 80 % / 83.4 % / 89.2 %).
        size_points: Piecewise-linear frame-size CDF as (bytes, F(bytes))
            knots; sizes are sampled by inverse transform.
        tcp_interarrival: Mean TCP inter-packet time per client (s).
        udp_interarrival: Mean UDP inter-packet time per client (s).
    """

    name: str
    downlink_ratio: float
    size_points: tuple
    tcp_interarrival: float = 0.047
    udp_interarrival: float = 0.088

    def __post_init__(self):
        if not 0 < self.downlink_ratio < 1:
            raise ValueError("downlink ratio must be in (0, 1)")
        cdf = [p for _, p in self.size_points]
        if cdf != sorted(cdf) or cdf[-1] != 1.0:
            raise ValueError("size CDF knots must be increasing and end at 1")

    def quantile(self, u):
        """Inverse CDF: frame size at probability ``u`` (vectorised)."""
        sizes = np.array([s for s, _ in self.size_points], dtype=float)
        probs = np.array([p for _, p in self.size_points], dtype=float)
        return np.interp(u, probs, sizes)

    def cdf(self, size):
        """Fraction of frames not larger than ``size`` (vectorised)."""
        sizes = np.array([s for s, _ in self.size_points], dtype=float)
        probs = np.array([p for _, p in self.size_points], dtype=float)
        return np.interp(size, sizes, probs)


# Knots chosen to match Fig. 1(b): the SIGCOMM CDF crosses 50 % just above
# 300 B with a heavy MTU-sized tail; the library CDF has >90 % below 300 B.
SIGCOMM04 = TraceModel(
    name="SIGCOMM'04",
    downlink_ratio=0.80,
    size_points=((40, 0.0), (90, 0.28), (200, 0.44), (300, 0.52), (576, 0.62),
                 (1000, 0.72), (1400, 0.85), (1500, 1.0)),
)

SIGCOMM08 = TraceModel(
    name="SIGCOMM'08",
    downlink_ratio=0.834,
    size_points=((40, 0.0), (90, 0.30), (200, 0.46), (300, 0.54), (576, 0.64),
                 (1000, 0.74), (1400, 0.86), (1500, 1.0)),
)

LIBRARY = TraceModel(
    name="Library",
    downlink_ratio=0.892,
    size_points=((40, 0.0), (80, 0.35), (150, 0.66), (250, 0.86), (300, 0.91),
                 (600, 0.95), (1200, 0.97), (1500, 1.0)),
)

TRACE_MODELS = {m.name: m for m in (SIGCOMM04, SIGCOMM08, LIBRARY)}


def sample_frame_sizes(model: TraceModel, count: int, rng: RngStream) -> np.ndarray:
    """Draw ``count`` frame sizes (bytes) from the model's CDF."""
    if count < 0:
        raise ValueError("count must be non-negative")
    u = rng.uniform(0.0, 1.0, size=count)
    return np.maximum(np.round(model.quantile(u)), 1).astype(int)


def active_sta_timeseries(duration_s: int, rng: RngStream, num_stations: int = 20,
                          target_mean_active: float = 7.63) -> np.ndarray:
    """Per-second count of active STAs at one AP (Fig. 1(a)).

    Each of ``num_stations`` associated STAs flips between active and idle
    as a two-state Markov chain whose stationary active probability hits
    ``target_mean_active / num_stations``; dwell times are a few seconds,
    giving the second-scale churn visible in the paper's plot.
    """
    if num_stations < 1:
        raise ValueError("need at least one station")
    p_active = target_mean_active / num_stations
    if not 0 < p_active < 1:
        raise ValueError("target mean must be between 0 and num_stations")
    mean_dwell_active = 5.0
    mean_dwell_idle = mean_dwell_active * (1 - p_active) / p_active
    p_leave_active = 1.0 / mean_dwell_active
    p_leave_idle = 1.0 / mean_dwell_idle

    gen = rng.child("active-stas").generator
    state = gen.random(num_stations) < p_active
    counts = np.empty(duration_s, dtype=int)
    for t in range(duration_s):
        counts[t] = int(state.sum())
        flips = gen.random(num_stations)
        leave = np.where(state, flips < p_leave_active, flips < p_leave_idle)
        state = np.where(leave, ~state, state)
    return counts
