"""Brady-model VoIP traffic (§7.2.2).

The paper generates VoIP with Brady's two-state conversational model: a
talker alternates exponentially-distributed talkspurts (ON) and silences
(OFF); during ON the codec emits fixed-size frames at the peak rate. The
evaluation uses a 96 kbit/s peak rate with 120-byte frames per the IEEE
802.11n usage models — one frame every 10 ms during a talkspurt.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.frames import Arrival, Direction
from repro.util.rng import RngStream

__all__ = ["BradyModel", "voip_downlink_arrivals", "voip_uplink_arrivals"]


@dataclass(frozen=True)
class BradyModel:
    """Parameters of the ON/OFF conversational model.

    Brady's classic measurements put mean talkspurt ≈ 1.0 s and mean
    silence ≈ 1.35 s (≈ 42 % voice activity).
    """

    peak_rate_bps: float = 96_000.0
    frame_bytes: int = 120
    mean_on: float = 1.0
    mean_off: float = 1.35

    def __post_init__(self):
        if self.peak_rate_bps <= 0 or self.frame_bytes <= 0:
            raise ValueError("rate and frame size must be positive")
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ValueError("ON/OFF means must be positive")

    @property
    def frame_interval(self) -> float:
        """Seconds between frames during a talkspurt (10 ms by default)."""
        return 8 * self.frame_bytes / self.peak_rate_bps

    @property
    def activity_factor(self) -> float:
        """Long-run fraction of time in the ON state."""
        return self.mean_on / (self.mean_on + self.mean_off)

    def mean_offered_load_bps(self) -> float:
        """Average per-flow offered load."""
        return self.peak_rate_bps * self.activity_factor


def _one_flow(source: str, destination: str, direction: str, duration: float,
              model: BradyModel, rng: RngStream) -> list:
    arrivals = []
    # Random initial phase: start ON with probability = activity factor.
    on = bool(rng.uniform() < model.activity_factor)
    t = 0.0
    while t < duration:
        if on:
            period = float(rng.exponential(model.mean_on))
            next_frame = t
            end = min(t + period, duration)
            while next_frame < end:
                arrivals.append(
                    Arrival(
                        time=next_frame,
                        source=source,
                        destination=destination,
                        size_bytes=model.frame_bytes,
                        delay_sensitive=True,
                        direction=direction,
                    )
                )
                next_frame += model.frame_interval
            t += period
        else:
            t += float(rng.exponential(model.mean_off))
        on = not on
    return arrivals


def voip_downlink_arrivals(station_names: list, duration: float, rng: RngStream,
                           model: BradyModel | None = None, ap_name: str = "ap") -> list:
    """One downlink VoIP flow per STA, queued at the AP. Sorted by time."""
    model = model or BradyModel()
    arrivals = []
    for sta in station_names:
        arrivals.extend(
            _one_flow(ap_name, sta, Direction.DOWNLINK, duration, model,
                      rng.child(f"voip-down-{sta}"))
        )
    arrivals.sort(key=lambda a: a.time)
    return arrivals


def voip_uplink_arrivals(station_names: list, duration: float, rng: RngStream,
                         model: BradyModel | None = None, ap_name: str = "ap") -> list:
    """One uplink VoIP flow per STA (the conversation's other direction)."""
    model = model or BradyModel()
    arrivals = []
    for sta in station_names:
        arrivals.extend(
            _one_flow(sta, ap_name, Direction.UPLINK, duration, model,
                      rng.child(f"voip-up-{sta}"))
        )
    arrivals.sort(key=lambda a: a.time)
    return arrivals
