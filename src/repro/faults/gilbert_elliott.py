"""Gilbert–Elliott bursty-loss processes.

The classic two-state Markov channel: a *good* state with low loss and a
*bad* state with high loss, switching with per-step probabilities. Losses
cluster into bursts whose mean length is 1/p_bad_to_good — the regime the
paper's clean AWGN/fading models never exercise, and the one that breaks
aggregation hardest (one bad period kills every subframe it overlaps).

Two granularities are provided:

* :class:`GilbertElliott` — discrete steps (one step per OFDM symbol, or
  per frame), with the closed-form stationary loss rate the property tests
  check against.
* :class:`BurstTimeline` — continuous time (exponential sojourns), used by
  the MAC fault injector to decide whether a transmission interval overlaps
  a bad period. Segments are generated lazily and cached, so repeated
  queries at any time are consistent and the process is fully determined by
  its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream

__all__ = ["GilbertElliott", "BurstTimeline"]


@dataclass(frozen=True)
class GilbertElliott:
    """Discrete two-state Markov loss model.

    Attributes:
        p_good_to_bad: Per-step transition probability good → bad.
        p_bad_to_good: Per-step transition probability bad → good
            (mean burst length = 1/p_bad_to_good steps).
        loss_good: Loss probability while in the good state.
        loss_bad: Loss probability while in the bad state.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self):
        for name in ("p_good_to_bad", "p_bad_to_good"):
            p = getattr(self, name)
            if not 0.0 < p <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {p}")
        for name in ("loss_good", "loss_bad"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    def stationary_bad_probability(self) -> float:
        """π_B = p_gb / (p_gb + p_bg) — long-run fraction of bad steps."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    def stationary_loss_rate(self) -> float:
        """Closed-form long-run loss rate: (1−π_B)·loss_good + π_B·loss_bad."""
        pi_bad = self.stationary_bad_probability()
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def mean_burst_length(self) -> float:
        """Mean sojourn in the bad state, in steps."""
        return 1.0 / self.p_bad_to_good

    def sample_states(self, n: int, rng) -> np.ndarray:
        """(n,) boolean array, True = bad. Starts from the stationary law.

        Generated as alternating runs with geometric lengths — identical in
        distribution to stepping the chain, but vectorised per run.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        gen = rng.generator if isinstance(rng, RngStream) else rng
        states = np.empty(n, dtype=bool)
        bad = bool(gen.random() < self.stationary_bad_probability())
        filled = 0
        while filled < n:
            p_leave = self.p_bad_to_good if bad else self.p_good_to_bad
            run = int(gen.geometric(p_leave))
            stop = min(filled + run, n)
            states[filled:stop] = bad
            filled = stop
            bad = not bad
        return states

    def sample_losses(self, n: int, rng) -> np.ndarray:
        """(n,) boolean array of per-step loss outcomes."""
        gen = rng.generator if isinstance(rng, RngStream) else rng
        states = self.sample_states(n, gen)
        p = np.where(states, self.loss_bad, self.loss_good)
        return gen.random(n) < p


class BurstTimeline:
    """Continuous-time good/bad alternation with exponential sojourns.

    Args:
        mean_good: Mean good-period duration in seconds.
        mean_bad: Mean bad-period duration in seconds.
        rng: Seeded stream; the whole timeline is a pure function of it.

    Segments are materialised lazily up to the largest time queried, so the
    realisation is identical no matter how (or how often) it is probed.
    """

    def __init__(self, mean_good: float, mean_bad: float, rng: RngStream):
        if mean_good <= 0 or mean_bad <= 0:
            raise ValueError("mean sojourn times must be positive")
        self.mean_good = mean_good
        self.mean_bad = mean_bad
        self._gen = rng.generator if isinstance(rng, RngStream) else rng
        # Start-state drawn from the stationary occupancy of the renewal
        # process (time-weighted, not step-weighted).
        p_bad = mean_bad / (mean_good + mean_bad)
        self._segments: list = []  # (start, end, is_bad)
        self._horizon = 0.0
        self._next_bad = bool(self._gen.random() < p_bad)

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            mean = self.mean_bad if self._next_bad else self.mean_good
            duration = float(self._gen.exponential(mean))
            self._segments.append((self._horizon, self._horizon + duration, self._next_bad))
            self._horizon += duration
            self._next_bad = not self._next_bad

    def bad_overlap(self, start: float, end: float) -> float:
        """Seconds of [start, end) spent in a bad period."""
        if end < start:
            raise ValueError("end must be >= start")
        self._extend_to(end)
        overlap = 0.0
        for seg_start, seg_end, is_bad in self._segments:
            if seg_end <= start:
                continue
            if seg_start >= end:
                break
            if is_bad:
                overlap += min(end, seg_end) - max(start, seg_start)
        return overlap

    def is_bad(self, start: float, end: float | None = None) -> bool:
        """Does [start, end) (or the instant ``start``) touch a bad period?"""
        if end is None:
            end = start
        self._extend_to(end)
        for seg_start, seg_end, is_bad in self._segments:
            if is_bad and seg_start < end + 1e-12 and seg_end > start:
                return True
            if seg_start >= end:
                break
        return False
