"""PHY-layer impairment injectors.

Each impairment transforms the (n_symbols, 52) frequency-domain symbol
array inside :class:`repro.channel.model.ChannelModel`, either before AWGN
(channel effects: fades, phase ramps) or after it (receiver-side additive
events: impulse noise). Injectors draw exclusively from the channel's
dedicated ``faults`` child stream, so a model built *without* impairments
produces bit-identical output to one built before this module existed.

All stochastic draws happen inside :meth:`apply` at transmit time, making
a sequence of frames through one channel a pure function of the seed.
"""

from __future__ import annotations

import numpy as np

from repro.faults.gilbert_elliott import GilbertElliott
from repro.faults.plan import FaultSpec
from repro.phy.cfo import phase_step_from_cfo
from repro.phy.constants import FFT_SIZE, USED_SUBCARRIER_INDICES

__all__ = [
    "PhyImpairment",
    "ResidualCfoImpairment",
    "TimingOffsetImpairment",
    "DeepFadeImpairment",
    "ImpulseNoiseImpairment",
    "GilbertElliottFadeImpairment",
    "build_impairment",
]


class PhyImpairment:
    """Base injector. ``stage`` selects pre- or post-AWGN application."""

    stage = "pre_noise"  # or "post_noise"

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    def apply(self, symbols: np.ndarray, rng, symbol_duration: float) -> np.ndarray:
        """Transform one frame's (n, 52) symbol array; must not mutate input."""
        raise NotImplementedError


class ResidualCfoImpairment(PhyImpairment):
    """Extra un-corrected CFO: ``magnitude`` Hz of residual offset.

    Models the regime where the LTF-based estimate is stale or biased —
    e.g. oscillator drift mid-association — leaving a rotation the pilots
    must absorb every symbol.
    """

    def apply(self, symbols, rng, symbol_duration):
        step = phase_step_from_cfo(self.spec.magnitude, symbol_duration)
        ramp = np.exp(1j * step * np.arange(symbols.shape[0]))
        return symbols * ramp[:, None]


class TimingOffsetImpairment(PhyImpairment):
    """Sample-timing offset of ``magnitude`` samples.

    A timing error of δ samples rotates subcarrier k by 2π·k·δ/N — a
    frequency-proportional phase slope that common-phase pilot tracking
    cannot remove (it is not common across subcarriers).
    """

    def apply(self, symbols, rng, symbol_duration):
        slope = np.exp(
            -2j * np.pi * USED_SUBCARRIER_INDICES * self.spec.magnitude / FFT_SIZE
        )
        return symbols * slope[None, :]


class DeepFadeImpairment(PhyImpairment):
    """A mid-frame deep fade: ``magnitude`` dB down over ``length`` symbols.

    ``position`` (param) fixes the first faded symbol; -1 draws a fresh
    position uniformly per frame. ``probability`` gates whether a given
    frame is hit at all (default: every frame).
    """

    def apply(self, symbols, rng, symbol_duration):
        n = symbols.shape[0]
        probability = self.spec.probability or 1.0
        if probability < 1.0 and not (rng.uniform() < probability):
            return symbols
        position = int(self.spec.param("position", -1))
        if position < 0:
            position = int(rng.integers(0, max(n - self.spec.length + 1, 1)))
        attenuation = 10.0 ** (-self.spec.magnitude / 20.0)
        out = symbols.copy()
        out[position : position + self.spec.length] *= attenuation
        return out


class ImpulseNoiseImpairment(PhyImpairment):
    """Impulse-noise bursts: ``magnitude`` dB above unit signal power,
    ``length`` symbols long, igniting at each symbol w.p. ``probability``."""

    stage = "post_noise"

    def apply(self, symbols, rng, symbol_duration):
        n = symbols.shape[0]
        starts = rng.uniform(size=n) < self.spec.probability
        if not starts.any():
            return symbols
        hit = np.zeros(n, dtype=bool)
        for i in np.flatnonzero(starts):
            hit[i : i + self.spec.length] = True
        sigma = 10.0 ** (self.spec.magnitude / 20.0)
        out = symbols.copy()
        burst = rng.complex_normal(scale=sigma, size=(int(hit.sum()), symbols.shape[1]))
        out[hit] += burst
        return out


class GilbertElliottFadeImpairment(PhyImpairment):
    """Per-symbol Gilbert–Elliott fading: bad-state symbols drop by
    ``magnitude`` dB. Burst statistics come from ``p_good_to_bad`` /
    ``p_bad_to_good`` (per-symbol transition probabilities)."""

    def __init__(self, spec: FaultSpec):
        super().__init__(spec)
        self.chain = GilbertElliott(
            p_good_to_bad=float(spec.param("p_good_to_bad", 0.05)),
            p_bad_to_good=float(spec.param("p_bad_to_good", 0.25)),
        )

    def apply(self, symbols, rng, symbol_duration):
        bad = self.chain.sample_states(symbols.shape[0], rng.generator)
        if not bad.any():
            return symbols
        attenuation = 10.0 ** (-self.spec.magnitude / 20.0)
        out = symbols.copy()
        out[bad] *= attenuation
        return out


_BUILDERS = {
    "residual_cfo": ResidualCfoImpairment,
    "timing_offset": TimingOffsetImpairment,
    "deep_fade": DeepFadeImpairment,
    "impulse_noise": ImpulseNoiseImpairment,
    "ge_fade": GilbertElliottFadeImpairment,
}


def build_impairment(spec: FaultSpec) -> PhyImpairment:
    """Instantiate the injector class for a PHY fault spec."""
    try:
        return _BUILDERS[spec.kind](spec)
    except KeyError:
        raise ValueError(f"{spec.kind!r} is not a PHY fault kind") from None
