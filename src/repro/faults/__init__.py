"""Seeded, composable fault injection across the PHY/MAC/receiver stack.

``repro.faults`` turns the reproduction's happy-path models into a
stress-testing harness: declarative :class:`FaultPlan` objects describe
channel impairments (residual CFO, timing offset, deep fades, impulse
noise, Gilbert–Elliott bursts) and MAC faults (ACK/CTS loss, A-HDR
corruption, bursty subframe loss, hidden-terminal windows), and the
channel model / MAC engine consume them through dedicated hooks. Every
fault draws from its own RNG child stream, so scenarios replay
bit-identically and fault-free runs are untouched.
"""

from repro.faults.gilbert_elliott import BurstTimeline, GilbertElliott
from repro.faults.mac import MacFaultInjector
from repro.faults.phy import (
    DeepFadeImpairment,
    GilbertElliottFadeImpairment,
    ImpulseNoiseImpairment,
    PhyImpairment,
    ResidualCfoImpairment,
    TimingOffsetImpairment,
    build_impairment,
)
from repro.faults.plan import (
    MAC_FAULT_KINDS,
    PHY_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "PHY_FAULT_KINDS",
    "MAC_FAULT_KINDS",
    "GilbertElliott",
    "BurstTimeline",
    "MacFaultInjector",
    "PhyImpairment",
    "ResidualCfoImpairment",
    "TimingOffsetImpairment",
    "DeepFadeImpairment",
    "ImpulseNoiseImpairment",
    "GilbertElliottFadeImpairment",
    "build_impairment",
]
