"""Declarative, reproducible fault plans.

A :class:`FaultPlan` is a frozen, picklable description of *which* faults
to inject, *when*, and *how hard* — the single artefact a degradation
experiment needs to be replayed bit-identically. Plans compose freely:

    plan = FaultPlan.of(
        FaultSpec.make("ack_loss", probability=0.1, start=2.0, stop=6.0),
        FaultSpec.make("impulse_noise", probability=0.05, magnitude=12.0,
                       length=4),
    )

Every fault kind draws from its own dedicated RNG child stream (derived
from the kind name plus an optional ``seed_salt``), so enabling a plan
never perturbs the backoff/error/noise streams of the baseline simulation:
trials the faults do not touch stay bit-identical to a fault-free run.

PHY kinds (applied to OFDM symbol arrays inside :class:`ChannelModel`):

* ``residual_cfo`` — extra un-corrected CFO; ``magnitude`` = Hz.
* ``timing_offset`` — sample-timing offset; ``magnitude`` = samples.
* ``deep_fade`` — a mid-frame fade of ``magnitude`` dB over ``length``
  symbols starting at ``position`` (-1 = random per frame).
* ``impulse_noise`` — noise bursts ``magnitude`` dB above the signal,
  ``length`` symbols long, starting at each symbol w.p. ``probability``.
* ``ge_fade`` — Gilbert–Elliott per-symbol fade: bad-state symbols are
  attenuated by ``magnitude`` dB; ``p_good_to_bad``/``p_bad_to_good``
  set the burst statistics.

MAC kinds (consumed by :class:`repro.faults.mac.MacFaultInjector`):

* ``ack_loss`` — each ACK is lost w.p. ``probability``.
* ``cts_loss`` — an RTS/CTS exchange fails w.p. ``probability``.
* ``ahdr_corruption`` — a Carpool aggregate's A-HDR is corrupted w.p.
  ``probability``; each intended STA then misses its subframe w.p.
  ``miss_probability`` and bystanders falsely match w.p.
  ``false_match_probability``.
* ``mac_burst`` — a Gilbert–Elliott bursty channel in *time*
  (``mean_good``/``mean_bad`` second sojourns); subframes overlapping a
  bad period fail w.p. ``probability``.
* ``hidden_window`` — a hidden terminal fires into any AP transmission
  w.p. ``probability`` while the window is active.

All faults honour their ``[start, stop)`` activation window in simulation
time (PHY faults: in seconds of MAC time are not available, so their
window is interpreted per frame via the frame counter when ``unit="frames"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["FaultSpec", "FaultPlan", "PHY_FAULT_KINDS", "MAC_FAULT_KINDS"]

PHY_FAULT_KINDS = (
    "residual_cfo",
    "timing_offset",
    "deep_fade",
    "impulse_noise",
    "ge_fade",
)

MAC_FAULT_KINDS = (
    "ack_loss",
    "cts_loss",
    "ahdr_corruption",
    "mac_burst",
    "hidden_window",
)

_KNOWN_KINDS = PHY_FAULT_KINDS + MAC_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, activation window, intensity, extra parameters.

    ``params`` is a tuple of sorted ``(name, value)`` pairs so the spec
    stays hashable and picklable; build specs with :meth:`make` and read
    extras with :meth:`param`.
    """

    kind: str
    start: float = 0.0
    stop: float = math.inf
    probability: float = 0.0
    magnitude: float = 0.0
    length: int = 1
    seed_salt: str = ""
    params: tuple = ()

    def __post_init__(self):
        if self.kind not in _KNOWN_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {sorted(_KNOWN_KINDS)}")
        if self.stop < self.start:
            raise ValueError("stop must be >= start")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.length < 1:
            raise ValueError("length must be >= 1")

    @classmethod
    def make(cls, kind: str, *, start: float = 0.0, stop: float = math.inf,
             probability: float = 0.0, magnitude: float = 0.0, length: int = 1,
             seed_salt: str = "", **params) -> "FaultSpec":
        """Build a spec; free-form keyword extras land in ``params``."""
        return cls(kind=kind, start=start, stop=stop, probability=probability,
                   magnitude=magnitude, length=length, seed_salt=seed_salt,
                   params=tuple(sorted(params.items())))

    def param(self, name: str, default=None):
        """Read a kind-specific extra parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def active_at(self, t: float) -> bool:
        """Is this fault's activation window open at time ``t``?"""
        return self.start <= t < self.stop

    @property
    def stream_name(self) -> str:
        """The dedicated RNG child-stream name for this fault's draws."""
        suffix = f"-{self.seed_salt}" if self.seed_salt else ""
        return f"fault-{self.kind}{suffix}"

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "kind": self.kind,
            "start": self.start,
            "stop": self.stop,
            "probability": self.probability,
            "magnitude": self.magnitude,
            "length": self.length,
            "seed_salt": self.seed_salt,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        extras = data.get("params", {})
        return cls.make(
            data["kind"],
            start=data.get("start", 0.0),
            stop=data.get("stop", math.inf),
            probability=data.get("probability", 0.0),
            magnitude=data.get("magnitude", 0.0),
            length=data.get("length", 1),
            seed_salt=data.get("seed_salt", ""),
            **extras,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A composition of :class:`FaultSpec` — the reproducible scenario unit."""

    specs: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        names = [spec.stream_name for spec in self.specs]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(
                f"duplicate fault streams {sorted(dupes)}: give repeated kinds "
                f"distinct seed_salt values so their draws stay independent"
            )

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        """Build a plan from specs."""
        return cls(specs=tuple(specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def of_kind(self, kind: str) -> tuple:
        """All specs of one kind."""
        return tuple(s for s in self.specs if s.kind == kind)

    @property
    def phy_specs(self) -> tuple:
        """Specs consumed by the PHY/channel layer."""
        return tuple(s for s in self.specs if s.kind in PHY_FAULT_KINDS)

    @property
    def mac_specs(self) -> tuple:
        """Specs consumed by the MAC engine."""
        return tuple(s for s in self.specs if s.kind in MAC_FAULT_KINDS)

    def phy_impairments(self) -> list:
        """Instantiate the PHY impairment objects for :class:`ChannelModel`."""
        from repro.faults.phy import build_impairment

        return [build_impairment(spec) for spec in self.phy_specs]

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(specs=tuple(FaultSpec.from_dict(d) for d in data.get("specs", ())))
