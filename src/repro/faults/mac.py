"""MAC-layer fault injection for :class:`repro.mac.engine.WlanSimulator`.

The engine consults one :class:`MacFaultInjector` at well-defined points of
a transmission (ACK reception, RTS/CTS exchange, A-HDR decode, subframe
decode, carrier sensing). Every fault kind owns a *dedicated* child RNG
stream, spawned lazily from the injector's root stream by the spec's
``stream_name`` — never shared with the engine's backoff/error/hidden
streams — so:

* a simulator built with ``faults=None`` performs zero extra draws and is
  bit-identical to the pre-fault-framework engine;
* a plan whose faults never fire (window elapsed, probability 0) leaves
  the trajectory of unaffected trials untouched.

Draws are only performed while a spec's activation window is open and its
probability is non-zero.
"""

from __future__ import annotations

from repro.faults.gilbert_elliott import BurstTimeline
from repro.faults.plan import FaultPlan, FaultSpec
from repro.util.rng import RngStream

__all__ = ["MacFaultInjector"]


class MacFaultInjector:
    """Evaluates a :class:`FaultPlan`'s MAC faults against a live simulation.

    Args:
        plan: The declarative fault plan (only its MAC specs are used).
        rng: Root stream for fault draws — pass a dedicated child of the
            simulator's stream (the engine uses ``rng.child("faults")``).
    """

    def __init__(self, plan: FaultPlan, rng: RngStream):
        self.plan = plan
        self._rng = rng
        self._streams: dict = {}
        self._timelines: dict = {}
        # Exposed counters for instrumentation/tests.
        self.ack_losses = 0
        self.cts_losses = 0
        self.ahdr_corruptions = 0
        self.ahdr_false_matches = 0
        self.burst_failures = 0
        self.hidden_hits = 0

    def _stream(self, spec: FaultSpec) -> RngStream:
        stream = self._streams.get(spec.stream_name)
        if stream is None:
            stream = self._rng.child(spec.stream_name)
            self._streams[spec.stream_name] = stream
        return stream

    def _active(self, kind: str, now: float):
        for spec in self.plan.of_kind(kind):
            if spec.active_at(now):
                return spec
        return None

    # --- per-event queries (engine hooks) --------------------------------- #

    def ack_lost(self, now: float) -> bool:
        """Is the ACK transmitted at ``now`` lost?"""
        spec = self._active("ack_loss", now)
        if spec is None or spec.probability <= 0.0:
            return False
        lost = bool(self._stream(spec).uniform() < spec.probability)
        if lost:
            self.ack_losses += 1
        return lost

    def cts_lost(self, now: float) -> bool:
        """Does the RTS/CTS exchange starting at ``now`` fail?"""
        spec = self._active("cts_loss", now)
        if spec is None or spec.probability <= 0.0:
            return False
        lost = bool(self._stream(spec).uniform() < spec.probability)
        if lost:
            self.cts_losses += 1
        return lost

    def ahdr_corrupted(self, now: float):
        """Corruption outcome for a Carpool aggregate sent at ``now``.

        Returns None when the A-HDR survives, else the active spec — the
        engine then consults :meth:`ahdr_subframe_missed` per subframe and
        :meth:`ahdr_false_match` per bystander.
        """
        spec = self._active("ahdr_corruption", now)
        if spec is None or spec.probability <= 0.0:
            return None
        if self._stream(spec).uniform() < spec.probability:
            self.ahdr_corruptions += 1
            return spec
        return None

    def ahdr_subframe_missed(self, spec: FaultSpec) -> bool:
        """Given a corrupted A-HDR, does this intended STA miss its subframe?"""
        miss_p = float(spec.param("miss_probability", 1.0))
        if miss_p >= 1.0:
            return True
        return bool(self._stream(spec).uniform() < miss_p)

    def ahdr_false_match(self, spec: FaultSpec) -> bool:
        """Given a corrupted A-HDR, does a bystander falsely match?"""
        fp = float(spec.param("false_match_probability", 0.0))
        if fp <= 0.0:
            return False
        hit = bool(self._stream(spec).uniform() < fp)
        if hit:
            self.ahdr_false_matches += 1
        return hit

    def subframe_burst_failed(self, t_start: float, t_end: float) -> bool:
        """Does the bursty-loss channel kill a subframe on air [start, end)?"""
        spec = self._active("mac_burst", t_start)
        if spec is None:
            return False
        timeline = self._timelines.get(spec.stream_name)
        if timeline is None:
            timeline = BurstTimeline(
                mean_good=float(spec.param("mean_good", 0.050)),
                mean_bad=float(spec.param("mean_bad", 0.005)),
                rng=self._stream(spec),
            )
            self._timelines[spec.stream_name] = timeline
        if not timeline.is_bad(t_start, t_end):
            return False
        probability = spec.probability or 1.0
        failed = probability >= 1.0 or bool(self._stream(spec).uniform() < probability)
        if failed:
            self.burst_failures += 1
        return failed

    def hidden_window_hit(self, now: float) -> bool:
        """Does an (injected) hidden terminal fire into this transmission?"""
        spec = self._active("hidden_window", now)
        if spec is None or spec.probability <= 0.0:
            return False
        hit = bool(self._stream(spec).uniform() < spec.probability)
        if hit:
            self.hidden_hits += 1
        return hit

    def counters(self) -> dict:
        """Snapshot of injected-fault counts (for reports and tests)."""
        return {
            "ack_losses": self.ack_losses,
            "cts_losses": self.cts_losses,
            "ahdr_corruptions": self.ahdr_corruptions,
            "ahdr_false_matches": self.ahdr_false_matches,
            "burst_failures": self.burst_failures,
            "hidden_hits": self.hidden_hits,
        }
