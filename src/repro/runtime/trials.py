"""Seeded, chunked parallel execution of Monte-Carlo trials.

Every paper figure is a Monte-Carlo sweep: hundreds of statistically
independent trials pushed through the PHY/MAC stack. This module is the
shared runtime those sweeps go through:

* **Determinism** — each trial gets its own RNG derived with
  ``np.random.SeedSequence(seed).spawn(n_trials)``, so trial *i* sees the
  same random stream no matter which worker runs it, in what order, or how
  the trials are chunked. Serial and parallel runs are bit-identical.
* **Parallelism** — trials are grouped into chunks and submitted to a
  ``ProcessPoolExecutor``; the worker count auto-detects from
  ``REPRO_WORKERS`` or ``os.cpu_count()``. ``n_workers=1`` (or a single
  trial) short-circuits to a plain loop with zero pool overhead.
* **Pool persistence** — worker pools are kept alive and reused across
  :func:`run_trials` / :func:`parallel_map` calls, keyed by worker count
  and a *content fingerprint* of the shared payload
  (:func:`repro.runtime.cache.stable_digest`): an equal re-created
  payload maps back onto the warm pool, distinct payloads can never
  alias one. ``reuse_pool=False`` restores the old per-call pools;
  :func:`shutdown_pools` tears everything down.
* **Zero-copy shared tables** — pass ``shared=...`` to ship one payload
  to every worker; numpy-array payloads travel through one
  ``multiprocessing.shared_memory`` segment (:mod:`repro.runtime.shm`)
  and are rebuilt in each worker as read-only views — no per-worker
  pickle copy. Non-array or tiny payloads fall back to the pool
  initializer pickle. Trial functions read the payload back with
  :func:`shared_payload` on every path, serial included.
* **Batched chunks** — pass ``batch_fn=...`` to run a whole chunk of
  trials as *one* vectorised call instead of N scalar calls. The batch
  function receives the same per-trial ``SeedSequence`` children the
  scalar path would and must return bit-identical per-trial results;
  traced runs always take the scalar path so correlation ids attach to
  single trials.
* **Coarse work units** — ``granularity=k`` aligns chunk boundaries to
  multiples of *k* trials, so callers whose trials come in tiles (a MAC
  sweep cell's repeats, a deployment cell's members) never see a tile
  split across workers.
* **Worker-side reduction** — pass ``reduce_fn=`` / ``reduce_init=`` and
  each worker folds its chunk's per-trial results into one small
  mergeable accumulator *before* IPC: only accumulators cross the pipe,
  and the parent merges them in span order. The scalar per-trial path
  stays the oracle — traced runs bypass worker reduction (the parent
  folds instead) so traces stay byte-identical — which is only sound
  when the accumulator is exactly associative; see
  :mod:`repro.runtime.reduction` for primitives that are.
* **Lazy trial specs** — pass ``trial_source=`` (a picklable
  ``(start, stop) -> sequence``) and each chunk *generates* its own
  shard of work items inside the worker instead of the parent
  materialising (and shipping) the whole list up front; the trial
  function then receives the item as ``fn(index, rng, item, *args)``.
* **IPC accounting** — when metrics are being collected, the parent
  counts the pickled size of every chunk result it receives under
  ``runtime.ipc_result_bytes``, which is how the bench proves reduction
  actually shrinks the pipe traffic.
* **Chunk autotuning** — ``chunk_size="auto"`` measures the actual
  round-trip cost of a pool submission (cached per pool) plus a short
  serial probe of the trial cost, and picks the smallest chunk that
  keeps IPC overhead to a few percent of useful work.
* **Generality** — :func:`parallel_map` gives the same chunked, ordered
  semantics for non-trial workloads (e.g. the MAC scenario sweeps, where
  each item is one ``(scenario, protocol)`` cell).

The trial function and its extra arguments must be picklable (a module-level
function, not a lambda or closure).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..obs.log import get_logger
from ..obs.profile import profile_capture
from ..obs.trace import (
    active_recorder,
    chunk_capture,
    ingest_chunk,
    metrics,
    metrics_enabled,
    suspended,
    trial_correlation_id,
    worker_spec,
)
from .shm import SharedPayload, pack_payload, payload_fingerprint

log = get_logger(__name__)

__all__ = [
    "resolve_workers",
    "trial_rngs",
    "run_trials",
    "parallel_map",
    "autotune_chunk_size",
    "persistent_pool",
    "shared_payload",
    "shutdown_pools",
    "ChunkFailure",
    "TrialRunResult",
]


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk of trials that could not be completed."""

    start: int
    stop: int
    attempts: int
    error: str

    @property
    def n_trials(self) -> int:
        return self.stop - self.start


@dataclass
class TrialRunResult:
    """Salvaged outcome of a hardened :func:`run_trials` run.

    ``results`` has one slot per trial, in trial order; trials belonging to
    a failed chunk hold ``None``. ``failures`` summarises every chunk that
    exhausted its retries.
    """

    results: list
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def n_completed(self) -> int:
        return sum(r is not None for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(f.n_trials for f in self.failures)

    def completed(self) -> list:
        """The successful results only (order preserved)."""
        return [r for r in self.results if r is not None]

    def failure_summary(self) -> str:
        """One line per failed chunk, for logs and error reports."""
        if not self.failures:
            return "all chunks completed"
        lines = [
            f"trials {f.start}..{f.stop - 1} failed after {f.attempts} "
            f"attempt(s): {f.error}"
            for f in self.failures
        ]
        return "\n".join(lines)


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_WORKERS`` > CPU count."""
    if n_workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                ) from None
        else:
            n_workers = os.cpu_count() or 1
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def trial_rngs(seed: int, n_trials: int) -> list:
    """Independent per-trial generators via ``SeedSequence.spawn``."""
    return [np.random.default_rng(ss) for ss in _trial_seeds(seed, n_trials)]


def _trial_seeds(seed: int, n_trials: int):
    return np.random.SeedSequence(seed).spawn(n_trials)


def _mp_context():
    """Prefer fork where available: cheap start-up, no re-import races."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _round_up(value: int, granularity: int) -> int:
    return -(-value // granularity) * granularity


def _chunk_spans(n: int, chunk_size: int) -> list:
    return [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


# --------------------------------------------------------------------------- #
# Persistent pools and shared read-only payloads.
# --------------------------------------------------------------------------- #


@dataclass
class _PoolEntry:
    """One registered persistent pool and the payload state it was built on."""

    pool: ProcessPoolExecutor
    shared: object
    descriptor: SharedPayload | None
    fingerprint: str | None
    ipc_seconds: float | None = None


# Pool registry: (max_workers, payload_fingerprint | None) -> _PoolEntry.
# A worker's payload is fixed at initializer time, so the registry keys by
# *content*: an equal re-created payload (same fingerprint) reuses the warm
# pool, a different payload at the same worker count retires the old pool
# rather than leaking it (sweeps call run_trials(shared=...) with a fresh
# payload per invocation), and two distinct payloads can never alias.
_POOLS: dict = {}

# The worker-side (and serial-path) shared payload, set per worker by the
# pool initializer instead of being pickled into every chunk. _SHARED_TOKEN
# pins the SharedPayload descriptor (and its attached segment) for as long
# as the materialised views are in use.
_SHARED = None
_SHARED_TOKEN = None


def _init_worker(token) -> None:
    """Pool initializer: stash the shared read-only payload in the worker.

    ``token`` is either the payload itself (plain-pickle fallback) or a
    :class:`~repro.runtime.shm.SharedPayload` descriptor, in which case
    the worker attaches the segment and rebuilds zero-copy views.
    """
    global _SHARED, _SHARED_TOKEN
    if isinstance(token, SharedPayload):
        _SHARED_TOKEN = token
        _SHARED = token.materialize()
    else:
        _SHARED_TOKEN = None
        _SHARED = token


def shared_payload():
    """The payload this worker was initialised with (``None`` if absent).

    Trial functions call this instead of taking big read-only tables
    through ``args`` — the payload crosses the process boundary once per
    worker (at pool start-up, as shared-memory views where possible)
    rather than once per chunk.
    """
    return _SHARED


@contextmanager
def _payload_installed(shared):
    """Expose ``shared`` via :func:`shared_payload` for the duration.

    Serial runs (and the in-parent autotune probe) read the payload
    through the same accessor the workers use. The previous payload is
    restored on exit so a nested ``run_trials(shared=...)`` executing
    *inside* a worker — e.g. a calibration inside a deployment cell —
    cannot clobber the worker's own initializer payload.
    """
    global _SHARED
    if shared is None:
        yield
        return
    previous = _SHARED
    _SHARED = shared
    try:
        yield
    finally:
        _SHARED = previous


def persistent_pool(n_workers: int, shared=None) -> ProcessPoolExecutor:
    """A long-lived pool for ``n_workers``, created on first use.

    Pools are keyed by worker count and the *content fingerprint* of the
    shared payload; repeated calls — including with an equal, re-created
    payload — return the same executor, so process start-up is paid once
    per configuration instead of once per ``run_trials`` call.
    """
    global _SHARED
    fingerprint = payload_fingerprint(shared) if shared is not None else None
    key = (n_workers, fingerprint)
    entry = _POOLS.get(key)
    if entry is not None:
        if shared is not None:
            # Equal content, possibly a different object: point the
            # parent-side accessor at the caller's copy.
            _SHARED = shared
        metrics().counter("runtime.pool_reused").inc()
        return entry.pool
    if shared is not None:
        # A *different* payload at this worker count: the old pool's
        # workers were initialised with the previous tables, so retire it
        # (and unlink its segment) instead of accumulating one pool and
        # one shm segment per historical payload.
        for stale in [k for k in _POOLS if k[0] == n_workers and k[1] is not None]:
            _retire_entry(stale)
    descriptor = None
    if shared is None:
        pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=_mp_context())
    else:
        descriptor = pack_payload(shared)
        if descriptor is not None:
            metrics().counter("runtime.shm_payloads").inc()
        token = descriptor if descriptor is not None else shared
        pool = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(token,),
        )
        # With fork, workers inherit parent globals at spawn time; setting
        # the parent-side payload too keeps shared_payload() consistent
        # everywhere (and serves the n_workers=1 serial path).
        _SHARED = shared
    _POOLS[key] = _PoolEntry(pool=pool, shared=shared, descriptor=descriptor,
                             fingerprint=fingerprint)
    metrics().counter("runtime.pool_spawned").inc()
    log.debug("spawned persistent pool: %d workers, shared=%s, shm=%s",
              n_workers, shared is not None, descriptor is not None)
    return pool


def _retire_entry(key) -> None:
    """Drop one registry entry: tear the pool down, unlink its segment."""
    entry = _POOLS.pop(key, None)
    if entry is None:
        return
    _abandon_pool(entry.pool)
    if entry.descriptor is not None:
        entry.descriptor.release()


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Remove a (broken) pool from the registry and tear it down."""
    for key, entry in list(_POOLS.items()):
        if entry.pool is pool:
            _retire_entry(key)
            return
    _abandon_pool(pool)


def shutdown_pools() -> None:
    """Shut down every persistent pool (registered atexit)."""
    global _SHARED, _SHARED_TOKEN
    for key in list(_POOLS):
        _retire_entry(key)
    _POOLS.clear()
    _SHARED = None
    _SHARED_TOKEN = None


atexit.register(shutdown_pools)


# --------------------------------------------------------------------------- #
# Chunk sizing.
# --------------------------------------------------------------------------- #

# Fallback per-submission IPC cost when no live pool is available to
# measure (disposable pools, hardened runs): a conservative figure for a
# local fork-start executor.
_DEFAULT_IPC_SECONDS = 2e-3


def _noop_chunk():
    return None


def _pool_ipc_seconds(pool, entry=None, repeats: int = 3) -> float:
    """Measured round-trip cost of one no-op pool submission.

    Cached on the registry entry — the cost is a property of the pool and
    the host, not of the workload, so one measurement serves every
    subsequent ``chunk_size="auto"`` call on that pool.
    """
    if entry is not None and entry.ipc_seconds is not None:
        return entry.ipc_seconds
    with suspended():
        pool.submit(_noop_chunk).result()  # absorb worker start-up
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            pool.submit(_noop_chunk).result()
            best = min(best, time.perf_counter() - t0)
    if entry is not None:
        entry.ipc_seconds = best
    return best


def autotune_chunk_size(
    fn,
    n_trials: int,
    *,
    seed: int,
    n_workers: int,
    args: tuple = (),
    granularity: int = 1,
    ipc_seconds: float | None = None,
    target_overhead: float = 0.02,
    max_probe_trials: int = 3,
    max_probe_seconds: float = 0.25,
    trial_source=None,
) -> int:
    """Pick trials-per-chunk so measured IPC cost is amortised.

    Runs up to ``max_probe_trials`` leading trials in-process (their
    results are discarded; the chunks re-run them with identical RNGs, so
    determinism is unaffected) to estimate per-trial cost, then sizes
    chunks so the per-chunk submission cost ``ipc_seconds`` — measured on
    the live pool when the caller has one, a conservative default
    otherwise — stays below ``target_overhead`` of the chunk's useful
    work. The result is rounded up to a ``granularity`` multiple and
    clamped so every worker still gets at least one chunk.
    """
    granularity = max(1, int(granularity))
    if n_trials <= 1 or n_workers <= 1:
        return max(1, n_trials)
    children = _trial_seeds(seed, n_trials)
    probe_n = min(max_probe_trials, n_trials)
    items = None if trial_source is None else list(trial_source(0, probe_n))
    start = time.perf_counter()
    probed = 0
    # Probe results are discarded and the chunks re-run the same trials,
    # so any obs events they would emit are duplicates: suspend capture.
    with suspended():
        for index in range(probe_n):
            rng = np.random.default_rng(children[index])
            if items is not None:
                fn(index, rng, items[index], *args)
            else:
                fn(index, rng, *args)
            probed += 1
            if time.perf_counter() - start >= max_probe_seconds:
                break
    per_trial = (time.perf_counter() - start) / probed
    upper = max(1, -(-n_trials // n_workers))  # ceil: >= one chunk per worker
    upper = _round_up(upper, granularity)
    if per_trial <= 0:
        return upper
    ipc = _DEFAULT_IPC_SECONDS if ipc_seconds is None else max(ipc_seconds, 1e-6)
    min_work_seconds = ipc * (1.0 - target_overhead) / target_overhead
    size = max(granularity, int(-(-min_work_seconds // per_trial)))
    return int(min(_round_up(size, granularity), upper))


def _measured_ipc(n_workers: int, shared) -> float | None:
    """IPC cost of the persistent pool serving ``(n_workers, shared)``."""
    fingerprint = payload_fingerprint(shared) if shared is not None else None
    pool = persistent_pool(n_workers, shared=shared)
    try:
        return _pool_ipc_seconds(pool, _POOLS.get((n_workers, fingerprint)))
    except BrokenProcessPool:
        _discard_pool(pool)
        return None


# --------------------------------------------------------------------------- #
# Chunk execution.
# --------------------------------------------------------------------------- #


class _Reduced:
    """Marks a chunk result as an accumulator rather than per-trial list."""

    __slots__ = ("acc",)

    def __init__(self, acc):
        self.acc = acc

    def __reduce__(self):
        return (_Reduced, (self.acc,))


def _chunk_items(trial_source, start, stop):
    """Materialise one chunk's work items from a lazy trial source."""
    items = list(trial_source(start, stop))
    if len(items) != stop - start:
        raise RuntimeError(
            f"trial_source({start}, {stop}) returned {len(items)} items "
            f"for {stop - start} trials"
        )
    return items


def _run_trial_chunk(fn, seed, n_trials, start, stop, args, obs_spec=None,
                     batch_fn=None, trial_source=None, reduce_fn=None,
                     reduce_init=None):
    """Run trials ``start..stop`` of ``n_trials`` (executes inside a worker).

    The full spawn is recomputed here so a chunk's RNGs are identical to
    the ones a serial run hands the same trial indices — ``spawn`` is cheap
    (micro-seconds per child), so this costs nothing measurable.

    ``obs_spec`` (only passed on pool submissions, and only when the
    parent has observability on) makes the worker capture its own events,
    metrics, and profile spans under a fresh local capture state and return an
    ``ObsChunk`` for the parent to fold back in span order. With it
    ``None`` — every uninstrumented run — the plain results list comes
    back untouched. Serial in-process calls leave it ``None`` too: there
    the parent's own ambient recorder is already active.

    ``batch_fn`` routes the whole chunk through one vectorised call. A
    *traced* chunk always takes the scalar loop instead: correlation ids
    wrap exactly one trial's events, which a batched call cannot honour —
    and since ``batch_fn`` is bit-identical by contract, tracing only
    changes wall time, never results.

    ``trial_source`` generates this chunk's work items in-process; the
    trial function then runs as ``fn(index, rng, item, *args)``.

    ``reduce_fn`` / ``reduce_init`` fold the chunk's results into one
    accumulator, returned wrapped in :class:`_Reduced` so the parent can
    tell it from a per-trial list. A *traced* chunk skips the fold and
    returns per-trial results — the parent folds them instead, which is
    result-identical exactly because the accumulators are associative —
    so the trace carries the same per-trial events at any worker count.
    """
    children = _trial_seeds(seed, n_trials)[start:stop]
    items = (None if trial_source is None
             else _chunk_items(trial_source, start, stop))

    def one(index, ss):
        rng = np.random.default_rng(ss)
        if items is not None:
            return fn(index, rng, items[index - start], *args)
        return fn(index, rng, *args)

    def payload():
        rec = active_recorder()
        if rec is None:
            if batch_fn is not None:
                rngs = [np.random.default_rng(ss) for ss in children]
                if items is not None:
                    results = list(batch_fn(start, rngs, items, *args))
                else:
                    results = list(batch_fn(start, rngs, *args))
                if len(results) != stop - start:
                    raise RuntimeError(
                        f"batch_fn returned {len(results)} results for "
                        f"{stop - start} trials"
                    )
                if reduce_fn is not None:
                    acc = reduce_init()
                    for index, result in zip(range(start, stop), results):
                        acc = reduce_fn(acc, index, result)
                    return _Reduced(acc)
                return results
            if reduce_fn is not None:
                acc = reduce_init()
                for index, ss in zip(range(start, stop), children):
                    acc = reduce_fn(acc, index, one(index, ss))
                return _Reduced(acc)
            return [one(index, ss)
                    for index, ss in zip(range(start, stop), children)]
        results = []
        for index, ss in zip(range(start, stop), children):
            # Correlation ids derive from the run seed and the trial's
            # SeedSequence spawn position, never id()/clock, so serial
            # and parallel traces carry identical ids.
            with rec.correlate(trial_correlation_id(seed, index)):
                results.append(one(index, ss))
        return results

    with chunk_capture(obs_spec) as wrap:
        # The profiled span must close before wrap() snapshots the
        # worker-side collector, so the chunk's own timing is complete
        # in the profile it ships home.
        with profile_capture("trials.chunk"):
            out = payload()
        return wrap(out)


def _count_ipc_result(raw) -> None:
    """Charge one received chunk result to ``runtime.ipc_result_bytes``.

    Only measured while metrics are being collected: re-pickling the
    result is pure overhead otherwise, and the counter exists for the
    bench and observability reports, not for steady-state runs. The
    pickled size of what crossed the pipe is re-measured parent-side —
    equivalent to what the executor shipped, without reaching into it.
    """
    if metrics_enabled():
        try:
            size = len(pickle.dumps(raw, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:  # pragma: no cover - unpicklable results cannot
            return  # have crossed a pipe in the first place
        metrics().counter("runtime.ipc_result_bytes").inc(size)


def _merge_accumulators(acc, other, merge_fn):
    """Merge two chunk accumulators (parent side, span order)."""
    if merge_fn is not None:
        merged = merge_fn(acc, other)
    else:
        merged = acc.merge(other)
    return acc if merged is None else merged


def _fold_chunk(acc, chunk, span, reduce_fn, reduce_init, merge_fn):
    """Fold one ingested chunk result into the running accumulator.

    ``chunk`` is either a :class:`_Reduced` accumulator (worker already
    folded) or a per-trial list (traced runs bypass worker reduction);
    either way the outcome is identical for associative accumulators.
    """
    if isinstance(chunk, _Reduced):
        if acc is None:
            return chunk.acc
        return _merge_accumulators(acc, chunk.acc, merge_fn)
    if acc is None:
        acc = reduce_init()
    start, _stop = span
    for offset, result in enumerate(chunk):
        acc = reduce_fn(acc, start + offset, result)
    return acc


def _consume_futures(futures, spans, reduce_fn, reduce_init, merge_fn):
    """Consume chunk futures in span order; list out, or merged accumulator.

    Span order matters twice: worker-captured obs events fold back into
    the parent trace in trial order, and — although associative
    accumulators make any merge order *result*-identical — a fixed order
    keeps the engine deterministic by construction rather than by proof.
    """
    if reduce_fn is None:
        results: list = []
        for future in futures:
            raw = future.result()
            _count_ipc_result(raw)
            results.extend(ingest_chunk(raw))
        return results
    acc = None
    for span, future in zip(spans, futures):
        raw = future.result()
        _count_ipc_result(raw)
        acc = _fold_chunk(acc, ingest_chunk(raw), span, reduce_fn,
                          reduce_init, merge_fn)
    return acc


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged) pool down without waiting on its workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    # shutdown() does not interrupt a hung or crashed worker; terminate
    # whatever processes are left so they cannot linger past the run.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - defensive
            pass


def _retry_chunk_isolated(fn, seed, n_trials, start, stop, args,
                          chunk_timeout, attempts_left, obs_spec=None,
                          shared_token=None, batch_fn=None, trial_source=None):
    """Re-run one chunk in fresh single-worker pools until it succeeds.

    Each attempt gets its own process, so a crash or hang cannot take other
    chunks down with it. The chunk recomputes the same ``SeedSequence``
    children as the original submission, so a retry is bit-identical to a
    first-time success. ``shared_token`` (payload or shm descriptor) is
    re-shipped through each fresh pool's initializer; the descriptor's
    segment stays owned — and is eventually unlinked — by the parent.

    Returns (results | None, attempts_used, last_error).
    """
    attempt = 0
    error = "never attempted"
    init = ((_init_worker, (shared_token,)) if shared_token is not None
            else (None, ()))
    while attempt < attempts_left:
        attempt += 1
        pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context(),
                                   initializer=init[0], initargs=init[1])
        try:
            future = pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                 start, stop, args, obs_spec, batch_fn,
                                 trial_source)
            results = ingest_chunk(future.result(timeout=chunk_timeout))
            pool.shutdown(wait=False)
            return results, attempt, None
        except FutureTimeout:
            error = f"timed out after {chunk_timeout}s"
        except BrokenProcessPool:
            error = "worker process died (BrokenProcessPool)"
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            _abandon_pool(pool)
    return None, attempt, error


def _run_trials_hardened(fn, n_trials, seed, n_workers, chunk_size, args,
                         chunk_timeout, max_chunk_retries, shared=None,
                         batch_fn=None, trial_source=None):
    """Disposable-pool fast path with per-chunk isolated retries on failure."""
    spans = _chunk_spans(n_trials, chunk_size)
    results: list = [None] * n_trials
    pending: list = []  # (start, stop, first_error)
    rec = active_recorder()
    descriptor = None
    shared_token = None

    try:
        if n_workers == 1:
            # Serial: no pool to time out; catch per-chunk exceptions only.
            for start, stop in spans:
                try:
                    results[start:stop] = _run_trial_chunk(
                        fn, seed, n_trials, start, stop, args, None, batch_fn,
                        trial_source,
                    )
                except Exception:
                    pending.append(
                        (start, stop, traceback.format_exc(limit=1).strip()))
        else:
            if shared is not None:
                # Pack once; the descriptor is re-shipped to the disposable
                # pool and to every isolated retry pool, and unlinked in
                # the outer finally even when chunks fail.
                descriptor = pack_payload(shared)
                shared_token = descriptor if descriptor is not None else shared
            init = ((_init_worker, (shared_token,)) if shared is not None
                    else (None, ()))
            spec = worker_spec()
            workers = min(n_workers, len(spans))
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=_mp_context(),
                                       initializer=init[0], initargs=init[1])
            metrics().counter("runtime.pool_spawned").inc()
            abandoned = False
            try:
                futures = [
                    (start, stop,
                     pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                 start, stop, args, spec, batch_fn,
                                 trial_source))
                    for start, stop in spans
                ]
                for start, stop, future in futures:
                    if abandoned:
                        pending.append((start, stop, "pool abandoned"))
                        continue
                    try:
                        raw = future.result(timeout=chunk_timeout)
                        _count_ipc_result(raw)
                        results[start:stop] = ingest_chunk(raw)
                    except FutureTimeout:
                        # A wedged worker poisons every later wait: abandon
                        # the pool and sort the rest out in isolation.
                        pending.append(
                            (start, stop, f"timed out after {chunk_timeout}s"))
                        abandoned = True
                    except BrokenProcessPool:
                        pending.append((start, stop, "worker process died"))
                        abandoned = True
                    except Exception as exc:
                        pending.append(
                            (start, stop, f"{type(exc).__name__}: {exc}"))
            finally:
                _abandon_pool(pool)

        failures: list = []
        for start, stop, first_error in pending:
            metrics().counter("runtime.chunk_retries").inc()
            if rec is not None:
                rec.emit("runtime", "chunk_retry", start=start, stop=stop,
                         error=first_error)
            log.warning("retrying trials %d..%d in isolation: %s",
                        start, stop - 1, first_error)
            chunk, attempts, error = _retry_chunk_isolated(
                fn, seed, n_trials, start, stop, args,
                chunk_timeout, max_chunk_retries, worker_spec(),
                shared_token, batch_fn, trial_source,
            )
            if chunk is not None:
                results[start:stop] = chunk
            else:
                metrics().counter("runtime.chunks_failed").inc()
                if rec is not None:
                    rec.emit("runtime", "chunk_failed", start=start, stop=stop,
                             attempts=1 + attempts, error=error or first_error)
                log.error("trials %d..%d lost after %d attempt(s): %s",
                          start, stop - 1, 1 + attempts, error or first_error)
                failures.append(ChunkFailure(
                    start=start, stop=stop, attempts=1 + attempts,
                    error=error or first_error,
                ))
        return TrialRunResult(results=results, failures=failures)
    finally:
        if descriptor is not None:
            descriptor.release()


def run_trials(
    fn,
    n_trials: int,
    *,
    seed: int,
    n_workers: int | None = None,
    chunk_size: int | str | None = None,
    args: tuple = (),
    chunk_timeout: float | None = None,
    max_chunk_retries: int = 2,
    salvage: bool = False,
    reuse_pool: bool = True,
    shared=None,
    batch_fn=None,
    granularity: int = 1,
    reduce_fn=None,
    reduce_init=None,
    merge_fn=None,
    trial_source=None,
) -> list:
    """Run ``fn(trial_index, rng, *args)`` for every trial; ordered results.

    Args:
        fn: Picklable callable ``(trial_index, rng, *args) -> result``.
        n_trials: Number of independent trials.
        seed: Root seed; trial *i* always receives the *i*-th spawned RNG.
        n_workers: Process count; ``None`` auto-detects (``REPRO_WORKERS``
            or CPU count), ``1`` runs serially in-process.
        chunk_size: Trials per task; defaults to ~4 chunks per worker to
            balance scheduling slack against submission overhead. Pass
            ``"auto"`` to size chunks from the measured per-submission IPC
            cost of the live pool plus a quick serial timing probe
            (:func:`autotune_chunk_size`).
        args: Extra (picklable) positional arguments passed to every trial.
        chunk_timeout: Seconds to wait on one chunk before declaring it
            hung (parallel runs only; a serial run cannot be interrupted).
            Enables the hardened path: the shared pool is abandoned on the
            first timeout/crash and surviving chunks retry in isolated
            single-worker pools.
        max_chunk_retries: Isolated retry attempts per failed chunk (each
            recomputes the identical ``SeedSequence`` children, so a retry
            changes nothing statistically).
        salvage: Return a :class:`TrialRunResult` carrying partial results
            and a failure report instead of raising when chunks are lost.
        reuse_pool: Keep the worker pool alive for the next call (fast
            path only; the hardened path always uses disposable pools it
            can abandon). Chunking never affects results, so reuse is
            invisible except in wall time.
        shared: Optional read-only payload shipped to each worker once;
            numpy arrays inside travel through a shared-memory segment
            and come back as zero-copy read-only views
            (:mod:`repro.runtime.shm`), everything else through the pool
            initializer pickle. Trial functions retrieve it with
            :func:`shared_payload`. Serial runs see it too.
        batch_fn: Optional vectorised executor
            ``(start_index, rngs, *args) -> sequence of per-trial
            results``. Untraced chunks call it once per chunk with the
            same spawned per-trial RNGs the scalar path would use; it must
            return results bit-identical to ``fn`` trial by trial (traced
            runs always use ``fn``, so any divergence shows up as a trace
            vs. plain mismatch).
        granularity: Align chunk boundaries to multiples of this many
            trials, so tiles of trials that must share a chunk (one sweep
            cell's repeats) are never split across workers.
        reduce_fn: Optional fold ``(acc, trial_index, result) -> acc``.
            Untraced workers fold their own chunk before IPC and ship one
            accumulator; the parent merges chunk accumulators in span
            order and :func:`run_trials` returns the merged accumulator
            instead of a results list. Traced runs ship per-trial results
            as usual and the parent folds — identical by construction
            when the accumulator is *exactly associative*
            (:mod:`repro.runtime.reduction`). Incompatible with the
            hardened path (``salvage`` / ``chunk_timeout``), whose
            retry bookkeeping needs per-trial slots.
        reduce_init: Picklable zero-argument factory for a fresh
            accumulator (required with ``reduce_fn``).
        merge_fn: Optional ``(acc_a, acc_b) -> merged`` used by the
            parent to combine chunk accumulators; defaults to
            ``acc_a.merge(acc_b)``.
        trial_source: Optional picklable ``(start, stop) -> sequence`` of
            per-trial work items, generated *inside* the worker per chunk
            instead of materialised and shipped whole by the parent. With
            it, the trial function runs as ``fn(index, rng, item, *args)``
            (and ``batch_fn`` as ``batch_fn(start, rngs, items, *args)``).

    Returns:
        ``[fn(0, rng0, *args), ..., fn(n_trials-1, ...)]`` — identical for
        every worker count. With ``salvage=True`` a
        :class:`TrialRunResult` wrapping the same list (lost trials
        ``None``). With ``reduce_fn`` the merged accumulator.

    Raises:
        RuntimeError: A chunk exhausted its retries and ``salvage`` is off
            (only possible when the hardened path is active).
    """
    with metrics().timer("runtime.run_trials").time():
        return _run_trials_impl(
            fn, n_trials, seed=seed, n_workers=n_workers,
            chunk_size=chunk_size, args=args, chunk_timeout=chunk_timeout,
            max_chunk_retries=max_chunk_retries, salvage=salvage,
            reuse_pool=reuse_pool, shared=shared, batch_fn=batch_fn,
            granularity=granularity, reduce_fn=reduce_fn,
            reduce_init=reduce_init, merge_fn=merge_fn,
            trial_source=trial_source,
        )


def _run_trials_impl(fn, n_trials, *, seed, n_workers, chunk_size, args,
                     chunk_timeout, max_chunk_retries, salvage, reuse_pool,
                     shared, batch_fn, granularity, reduce_fn=None,
                     reduce_init=None, merge_fn=None, trial_source=None):
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    hardened = salvage or chunk_timeout is not None
    reducing = reduce_fn is not None
    if reducing and reduce_init is None:
        raise ValueError("reduce_fn requires reduce_init (accumulator factory)")
    if reduce_init is not None and not reducing:
        raise ValueError("reduce_init without reduce_fn does nothing")
    if reducing and hardened:
        raise ValueError(
            "reduce_fn is incompatible with salvage/chunk_timeout: the "
            "hardened path tracks per-trial slots to report what was lost"
        )
    if n_trials == 0:
        if reducing:
            return reduce_init()
        return TrialRunResult(results=[]) if salvage else []
    granularity = max(1, int(granularity))
    n_workers = resolve_workers(n_workers)

    with _payload_installed(shared):
        if chunk_size == "auto":
            ipc = None
            if not hardened and reuse_pool and n_workers > 1 and n_trials > 1:
                ipc = _measured_ipc(n_workers, shared)
            chunk_size = autotune_chunk_size(
                fn, n_trials, seed=seed, n_workers=n_workers, args=args,
                granularity=granularity, ipc_seconds=ipc,
                trial_source=trial_source,
            )
        elif chunk_size is not None:
            chunk_size = _round_up(max(1, int(chunk_size)), granularity)

        if chunk_size is None:
            chunk_size = _round_up(
                max(1, -(-n_trials // (4 * n_workers))), granularity)

        if not hardened:
            if n_workers == 1 or n_trials == 1:
                if reducing:
                    # Chunk-at-a-time even in-process: with a lazy
                    # trial_source only one chunk's items are ever alive,
                    # which is the constant-memory contract sharded
                    # callers rely on.
                    acc = None
                    for span in _chunk_spans(n_trials, chunk_size):
                        chunk = _run_trial_chunk(
                            fn, seed, n_trials, span[0], span[1], args,
                            None, batch_fn, trial_source, reduce_fn,
                            reduce_init,
                        )
                        acc = _fold_chunk(acc, chunk, span, reduce_fn,
                                          reduce_init, merge_fn)
                    return acc
                return _run_trial_chunk(fn, seed, n_trials, 0, n_trials,
                                        args, None, batch_fn, trial_source)
            spans = _chunk_spans(n_trials, chunk_size)
            workers = min(n_workers, len(spans))
            spec = worker_spec()
            if reuse_pool:
                pool = persistent_pool(workers, shared=shared)
                try:
                    futures = [
                        pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                    start, stop, args, spec, batch_fn,
                                    trial_source, reduce_fn, reduce_init)
                        for start, stop in spans
                    ]
                    return _consume_futures(futures, spans, reduce_fn,
                                            reduce_init, merge_fn)
                except BrokenProcessPool:
                    # A dead worker poisons the pool for every later call:
                    # evict it so the next run starts fresh, then re-raise.
                    _discard_pool(pool)
                    raise
            descriptor = pack_payload(shared) if shared is not None else None
            token = descriptor if descriptor is not None else shared
            init = (_init_worker, (token,)) if shared is not None else (None, ())
            metrics().counter("runtime.pool_spawned").inc()
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=_mp_context(),
                    initializer=init[0], initargs=init[1],
                ) as pool:
                    futures = [
                        pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                    start, stop, args, spec, batch_fn,
                                    trial_source, reduce_fn, reduce_init)
                        for start, stop in spans
                    ]
                    return _consume_futures(futures, spans, reduce_fn,
                                            reduce_init, merge_fn)
            finally:
                if descriptor is not None:
                    descriptor.release()

        outcome = _run_trials_hardened(
            fn, n_trials, seed, n_workers, chunk_size, args,
            chunk_timeout, max_chunk_retries, shared, batch_fn, trial_source,
        )
    if salvage:
        return outcome
    if not outcome.ok:
        raise RuntimeError(
            f"run_trials lost {outcome.n_failed} of {n_trials} trials:\n"
            + outcome.failure_summary()
        )
    return outcome.results


def parallel_map(
    fn,
    items,
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    reuse_pool: bool = True,
    shared=None,
) -> list:
    """Order-preserving parallel ``map`` over picklable ``items``.

    Serial (no pool) when ``n_workers`` resolves to 1 or there is at most
    one item; otherwise a chunked ``ProcessPoolExecutor.map`` on a
    persistent pool (``reuse_pool=False`` for a disposable one). Items
    should be deterministic units of work (carry their own seeds) so that
    serial and parallel runs agree. ``shared=`` ships one read-only
    payload to every worker exactly as in :func:`run_trials` — array
    payloads by shared-memory segment, the rest by initializer pickle —
    readable from ``fn`` via :func:`shared_payload`.

    When observability is active, every item runs under a positional
    correlation id (``i00042``) — the same id at any worker count — and
    worker-side captures are folded back in item order.
    """
    items = list(items)
    n_workers = resolve_workers(n_workers)
    if n_workers == 1 or len(items) <= 1:
        with _payload_installed(shared):
            rec = active_recorder()
            if rec is None:
                return [fn(item) for item in items]
            results = []
            for index, item in enumerate(items):
                with rec.correlate(_item_cid(index)):
                    results.append(fn(item))
            return results
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (4 * n_workers)))
    workers = min(n_workers, len(items))
    spec = worker_spec()
    mapper = fn if spec is None else _ObservedItem(fn, spec)
    payload = items if spec is None else list(enumerate(items))
    if reuse_pool:
        pool = persistent_pool(workers, shared=shared)
        try:
            out = list(pool.map(mapper, payload, chunksize=chunk_size))
        except BrokenProcessPool:
            _discard_pool(pool)
            raise
    else:
        descriptor = pack_payload(shared) if shared is not None else None
        token = descriptor if descriptor is not None else shared
        init = (_init_worker, (token,)) if shared is not None else (None, ())
        metrics().counter("runtime.pool_spawned").inc()
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_mp_context(),
                initializer=init[0], initargs=init[1],
            ) as pool:
                out = list(pool.map(mapper, payload, chunksize=chunk_size))
        finally:
            if descriptor is not None:
                descriptor.release()
    if spec is None:
        return out
    # pool.map preserves item order, so ingesting sequentially keeps the
    # parent trace in item order regardless of worker count.
    return [ingest_chunk(chunk) for chunk in out]


def _item_cid(index: int) -> str:
    """Positional correlation id for :func:`parallel_map` items (the items
    carry their own seeds, so position is the stable identity)."""
    return f"i{index:05d}"


class _ObservedItem:
    """Picklable per-item wrapper: run ``fn(item)`` under a fresh worker
    capture and return the result wrapped in an ``ObsChunk``."""

    def __init__(self, fn, spec):
        self.fn = fn
        self.spec = spec

    def __call__(self, indexed_item):
        index, item = indexed_item
        with chunk_capture(self.spec) as wrap:
            rec = active_recorder()
            with profile_capture("map.item"):
                if rec is None:
                    out = self.fn(item)
                else:
                    with rec.correlate(_item_cid(index)):
                        out = self.fn(item)
            return wrap(out)
