"""Seeded, chunked parallel execution of Monte-Carlo trials.

Every paper figure is a Monte-Carlo sweep: hundreds of statistically
independent trials pushed through the PHY/MAC stack. This module is the
shared runtime those sweeps go through:

* **Determinism** — each trial gets its own RNG derived with
  ``np.random.SeedSequence(seed).spawn(n_trials)``, so trial *i* sees the
  same random stream no matter which worker runs it, in what order, or how
  the trials are chunked. Serial and parallel runs are bit-identical.
* **Parallelism** — trials are grouped into chunks and submitted to a
  ``ProcessPoolExecutor``; the worker count auto-detects from
  ``REPRO_WORKERS`` or ``os.cpu_count()``. ``n_workers=1`` (or a single
  trial) short-circuits to a plain loop with zero pool overhead.
* **Pool persistence** — worker pools are kept alive and reused across
  :func:`run_trials` / :func:`parallel_map` calls (keyed by worker count
  and shared payload), so a sweep of many small runs pays process
  start-up once instead of per call. ``reuse_pool=False`` restores the
  old per-call pools; :func:`shutdown_pools` tears everything down.
* **Shared read-only tables** — pass ``shared=...`` to ship one payload
  to every worker via the pool initializer (pickled once per worker, not
  per chunk); trial functions read it back with :func:`shared_payload`.
* **Chunk autotuning** — ``chunk_size="auto"`` times a short serial probe
  and picks trials-per-chunk so each task runs ~0.25 s: long enough to
  amortise submission overhead, short enough to load-balance.
* **Generality** — :func:`parallel_map` gives the same chunked, ordered
  semantics for non-trial workloads (e.g. the MAC scenario sweeps, where
  each item is one ``(scenario, protocol)`` cell).

The trial function and its extra arguments must be picklable (a module-level
function, not a lambda or closure).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from ..obs.log import get_logger
from ..obs.trace import (
    active_recorder,
    chunk_capture,
    ingest_chunk,
    metrics,
    suspended,
    trial_correlation_id,
    worker_spec,
)

log = get_logger(__name__)

__all__ = [
    "resolve_workers",
    "trial_rngs",
    "run_trials",
    "parallel_map",
    "autotune_chunk_size",
    "persistent_pool",
    "shared_payload",
    "shutdown_pools",
    "ChunkFailure",
    "TrialRunResult",
]


@dataclass(frozen=True)
class ChunkFailure:
    """One chunk of trials that could not be completed."""

    start: int
    stop: int
    attempts: int
    error: str

    @property
    def n_trials(self) -> int:
        return self.stop - self.start


@dataclass
class TrialRunResult:
    """Salvaged outcome of a hardened :func:`run_trials` run.

    ``results`` has one slot per trial, in trial order; trials belonging to
    a failed chunk hold ``None``. ``failures`` summarises every chunk that
    exhausted its retries.
    """

    results: list
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def n_completed(self) -> int:
        return sum(r is not None for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(f.n_trials for f in self.failures)

    def completed(self) -> list:
        """The successful results only (order preserved)."""
        return [r for r in self.results if r is not None]

    def failure_summary(self) -> str:
        """One line per failed chunk, for logs and error reports."""
        if not self.failures:
            return "all chunks completed"
        lines = [
            f"trials {f.start}..{f.stop - 1} failed after {f.attempts} "
            f"attempt(s): {f.error}"
            for f in self.failures
        ]
        return "\n".join(lines)


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_WORKERS`` > CPU count."""
    if n_workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                ) from None
        else:
            n_workers = os.cpu_count() or 1
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def trial_rngs(seed: int, n_trials: int) -> list:
    """Independent per-trial generators via ``SeedSequence.spawn``."""
    return [np.random.default_rng(ss) for ss in _trial_seeds(seed, n_trials)]


def _trial_seeds(seed: int, n_trials: int):
    return np.random.SeedSequence(seed).spawn(n_trials)


def _mp_context():
    """Prefer fork where available: cheap start-up, no re-import races."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _chunk_spans(n: int, chunk_size: int) -> list:
    return [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


# --------------------------------------------------------------------------- #
# Persistent pools and shared read-only payloads.
# --------------------------------------------------------------------------- #

# Pool registry: (max_workers, shared_token) -> (pool, shared_payload_ref).
# The token only distinguishes "has a shared payload" from "has none": a
# worker's payload is fixed at initializer time, so when a caller shows up
# with a *different* payload object the old pool is replaced rather than
# leaked alongside a new one (sweeps call run_trials(shared=...) with a
# fresh payload per invocation).
_POOLS: dict = {}

# The worker-side (and serial-path) shared payload, set once per worker by
# the pool initializer instead of being pickled into every chunk.
_SHARED = None


def _init_worker(payload) -> None:
    """Pool initializer: stash the shared read-only payload in the worker."""
    global _SHARED
    _SHARED = payload


def shared_payload():
    """The payload this worker was initialised with (``None`` if absent).

    Trial functions call this instead of taking big read-only tables
    through ``args`` — the payload crosses the process boundary once per
    worker (at pool start-up) rather than once per chunk.
    """
    return _SHARED


def persistent_pool(n_workers: int, shared=None) -> ProcessPoolExecutor:
    """A long-lived pool for ``n_workers``, created on first use.

    Pools are keyed by worker count and (identity of) the shared payload;
    repeated calls return the same executor, so process start-up is paid
    once per configuration instead of once per ``run_trials`` call.
    """
    global _SHARED
    key = (n_workers, "shared" if shared is not None else None)
    entry = _POOLS.get(key)
    if entry is not None:
        pool, payload = entry
        if shared is None or payload is shared:
            metrics().counter("runtime.pool_reused").inc()
            return pool
        # New payload for this worker count: the old pool's workers were
        # initialised with the previous tables, so retire it and start
        # fresh instead of accumulating one pool per payload.
        del _POOLS[key]
        _abandon_pool(pool)
    if shared is None:
        pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=_mp_context())
    else:
        pool = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=_mp_context(),
            initializer=_init_worker,
            initargs=(shared,),
        )
        # With fork, workers inherit parent globals at spawn time; setting
        # the parent-side payload too keeps shared_payload() consistent
        # everywhere (and serves the n_workers=1 serial path).
        _SHARED = shared
    _POOLS[key] = (pool, shared)
    metrics().counter("runtime.pool_spawned").inc()
    log.debug("spawned persistent pool: %d workers, shared=%s",
              n_workers, shared is not None)
    return pool


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Remove a (broken) pool from the registry and tear it down."""
    for key, (registered, _payload) in list(_POOLS.items()):
        if registered is pool:
            del _POOLS[key]
    _abandon_pool(pool)


def shutdown_pools() -> None:
    """Shut down every persistent pool (registered atexit)."""
    global _SHARED
    for pool, _payload in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    _SHARED = None


atexit.register(shutdown_pools)


def autotune_chunk_size(
    fn,
    n_trials: int,
    *,
    seed: int,
    n_workers: int,
    args: tuple = (),
    target_seconds: float = 0.25,
    max_probe_trials: int = 3,
) -> int:
    """Pick trials-per-chunk from a quick serial timing probe.

    Runs up to ``max_probe_trials`` leading trials in-process (their
    results are discarded; the chunks re-run them with identical RNGs, so
    determinism is unaffected) and sizes chunks to ~``target_seconds``
    each — long enough to amortise submission/pickling overhead, short
    enough that stragglers cannot idle the other workers. The result is
    clamped so every worker gets at least one chunk.
    """
    if n_trials <= 1 or n_workers <= 1:
        return max(1, n_trials)
    children = _trial_seeds(seed, n_trials)
    start = time.perf_counter()
    probed = 0
    # Probe results are discarded and the chunks re-run the same trials,
    # so any obs events they would emit are duplicates: suspend capture.
    with suspended():
        for index in range(min(max_probe_trials, n_trials)):
            fn(index, np.random.default_rng(children[index]), *args)
            probed += 1
            if time.perf_counter() - start >= target_seconds:
                break
    per_trial = (time.perf_counter() - start) / probed
    upper = max(1, -(-n_trials // n_workers))  # ceil: >= one chunk per worker
    if per_trial <= 0:
        return upper
    return int(np.clip(round(target_seconds / per_trial), 1, upper))


def _run_trial_chunk(fn, seed, n_trials, start, stop, args, obs_spec=None):
    """Run trials ``start..stop`` of ``n_trials`` (executes inside a worker).

    The full spawn is recomputed here so a chunk's RNGs are identical to
    the ones a serial run hands the same trial indices — ``spawn`` is cheap
    (micro-seconds per child), so this costs nothing measurable.

    ``obs_spec`` (only passed on pool submissions, and only when the
    parent has observability on) makes the worker capture its own events
    and metrics under a fresh local recorder/registry and return an
    ``ObsChunk`` for the parent to fold back in span order. With it
    ``None`` — every uninstrumented run — the plain results list comes
    back untouched. Serial in-process calls leave it ``None`` too: there
    the parent's own ambient recorder is already active.
    """
    children = _trial_seeds(seed, n_trials)[start:stop]
    with chunk_capture(obs_spec) as wrap:
        rec = active_recorder()
        if rec is None:
            return wrap([
                fn(index, np.random.default_rng(ss), *args)
                for index, ss in zip(range(start, stop), children)
            ])
        results = []
        for index, ss in zip(range(start, stop), children):
            # Correlation ids derive from the run seed and the trial's
            # SeedSequence spawn position, never id()/clock, so serial
            # and parallel traces carry identical ids.
            with rec.correlate(trial_correlation_id(seed, index)):
                results.append(fn(index, np.random.default_rng(ss), *args))
        return wrap(results)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged) pool down without waiting on its workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    # shutdown() does not interrupt a hung or crashed worker; terminate
    # whatever processes are left so they cannot linger past the run.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - defensive
            pass


def _retry_chunk_isolated(fn, seed, n_trials, start, stop, args,
                          chunk_timeout, attempts_left, obs_spec=None):
    """Re-run one chunk in fresh single-worker pools until it succeeds.

    Each attempt gets its own process, so a crash or hang cannot take other
    chunks down with it. The chunk recomputes the same ``SeedSequence``
    children as the original submission, so a retry is bit-identical to a
    first-time success.

    Returns (results | None, attempts_used, last_error).
    """
    attempt = 0
    error = "never attempted"
    while attempt < attempts_left:
        attempt += 1
        pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context())
        try:
            future = pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                 start, stop, args, obs_spec)
            results = ingest_chunk(future.result(timeout=chunk_timeout))
            pool.shutdown(wait=False)
            return results, attempt, None
        except FutureTimeout:
            error = f"timed out after {chunk_timeout}s"
        except BrokenProcessPool:
            error = "worker process died (BrokenProcessPool)"
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            _abandon_pool(pool)
    return None, attempt, error


def _run_trials_hardened(fn, n_trials, seed, n_workers, chunk_size, args,
                         chunk_timeout, max_chunk_retries):
    """Shared-pool fast path with per-chunk isolated retries on failure."""
    spans = _chunk_spans(n_trials, chunk_size)
    results: list = [None] * n_trials
    pending: list = []  # (start, stop, first_error)
    rec = active_recorder()

    if n_workers == 1:
        # Serial: no pool to time out; catch per-chunk exceptions only.
        for start, stop in spans:
            try:
                results[start:stop] = _run_trial_chunk(
                    fn, seed, n_trials, start, stop, args
                )
            except Exception:
                pending.append((start, stop, traceback.format_exc(limit=1).strip()))
    else:
        spec = worker_spec()
        workers = min(n_workers, len(spans))
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context())
        metrics().counter("runtime.pool_spawned").inc()
        abandoned = False
        try:
            futures = [
                (start, stop,
                 pool.submit(_run_trial_chunk, fn, seed, n_trials,
                             start, stop, args, spec))
                for start, stop in spans
            ]
            for start, stop, future in futures:
                if abandoned:
                    pending.append((start, stop, "pool abandoned"))
                    continue
                try:
                    results[start:stop] = ingest_chunk(
                        future.result(timeout=chunk_timeout))
                except FutureTimeout:
                    # A wedged worker poisons every later wait: abandon the
                    # shared pool and sort the rest out in isolation.
                    pending.append((start, stop, f"timed out after {chunk_timeout}s"))
                    abandoned = True
                except BrokenProcessPool:
                    pending.append((start, stop, "worker process died"))
                    abandoned = True
                except Exception as exc:
                    pending.append((start, stop, f"{type(exc).__name__}: {exc}"))
        finally:
            _abandon_pool(pool)

    failures: list = []
    for start, stop, first_error in pending:
        metrics().counter("runtime.chunk_retries").inc()
        if rec is not None:
            rec.emit("runtime", "chunk_retry", start=start, stop=stop,
                     error=first_error)
        log.warning("retrying trials %d..%d in isolation: %s",
                    start, stop - 1, first_error)
        chunk, attempts, error = _retry_chunk_isolated(
            fn, seed, n_trials, start, stop, args,
            chunk_timeout, max_chunk_retries, worker_spec(),
        )
        if chunk is not None:
            results[start:stop] = chunk
        else:
            metrics().counter("runtime.chunks_failed").inc()
            if rec is not None:
                rec.emit("runtime", "chunk_failed", start=start, stop=stop,
                         attempts=1 + attempts, error=error or first_error)
            log.error("trials %d..%d lost after %d attempt(s): %s",
                      start, stop - 1, 1 + attempts, error or first_error)
            failures.append(ChunkFailure(
                start=start, stop=stop, attempts=1 + attempts,
                error=error or first_error,
            ))
    return TrialRunResult(results=results, failures=failures)


def run_trials(
    fn,
    n_trials: int,
    *,
    seed: int,
    n_workers: int | None = None,
    chunk_size: int | str | None = None,
    args: tuple = (),
    chunk_timeout: float | None = None,
    max_chunk_retries: int = 2,
    salvage: bool = False,
    reuse_pool: bool = True,
    shared=None,
) -> list:
    """Run ``fn(trial_index, rng, *args)`` for every trial; ordered results.

    Args:
        fn: Picklable callable ``(trial_index, rng, *args) -> result``.
        n_trials: Number of independent trials.
        seed: Root seed; trial *i* always receives the *i*-th spawned RNG.
        n_workers: Process count; ``None`` auto-detects (``REPRO_WORKERS``
            or CPU count), ``1`` runs serially in-process.
        chunk_size: Trials per task; defaults to ~4 chunks per worker to
            balance scheduling slack against submission overhead. Pass
            ``"auto"`` to size chunks from a quick serial timing probe
            (:func:`autotune_chunk_size`).
        args: Extra (picklable) positional arguments passed to every trial.
        chunk_timeout: Seconds to wait on one chunk before declaring it
            hung (parallel runs only; a serial run cannot be interrupted).
            Enables the hardened path: the shared pool is abandoned on the
            first timeout/crash and surviving chunks retry in isolated
            single-worker pools.
        max_chunk_retries: Isolated retry attempts per failed chunk (each
            recomputes the identical ``SeedSequence`` children, so a retry
            changes nothing statistically).
        salvage: Return a :class:`TrialRunResult` carrying partial results
            and a failure report instead of raising when chunks are lost.
        reuse_pool: Keep the worker pool alive for the next call (fast
            path only; the hardened path always uses disposable pools it
            can abandon). Chunking never affects results, so reuse is
            invisible except in wall time.
        shared: Optional read-only payload shipped to each worker once via
            the pool initializer; trial functions retrieve it with
            :func:`shared_payload`. Serial runs see it too.

    Returns:
        ``[fn(0, rng0, *args), ..., fn(n_trials-1, ...)]`` — identical for
        every worker count. With ``salvage=True`` a
        :class:`TrialRunResult` wrapping the same list (lost trials
        ``None``).

    Raises:
        RuntimeError: A chunk exhausted its retries and ``salvage`` is off
            (only possible when the hardened path is active).
    """
    with metrics().timer("runtime.run_trials").time():
        return _run_trials_impl(
            fn, n_trials, seed=seed, n_workers=n_workers,
            chunk_size=chunk_size, args=args, chunk_timeout=chunk_timeout,
            max_chunk_retries=max_chunk_retries, salvage=salvage,
            reuse_pool=reuse_pool, shared=shared,
        )


def _run_trials_impl(fn, n_trials, *, seed, n_workers, chunk_size, args,
                     chunk_timeout, max_chunk_retries, salvage, reuse_pool,
                     shared):
    global _SHARED
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    if n_trials == 0:
        return TrialRunResult(results=[]) if salvage else []
    n_workers = resolve_workers(n_workers)
    hardened = salvage or chunk_timeout is not None
    if chunk_size == "auto":
        chunk_size = autotune_chunk_size(
            fn, n_trials, seed=seed, n_workers=n_workers, args=args,
        )

    if not hardened:
        if n_workers == 1 or n_trials == 1:
            if shared is not None:
                _SHARED = shared
            return _run_trial_chunk(fn, seed, n_trials, 0, n_trials, args)
        if chunk_size is None:
            chunk_size = max(1, -(-n_trials // (4 * n_workers)))
        spans = _chunk_spans(n_trials, chunk_size)
        workers = min(n_workers, len(spans))
        spec = worker_spec()
        if reuse_pool:
            pool = persistent_pool(workers, shared=shared)
            try:
                futures = [
                    pool.submit(_run_trial_chunk, fn, seed, n_trials,
                                start, stop, args, spec)
                    for start, stop in spans
                ]
                results: list = []
                # Futures are consumed in span order, so worker-captured
                # events fold back into the parent trace in trial order.
                for future in futures:
                    results.extend(ingest_chunk(future.result()))
                return results
            except BrokenProcessPool:
                # A dead worker poisons the pool for every later call:
                # evict it so the next run starts fresh, then re-raise.
                _discard_pool(pool)
                raise
        init = (_init_worker, (shared,)) if shared is not None else (None, ())
        metrics().counter("runtime.pool_spawned").inc()
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context(),
            initializer=init[0], initargs=init[1],
        ) as pool:
            futures = [
                pool.submit(_run_trial_chunk, fn, seed, n_trials,
                            start, stop, args, spec)
                for start, stop in spans
            ]
            results = []
            for future in futures:
                results.extend(ingest_chunk(future.result()))
        return results

    if chunk_size is None:
        chunk_size = max(1, -(-n_trials // (4 * n_workers)))
    outcome = _run_trials_hardened(
        fn, n_trials, seed, n_workers, chunk_size, args,
        chunk_timeout, max_chunk_retries,
    )
    if salvage:
        return outcome
    if not outcome.ok:
        raise RuntimeError(
            f"run_trials lost {outcome.n_failed} of {n_trials} trials:\n"
            + outcome.failure_summary()
        )
    return outcome.results


def parallel_map(
    fn,
    items,
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    reuse_pool: bool = True,
) -> list:
    """Order-preserving parallel ``map`` over picklable ``items``.

    Serial (no pool) when ``n_workers`` resolves to 1 or there is at most
    one item; otherwise a chunked ``ProcessPoolExecutor.map`` on a
    persistent pool (``reuse_pool=False`` for a disposable one). Items
    should be deterministic units of work (carry their own seeds) so that
    serial and parallel runs agree.

    When observability is active, every item runs under a positional
    correlation id (``i00042``) — the same id at any worker count — and
    worker-side captures are folded back in item order.
    """
    items = list(items)
    n_workers = resolve_workers(n_workers)
    if n_workers == 1 or len(items) <= 1:
        rec = active_recorder()
        if rec is None:
            return [fn(item) for item in items]
        results = []
        for index, item in enumerate(items):
            with rec.correlate(_item_cid(index)):
                results.append(fn(item))
        return results
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (4 * n_workers)))
    workers = min(n_workers, len(items))
    spec = worker_spec()
    mapper = fn if spec is None else _ObservedItem(fn, spec)
    payload = items if spec is None else list(enumerate(items))
    if reuse_pool:
        pool = persistent_pool(workers)
        try:
            out = list(pool.map(mapper, payload, chunksize=chunk_size))
        except BrokenProcessPool:
            _discard_pool(pool)
            raise
    else:
        metrics().counter("runtime.pool_spawned").inc()
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_mp_context()
        ) as pool:
            out = list(pool.map(mapper, payload, chunksize=chunk_size))
    if spec is None:
        return out
    # pool.map preserves item order, so ingesting sequentially keeps the
    # parent trace in item order regardless of worker count.
    return [ingest_chunk(chunk) for chunk in out]


def _item_cid(index: int) -> str:
    """Positional correlation id for :func:`parallel_map` items (the items
    carry their own seeds, so position is the stable identity)."""
    return f"i{index:05d}"


class _ObservedItem:
    """Picklable per-item wrapper: run ``fn(item)`` under a fresh worker
    capture and return the result wrapped in an ``ObsChunk``."""

    def __init__(self, fn, spec):
        self.fn = fn
        self.spec = spec

    def __call__(self, indexed_item):
        index, item = indexed_item
        with chunk_capture(self.spec) as wrap:
            rec = active_recorder()
            if rec is None:
                return wrap(self.fn(item))
            with rec.correlate(_item_cid(index)):
                return wrap(self.fn(item))
