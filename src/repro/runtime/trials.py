"""Seeded, chunked parallel execution of Monte-Carlo trials.

Every paper figure is a Monte-Carlo sweep: hundreds of statistically
independent trials pushed through the PHY/MAC stack. This module is the
shared runtime those sweeps go through:

* **Determinism** — each trial gets its own RNG derived with
  ``np.random.SeedSequence(seed).spawn(n_trials)``, so trial *i* sees the
  same random stream no matter which worker runs it, in what order, or how
  the trials are chunked. Serial and parallel runs are bit-identical.
* **Parallelism** — trials are grouped into chunks and submitted to a
  ``ProcessPoolExecutor``; the worker count auto-detects from
  ``REPRO_WORKERS`` or ``os.cpu_count()``. ``n_workers=1`` (or a single
  trial) short-circuits to a plain loop with zero pool overhead.
* **Generality** — :func:`parallel_map` gives the same chunked, ordered
  semantics for non-trial workloads (e.g. the MAC scenario sweeps, where
  each item is one ``(scenario, protocol)`` cell).

The trial function and its extra arguments must be picklable (a module-level
function, not a lambda or closure).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

__all__ = [
    "resolve_workers",
    "trial_rngs",
    "run_trials",
    "parallel_map",
]


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_WORKERS`` > CPU count."""
    if n_workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                n_workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                ) from None
        else:
            n_workers = os.cpu_count() or 1
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def trial_rngs(seed: int, n_trials: int) -> list:
    """Independent per-trial generators via ``SeedSequence.spawn``."""
    return [np.random.default_rng(ss) for ss in _trial_seeds(seed, n_trials)]


def _trial_seeds(seed: int, n_trials: int):
    return np.random.SeedSequence(seed).spawn(n_trials)


def _mp_context():
    """Prefer fork where available: cheap start-up, no re-import races."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


def _chunk_spans(n: int, chunk_size: int) -> list:
    return [(start, min(start + chunk_size, n)) for start in range(0, n, chunk_size)]


def _run_trial_chunk(fn, seed, n_trials, start, stop, args):
    """Run trials ``start..stop`` of ``n_trials`` (executes inside a worker).

    The full spawn is recomputed here so a chunk's RNGs are identical to
    the ones a serial run hands the same trial indices — ``spawn`` is cheap
    (micro-seconds per child), so this costs nothing measurable.
    """
    children = _trial_seeds(seed, n_trials)[start:stop]
    return [
        fn(index, np.random.default_rng(ss), *args)
        for index, ss in zip(range(start, stop), children)
    ]


def run_trials(
    fn,
    n_trials: int,
    *,
    seed: int,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    args: tuple = (),
) -> list:
    """Run ``fn(trial_index, rng, *args)`` for every trial; ordered results.

    Args:
        fn: Picklable callable ``(trial_index, rng, *args) -> result``.
        n_trials: Number of independent trials.
        seed: Root seed; trial *i* always receives the *i*-th spawned RNG.
        n_workers: Process count; ``None`` auto-detects (``REPRO_WORKERS``
            or CPU count), ``1`` runs serially in-process.
        chunk_size: Trials per task; defaults to ~4 chunks per worker to
            balance scheduling slack against submission overhead.
        args: Extra (picklable) positional arguments passed to every trial.

    Returns:
        ``[fn(0, rng0, *args), ..., fn(n_trials-1, ...)]`` — identical for
        every worker count.
    """
    if n_trials < 0:
        raise ValueError(f"n_trials must be >= 0, got {n_trials}")
    if n_trials == 0:
        return []
    n_workers = resolve_workers(n_workers)
    if n_workers == 1 or n_trials == 1:
        return _run_trial_chunk(fn, seed, n_trials, 0, n_trials, args)

    if chunk_size is None:
        chunk_size = max(1, -(-n_trials // (4 * n_workers)))
    spans = _chunk_spans(n_trials, chunk_size)
    workers = min(n_workers, len(spans))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        futures = [
            pool.submit(_run_trial_chunk, fn, seed, n_trials, start, stop, args)
            for start, stop in spans
        ]
        results: list = []
        for future in futures:
            results.extend(future.result())
    return results


def parallel_map(
    fn,
    items,
    *,
    n_workers: int | None = None,
    chunk_size: int | None = None,
) -> list:
    """Order-preserving parallel ``map`` over picklable ``items``.

    Serial (no pool) when ``n_workers`` resolves to 1 or there is at most
    one item; otherwise a chunked ``ProcessPoolExecutor.map``. Items should
    be deterministic units of work (carry their own seeds) so that serial
    and parallel runs agree.
    """
    items = list(items)
    n_workers = resolve_workers(n_workers)
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (4 * n_workers)))
    workers = min(n_workers, len(items))
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        return list(pool.map(fn, items, chunksize=chunk_size))
