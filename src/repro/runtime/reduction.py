"""Mergeable, exactly-associative accumulators for worker-side reduction.

``run_trials(reduce_fn=..., reduce_init=...)`` folds each chunk's trial
results into one small accumulator *inside the worker*, so only the
accumulator crosses the pipe. For that to be invisible — the headline
promise that shard merge ≡ single-shot at any worker count or chunk
size — the accumulators must be **exactly associative**: merging partial
accumulators in any grouping must produce bit-identical finalised values.
Plain float ``+`` is not associative (rounding depends on order), so this
module provides primitives that are:

* :class:`ExactSum` — Shewchuk exact-partials accumulation (the
  ``math.fsum`` algorithm, kept mergeable). Every ``add`` is exact; the
  partials represent the true mathematical sum, and :meth:`ExactSum.value`
  rounds that exact sum once. Since the exact sum of a multiset of floats
  does not depend on order, neither does the rounded result.
* :class:`StreamMoments` — count / mean / variance over a stream, built
  on exact Σx and Σx² rather than Welford updates (Welford's running
  mean is order-dependent; exact power sums are not).
* :class:`MergeableHistogram` — fixed-edge integer-count histogram;
  integer addition is exact, so merged counts match single-shot counts.

All three serialise to/from JSON-safe dicts (``to_dict`` / ``from_dict``)
so they can ride inside cached results.
"""

from __future__ import annotations

import math

__all__ = [
    "ExactSum",
    "StreamMoments",
    "MergeableHistogram",
]


def _grow_partials(partials: list, x: float) -> None:
    """Fold one float into a Shewchuk non-overlapping partials list.

    Each two-sum step is exact (``hi + lo == x + y`` in real arithmetic),
    so the list always represents the true sum with zero rounding error.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class ExactSum:
    """Order-independent float accumulation via exact partials.

    >>> left, right = ExactSum(), ExactSum()
    >>> for v in (1e16, 1.0, -1e16):
    ...     left.add(v)
    >>> for v in (-1e16, 1e16, 1.0):
    ...     right.add(v)
    >>> left.value() == right.value() == 1.0
    True
    """

    __slots__ = ("_partials",)

    def __init__(self, values=()):
        self._partials: list = []
        for v in values:
            self.add(v)

    def add(self, x) -> None:
        x = float(x)
        if math.isnan(x) or math.isinf(x):
            raise ValueError(f"ExactSum requires finite values, got {x!r}")
        _grow_partials(self._partials, x)

    def merge(self, other: "ExactSum") -> "ExactSum":
        """Fold ``other`` in (exact, so grouping cannot matter)."""
        for p in other._partials:
            _grow_partials(self._partials, p)
        return self

    def value(self) -> float:
        """The correctly rounded sum of everything added so far."""
        return math.fsum(self._partials)

    def __reduce__(self):
        # Accumulators exist to shrink IPC: pickle down to the bare
        # partials instead of the default slot-state dance.
        return (_restore_exact_sum, (self._partials,))

    def to_dict(self) -> dict:
        return {"partials": list(self._partials)}

    @classmethod
    def from_dict(cls, data: dict) -> "ExactSum":
        out = cls()
        out._partials = [float(p) for p in data["partials"]]
        return out

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"ExactSum({self.value()!r})"


def _restore_exact_sum(partials):
    out = ExactSum()
    out._partials = partials
    return out


class StreamMoments:
    """Mergeable count/mean/variance over a stream of floats.

    Finalised statistics derive from exact Σx and Σx² — both
    order-independent — so ``merge`` in any order matches a single-shot
    pass bit for bit (unlike Welford's recurrence, whose running mean
    depends on arrival order).
    """

    __slots__ = ("n", "_sum", "_sumsq")

    def __init__(self):
        self.n = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()

    def observe(self, x) -> None:
        x = float(x)
        self.n += 1
        self._sum.add(x)
        self._sumsq.add(x * x)

    def merge(self, other: "StreamMoments") -> "StreamMoments":
        self.n += other.n
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        return self

    def sum(self) -> float:
        return self._sum.value()

    def mean(self) -> float:
        return self._sum.value() / self.n if self.n else 0.0

    def variance(self) -> float:
        """Population variance (non-negative even under cancellation)."""
        if self.n == 0:
            return 0.0
        mean = self.mean()
        return max(0.0, self._sumsq.value() / self.n - mean * mean)

    def stddev(self) -> float:
        return math.sqrt(self.variance())

    def __reduce__(self):
        return (_restore_moments,
                (self.n, self._sum._partials, self._sumsq._partials))

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "sum": self._sum.to_dict(),
            "sumsq": self._sumsq.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamMoments":
        out = cls()
        out.n = int(data["n"])
        out._sum = ExactSum.from_dict(data["sum"])
        out._sumsq = ExactSum.from_dict(data["sumsq"])
        return out


def _restore_moments(n, sum_partials, sumsq_partials):
    out = StreamMoments()
    out.n = n
    out._sum = _restore_exact_sum(sum_partials)
    out._sumsq = _restore_exact_sum(sumsq_partials)
    return out


class MergeableHistogram:
    """Fixed-edge histogram with integer counts (exactly mergeable).

    Values below the first edge land in the first bucket, values at or
    above the last edge in the overflow bucket — the same conventions as
    the observability histograms, kept dependency-free so accumulators
    can cross process boundaries as plain data.
    """

    __slots__ = ("edges", "counts")

    def __init__(self, edges):
        self.edges = tuple(float(e) for e in edges)
        if len(self.edges) < 1 or list(self.edges) != sorted(set(self.edges)):
            raise ValueError("edges must be a strictly increasing sequence")
        self.counts = [0] * (len(self.edges) + 1)

    def observe(self, x) -> None:
        x = float(x)
        for i, edge in enumerate(self.edges):
            if x < edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "MergeableHistogram") -> "MergeableHistogram":
        if self.edges != other.edges:
            raise ValueError("cannot merge histograms with different edges")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        return self

    @property
    def total(self) -> int:
        return sum(self.counts)

    def __reduce__(self):
        return (_restore_histogram, (self.edges, self.counts))

    def to_dict(self) -> dict:
        return {"edges": list(self.edges), "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, data: dict) -> "MergeableHistogram":
        out = cls(data["edges"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(out.counts):
            raise ValueError("counts length does not match edges")
        out.counts = counts
        return out


def _restore_histogram(edges, counts):
    out = MergeableHistogram(edges)
    out.counts = counts
    return out
