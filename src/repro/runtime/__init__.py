"""Shared parallel-execution runtime for Monte-Carlo experiments.

``repro.runtime.trials`` provides the seeded, chunked trial runner every
BER sweep and MAC scenario sweep goes through; ``repro.runtime.bench`` is
the performance-regression harness that emits ``BENCH_phy.json``.

``bench`` is intentionally *not* imported here: it depends on
``repro.analysis``, which itself runs trials through this package.
Import it explicitly as ``repro.runtime.bench`` (or via the
``python -m repro bench`` CLI).
"""

from repro.runtime.trials import (
    ChunkFailure,
    TrialRunResult,
    parallel_map,
    resolve_workers,
    run_trials,
    trial_rngs,
)

__all__ = [
    "ChunkFailure",
    "TrialRunResult",
    "parallel_map",
    "resolve_workers",
    "run_trials",
    "trial_rngs",
]
