"""Shared parallel-execution runtime for Monte-Carlo experiments.

``repro.runtime.trials`` provides the seeded, chunked trial runner every
BER sweep and MAC scenario sweep goes through — with persistent worker
pools, initializer-shipped shared payloads, and probe-based chunk
autotuning. ``repro.runtime.cache`` is the keyed, process-safe result
cache expensive sweep inputs (PHY calibration) go through.
``repro.runtime.bench`` is the performance-regression harness that emits
``BENCH_phy.json`` / ``BENCH_mac.json`` and diffs runs against committed
baselines.

``bench`` is intentionally *not* imported here: it depends on
``repro.analysis``, which itself runs trials through this package.
Import it explicitly as ``repro.runtime.bench`` (or via the
``python -m repro bench`` CLI).
"""

from repro.runtime.cache import (
    ResultCache,
    cache_enabled,
    code_fingerprint,
    content_key,
    default_cache_dir,
    stable_digest,
)
from repro.runtime.reduction import (
    ExactSum,
    MergeableHistogram,
    StreamMoments,
)
from repro.runtime.shm import (
    SharedPayload,
    pack_payload,
    payload_fingerprint,
    shm_supported,
)
from repro.runtime.trials import (
    ChunkFailure,
    TrialRunResult,
    autotune_chunk_size,
    parallel_map,
    persistent_pool,
    resolve_workers,
    run_trials,
    shared_payload,
    shutdown_pools,
    trial_rngs,
)

__all__ = [
    "ChunkFailure",
    "ExactSum",
    "MergeableHistogram",
    "ResultCache",
    "SharedPayload",
    "StreamMoments",
    "TrialRunResult",
    "autotune_chunk_size",
    "cache_enabled",
    "code_fingerprint",
    "content_key",
    "default_cache_dir",
    "pack_payload",
    "parallel_map",
    "payload_fingerprint",
    "persistent_pool",
    "resolve_workers",
    "run_trials",
    "shared_payload",
    "shm_supported",
    "shutdown_pools",
    "stable_digest",
    "trial_rngs",
]
