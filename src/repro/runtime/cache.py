"""Keyed, process-safe result caching for expensive sweep inputs.

System-level sweeps (goodput vs. receivers, payload, loss regime) share
expensive inputs across points: every point at the same SNR/MCS re-runs
the *same* PHY calibration (`repro.analysis.calibration`), which costs
seconds per point while the MAC simulation itself costs milliseconds.
This module provides the cache those sweeps go through:

* **Keyed by content** — :func:`content_key` hashes the experiment inputs
  *and* a fingerprint of the source code that produces the result
  (:func:`code_fingerprint`), so editing the PHY chain or the calibration
  logic invalidates every stale entry automatically.
* **Two tiers** — an in-memory dict for hits within a process, a JSON
  file per entry on disk for hits across processes and runs.
* **Process-safe** — disk writes go to a temp file in the same directory
  followed by an atomic ``os.replace``; concurrent writers of the same
  key both write the same deterministic payload, so last-writer-wins is
  correct. Corrupt or half-written files read as misses.
* **Escape hatches** — ``REPRO_NO_CACHE=1`` bypasses the cache entirely
  (every lookup recomputes), ``REPRO_CACHE_DIR`` relocates it, and
  :meth:`ResultCache.clear` wipes one namespace.

Values must be JSON-serialisable; callers wrap/unwrap their own types
(e.g. the calibration stores the four floats of a ``BerCurveErrorModel``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from functools import lru_cache
from types import ModuleType

from ..obs.log import get_logger
from ..obs.trace import active_recorder, metrics

log = get_logger(__name__)

__all__ = [
    "ResultCache",
    "cache_enabled",
    "code_fingerprint",
    "content_key",
    "default_cache_dir",
    "stable_digest",
]

_ENV_DISABLE = "REPRO_NO_CACHE"
_ENV_DIR = "REPRO_CACHE_DIR"


def cache_enabled() -> bool:
    """False when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get(_ENV_DISABLE, "").strip().lower() not in (
        "1", "true", "yes", "on",
    )


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else a per-user directory under the home cache."""
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return env
    home = os.path.expanduser("~")
    if home and home != "~":
        return os.path.join(home, ".cache", "repro")
    return os.path.join(tempfile.gettempdir(), "repro-cache")


def _module_files(module: ModuleType) -> list:
    """Source files backing ``module`` (every ``.py`` under a package)."""
    path = getattr(module, "__file__", None)
    if path is None:  # pragma: no cover - namespace/builtin modules
        return []
    if os.path.basename(path) != "__init__.py":
        return [path]
    files = []
    for root, _dirs, names in os.walk(os.path.dirname(path)):
        files.extend(
            os.path.join(root, name) for name in names if name.endswith(".py")
        )
    return sorted(files)


@lru_cache(maxsize=None)
def _fingerprint_cached(module_names: tuple) -> str:
    import importlib

    digest = hashlib.sha256()
    for name in module_names:
        module = importlib.import_module(name)
        for path in _module_files(module):
            digest.update(path.encode())
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except OSError:  # pragma: no cover - unreadable source
                digest.update(b"<unreadable>")
    return digest.hexdigest()[:16]


def code_fingerprint(*modules) -> str:
    """Stable hash of the source of ``modules`` (packages walk recursively).

    Accepts module objects or dotted names. Computed once per process per
    module set — calibration callers can afford to fingerprint the whole
    PHY chain on every lookup.
    """
    names = tuple(
        sorted(m.__name__ if isinstance(m, ModuleType) else str(m) for m in modules)
    )
    return _fingerprint_cached(names)


def stable_digest(obj, length: int = 16) -> str:
    """Content digest of an arbitrary picklable object.

    Two objects that pickle to the same bytes get the same digest — numpy
    arrays hash by dtype/shape/contents, dicts by insertion order. This is
    what the persistent worker-pool registry keys shared payloads by
    (``repro.runtime.trials``): an equal re-created payload maps to the
    same warm pool, while distinct payloads can never alias one. Objects
    that refuse to pickle fall back to an identity digest (they could not
    reach a worker anyway).
    """
    try:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return f"id{id(obj):x}"
    return hashlib.sha256(blob).hexdigest()[:length]


def content_key(namespace: str, payload: dict, fingerprint: str = "") -> str:
    """Deterministic cache key from a namespace, inputs, and code version.

    ``payload`` must be JSON-serialisable with a stable repr (sorted keys
    are enforced here); embed ``code_fingerprint(...)`` so code changes
    invalidate old entries.
    """
    body = json.dumps(payload, sort_keys=True, default=repr)
    digest = hashlib.sha256(f"{namespace}\0{fingerprint}\0{body}".encode())
    return digest.hexdigest()[:32]


class ResultCache:
    """Two-tier (memory + disk) cache of JSON-serialisable results.

    >>> cache = ResultCache(namespace="demo")
    >>> cache.get_or_compute("k", lambda: {"x": 1})
    {'x': 1}

    One JSON file per entry under ``<directory>/<namespace>/<key>.json``.
    """

    def __init__(self, directory: str | None = None, namespace: str = "default"):
        self.directory = os.path.join(directory or default_cache_dir(), namespace)
        self.namespace = namespace
        self._memory: dict = {}
        self.hits = 0
        self.misses = 0

    # -- storage ------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str):
        """The cached value, or ``None`` on a miss (or disabled cache)."""
        if not cache_enabled():
            return None
        if key in self._memory:
            self.hits += 1
            self._record("hit", key, tier="memory")
            return self._memory[key]
        try:
            with open(self._path(key)) as handle:
                value = json.load(handle)
        except (OSError, ValueError):
            # Missing, unreadable, or half-written entry: treat as a miss.
            self.misses += 1
            self._record("miss", key)
            return None
        self._memory[key] = value
        self.hits += 1
        self._record("hit", key, tier="disk")
        return value

    _COUNTERS = {"hit": "runtime.cache_hits", "miss": "runtime.cache_misses"}

    def _record(self, outcome: str, key: str, tier: str = "") -> None:
        """Forward one lookup outcome to the obs layer (no-ops when off)."""
        metrics().counter(self._COUNTERS[outcome]).inc()
        rec = active_recorder()
        if rec is not None:
            fields = {"namespace": self.namespace, "key": key}
            if tier:
                fields["tier"] = tier
            rec.emit("runtime", f"cache_{outcome}", **fields)
        log.debug("cache %s: %s/%s%s", outcome, self.namespace, key,
                  f" ({tier})" if tier else "")

    def put(self, key: str, value) -> None:
        """Store a JSON-serialisable value under ``key`` (atomic on disk)."""
        if not cache_enabled():
            return
        self._memory[key] = value
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(value, handle)
                os.replace(tmp, self._path(key))
            finally:
                if os.path.exists(tmp):  # pragma: no cover - replace failed
                    os.unlink(tmp)
        except OSError:  # pragma: no cover - read-only filesystem
            pass  # memory tier still serves this process

    def get_or_compute(self, key: str, compute):
        """``get(key)``, falling back to ``compute()`` (stored on miss)."""
        value = self.get(key)
        if value is None:
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry in this namespace (memory and disk)."""
        self._memory.clear()
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".json") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - concurrent clear
                    pass
