"""Performance-regression harness → ``BENCH_phy.json`` / ``BENCH_mac.json``.

Times the hot loops this reproduction depends on. The **phy** suite covers
convolutional encoding, Viterbi decoding, the full receive chain, and the
Monte-Carlo trial runner serial vs parallel; the **mac** suite covers the
sweep engine this repo's system-level results run on — scalar vs batched
simulation, the receivers×payload goodput sweep batched+cached vs scalar
uncached, and trial-runner scaling on the persistent pools. Run via::

    python -m repro bench --suite phy --out BENCH_phy.json
    python -m repro bench --suite mac --out BENCH_mac.json
    python -m repro bench --suite net --out BENCH_net.json
    python -m repro bench --suite all --smoke          # CI structural check
    python -m repro bench --suite all --smoke --compare .   # regression gate

The **net** suite times the multi-BSS deployment layer (:mod:`repro.net`):
cell fan-out over the persistent pools serial vs parallel, and a cold
compute vs a warm result-cache replay of the same deployment.

Each suite emits one JSON document in the same schema family, checked by
:func:`validate_bench`; :func:`compare_bench` diffs a run against a
committed baseline and reports every throughput metric that regressed by
more than the threshold (the CI gate fails on any).

Not imported from ``repro.runtime.__init__``: this module depends on
``repro.analysis``, which itself runs its trials through the runtime.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import replace

import numpy as np

from repro.obs.trace import collecting
from repro.runtime.trials import resolve_workers, run_trials

__all__ = [
    "run_phy_bench",
    "run_mac_bench",
    "run_net_bench",
    "run_soak_bench",
    "validate_bench",
    "compare_bench",
    "peak_rss_mb",
    "SCHEMA_VERSION",
]

# v3: the serial legs of monte_carlo / trials_pool are the per-trial
# *scalar oracle*, the parallel legs run the production batched chunk
# path, and each pool section carries a ``scaling`` subsection — the
# speedup curve over worker counts (``"1"`` = the batched path in-process,
# no pool) that ``crossover_workers`` is read from.
# v4: the net suite gains a ``streaming`` section — bytes shipped over
# IPC and parent peak RSS for sharded (worker-side reduced) vs unsharded
# deployments at identical results — and the ``observability`` section
# carries ``ipc_result_bytes`` / ``shm_bytes`` / ``peak_rss_mb``.
# v5: new ``soak`` suite — sustained frames-per-wall-second of the
# :mod:`repro.serve` epoch loop at a flat parent RSS ceiling, plus a
# kill/resume identity gate. Older baselines lacking the suite (or any
# section) stay comparable: :func:`compare_bench` only diffs sections
# present in both documents.
# v6: the soak suite gains a ``telemetry`` section — sustained frames/s
# with per-epoch telemetry + one SLO watchdog on vs off, gated on the
# overhead factor — and the ``resume`` section gains an
# ``identical_telemetry`` gate: the deterministic telemetry view must be
# byte-identical across kill/resume at different worker/shard counts.
SCHEMA_VERSION = 6

# Suite -> section -> keys every BENCH_*.json must carry (the schema family).
_REQUIRED_KEYS = {
    "phy": {
        "meta": (
            "schema_version", "suite", "python", "numpy", "platform",
            "c_kernel", "smoke", "n_workers",
        ),
        "encode": ("n_bits", "rate", "seconds_per_frame", "mbit_per_s"),
        "viterbi": (
            "n_bits", "rate", "seconds_per_frame", "mbit_per_s",
            "reference_seconds_per_frame", "speedup_vs_reference",
            "bit_exact_vs_reference",
        ),
        "rx_chain": ("mcs", "payload_bytes", "seconds_per_frame", "frames_per_s"),
        "monte_carlo": (
            "trials", "payload_bytes", "serial_seconds", "serial_trials_per_s",
            "parallel_workers", "parallel_seconds", "parallel_trials_per_s",
            "pool_reused", "crossover_workers", "identical_serial_parallel",
            "scaling",
        ),
    },
    "mac": {
        "meta": (
            "schema_version", "suite", "python", "numpy", "platform",
            "smoke", "n_workers",
        ),
        "engine": (
            "stations", "duration", "runs", "scalar_seconds",
            "batched_seconds", "speedup_batched", "identical_metrics",
        ),
        "sweep": (
            "receivers", "payloads", "points", "trials",
            "scalar_uncached_seconds", "batched_cached_seconds",
            "speedup", "identical_results",
        ),
        "trials_pool": (
            "trials", "stations", "payload_bytes", "probes_per_tile",
            "serial_seconds", "serial_trials_per_s",
            "parallel_workers", "parallel_seconds", "parallel_trials_per_s",
            "pool_reused", "crossover_workers", "identical_serial_parallel",
            "scaling",
        ),
    },
    "net": {
        "meta": (
            "schema_version", "suite", "python", "numpy", "platform",
            "smoke", "n_workers",
        ),
        "deployment": (
            "aps", "stas_per_ap", "duration", "serial_seconds",
            "serial_cells_per_s", "parallel_workers", "parallel_seconds",
            "parallel_cells_per_s", "pool_reused", "crossover_workers",
            "identical_serial_parallel", "scaling",
        ),
        "replay": (
            "aps", "stas_per_ap", "duration", "cold_seconds",
            "warm_seconds", "identical_cold_warm",
        ),
        "streaming": (
            "small_aps", "large_aps", "stas_per_ap", "duration", "shards",
            "unsharded_ipc_bytes", "sharded_ipc_bytes",
            "ipc_reduction_factor", "small_peak_rss_mb", "large_peak_rss_mb",
            "rss_growth_factor", "ipc_reduction_ok", "rss_flat_ok",
            "identical_sharded_unsharded",
        ),
    },
    "soak": {
        "meta": (
            "schema_version", "suite", "python", "numpy", "platform",
            "smoke", "n_workers",
        ),
        "sustained": (
            "epochs", "aps", "max_stas_per_ap", "epoch_duration", "shards",
            "cumulative_users", "frames", "wall_seconds", "frames_per_s",
            "warm_peak_rss_mb", "end_peak_rss_mb", "rss_growth_factor",
            "rss_flat_ok",
        ),
        "telemetry": (
            "epochs", "slo", "plain_wall_seconds", "telemetry_wall_seconds",
            "plain_frames_per_s", "telemetry_frames_per_s",
            "overhead_factor", "overhead_threshold", "overhead_ok",
            "telemetry_records", "health_status",
        ),
        "resume": (
            "epochs", "resume_epoch", "identical_resume",
            "identical_telemetry",
        ),
    },
}

# Correctness gates: (suite, section, key) that must be True.
_TRUE_GATES = {
    "phy": (
        ("viterbi", "bit_exact_vs_reference"),
        ("monte_carlo", "identical_serial_parallel"),
    ),
    "mac": (
        ("engine", "identical_metrics"),
        ("sweep", "identical_results"),
        ("trials_pool", "identical_serial_parallel"),
    ),
    "net": (
        ("deployment", "identical_serial_parallel"),
        ("replay", "identical_cold_warm"),
        ("streaming", "identical_sharded_unsharded"),
        ("streaming", "ipc_reduction_ok"),
        ("streaming", "rss_flat_ok"),
    ),
    "soak": (
        ("sustained", "rss_flat_ok"),
        ("telemetry", "overhead_ok"),
        ("resume", "identical_resume"),
        ("resume", "identical_telemetry"),
    ),
}


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set size, in MiB.

    The single place ``ru_maxrss`` units are normalised: the kernel
    reports kilobytes on Linux but *bytes* on macOS, so every consumer
    (the streaming and soak bench gates, ``benchmarks/
    check_memory_ceiling.py`` and its committed ``memory_budget.json``
    ceilings) must read the figure through this helper for absolute MB
    budgets to be portable.

    ``ru_maxrss`` is a monotone high-water mark: it can only ever grow,
    which is exactly the property the delta-based gates lean on — measure
    after a small leg, then after a large leg, and any growth is
    attributable to the large leg.
    """
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / ((1 << 20) if sys.platform == "darwin" else (1 << 10))


def _observability_section(registry) -> dict:
    """Parent-side obs counters for the optional ``observability`` section.

    Collected with worker shipping off, so the timed chunk path inside the
    pools is exactly what an uninstrumented run executes. Informational
    only: :func:`compare_bench` never gates on it, and committed baselines
    written before the section existed (or before individual counters
    like ``ipc_result_bytes`` / ``shm_bytes`` / ``peak_rss_mb`` were
    added) stay valid.
    """
    def count(name: str) -> int:
        instrument = registry.get(name)
        return int(instrument.value) if instrument is not None else 0

    hits = count("runtime.cache_hits")
    misses = count("runtime.cache_misses")
    lookups = hits + misses
    return {
        "pool_spawned": count("runtime.pool_spawned"),
        "pool_reused": count("runtime.pool_reused"),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_ratio": hits / lookups if lookups else None,
        "chunk_retries": count("runtime.chunk_retries"),
        "chunks_failed": count("runtime.chunks_failed"),
        "ipc_result_bytes": count("runtime.ipc_result_bytes"),
        "shm_bytes": count("runtime.shm_bytes"),
        "peak_rss_mb": peak_rss_mb(),
    }


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (one discarded warm-up)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scaling_section(serial_seconds: float, n_units: int, timings: dict,
                     unit: str) -> dict:
    """The speedup curve of one pool section: worker count -> timings.

    ``timings["1"]`` is the production (batched, where the section has a
    batch path) code at one worker *in-process* — no pool; higher counts
    add the pool. ``serial_seconds`` is the per-trial scalar oracle the
    speedups are measured against.
    """
    return {
        "unit": unit,
        "serial_seconds": serial_seconds,
        "workers": {
            str(w): {
                "seconds": s,
                f"{unit}_per_s": n_units / s,
                "speedup_vs_serial": serial_seconds / s,
            }
            for w, s in sorted(timings.items())
        },
    }


def _crossover(serial_seconds: float, timings: dict) -> int | None:
    """Smallest *pooled* worker count that beats the serial oracle."""
    return next(
        (w for w in sorted(timings) if w >= 2 and timings[w] < serial_seconds),
        None,
    )


def _meta(suite: str, smoke: bool, n_workers) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "smoke": smoke,
        "n_workers": resolve_workers(n_workers),
    }


# --------------------------------------------------------------------------- #
# PHY suite
# --------------------------------------------------------------------------- #

def _bench_coding(n_bits: int, repeats: int) -> tuple[dict, dict]:
    from repro.phy import coding

    rng = np.random.default_rng(0)
    message = rng.integers(0, 2, n_bits).astype(np.uint8)
    rate = coding.RATE_3_4
    coded = coding.conv_encode(message, rate)

    encode_s = _best_of(lambda: coding.conv_encode(message, rate), repeats)
    decode_s = _best_of(
        lambda: coding.viterbi_decode(coded, n_bits, rate, terminated=False),
        repeats,
    )
    reference_s = _best_of(
        lambda: coding.viterbi_decode_reference(coded, n_bits, rate, terminated=False),
        max(1, repeats // 2),
    )
    fast = coding.viterbi_decode(coded, n_bits, rate, terminated=False)
    reference = coding.viterbi_decode_reference(coded, n_bits, rate, terminated=False)

    encode = {
        "n_bits": n_bits,
        "rate": "3/4",
        "seconds_per_frame": encode_s,
        "mbit_per_s": n_bits / encode_s / 1e6,
    }
    viterbi = {
        "n_bits": n_bits,
        "rate": "3/4",
        "seconds_per_frame": decode_s,
        "mbit_per_s": n_bits / decode_s / 1e6,
        "reference_seconds_per_frame": reference_s,
        "speedup_vs_reference": reference_s / decode_s,
        "bit_exact_vs_reference": bool(np.array_equal(fast, reference)),
    }
    return encode, viterbi


def _bench_rx_chain(payload_bytes: int, repeats: int) -> dict:
    from repro.analysis.phy_experiments import (
        LinkConfig,
        _decode_standard_subframe,
        _make_frame,
    )
    from repro.core.symbol_crc import DEFAULT_CRC_CONFIG
    from repro.phy.mcs import mcs_by_name

    mcs_name = "QAM64-3/4"
    mcs = mcs_by_name(mcs_name)
    frame, _ = _make_frame(payload_bytes, mcs, DEFAULT_CRC_CONFIG, True, seed=0)
    received = LinkConfig(seed=0).channel("bench-rx").transmit(frame.symbols)
    seconds = _best_of(
        lambda: _decode_standard_subframe(
            received, mcs, DEFAULT_CRC_CONFIG, use_rte=False, rte_rule="average"
        ),
        repeats,
    )
    return {
        "mcs": mcs_name,
        "payload_bytes": payload_bytes,
        "seconds_per_frame": seconds,
        "frames_per_s": 1.0 / seconds,
    }


def _bench_monte_carlo(payload_bytes: int, trials: int, n_workers,
                       smoke: bool) -> dict:
    """Scalar serial oracle vs the batched chunk path across worker counts.

    The serial leg (``batched=False``) decodes one frame per call — the
    per-trial reference the bit-identity contract is stated against. The
    parallel legs run production code: chunks sized from measured IPC
    cost, each chunk decoded as one stacked vectorised call, frame tables
    shipped once per worker by shared memory. ``crossover_workers`` is
    the smallest pooled count that beats the oracle.
    """
    from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

    link = LinkConfig(seed=1)
    repeats = 1 if smoke else 2

    def leg(w, batched=None, chunk_size=None):
        # Best-of-N: pool scheduling jitter on small boxes easily swings
        # one measurement ±30%, which would poison the committed baseline.
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = ber_by_symbol_index(
                "QAM64-3/4", payload_bytes, trials, link=link, n_workers=w,
                batched=batched, chunk_size=chunk_size,
            )
            best = min(best, time.perf_counter() - start)
        return best, result

    serial_s, serial = leg(1, batched=False)

    # Exercise the pool even on a single-core box: the point of the parallel
    # leg is to regression-check determinism through the process pool. The
    # persistent pool is warmed (spawn cost paid) by a tiny throwaway run so
    # the timed leg measures the amortised steady state a sweep sees.
    workers = max(2, resolve_workers(n_workers))
    candidates = [workers] if smoke else sorted({2, workers, 2 * workers})
    timings = {}
    parallel = None
    for w in candidates:
        ber_by_symbol_index("QAM64-3/4", payload_bytes, 2, link=link, n_workers=w)
        timings[w], result = leg(w, chunk_size="auto")
        if w == workers:
            parallel = result
    # The one-worker point of the curve: batched chunks, no pool.
    timings[1], batched_serial = leg(1)
    crossover = _crossover(serial_s, timings)

    identical = bool(
        np.array_equal(serial.ber_per_symbol, parallel.ber_per_symbol)
        and serial.crc_pass_rate == parallel.crc_pass_rate
        and serial.side_bit_error_rate == parallel.side_bit_error_rate
        and np.array_equal(serial.ber_per_symbol, batched_serial.ber_per_symbol)
    )
    return {
        "trials": trials,
        "payload_bytes": payload_bytes,
        "serial_seconds": serial_s,
        "serial_trials_per_s": trials / serial_s,
        "parallel_workers": workers,
        "parallel_seconds": timings[workers],
        "parallel_trials_per_s": trials / timings[workers],
        "pool_reused": True,
        "crossover_workers": crossover,
        "identical_serial_parallel": identical,
        "scaling": _scaling_section(serial_s, trials, timings, "trials"),
    }


def run_phy_bench(
    smoke: bool = False,
    n_workers: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run the full PHY timing suite; optionally write JSON to ``out_path``.

    ``smoke=True`` shrinks every workload (seconds instead of minutes) while
    exercising every code path, so CI can validate the schema cheaply.
    """
    from repro.phy import coding

    if smoke:
        coding_bits, repeats = 7998, 1
        rx_payload, mc_payload, mc_trials = 500, 300, 4
    else:
        # ~4 KB frame at rate 3/4 (nearest multiple of the puncture period).
        coding_bits, repeats = 32766, 5
        rx_payload, mc_payload, mc_trials = 4090, 1000, 48

    with collecting() as registry:
        encode, viterbi = _bench_coding(coding_bits, repeats)
        rx_chain = _bench_rx_chain(rx_payload, repeats)
        monte_carlo = _bench_monte_carlo(mc_payload, mc_trials, n_workers, smoke)
    meta = _meta("phy", smoke, n_workers)
    meta["c_kernel"] = coding._CKERNEL is not None
    payload = {
        "meta": meta,
        "encode": encode,
        "viterbi": viterbi,
        "rx_chain": rx_chain,
        "monte_carlo": monte_carlo,
        "observability": _observability_section(registry),
    }
    validate_bench(payload)
    _write(payload, out_path)
    return payload


# --------------------------------------------------------------------------- #
# MAC suite
# --------------------------------------------------------------------------- #

def _mac_sim(rng, stations, duration):
    """One VoIP MAC simulation seeded from the trial's RNG."""
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import VoipScenario

    scenario = VoipScenario(
        num_stations=stations, duration=duration,
        seed=int(rng.integers(0, 2**31 - 1)), batched=True,
    )
    result = scenario.run(PROTOCOLS["Carpool"])
    return result.measured_ap_goodput_bps


def _mac_tile_trial(trial_index, rng, link, mcs, crc_config, probes,
                    stations, duration):
    """One sweep tile, scalar: ``probes`` PHY error probes + one MAC sim.

    This is the cost shape of a real sweep cell — calibration-style frame
    probes feeding a trace-driven MAC run. The probes read the frame
    tables from the run's shared payload and draw their channels from the
    tile's RNG in order, then the sim seeds itself from the same RNG, so
    the batched executor below consumes each RNG identically.
    """
    from repro.analysis.phy_experiments import _ber_symbol_trial

    crc_passes = side_errors = 0
    for _ in range(probes):
        _, passes, side = _ber_symbol_trial(
            trial_index, rng, link, mcs, crc_config, False, "average")
        crc_passes += passes
        side_errors += side
    return (crc_passes, side_errors, _mac_sim(rng, stations, duration))


def _mac_tile_batch(start, rngs, link, mcs, crc_config, probes,
                    stations, duration):
    """Batched executor for :func:`_mac_tile_trial` chunks.

    Probe round *r* of every tile in the chunk decodes as one stacked
    call; each RNG is consumed once per round and then once by its own
    sim — the same per-RNG draw order as the scalar tile, so results are
    bit-identical.
    """
    from repro.analysis.phy_experiments import _ber_symbol_batch

    crc_passes = [0] * len(rngs)
    side_errors = [0] * len(rngs)
    for _ in range(probes):
        outcomes = _ber_symbol_batch(
            start, rngs, link, mcs, crc_config, False, "average")
        for t, (_, passes, side) in enumerate(outcomes):
            crc_passes[t] += passes
            side_errors[t] += side
    return [
        (crc_passes[t], side_errors[t], _mac_sim(rngs[t], stations, duration))
        for t in range(len(rngs))
    ]


def _bench_engine(stations: int, duration: float, runs: int) -> dict:
    """Scalar oracle vs batched draw path on identical scenarios."""
    from repro.mac import PROTOCOLS
    from repro.mac.scenarios import VoipScenario

    def leg(batched: bool):
        results = []
        start = time.perf_counter()
        for index in range(runs):
            scenario = VoipScenario(
                num_stations=stations, duration=duration,
                seed=1000 + index, batched=batched,
            )
            results.append(scenario.run(PROTOCOLS["Carpool"]))
        return time.perf_counter() - start, results

    leg(True)  # warm caches (probability memos, import cost) for both legs
    scalar_s, scalar_results = leg(False)
    batched_s, batched_results = leg(True)
    return {
        "stations": stations,
        "duration": duration,
        "runs": runs,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup_batched": scalar_s / batched_s,
        "identical_metrics": scalar_results == batched_results,
    }


def _bench_sweep(receivers: tuple, payloads: tuple, trials: int,
                 duration: float, calibration_payload: int,
                 calibration_trials: int) -> dict:
    """The headline number: batched+cached vs scalar+uncached at equal seeds."""
    from repro.analysis.calibration import clear_calibration_cache
    from repro.mac.sweep import SweepConfig, goodput_airtime_sweep

    fast_config = SweepConfig(
        receiver_counts=receivers, payload_bytes=payloads, trials=trials,
        duration=duration, calibration_payload=calibration_payload,
        calibration_trials=calibration_trials, batched=True, cache=True,
    )
    slow_config = replace(fast_config, batched=False, cache=False)

    clear_calibration_cache()
    start = time.perf_counter()
    slow = goodput_airtime_sweep(slow_config, n_workers=1)
    slow_s = time.perf_counter() - start

    clear_calibration_cache()  # time the cached leg from a cold cache
    start = time.perf_counter()
    fast = goodput_airtime_sweep(fast_config, n_workers=1)
    fast_s = time.perf_counter() - start

    identical = all(
        a.per_trial_goodput == b.per_trial_goodput for a, b in zip(slow, fast)
    )
    return {
        "receivers": list(receivers),
        "payloads": list(payloads),
        "points": len(receivers) * len(payloads),
        "trials": trials,
        "scalar_uncached_seconds": slow_s,
        "batched_cached_seconds": fast_s,
        "speedup": slow_s / fast_s,
        "identical_results": identical,
    }


def _bench_trials_pool(trials: int, stations: int, duration: float,
                       payload_bytes: int, probes: int, n_workers,
                       smoke: bool) -> dict:
    """Serial scalar vs batched pool ``run_trials`` on MAC sweep tiles.

    Each trial is one sweep *tile*: ``probes`` PHY frame probes plus the
    MAC simulation they feed (:func:`_mac_tile_trial`). The serial leg
    runs tiles one probe at a time — the per-trial oracle; the pooled
    legs batch every chunk's probes into stacked decodes with the frame
    tables shipped once per worker by shared memory.
    """
    from repro.analysis.phy_experiments import (
        LinkConfig,
        _frame_tables,
        _make_frame,
    )
    from repro.core.symbol_crc import DEFAULT_CRC_CONFIG
    from repro.phy.mcs import mcs_by_name

    seed = 314159
    link = LinkConfig(seed=271828)
    mcs = mcs_by_name("QAM64-3/4")
    frame, true_side_bits = _make_frame(
        payload_bytes, mcs, DEFAULT_CRC_CONFIG, True, link.seed)
    shared = _frame_tables(frame, true_side_bits)
    args = (link, mcs, DEFAULT_CRC_CONFIG, probes, stations, duration)
    repeats = 1 if smoke else 2

    def leg(w, batch_fn=None, chunk_size=None):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_trials(_mac_tile_trial, trials, seed=seed,
                                n_workers=w, chunk_size=chunk_size,
                                args=args, shared=shared, batch_fn=batch_fn)
            best = min(best, time.perf_counter() - start)
        return best, result

    serial_s, serial = leg(1)

    workers = max(2, resolve_workers(n_workers))
    candidates = [workers] if smoke else sorted({2, workers, 2 * workers})
    timings = {}
    parallel = None
    for w in candidates:
        # Warm the persistent pool (same payload content -> same pool) so
        # the timed run sees the steady state; one chunk per worker keeps
        # the stacked decodes as large as the tile count allows.
        chunk = max(1, -(-trials // w))
        run_trials(_mac_tile_trial, min(2, trials), seed=seed, n_workers=w,
                   args=args, shared=shared, batch_fn=_mac_tile_batch)
        timings[w], result = leg(w, batch_fn=_mac_tile_batch, chunk_size=chunk)
        if w == workers:
            parallel = result
    timings[1], batched_serial = leg(1, batch_fn=_mac_tile_batch)
    crossover = _crossover(serial_s, timings)

    return {
        "trials": trials,
        "stations": stations,
        "payload_bytes": payload_bytes,
        "probes_per_tile": probes,
        "serial_seconds": serial_s,
        "serial_trials_per_s": trials / serial_s,
        "parallel_workers": workers,
        "parallel_seconds": timings[workers],
        "parallel_trials_per_s": trials / timings[workers],
        "pool_reused": True,
        "crossover_workers": crossover,
        "identical_serial_parallel": serial == parallel == batched_serial,
        "scaling": _scaling_section(serial_s, trials, timings, "trials"),
    }


def run_mac_bench(
    smoke: bool = False,
    n_workers: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run the MAC/sweep timing suite; optionally write JSON to ``out_path``.

    The ``sweep`` section is the acceptance benchmark: the receivers ×
    payload goodput sweep, batched+cached vs scalar+uncached at equal
    seeds (the uncached leg re-runs the PHY calibration per point, which
    is what real sweeps did before the cache existed).
    """
    with collecting() as registry:
        if smoke:
            engine = _bench_engine(stations=4, duration=0.4, runs=2)
            sweep = _bench_sweep(
                receivers=(2, 4), payloads=(256, 1024), trials=1, duration=0.2,
                calibration_payload=500, calibration_trials=2,
            )
            pool = _bench_trials_pool(
                trials=4, stations=4, duration=0.2, payload_bytes=300,
                probes=2, n_workers=n_workers, smoke=True,
            )
        else:
            engine = _bench_engine(stations=10, duration=2.0, runs=3)
            sweep = _bench_sweep(
                receivers=(2, 4, 6, 8), payloads=(256, 1024, 2048, 4095),
                trials=2, duration=0.4,
                calibration_payload=4090, calibration_trials=30,
            )
            pool = _bench_trials_pool(
                trials=8, stations=4, duration=0.3, payload_bytes=1000,
                probes=6, n_workers=n_workers, smoke=False,
            )

    payload = {
        "meta": _meta("mac", smoke, n_workers),
        "engine": engine,
        "sweep": sweep,
        "trials_pool": pool,
        "observability": _observability_section(registry),
    }
    validate_bench(payload)
    _write(payload, out_path)
    return payload


# --------------------------------------------------------------------------- #
# NET suite
# --------------------------------------------------------------------------- #

def _bench_deployment(config, n_workers, smoke: bool) -> dict:
    """Serial vs pool-parallel cell fan-out on one deployment config."""
    from repro.net.deployment import simulate_deployment

    # Best-of-3 on full runs: each leg is only ~2 s of simulation on the
    # CI box, and the pooled leg flaps hardest under transient load.
    repeats = 1 if smoke else 3

    def leg(w):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = simulate_deployment(config, n_workers=w, use_cache=False)
            best = min(best, time.perf_counter() - start)
        return best, result

    serial_s, serial = leg(1)

    workers = max(2, resolve_workers(n_workers))
    candidates = [workers] if smoke else sorted({2, workers})
    timings = {}
    parallel = None
    for w in candidates:
        # Warm the persistent pool (and ship the shared spec payload) so
        # the timed leg measures the amortised steady state a sweep sees.
        simulate_deployment(config, n_workers=w, use_cache=False)
        timings[w], result = leg(w)
        if w == workers:
            parallel = result
    # Deployment cells have no batched path: the serial leg *is* the
    # production one-worker code, so it doubles as the curve's "1" point.
    timings[1] = serial_s
    crossover = _crossover(serial_s, timings)

    return {
        "aps": config.n_aps,
        "stas_per_ap": config.stas_per_ap,
        "duration": config.duration,
        "serial_seconds": serial_s,
        "serial_cells_per_s": config.n_aps / serial_s,
        "parallel_workers": workers,
        "parallel_seconds": timings[workers],
        "parallel_cells_per_s": config.n_aps / timings[workers],
        "pool_reused": True,
        "crossover_workers": crossover,
        "identical_serial_parallel": serial.to_dict() == parallel.to_dict(),
        "scaling": _scaling_section(serial_s, config.n_aps, timings, "cells"),
    }


def _bench_replay(config) -> dict:
    """Cold vs warm deployment-cache lookup on a private cache dir."""
    import tempfile

    from repro.net.deployment import simulate_deployment
    from repro.runtime.cache import ResultCache

    cache = ResultCache(
        directory=tempfile.mkdtemp(prefix="repro-bench-net-"),
        namespace="deployment",
    )
    start = time.perf_counter()
    cold = simulate_deployment(config, n_workers=1, cache=cache)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = simulate_deployment(config, n_workers=1, cache=cache)
    warm_s = time.perf_counter() - start
    return {
        "aps": config.n_aps,
        "stas_per_ap": config.stas_per_ap,
        "duration": config.duration,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "identical_cold_warm": cold.to_dict() == warm.to_dict(),
    }


def _bench_streaming(small, large, shards: int, n_workers, registry,
                     smoke: bool) -> dict:
    """Sharded (worker-side reduced) vs unsharded deployments: IPC bytes
    and parent peak RSS at identical results.

    Leg order is load-bearing. ``ru_maxrss`` is a monotone high-water
    mark, so the sharded legs run first, small before large: any RSS
    growth between the two measurements was caused by growing the
    deployment ~an order of magnitude under shards — the constant-memory
    claim, stated as a one-sided gate. The unsharded leg (which *does*
    materialise the spec list and every per-cell dict in the parent) runs
    last, purely to count its IPC traffic and to check bit-identity of
    the deployment-level numbers.

    Gates (thresholds relaxed under ``smoke``):

    * ``ipc_reduction_ok`` — reducing in workers must cut bytes shipped
      over the pipe by at least the threshold factor,
    * ``rss_flat_ok`` — parent peak RSS must stay flat as the AP count
      grows (the authoritative fresh-process ceiling check lives in
      ``benchmarks/check_memory_ceiling.py``; this in-suite gate catches
      gross leaks without a subprocess),
    * ``identical_sharded_unsharded`` — fixed result quality: every
      deployment-level field bit-identical between the paths.
    """
    from repro.net.deployment import simulate_deployment
    from repro.runtime.trials import shutdown_pools

    def ipc_bytes() -> int:
        instrument = registry.get("runtime.ipc_result_bytes")
        return int(instrument.value) if instrument is not None else 0

    workers = max(2, resolve_workers(n_workers))
    ipc_threshold = 2.0 if smoke else 5.0
    rss_threshold = 1.25 if smoke else 1.10

    # Fresh pools so the legs below pay (and amortise) the same costs.
    shutdown_pools()
    simulate_deployment(small, n_workers=workers, use_cache=False,
                        shards=shards)
    small_rss = peak_rss_mb()

    base = ipc_bytes()
    sharded = simulate_deployment(large, n_workers=workers, use_cache=False,
                                  shards=shards)
    sharded_bytes = ipc_bytes() - base
    large_rss = peak_rss_mb()

    base = ipc_bytes()
    unsharded = simulate_deployment(large, n_workers=workers, use_cache=False)
    unsharded_bytes = ipc_bytes() - base

    # Identity is over every deployment-level field; the per-cell list is
    # exactly what sharding trades away, so it is excluded by contract.
    sharded_dict = dict(sharded.to_dict(), cells=None)
    unsharded_dict = dict(unsharded.to_dict(), cells=None)
    reduction = (
        unsharded_bytes / sharded_bytes if sharded_bytes else float("inf")
    )
    growth = large_rss / small_rss if small_rss else float("inf")
    return {
        "small_aps": small.n_aps,
        "large_aps": large.n_aps,
        "stas_per_ap": large.stas_per_ap,
        "duration": large.duration,
        "shards": shards,
        "parallel_workers": workers,
        "unsharded_ipc_bytes": unsharded_bytes,
        "sharded_ipc_bytes": sharded_bytes,
        "ipc_reduction_factor": reduction,
        "ipc_reduction_threshold": ipc_threshold,
        "small_peak_rss_mb": small_rss,
        "large_peak_rss_mb": large_rss,
        "rss_growth_factor": growth,
        "rss_growth_threshold": rss_threshold,
        "ipc_reduction_ok": bool(reduction >= ipc_threshold),
        "rss_flat_ok": bool(growth <= rss_threshold),
        "identical_sharded_unsharded": sharded_dict == unsharded_dict,
    }


def run_net_bench(
    smoke: bool = False,
    n_workers: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run the deployment timing suite; optionally write JSON to ``out_path``.

    The ``deployment`` section times cell fan-out over the persistent
    pools serial vs parallel (gated on bit-identical aggregates); the
    ``replay`` section times a cold compute vs a warm
    :class:`~repro.runtime.cache.ResultCache` hit of the same config; the
    ``streaming`` section measures bytes shipped over IPC and parent peak
    RSS for sharded (worker-side reduced) vs unsharded runs of the same
    deployment, gated on bit-identical deployment-level results.
    """
    from repro.net.deployment import DeploymentConfig

    if smoke:
        config = DeploymentConfig(n_aps=4, stas_per_ap=2, duration=0.5,
                                  channels=1)
        stream_small = DeploymentConfig(n_aps=4, stas_per_ap=2, duration=0.3,
                                        channels=1)
        stream_large = replace(stream_small, n_aps=16)
        shards = 4
    else:
        config = DeploymentConfig(n_aps=9, stas_per_ap=6, duration=3.0,
                                  channels=1)
        stream_small = DeploymentConfig(n_aps=9, stas_per_ap=4, duration=0.5,
                                        channels=1)
        stream_large = replace(stream_small, n_aps=100)
        shards = 10

    with collecting() as registry:
        deployment = _bench_deployment(config, n_workers, smoke)
        replay = _bench_replay(config)
        streaming = _bench_streaming(stream_small, stream_large, shards,
                                     n_workers, registry, smoke)
    payload = {
        "meta": _meta("net", smoke, n_workers),
        "deployment": deployment,
        "replay": replay,
        "streaming": streaming,
        "observability": _observability_section(registry),
    }
    validate_bench(payload)
    _write(payload, out_path)
    return payload


# --------------------------------------------------------------------------- #
# SOAK suite
# --------------------------------------------------------------------------- #

def _bench_soak_sustained(workload, epochs: int, shards, n_workers,
                          smoke: bool) -> dict:
    """Sustained epoch throughput at a flat parent memory ceiling.

    One warm-up epoch first (pays imports, pool spawn, and the allocator
    high-water of a single epoch), then the RSS reading; the remaining
    epochs run through the resumable service exactly as production does,
    and the end-of-run reading must not have grown past the threshold —
    ``ru_maxrss`` is monotone, so any growth happened *during* the
    sustained leg. Frames are the aggregate's MAC transmissions: the
    actual simulated work, not the offered load.
    """
    import shutil
    import tempfile

    from repro.serve.service import SoakConfig, run_soak

    directory = tempfile.mkdtemp(prefix="repro-bench-soak-")
    try:
        warm = run_soak(SoakConfig(
            workload=workload, checkpoint_dir=directory, epochs=1,
            n_workers=n_workers, shards=shards,
        ))
        warm_rss = peak_rss_mb()
        start = time.perf_counter()
        done = run_soak(SoakConfig(
            workload=workload, checkpoint_dir=directory, epochs=epochs,
            n_workers=n_workers, shards=shards, resume=True,
        ))
        wall = time.perf_counter() - start
        end_rss = peak_rss_mb()
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    frames = done.cumulative_frames - warm.cumulative_frames
    growth = end_rss / warm_rss if warm_rss else float("inf")
    threshold = 1.5 if smoke else 1.25
    return {
        "epochs": epochs,
        "aps": workload.n_aps,
        "max_stas_per_ap": workload.max_stas_per_ap,
        "epoch_duration": workload.epoch_duration,
        "shards": shards,
        "cumulative_users": done.cumulative_users,
        "frames": frames,
        "wall_seconds": wall,
        "frames_per_s": frames / wall if wall else float("inf"),
        "warm_peak_rss_mb": warm_rss,
        "end_peak_rss_mb": end_rss,
        "rss_growth_factor": growth,
        "rss_growth_threshold": threshold,
        "rss_flat_ok": bool(growth <= threshold),
    }


def _bench_soak_telemetry(workload, epochs: int, shards, n_workers,
                          smoke: bool) -> dict:
    """Telemetry + SLO watchdog overhead on sustained epoch throughput.

    The end-to-end walls of interleaved plain/telemetry legs are
    reported for the record, but the *gate* uses a paired, same-run
    measurement: ``run_soak`` times its own telemetry machinery
    (``serve.observe``) against the epoch simulation (``serve.epoch``)
    with the same registry clock, so scheduler bursts — which dwarf the
    ~2% true signal when differencing two separate runs at these epoch
    lengths — hit numerator and denominator together and cancel.
    Profiling stays OFF — ``cProfile`` instruments every Python call
    and its cost on a pure-Python simulator is opt-in diagnostic spend,
    not part of the always-on telemetry budget this gate protects.
    """
    import shutil
    import tempfile

    from repro.obs.slo import read_health
    from repro.obs.telemetry import read_telemetry_records
    from repro.serve.service import SoakConfig, run_soak

    # Breach condition "goodput below 1 bps" never trips: the watchdog
    # runs every epoch but the health status stays ``ok``.
    slo = "goodput_bps<1"

    def leg(telemetry: bool) -> tuple:
        directory = tempfile.mkdtemp(prefix="repro-bench-soak-tel-")
        try:
            with collecting() as leg_registry:
                start = time.perf_counter()
                done = run_soak(SoakConfig(
                    workload=workload, checkpoint_dir=directory,
                    epochs=epochs, n_workers=n_workers, shards=shards,
                    telemetry=telemetry, slos=(slo,) if telemetry else (),
                ))
                wall = time.perf_counter() - start
            records = sum(1 for _ in read_telemetry_records(directory))
            health = read_health(directory)
            status = health["status"] if health else "n/a"
            timers = leg_registry.to_dict().get("timers", {})
            return wall, done.cumulative_frames, records, status, timers
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    # Discarded warm-up pays imports and pool spawn for both modes.
    leg(telemetry=False)
    plain_wall = tel_wall = float("inf")
    frames = records = 0
    status = "n/a"
    sim_seconds = observe_seconds = 0.0
    for _ in range(2 if smoke else 3):
        wall, frames, _, _, _ = leg(telemetry=False)
        plain_wall = min(plain_wall, wall)
        wall, frames, records, status, timers = leg(telemetry=True)
        tel_wall = min(tel_wall, wall)
        sim_seconds += timers.get("serve.epoch", {}).get("total", 0.0)
        observe_seconds += timers.get("serve.observe", {}).get("total", 0.0)

    plain_fps = frames / plain_wall if plain_wall else float("inf")
    tel_fps = frames / tel_wall if tel_wall else float("inf")
    overhead = (1.0 + observe_seconds / sim_seconds if sim_seconds
                else float("inf"))
    # The ISSUE's ≤5% budget on the full workload; smoke epochs are too
    # short for even the paired ratio to carry much signal, so that tier
    # only smoke-tests the machinery with a loose bound.
    threshold = 2.5 if smoke else 1.05
    return {
        "epochs": epochs,
        "slo": slo,
        "plain_wall_seconds": plain_wall,
        "telemetry_wall_seconds": tel_wall,
        "plain_frames_per_s": plain_fps,
        "telemetry_frames_per_s": tel_fps,
        "overhead_factor": overhead,
        "overhead_threshold": threshold,
        "overhead_ok": bool(overhead <= threshold),
        "telemetry_records": records,
        "health_status": status,
    }


def _bench_soak_resume(workload, epochs: int, resume_epoch: int,
                       shards, n_workers) -> dict:
    """Kill/resume identity: interrupted-and-resumed == uninterrupted.

    The straight leg runs ``epochs`` in one invocation; the resumed leg
    stops at ``resume_epoch`` and continues under a *different* worker
    and shard count — the strongest form of the contract: neither the
    interruption point nor the execution geometry may leak into the
    deterministic artifacts. Identity is a byte compare of ``state.json``
    and ``metrics.jsonl`` plus equality of the manifest ``config_hash``;
    with telemetry on in every leg, the deterministic telemetry view must
    be byte-identical too (``identical_telemetry``) while the wall-clock
    fields are free to differ.
    """
    import json
    import shutil
    import tempfile

    from repro.obs.telemetry import deterministic_view_bytes
    from repro.serve.service import SoakConfig, run_soak

    straight_dir = tempfile.mkdtemp(prefix="repro-bench-soak-a-")
    resumed_dir = tempfile.mkdtemp(prefix="repro-bench-soak-b-")
    try:
        run_soak(SoakConfig(
            workload=workload, checkpoint_dir=straight_dir, epochs=epochs,
            n_workers=1, shards=None, telemetry=True,
        ))
        run_soak(SoakConfig(
            workload=workload, checkpoint_dir=resumed_dir,
            epochs=resume_epoch, n_workers=1, shards=None, telemetry=True,
        ))
        run_soak(SoakConfig(
            workload=workload, checkpoint_dir=resumed_dir, epochs=epochs,
            n_workers=max(2, resolve_workers(n_workers)), shards=2,
            resume=True, telemetry=True,
        ))

        def artifact(directory, name):
            with open(f"{directory}/{name}", "rb") as handle:
                return handle.read()

        identical = (
            artifact(straight_dir, "state.json")
            == artifact(resumed_dir, "state.json")
            and artifact(straight_dir, "metrics.jsonl")
            == artifact(resumed_dir, "metrics.jsonl")
            and json.loads(artifact(straight_dir, "manifest.json"))["config_hash"]
            == json.loads(artifact(resumed_dir, "manifest.json"))["config_hash"]
        )
        straight_view = deterministic_view_bytes(straight_dir)
        identical_telemetry = bool(
            straight_view
            and straight_view == deterministic_view_bytes(resumed_dir)
        )
    finally:
        shutil.rmtree(straight_dir, ignore_errors=True)
        shutil.rmtree(resumed_dir, ignore_errors=True)
    return {
        "epochs": epochs,
        "resume_epoch": resume_epoch,
        "identical_resume": identical,
        "identical_telemetry": identical_telemetry,
    }


def run_soak_bench(
    smoke: bool = False,
    n_workers: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run the soak-service timing suite; optionally write JSON.

    The ``sustained`` section is the ISSUE's gate: frames simulated per
    wall-second across a ≥20-epoch run with parent peak RSS flat
    (≤ ×1.25 growth after warm-up); the ``telemetry`` section gates the
    always-on observability overhead (telemetry + one SLO watchdog ≤5%
    on the full workload); the ``resume`` section asserts the
    kill/resume identity contract — including the deterministic
    telemetry view — end to end through the public service.
    """
    from repro.serve.workload import SoakWorkload

    if smoke:
        workload = SoakWorkload(
            seed=11, n_aps=3, max_stas_per_ap=6, target_active_stas=2.5,
            epoch_duration=0.3, channels=1,
        )
        sustained_epochs, shards = 4, 3
        resume_epochs, resume_at = 2, 1
    else:
        workload = SoakWorkload(
            seed=11, n_aps=4, max_stas_per_ap=8, target_active_stas=3.0,
            epoch_duration=0.5, channels=1,
        )
        sustained_epochs, shards = 20, 4
        resume_epochs, resume_at = 6, 3

    with collecting() as registry:
        sustained = _bench_soak_sustained(
            workload, sustained_epochs, shards, n_workers, smoke)
        telemetry = _bench_soak_telemetry(
            workload, sustained_epochs, shards, n_workers, smoke)
        resume = _bench_soak_resume(
            workload, resume_epochs, resume_at, shards, n_workers)
    payload = {
        "meta": _meta("soak", smoke, n_workers),
        "sustained": sustained,
        "telemetry": telemetry,
        "resume": resume,
        "observability": _observability_section(registry),
    }
    validate_bench(payload)
    _write(payload, out_path)
    return payload


# --------------------------------------------------------------------------- #
# Schema validation and baseline comparison
# --------------------------------------------------------------------------- #

def _write(payload: dict, out_path: str | None) -> None:
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")


def validate_bench(payload: dict) -> dict:
    """Check a BENCH document against its suite's schema; raise on failure.

    Structural check (sections and keys) plus the suite's correctness
    gates — bit-exact decoding, serial/parallel determinism, batched/
    scalar metric identity. Documents without ``meta.suite`` validate as
    the phy suite (the pre-``suite`` schema).
    """
    problems = []
    if not isinstance(payload, dict):
        raise ValueError(f"bench payload must be a dict, got {type(payload)!r}")
    meta = payload.get("meta")
    suite = meta.get("suite", "phy") if isinstance(meta, dict) else "phy"
    if suite not in _REQUIRED_KEYS:
        raise ValueError(f"unknown bench suite {suite!r}")
    for section, keys in _REQUIRED_KEYS[suite].items():
        body = payload.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            if key == "suite":
                continue  # optional: pre-suite documents validate as phy
            if key not in body:
                problems.append(f"missing key {section}.{key}")
    if not problems:
        if payload["meta"]["schema_version"] != SCHEMA_VERSION:
            problems.append(
                f"schema_version {payload['meta']['schema_version']!r} != {SCHEMA_VERSION}"
            )
        for section, key in _TRUE_GATES[suite]:
            if payload[section][key] is not True:
                problems.append(f"{section}.{key} is not True")
    if problems:
        raise ValueError(f"invalid BENCH_{suite}.json: " + "; ".join(problems))
    return payload


# Key substrings whose values are throughputs/ratios (higher is better).
_HIGHER_IS_BETTER = ("_per_s", "speedup", "frames_per_s", "mbit_per_s",
                     "reduction_factor")

# Result keys that are neither gated metrics nor workload descriptors.
# ``_bytes`` / ``_rss_mb`` / ``_factor`` cover the streaming section's
# measurements (lower is better, so not regression-gated numerically —
# the section's own ``*_ok`` booleans gate them instead).
_RESULT_MARKERS = _HIGHER_IS_BETTER + (
    "seconds", "crossover_workers", "scaling", "_bytes", "_rss_mb", "_factor",
    "_ok",
)


def _same_section_workload(current: dict, baseline: dict) -> bool:
    """True when two section bodies describe the same workload.

    Every key that is not a measurement result (throughput, seconds,
    crossover) is a workload descriptor — trial counts, payload sizes,
    grids, worker counts — and must match for timings to be comparable.
    A smoke run's 4-point sweep at tiny calibration legitimately shows a
    different speed-up than the full 16-point grid; comparing the two
    would flag phantom regressions.
    """
    for key, base_value in baseline.items():
        if any(marker in key for marker in _RESULT_MARKERS):
            continue
        if current.get(key) != base_value:
            return False
    return True


def compare_bench(current: dict, baseline: dict, threshold: float = 0.2) -> list:
    """Regression report: current run vs a committed baseline.

    Returns one message per throughput metric that dropped by more than
    ``threshold`` (fraction, default 20 %); empty list = no regression.
    A full (non-smoke) candidate whose ``crossover_workers`` went null
    while the baseline's is numeric is also a regression: the pool no
    longer beats serial at any worker count.
    Only sections whose workload descriptors (trial counts, grids,
    payload sizes, …) match the baseline are compared — a smoke run
    diffed against a full-run baseline gates nothing, by design; run the
    full suites (``make bench-compare``) for a meaningful diff.

    The correctness gates travel with :func:`validate_bench`; run it on
    both documents first if provenance is untrusted.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    regressions = []
    for section, body in baseline.items():
        # The optional ``observability`` section carries run-dependent
        # counters (cache hits, pool reuse), not performance metrics:
        # never compared, and absent from older baselines by design.
        if section in ("meta", "observability") or not isinstance(body, dict):
            continue
        cur_body = current.get(section)
        if not isinstance(cur_body, dict):
            continue
        if not _same_section_workload(cur_body, body):
            continue
        # Losing the crossover entirely — a baseline where some pooled
        # worker count beat serial, a candidate where none does — is a
        # regression in kind, not degree: parallelism stopped winning.
        # Smoke runs are exempt (tiny workloads rarely amortise a pool).
        base_cross = body.get("crossover_workers")
        cur_meta = current.get("meta")
        cur_smoke = bool(cur_meta.get("smoke")) if isinstance(cur_meta, dict) else False
        if (
            isinstance(base_cross, int) and not isinstance(base_cross, bool)
            and "crossover_workers" in cur_body
            and cur_body["crossover_workers"] is None
            and not cur_smoke
        ):
            regressions.append(
                f"{section}.crossover_workers: null vs baseline {base_cross} "
                "(no pooled worker count beats serial any more)"
            )
        for key, base_value in body.items():
            if isinstance(base_value, bool) or not isinstance(base_value, (int, float)):
                continue
            if not any(marker in key for marker in _HIGHER_IS_BETTER):
                continue
            cur_value = cur_body.get(key)
            if not isinstance(cur_value, (int, float)) or isinstance(cur_value, bool):
                continue
            if cur_value < base_value * (1.0 - threshold):
                drop = 100.0 * (1.0 - cur_value / base_value)
                regressions.append(
                    f"{section}.{key}: {cur_value:.4g} vs baseline "
                    f"{base_value:.4g} (-{drop:.0f}%, threshold {threshold:.0%})"
                )
    return regressions
