"""Performance-regression harness for the PHY fast paths → ``BENCH_phy.json``.

Times the hot loops this reproduction depends on — convolutional encoding,
Viterbi decoding, the full receive chain — plus the Monte-Carlo trial
runner serial vs parallel, and emits one JSON document whose schema
:func:`validate_bench` checks. Run it via::

    python -m repro bench --smoke          # fast structural check
    python -m repro bench --out BENCH_phy.json

Not imported from ``repro.runtime.__init__``: this module depends on
``repro.analysis``, which itself runs its trials through the runtime.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.runtime.trials import resolve_workers

__all__ = ["run_phy_bench", "validate_bench", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

# Section -> keys every BENCH_phy.json must carry (the schema).
_REQUIRED_KEYS = {
    "meta": (
        "schema_version", "python", "numpy", "platform", "c_kernel",
        "smoke", "n_workers",
    ),
    "encode": ("n_bits", "rate", "seconds_per_frame", "mbit_per_s"),
    "viterbi": (
        "n_bits", "rate", "seconds_per_frame", "mbit_per_s",
        "reference_seconds_per_frame", "speedup_vs_reference",
        "bit_exact_vs_reference",
    ),
    "rx_chain": ("mcs", "payload_bytes", "seconds_per_frame", "frames_per_s"),
    "monte_carlo": (
        "trials", "payload_bytes", "serial_seconds", "serial_trials_per_s",
        "parallel_workers", "parallel_seconds", "parallel_trials_per_s",
        "identical_serial_parallel",
    ),
}


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (one discarded warm-up)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_coding(n_bits: int, repeats: int) -> tuple[dict, dict]:
    from repro.phy import coding

    rng = np.random.default_rng(0)
    message = rng.integers(0, 2, n_bits).astype(np.uint8)
    rate = coding.RATE_3_4
    coded = coding.conv_encode(message, rate)

    encode_s = _best_of(lambda: coding.conv_encode(message, rate), repeats)
    decode_s = _best_of(
        lambda: coding.viterbi_decode(coded, n_bits, rate, terminated=False),
        repeats,
    )
    reference_s = _best_of(
        lambda: coding.viterbi_decode_reference(coded, n_bits, rate, terminated=False),
        max(1, repeats // 2),
    )
    fast = coding.viterbi_decode(coded, n_bits, rate, terminated=False)
    reference = coding.viterbi_decode_reference(coded, n_bits, rate, terminated=False)

    encode = {
        "n_bits": n_bits,
        "rate": "3/4",
        "seconds_per_frame": encode_s,
        "mbit_per_s": n_bits / encode_s / 1e6,
    }
    viterbi = {
        "n_bits": n_bits,
        "rate": "3/4",
        "seconds_per_frame": decode_s,
        "mbit_per_s": n_bits / decode_s / 1e6,
        "reference_seconds_per_frame": reference_s,
        "speedup_vs_reference": reference_s / decode_s,
        "bit_exact_vs_reference": bool(np.array_equal(fast, reference)),
    }
    return encode, viterbi


def _bench_rx_chain(payload_bytes: int, repeats: int) -> dict:
    from repro.analysis.phy_experiments import (
        LinkConfig,
        _decode_standard_subframe,
        _make_frame,
    )
    from repro.core.symbol_crc import DEFAULT_CRC_CONFIG
    from repro.phy.mcs import mcs_by_name

    mcs_name = "QAM64-3/4"
    mcs = mcs_by_name(mcs_name)
    frame, _ = _make_frame(payload_bytes, mcs, DEFAULT_CRC_CONFIG, True, seed=0)
    received = LinkConfig(seed=0).channel("bench-rx").transmit(frame.symbols)
    seconds = _best_of(
        lambda: _decode_standard_subframe(
            received, mcs, DEFAULT_CRC_CONFIG, use_rte=False, rte_rule="average"
        ),
        repeats,
    )
    return {
        "mcs": mcs_name,
        "payload_bytes": payload_bytes,
        "seconds_per_frame": seconds,
        "frames_per_s": 1.0 / seconds,
    }


def _bench_monte_carlo(payload_bytes: int, trials: int, n_workers) -> dict:
    from repro.analysis.phy_experiments import LinkConfig, ber_by_symbol_index

    link = LinkConfig(seed=1)
    start = time.perf_counter()
    serial = ber_by_symbol_index(
        "QAM64-3/4", payload_bytes, trials, link=link, n_workers=1
    )
    serial_s = time.perf_counter() - start

    # Exercise the pool even on a single-core box: the point of the parallel
    # leg is to regression-check determinism through the process pool.
    workers = max(2, resolve_workers(n_workers))
    start = time.perf_counter()
    parallel = ber_by_symbol_index(
        "QAM64-3/4", payload_bytes, trials, link=link, n_workers=workers
    )
    parallel_s = time.perf_counter() - start

    identical = bool(
        np.array_equal(serial.ber_per_symbol, parallel.ber_per_symbol)
        and serial.crc_pass_rate == parallel.crc_pass_rate
        and serial.side_bit_error_rate == parallel.side_bit_error_rate
    )
    return {
        "trials": trials,
        "payload_bytes": payload_bytes,
        "serial_seconds": serial_s,
        "serial_trials_per_s": trials / serial_s,
        "parallel_workers": workers,
        "parallel_seconds": parallel_s,
        "parallel_trials_per_s": trials / parallel_s,
        "identical_serial_parallel": identical,
    }


def run_phy_bench(
    smoke: bool = False,
    n_workers: int | None = None,
    out_path: str | None = None,
) -> dict:
    """Run the full timing suite; optionally write the JSON to ``out_path``.

    ``smoke=True`` shrinks every workload (seconds instead of minutes) while
    exercising every code path, so CI can validate the schema cheaply.
    """
    from repro.phy import coding

    if smoke:
        coding_bits, repeats = 7998, 1
        rx_payload, mc_payload, mc_trials = 500, 300, 4
    else:
        # ~4 KB frame at rate 3/4 (nearest multiple of the puncture period).
        coding_bits, repeats = 32766, 5
        rx_payload, mc_payload, mc_trials = 4090, 1000, 24

    encode, viterbi = _bench_coding(coding_bits, repeats)
    payload = {
        "meta": {
            "schema_version": SCHEMA_VERSION,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "c_kernel": coding._CKERNEL is not None,
            "smoke": smoke,
            "n_workers": resolve_workers(n_workers),
        },
        "encode": encode,
        "viterbi": viterbi,
        "rx_chain": _bench_rx_chain(rx_payload, repeats),
        "monte_carlo": _bench_monte_carlo(mc_payload, mc_trials, n_workers),
    }
    validate_bench(payload)
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return payload


def validate_bench(payload: dict) -> dict:
    """Check a BENCH_phy.json document against the schema; raise on failure.

    Structural check (sections and keys) plus the two correctness gates:
    the fast decoder must be bit-exact against the reference and the
    Monte-Carlo runner identical serial vs parallel.
    """
    problems = []
    if not isinstance(payload, dict):
        raise ValueError(f"bench payload must be a dict, got {type(payload)!r}")
    for section, keys in _REQUIRED_KEYS.items():
        body = payload.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            if key not in body:
                problems.append(f"missing key {section}.{key}")
    if not problems:
        if payload["meta"]["schema_version"] != SCHEMA_VERSION:
            problems.append(
                f"schema_version {payload['meta']['schema_version']!r} != {SCHEMA_VERSION}"
            )
        if payload["viterbi"]["bit_exact_vs_reference"] is not True:
            problems.append("viterbi.bit_exact_vs_reference is not True")
        if payload["monte_carlo"]["identical_serial_parallel"] is not True:
            problems.append("monte_carlo.identical_serial_parallel is not True")
    if problems:
        raise ValueError("invalid BENCH_phy.json: " + "; ".join(problems))
    return payload
