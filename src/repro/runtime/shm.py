"""Zero-copy shipping of read-only numpy payloads to worker processes.

``run_trials(shared=...)`` payloads are dominated by numpy arrays — PHY
frame tables, calibration curves, ``CellSpec`` grids. Pickling those into
every worker through the pool initializer copies the bytes once per
worker *and* once more on unpickle; for a sweep respawning pools this is
pure overhead. This module lifts the arrays out of a payload into a
single ``multiprocessing.shared_memory`` segment and replaces the
payload with a small picklable :class:`SharedPayload` descriptor:

* :func:`pack_payload` walks the payload (dicts / lists / tuples, a few
  levels deep), copies every numpy array into one page-aligned segment,
  and returns a descriptor holding the segment name, the array layouts,
  and the non-array *skeleton*. Payloads with no arrays — or too few
  bytes for the mapping to pay for itself — return ``None`` and keep the
  plain pickle path.
* :meth:`SharedPayload.materialize` (worker side) attaches by name and
  rebuilds the payload with **read-only views** into the mapping — zero
  copies, under both fork and spawn start methods.
* The *creating* process owns the segment: :meth:`SharedPayload.release`
  unlinks it at pool retirement. Attaching workers unregister from
  ``multiprocessing.resource_tracker`` so a worker exiting cannot yank
  the segment out from under its siblings, and a PID guard makes
  ``release`` a no-op everywhere but the owner (forked children inherit
  the descriptor object, owner flag included).

Payload *content fingerprints* for pool keying come from
:func:`repro.runtime.cache.stable_digest` and are re-exported here as
:func:`payload_fingerprint`.
"""

from __future__ import annotations

import os
import sys

import numpy as np

from ..obs.log import get_logger
from ..obs.trace import metrics
from .cache import stable_digest

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - stripped-down builds
    resource_tracker = None
    shared_memory = None

log = get_logger(__name__)

__all__ = [
    "MIN_SHARED_BYTES",
    "SharedPayload",
    "pack_payload",
    "payload_fingerprint",
    "shm_supported",
]

# Below this many array bytes a second pickle per worker is cheaper than
# creating and mapping a segment.
MIN_SHARED_BYTES = 1 << 12

# How deep pack_payload recurses into dict/list/tuple containers looking
# for arrays before giving up and pickling the remainder as-is.
_MAX_DEPTH = 6


def shm_supported() -> bool:
    """Whether this platform can create shared-memory segments."""
    return shared_memory is not None


def payload_fingerprint(payload) -> str:
    """Stable content digest of a shared payload (pool-registry key)."""
    return stable_digest(payload)


class _Slot:
    """Placeholder left in the payload skeleton where an array was lifted."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index

    def __reduce__(self):
        return (_Slot, (self.index,))


def _lift(obj, arrays, depth=0):
    """Replace arrays in ``obj`` with :class:`_Slot` markers, collecting them."""
    if isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
        arrays.append(np.ascontiguousarray(obj))
        return _Slot(len(arrays) - 1)
    if depth < _MAX_DEPTH:
        # Only plain containers are rebuilt on the far side; subclasses
        # (namedtuples, dataclasses, ...) pickle whole with the skeleton.
        if type(obj) is dict:
            return {k: _lift(v, arrays, depth + 1) for k, v in obj.items()}
        if type(obj) is list:
            return [_lift(v, arrays, depth + 1) for v in obj]
        if type(obj) is tuple:
            return tuple(_lift(v, arrays, depth + 1) for v in obj)
    return obj


def _plant(obj, arrays):
    """Inverse of :func:`_lift`: swap :class:`_Slot` markers for views."""
    if isinstance(obj, _Slot):
        return arrays[obj.index]
    if type(obj) is dict:
        return {k: _plant(v, arrays) for k, v in obj.items()}
    if type(obj) is list:
        return [_plant(v, arrays) for v in obj]
    if type(obj) is tuple:
        return tuple(_plant(v, arrays) for v in obj)
    return obj


def _attach_untracked(name):
    """Attach to an existing segment without registering it for cleanup.

    Attaching normally registers the segment with the resource tracker,
    which would unlink the parent's segment the moment one worker exits —
    and sibling workers mapping the same name would race the tracker's
    bookkeeping. Ownership stays with the creating process; everyone else
    only maps. Python 3.13 has ``track=False`` for exactly this; earlier
    versions need the registration hook silenced around the attach (the
    attach path is single-threaded: pool initializers run before any
    trial work).
    """
    if sys.version_info >= (3, 13):  # pragma: no cover
        return shared_memory.SharedMemory(name=name, track=False)
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedPayload:
    """Picklable descriptor for a payload whose arrays live in one segment.

    Pickles down to the segment name, per-array ``(offset, dtype, shape)``
    layouts, and the array-free skeleton. :meth:`materialize` rebuilds the
    payload with read-only zero-copy views; only the creating process can
    :meth:`release` the segment.
    """

    def __init__(self, name, slots, skeleton, total_bytes):
        self.name = name
        self.slots = slots
        self.skeleton = skeleton
        self.total_bytes = total_bytes
        self._segment = None
        self._cached = None
        self._owner_pid = None

    def __getstate__(self):
        return {
            "name": self.name,
            "slots": self.slots,
            "skeleton": self.skeleton,
            "total_bytes": self.total_bytes,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._segment = None
        self._cached = None
        self._owner_pid = None

    @property
    def is_owner(self) -> bool:
        return self._owner_pid == os.getpid()

    def materialize(self):
        """Attach (once) and rebuild the payload over zero-copy views."""
        if self._cached is None:
            if self._segment is None:
                self._segment = _attach_untracked(self.name)
            arrays = []
            for offset, dtype, shape in self.slots:
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=self._segment.buf, offset=offset)
                view.flags.writeable = False
                arrays.append(view)
            self._cached = _plant(self.skeleton, arrays)
        return self._cached

    def release(self) -> None:
        """Unlink the segment (owner process only; idempotent)."""
        if self._segment is None or not self.is_owner:
            return
        segment, self._segment = self._segment, None
        self._cached = None
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        log.debug("released shared segment %s (%d bytes)",
                  self.name, self.total_bytes)


def pack_payload(payload, min_bytes: int = MIN_SHARED_BYTES):
    """Pack ``payload``'s arrays into one shared segment.

    Returns a :class:`SharedPayload` descriptor, or ``None`` when sharing
    cannot pay for itself — no shared-memory support, no (object-free)
    arrays in the payload, or fewer than ``min_bytes`` array bytes — in
    which case callers ship the payload by plain pickle as before.
    """
    if shared_memory is None:  # pragma: no cover
        return None
    arrays: list = []
    skeleton = _lift(payload, arrays)
    total = sum(int(a.nbytes) for a in arrays)
    if not arrays or total < min_bytes:
        return None
    slots = []
    offset = 0
    for a in arrays:
        offset = -(-offset // a.itemsize) * a.itemsize  # dtype-align
        slots.append((offset, a.dtype.str, a.shape))
        offset += a.nbytes
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(1, offset))
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        return None
    for a, (off, dtype, shape) in zip(arrays, slots):
        view = np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=segment.buf, offset=off)
        view[...] = a
        del view
    descriptor = SharedPayload(segment.name, slots, skeleton, offset)
    descriptor._segment = segment
    descriptor._owner_pid = os.getpid()
    # Sibling counter to runtime.ipc_result_bytes (repro.runtime.trials):
    # together they say how many payload bytes took the zero-copy segment
    # route versus the pickle pipe.
    metrics().counter("runtime.shm_bytes").inc(total)
    log.debug("packed %d array(s), %d bytes into shared segment %s",
              len(arrays), total, segment.name)
    return descriptor
