"""IEEE 802.11-style OFDM PHY substrate.

A software reimplementation of the DSP blocks the paper's GNURadio/USRP
prototype is built from: constellation mapping, scrambling, convolutional
coding, interleaving, OFDM symbol assembly, preamble, SIG field, LTF channel
estimation, CFO correction and pilot phase tracking.
"""

from repro.phy.coding import RATE_1_2, RATE_2_3, RATE_3_4, conv_encode, viterbi_decode
from repro.phy.constants import (
    CP_LENGTH,
    DATA_SUBCARRIER_INDICES,
    FFT_SIZE,
    NUM_DATA_SUBCARRIERS,
    NUM_PILOT_SUBCARRIERS,
    PILOT_SUBCARRIER_INDICES,
    SYMBOL_DURATION_20MHZ,
    USED_SUBCARRIER_INDICES,
    pilot_values,
)
from repro.phy.crc import crc1_bits, crc2_bits, crc8_bits, crc32, crc32_bits
from repro.phy.mcs import BASIC_MCS, MCS_TABLE, Mcs, mcs_by_name, mcs_by_rate_bits
from repro.phy.modulation import BPSK, MODULATIONS, QAM16, QAM64, QPSK, Modulation, get_modulation
from repro.phy.sig import SigDecodeError, SigField, decode_sig, encode_sig
from repro.phy.soft import decode_payload_soft, soft_demodulate, viterbi_decode_soft
from repro.phy.timedomain import (
    TimeDomainChannel,
    coarse_cfo_estimate,
    detect_frame,
    frame_to_samples,
    samples_to_symbols,
)
from repro.phy.transceiver import (
    PAYLOAD_SYMBOL_OFFSET,
    PREAMBLE_SYMBOLS,
    SIG_SYMBOL_OFFSET,
    PhyReceiver,
    PhyTransmitter,
    RxResult,
    TxFrame,
)

__all__ = [
    "RATE_1_2",
    "RATE_2_3",
    "RATE_3_4",
    "conv_encode",
    "viterbi_decode",
    "CP_LENGTH",
    "FFT_SIZE",
    "NUM_DATA_SUBCARRIERS",
    "NUM_PILOT_SUBCARRIERS",
    "DATA_SUBCARRIER_INDICES",
    "PILOT_SUBCARRIER_INDICES",
    "USED_SUBCARRIER_INDICES",
    "SYMBOL_DURATION_20MHZ",
    "pilot_values",
    "crc32",
    "crc32_bits",
    "crc8_bits",
    "crc2_bits",
    "crc1_bits",
    "Mcs",
    "MCS_TABLE",
    "BASIC_MCS",
    "mcs_by_name",
    "mcs_by_rate_bits",
    "Modulation",
    "MODULATIONS",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "get_modulation",
    "SigField",
    "SigDecodeError",
    "encode_sig",
    "decode_sig",
    "PhyTransmitter",
    "PhyReceiver",
    "TxFrame",
    "RxResult",
    "PREAMBLE_SYMBOLS",
    "SIG_SYMBOL_OFFSET",
    "PAYLOAD_SYMBOL_OFFSET",
    "TimeDomainChannel",
    "coarse_cfo_estimate",
    "detect_frame",
    "frame_to_samples",
    "samples_to_symbols",
    "soft_demodulate",
    "viterbi_decode_soft",
    "decode_payload_soft",
]
