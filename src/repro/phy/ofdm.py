"""OFDM symbol assembly: subcarrier mapping and (I)FFT / cyclic-prefix.

The frequency-domain representation used throughout the receiver chain is a
length-52 complex vector ordered by logical subcarrier index (-26..-1, 1..26).
:func:`map_subcarriers` / :func:`unmap_subcarriers` convert between that and
the 64-bin FFT grid; :func:`ofdm_modulate` / :func:`ofdm_demodulate` convert
between the FFT grid and 80-sample time-domain symbols.
"""

from __future__ import annotations

import numpy as np

from repro.phy.constants import (
    CP_LENGTH,
    DATA_SUBCARRIER_INDICES,
    FFT_SIZE,
    PILOT_SUBCARRIER_INDICES,
    USED_SUBCARRIER_INDICES,
)

__all__ = [
    "map_subcarriers",
    "unmap_subcarriers",
    "assemble_symbol",
    "split_symbol",
    "ofdm_modulate",
    "ofdm_demodulate",
    "logical_to_fft_bins",
    "DATA_POSITIONS",
    "PILOT_POSITIONS",
]


def logical_to_fft_bins(indices: np.ndarray) -> np.ndarray:
    """Convert logical subcarrier indices (-26..26) to FFT bin numbers (0..63)."""
    return np.mod(np.asarray(indices), FFT_SIZE)


_USED_BINS = logical_to_fft_bins(USED_SUBCARRIER_INDICES)

# Positions of data and pilot tones within the length-52 used-subcarrier
# vector (logical order).
_used_list = USED_SUBCARRIER_INDICES.tolist()
DATA_POSITIONS = np.array([_used_list.index(k) for k in DATA_SUBCARRIER_INDICES])
PILOT_POSITIONS = np.array([_used_list.index(k) for k in PILOT_SUBCARRIER_INDICES])


def assemble_symbol(data_points: np.ndarray, pilot_points: np.ndarray) -> np.ndarray:
    """Place 48 data points and 4 pilot points into a length-52 used vector."""
    data_points = np.asarray(data_points, dtype=np.complex128)
    pilot_points = np.asarray(pilot_points, dtype=np.complex128)
    if data_points.size != DATA_POSITIONS.size:
        raise ValueError(f"expected {DATA_POSITIONS.size} data points, got {data_points.size}")
    if pilot_points.size != PILOT_POSITIONS.size:
        raise ValueError(f"expected {PILOT_POSITIONS.size} pilots, got {pilot_points.size}")
    used = np.zeros(USED_SUBCARRIER_INDICES.size, dtype=np.complex128)
    used[DATA_POSITIONS] = data_points
    used[PILOT_POSITIONS] = pilot_points
    return used


def split_symbol(used: np.ndarray):
    """Inverse of :func:`assemble_symbol`: return ``(data, pilots)``."""
    used = np.asarray(used, dtype=np.complex128)
    return used[DATA_POSITIONS], used[PILOT_POSITIONS]


def map_subcarriers(used: np.ndarray) -> np.ndarray:
    """Scatter a length-52 used-subcarrier vector onto the 64-bin FFT grid."""
    used = np.asarray(used, dtype=np.complex128)
    if used.shape[-1] != USED_SUBCARRIER_INDICES.size:
        raise ValueError(f"expected {USED_SUBCARRIER_INDICES.size} used subcarriers")
    grid = np.zeros(used.shape[:-1] + (FFT_SIZE,), dtype=np.complex128)
    grid[..., _USED_BINS] = used
    return grid


def unmap_subcarriers(grid: np.ndarray) -> np.ndarray:
    """Gather the 52 used subcarriers from a 64-bin FFT grid."""
    grid = np.asarray(grid, dtype=np.complex128)
    if grid.shape[-1] != FFT_SIZE:
        raise ValueError(f"expected {FFT_SIZE}-bin grid")
    return grid[..., _USED_BINS]


def ofdm_modulate(grid: np.ndarray) -> np.ndarray:
    """IFFT a 64-bin frequency grid and prepend the 16-sample cyclic prefix.

    Accepts a single grid or an array of grids (last axis = 64); returns
    80-sample symbols on the last axis. The IFFT is scaled by sqrt(64) so
    time-domain sample power equals average subcarrier power.
    """
    grid = np.asarray(grid, dtype=np.complex128)
    time = np.fft.ifft(grid, axis=-1) * np.sqrt(FFT_SIZE)
    cp = time[..., -CP_LENGTH:]
    return np.concatenate([cp, time], axis=-1)


def ofdm_demodulate(samples: np.ndarray) -> np.ndarray:
    """Strip the cyclic prefix and FFT back to the 64-bin grid."""
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.shape[-1] != FFT_SIZE + CP_LENGTH:
        raise ValueError(f"expected {FFT_SIZE + CP_LENGTH}-sample symbols")
    body = samples[..., CP_LENGTH:]
    return np.fft.fft(body, axis=-1) / np.sqrt(FFT_SIZE)
