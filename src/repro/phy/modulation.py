"""Gray-coded constellation mappers for the 802.11 OFDM PHY.

BPSK, QPSK, 16-QAM and 64-QAM with the normalisation factors of
802.11a-2012 Table 18-7, so every constellation has unit average power.
Demodulation is hard-decision minimum-distance, vectorised over arrays of
received points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Modulation", "BPSK", "QPSK", "QAM16", "QAM64", "MODULATIONS", "get_modulation"]

# Gray-coded per-axis PAM maps: bits (MSB first along the axis) -> level.
_PAM2 = {0: -1.0, 1: 1.0}
_PAM4 = {0b00: -3.0, 0b01: -1.0, 0b11: 1.0, 0b10: 3.0}
_PAM8 = {
    0b000: -7.0,
    0b001: -5.0,
    0b011: -3.0,
    0b010: -1.0,
    0b110: 1.0,
    0b111: 3.0,
    0b101: 5.0,
    0b100: 7.0,
}


def _axis_table(pam: dict) -> np.ndarray:
    table = np.empty(len(pam))
    for bits, level in pam.items():
        table[bits] = level
    return table


@dataclass(frozen=True)
class Modulation:
    """A memoryless constellation mapping.

    Attributes:
        name: Human-readable name ("QAM16", ...).
        bits_per_symbol: Bits mapped to each complex point.
        points: All 2**bits_per_symbol constellation points, indexed by the
            integer value of the (MSB-first) bit label, normalised to unit
            average power.
    """

    name: str
    bits_per_symbol: int
    points: np.ndarray

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a 0/1 array (length divisible by ``bits_per_symbol``) to points."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"{bits.size} bits is not a multiple of {self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        labels = groups @ weights
        return self.points[labels]

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap: nearest constellation point, returns bits."""
        labels = self.decide(symbols)
        shifts = np.arange(self.bits_per_symbol - 1, -1, -1)
        bits = (labels[:, None] >> shifts) & 1
        return bits.reshape(-1).astype(np.uint8)

    def decide(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point decision, returning integer bit labels."""
        symbols = np.asarray(symbols, dtype=np.complex128).reshape(-1)
        # |r - p|^2 for all points; argmin over the point axis.
        dists = np.abs(symbols[:, None] - self.points[None, :]) ** 2
        return np.argmin(dists, axis=1)

    def remodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Project received points onto the nearest constellation points.

        Used by the real-time channel estimator to reconstruct the
        transmitted signal from decisions.
        """
        shape = np.shape(symbols)
        return self.points[self.decide(symbols)].reshape(shape)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _build_bpsk() -> Modulation:
    points = np.array([-1.0 + 0j, 1.0 + 0j])
    return Modulation("BPSK", 1, points)


def _build_qpsk() -> Modulation:
    # b0 -> I axis, b1 -> Q axis, K_mod = 1/sqrt(2).
    table = _axis_table(_PAM2)
    points = np.empty(4, dtype=np.complex128)
    for label in range(4):
        i_bits = (label >> 1) & 0b1
        q_bits = label & 0b1
        points[label] = (table[i_bits] + 1j * table[q_bits]) / np.sqrt(2.0)
    return Modulation("QPSK", 2, points)


def _build_qam16() -> Modulation:
    # b0b1 -> I axis, b2b3 -> Q axis, K_mod = 1/sqrt(10).
    table = _axis_table(_PAM4)
    points = np.empty(16, dtype=np.complex128)
    for label in range(16):
        i_bits = (label >> 2) & 0b11
        q_bits = label & 0b11
        points[label] = (table[i_bits] + 1j * table[q_bits]) / np.sqrt(10.0)
    return Modulation("QAM16", 4, points)


def _build_qam64() -> Modulation:
    # b0b1b2 -> I axis, b3b4b5 -> Q axis, K_mod = 1/sqrt(42).
    table = _axis_table(_PAM8)
    points = np.empty(64, dtype=np.complex128)
    for label in range(64):
        i_bits = (label >> 3) & 0b111
        q_bits = label & 0b111
        points[label] = (table[i_bits] + 1j * table[q_bits]) / np.sqrt(42.0)
    return Modulation("QAM64", 6, points)


BPSK = _build_bpsk()
QPSK = _build_qpsk()
QAM16 = _build_qam16()
QAM64 = _build_qam64()

MODULATIONS = {m.name: m for m in (BPSK, QPSK, QAM16, QAM64)}


def get_modulation(name: str) -> Modulation:
    """Look up a modulation by case-insensitive name."""
    key = name.upper().replace("-", "")
    if key not in MODULATIONS:
        raise KeyError(f"unknown modulation {name!r}; have {sorted(MODULATIONS)}")
    return MODULATIONS[key]
