"""Multi-antenna substrate for the Carpool MU-MIMO extension (§8, Fig. 18).

Minimal but real MU-MIMO machinery: per-subcarrier downlink channel
matrices from an N-antenna AP to single-antenna users, zero-forcing
precoding for a user group, and propagation of precoded symbol streams.

The model is narrow by design — flat per-subcarrier matrices with ideal
CSI at the AP — because the paper's extension argument is structural
(frame layout and stream sharing), not about channel estimation for MIMO.
"""

from __future__ import annotations

import numpy as np

from repro.phy.constants import USED_SUBCARRIER_INDICES
from repro.util.rng import RngStream

__all__ = ["MimoChannel", "zero_forcing_precoder", "NUM_USED"]

NUM_USED = USED_SUBCARRIER_INDICES.size


class MimoChannel:
    """Downlink channels from ``num_antennas`` AP antennas to ``num_users``.

    ``matrix[u, a, k]`` is the complex gain from antenna ``a`` to user
    ``u`` on used subcarrier ``k``. Entries are Ricean with a common LOS
    phase per user (distinct users decorrelate through their scattered
    parts, which is what lets zero-forcing separate them).
    """

    def __init__(self, num_users: int, num_antennas: int, rng: RngStream,
                 ricean_k_db: float = 6.0):
        if num_users < 1 or num_antennas < 1:
            raise ValueError("need at least one user and one antenna")
        self.num_users = num_users
        self.num_antennas = num_antennas
        k = 10.0 ** (ricean_k_db / 10.0)
        los_amp = np.sqrt(k / (k + 1.0))
        scatter_amp = np.sqrt(1.0 / (k + 1.0))
        gen = rng.child("mimo")
        shape = (num_users, num_antennas, NUM_USED)
        los_phase = gen.uniform(0.0, 2 * np.pi, size=(num_users, num_antennas, 1))
        scattered = gen.complex_normal(scale=scatter_amp, size=shape)
        self.matrix = los_amp * np.exp(1j * los_phase) + scattered

    def user_channel(self, user: int) -> np.ndarray:
        """(num_antennas, 52) channel row of one user."""
        return self.matrix[user]

    def group_matrix(self, users: list, subcarrier: int) -> np.ndarray:
        """(len(users), num_antennas) matrix on one subcarrier."""
        return self.matrix[np.asarray(users), :, subcarrier]

    def propagate(self, antenna_streams: np.ndarray, snr_db: float,
                  rng: RngStream) -> np.ndarray:
        """Send per-antenna symbol streams; return what each user hears.

        Args:
            antenna_streams: (num_antennas, n_symbols, 52) transmitted
                frequency-domain symbols per antenna.
            snr_db: Per-user noise level relative to unit signal power.

        Returns:
            (num_users, n_symbols, 52) received symbols.
        """
        antenna_streams = np.asarray(antenna_streams, dtype=np.complex128)
        if antenna_streams.shape[0] != self.num_antennas:
            raise ValueError("one stream per antenna required")
        # y[u, t, k] = Σ_a H[u, a, k] · x[a, t, k] + n
        received = np.einsum("uak,atk->utk", self.matrix, antenna_streams)
        sigma = np.sqrt(10.0 ** (-snr_db / 10.0))
        noise = rng.child("mimo-noise").complex_normal(scale=sigma, size=received.shape)
        return received + noise


def zero_forcing_precoder(channel: MimoChannel, users: list) -> np.ndarray:
    """Per-subcarrier ZF precoding vectors for a user group.

    Returns (num_antennas, len(users), 52): column ``s`` of each
    subcarrier's matrix beams stream ``s`` to ``users[s]`` while nulling
    it at the group's other users. Columns are normalised to unit power
    so every stream transmits at the same level.
    """
    users = list(users)
    if len(users) > channel.num_antennas:
        raise ValueError("cannot serve more streams than antennas")
    out = np.empty((channel.num_antennas, len(users), NUM_USED), dtype=np.complex128)
    for k in range(NUM_USED):
        h = channel.group_matrix(users, k)  # (n_users, n_antennas)
        pseudo_inverse = np.linalg.pinv(h)  # (n_antennas, n_users)
        norms = np.linalg.norm(pseudo_inverse, axis=0, keepdims=True)
        out[:, :, k] = pseudo_inverse / np.maximum(norms, 1e-12)
    return out
