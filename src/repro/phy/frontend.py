"""Receiver front-end: preamble acquisition shared by all receivers.

Both the standard receiver and the Carpool receiver start the same way:
estimate CFO from the repeated LTF, de-rotate the whole frame, and take the
least-squares channel estimate from the LTF. Everything after that (SIG
walk, A-HDR, RTE) differs per receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.channel_estimation import estimate_from_ltf
from repro.phy.cfo import cfo_from_phase_step

__all__ = ["Acquisition", "acquire", "LTF_SLOTS"]

LTF_SLOTS = (2, 3)


@dataclass
class Acquisition:
    """Front-end output: CFO-corrected symbols and the preamble estimate."""

    derotated: np.ndarray  # (n_symbols, 52), CFO ramp removed
    channel_estimate: np.ndarray  # length-52 LTF estimate
    cfo_hz: float
    cfo_phase_step: float
    noise_variance: float = 0.0  # per-subcarrier, from the LTF repetition


def acquire(received_symbols: np.ndarray, symbol_duration: float | None = None) -> Acquisition:
    """Run CFO estimation + LTF channel estimation on a received frame.

    Args:
        received_symbols: (n_total, 52) with the standard preamble layout
            (STF at symbols 0–1, LTF at 2–3).
        symbol_duration: For reporting ``cfo_hz`` only; defaults to 20 MHz
            timing.
    """
    received_symbols = np.asarray(received_symbols, dtype=np.complex128)
    ltf1 = received_symbols[LTF_SLOTS[0]]
    ltf2 = received_symbols[LTF_SLOTS[1]]
    phase_step = float(np.angle(np.sum(ltf2 * np.conj(ltf1))))

    indices = np.arange(received_symbols.shape[0]) - LTF_SLOTS[0]
    derotated = received_symbols * np.exp(-1j * phase_step * indices)[:, None]
    channel = estimate_from_ltf(derotated[list(LTF_SLOTS)])
    if symbol_duration is None:
        cfo_hz = cfo_from_phase_step(phase_step)
    else:
        cfo_hz = cfo_from_phase_step(phase_step, symbol_duration)
    # The two (de-rotated) LTF repeats differ only by noise: their
    # half-difference power estimates the per-subcarrier noise variance,
    # which the soft demapper uses for LLR scaling.
    diff = derotated[LTF_SLOTS[1]] - derotated[LTF_SLOTS[0]]
    noise_variance = float(np.mean(np.abs(diff) ** 2) / 2.0)
    return Acquisition(
        derotated=derotated,
        channel_estimate=channel,
        cfo_hz=cfo_hz,
        cfo_phase_step=phase_step,
        noise_variance=noise_variance,
    )
