"""The 802.11 frame-synchronous data scrambler (x^7 + x^4 + 1).

The scrambler whitens the payload bit stream so long runs of identical bits
do not produce spectral lines. It is self-inverse: scrambling twice with the
same seed recovers the input, which is also how descrambling works.

Carpool relies on one property of the standard: the SIG field is *not*
scrambled, so a receiver can decode any subframe's SIG (to learn its length)
without knowing the scrambler state of earlier payload — see paper §4.1.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["scramble", "descramble", "scrambler_sequence"]

_ORDER = 7
_PERIOD = (1 << _ORDER) - 1  # maximal-length LFSR: period 127 for any seed


@lru_cache(maxsize=None)
def _one_period(seed: int) -> np.ndarray:
    """One 127-bit period of the LFSR output for ``seed`` (read-only)."""
    state = [(seed >> i) & 1 for i in range(_ORDER)]  # state[6] = x^7 tap
    out = np.empty(_PERIOD, dtype=np.uint8)
    for i in range(_PERIOD):
        fed_back = state[6] ^ state[3]
        out[i] = fed_back
        state = [fed_back] + state[:-1]
    out.setflags(write=False)
    return out


def scrambler_sequence(length: int, seed: int = 0b1011101) -> np.ndarray:
    """Generate ``length`` bits of the x^7 + x^4 + 1 LFSR output.

    ``seed`` is the initial 7-bit state, state bit 6 being x^7. The default
    is the all-ones-adjacent example seed from the standard's Annex; any
    non-zero 7-bit value is legal. The LFSR is maximal-length (period 127),
    so one cached period per seed is tiled to any requested length.
    """
    if not 0 < seed < (1 << _ORDER):
        raise ValueError("seed must be a non-zero 7-bit value")
    base = _one_period(seed)
    if length <= _PERIOD:
        return base[:length].copy()
    repeats = -(-length // _PERIOD)
    return np.tile(base, repeats)[:length]


def scramble(bits: np.ndarray, seed: int = 0b1011101) -> np.ndarray:
    """XOR ``bits`` with the scrambler sequence."""
    bits = np.asarray(bits, dtype=np.uint8)
    return bits ^ scrambler_sequence(bits.size, seed)


def descramble(bits: np.ndarray, seed: int = 0b1011101) -> np.ndarray:
    """Inverse of :func:`scramble` (same operation, by construction)."""
    return scramble(bits, seed)
