"""Sample-level PHY path: waveforms, synchronization, time-domain channel.

The frequency-domain fast path used by the experiment harness applies the
channel per OFDM symbol, which is exact while the delay spread fits the
cyclic prefix and the receiver is symbol-aligned. This module provides the
full sample-level story a GNURadio flowgraph lives in:

* :func:`frame_to_samples` / :func:`samples_to_symbols` — (de)framing of
  the 80-sample OFDM waveform.
* :class:`TimeDomainChannel` — tap convolution, sample-level CFO rotation
  and AWGN on the waveform itself.
* :func:`detect_frame` — Schmidl&Cox-style packet detection and coarse
  timing from the periodic short training field.
* :func:`coarse_cfo_estimate` — CFO from the STF repetition at sample
  level (±period/2 unambiguous range far beyond the LTF-based estimator).

Together these let a test transmit a frame as raw samples with unknown
arrival offset, synchronize, and hand perfectly aligned symbols to the
standard frequency-domain receiver — validating that the fast path and
the sample-level path agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.constants import CP_LENGTH, FFT_SIZE, SYMBOL_SAMPLES
from repro.phy.ofdm import map_subcarriers, ofdm_demodulate, ofdm_modulate, unmap_subcarriers
from repro.util.rng import RngStream

__all__ = [
    "frame_to_samples",
    "samples_to_symbols",
    "TimeDomainChannel",
    "detect_frame",
    "coarse_cfo_estimate",
    "STF_PERIOD",
]

# The L-STF occupies every 4th subcarrier, so its time-domain waveform is
# periodic with period 16 samples — the property packet detection exploits.
STF_PERIOD = FFT_SIZE // 4


def frame_to_samples(symbols: np.ndarray) -> np.ndarray:
    """Serialise (n_symbols, 52) used-subcarrier vectors into a waveform."""
    symbols = np.asarray(symbols, dtype=np.complex128)
    grids = map_subcarriers(symbols)
    waves = ofdm_modulate(grids)
    return waves.reshape(-1)


def samples_to_symbols(samples: np.ndarray, n_symbols: int | None = None) -> np.ndarray:
    """Deserialise an aligned waveform back into used-subcarrier vectors.

    ``samples`` must start exactly at the first sample of the first
    symbol's cyclic prefix.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if n_symbols is None:
        n_symbols = samples.size // SYMBOL_SAMPLES
    needed = n_symbols * SYMBOL_SAMPLES
    if samples.size < needed:
        raise ValueError(f"need {needed} samples, got {samples.size}")
    blocks = samples[:needed].reshape(n_symbols, SYMBOL_SAMPLES)
    grids = ofdm_demodulate(blocks)
    return unmap_subcarriers(grids)


@dataclass
class TimeDomainChannel:
    """A static multipath channel applied at sample level.

    Args:
        taps: Complex channel impulse response (length ≤ CP).
        snr_db: Per-sample SNR relative to unit signal power.
        cfo_hz: Carrier frequency offset, applied as a continuous phase
            ramp across samples.
        sample_rate: Waveform sample rate (20 MHz default timing).
        delay_samples: Extra integer delay (leading noise-only samples),
            modelling an unknown arrival time.
    """

    taps: np.ndarray
    snr_db: float = 30.0
    cfo_hz: float = 0.0
    sample_rate: float = 20e6
    delay_samples: int = 0

    def __post_init__(self):
        self.taps = np.asarray(self.taps, dtype=np.complex128)
        if self.taps.size < 1 or self.taps.size > CP_LENGTH:
            raise ValueError("taps must fit inside the cyclic prefix")
        if self.delay_samples < 0:
            raise ValueError("delay must be non-negative")

    def transmit(self, samples: np.ndarray, rng: RngStream) -> np.ndarray:
        """Propagate a waveform: delay, convolve, rotate, add noise."""
        samples = np.asarray(samples, dtype=np.complex128)
        delayed = np.concatenate([np.zeros(self.delay_samples, dtype=complex), samples])
        faded = np.convolve(delayed, self.taps)
        n = faded.size
        if self.cfo_hz:
            t = np.arange(n) / self.sample_rate
            faded = faded * np.exp(2j * np.pi * self.cfo_hz * t)
        noise_sigma = np.sqrt(10.0 ** (-self.snr_db / 10.0))
        noise = rng.complex_normal(scale=noise_sigma, size=n)
        return faded + noise


def detect_frame(samples: np.ndarray, threshold: float = 0.6,
                 min_run: int = 3 * STF_PERIOD) -> int | None:
    """Find the start of a frame from the STF's 16-sample periodicity.

    Computes the normalised autocorrelation C(d) between the waveform and
    itself delayed by one STF period; inside the STF the metric plateaus
    near 1. Returns the index of the first sample of the detected frame,
    or None when nothing crosses the threshold for ``min_run`` samples.

    This is the Schmidl & Cox timing metric restricted to the legacy STF,
    as implemented by the GNURadio 802.11 receivers the paper builds on.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    d = STF_PERIOD
    if samples.size < 2 * d + min_run:
        return None
    lagged = samples[d:]
    base = samples[:-d]
    corr = lagged * np.conj(base)
    power = np.abs(lagged) ** 2
    window = d
    kernel = np.ones(window)
    corr_sum = np.convolve(corr, kernel, mode="valid")
    power_sum = np.convolve(power, kernel, mode="valid") + 1e-12
    metric = np.abs(corr_sum) / power_sum

    above = metric > threshold
    run = 0
    for i, flag in enumerate(above):
        run = run + 1 if flag else 0
        if run >= min_run:
            return i - run + 1
    return None


def coarse_cfo_estimate(samples: np.ndarray, start: int,
                        sample_rate: float = 20e6) -> float:
    """CFO estimate from the STF periodicity at ``start``.

    Correlates one STF period against the next across the first 1.5
    symbols of short training; unambiguous to ±sample_rate/(2·16) =
    ±625 kHz at 20 MHz.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    d = STF_PERIOD
    span = 6 * d  # stay well inside the two STF symbols
    if start + span + d > samples.size:
        raise ValueError("not enough samples after start for CFO estimation")
    segment = samples[start : start + span]
    lagged = samples[start + d : start + span + d]
    angle = np.angle(np.sum(lagged * np.conj(segment)))
    return float(angle * sample_rate / (2.0 * np.pi * d))
