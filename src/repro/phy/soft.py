"""Soft-decision demapping and Viterbi decoding.

The hard-decision chain loses ≈2 dB against what a real 802.11 receiver
achieves: the demapper knows *how close* each received point was to the
decision boundary, and on a faded subcarrier it knows the decision is
barely worth anything. This module adds:

* :func:`soft_demodulate` — max-log-MAP per-bit log-likelihood ratios
  (LLR > 0 ⇒ bit 0 more likely), scaled by per-subcarrier reliability
  |H|²/σ² so deep fades contribute weak opinions instead of wrong votes;
* :func:`viterbi_decode_soft` — the same K=7 trellis driven by LLR branch
  metrics, with punctured positions entering as true erasures (LLR 0).

Both slot into the existing pipeline: the receiver equalizes as before,
then hands equalized points plus the channel estimate to the soft path.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.phy.coding import (
    _NUM_STATES,
    _OUTPUTS,
    _PREV_BIT,
    _PREV_STATE,
    CodeRate,
    RATE_1_2,
)
from repro.phy.interleaver import interleave_permutation
from repro.phy.modulation import Modulation

__all__ = [
    "soft_demodulate",
    "deinterleave_llrs",
    "viterbi_decode_soft",
    "decode_payload_soft",
]


@lru_cache(maxsize=None)
def _bit_partitions(mod_name: str, bits_per_symbol: int, points_key: bytes):
    """For each bit position: the constellation points with that bit 0/1."""
    points = np.frombuffer(points_key, dtype=np.complex128)
    zeros, ones = [], []
    for bit in range(bits_per_symbol):
        shift = bits_per_symbol - 1 - bit
        labels = np.arange(points.size)
        mask = ((labels >> shift) & 1).astype(bool)
        zeros.append(points[~mask])
        ones.append(points[mask])
    return zeros, ones


def soft_demodulate(points: np.ndarray, modulation: Modulation,
                    reliability: np.ndarray | float = 1.0) -> np.ndarray:
    """Per-bit LLRs for an array of received (equalized) points.

    Args:
        points: Received constellation points.
        modulation: The transmitted constellation.
        reliability: Per-point scale |H|²/σ² (or a scalar). Zero-forcing
            equalization amplifies noise on faded tones; weighting by the
            channel magnitude restores the correct confidence.

    Returns:
        LLR array of length ``len(points) × bits_per_symbol``; positive
        means bit 0 is more likely (matching hard decision of 0).
    """
    points = np.asarray(points, dtype=np.complex128).reshape(-1)
    reliability = np.broadcast_to(np.asarray(reliability, dtype=float), points.shape)
    zeros, ones = _bit_partitions(
        modulation.name, modulation.bits_per_symbol, modulation.points.tobytes()
    )
    llrs = np.empty(points.size * modulation.bits_per_symbol)
    for bit in range(modulation.bits_per_symbol):
        d0 = np.min(np.abs(points[:, None] - zeros[bit][None, :]) ** 2, axis=1)
        d1 = np.min(np.abs(points[:, None] - ones[bit][None, :]) ** 2, axis=1)
        # max-log-MAP: LLR ≈ (d1 − d0)·reliability.
        llrs[bit::modulation.bits_per_symbol] = (d1 - d0) * reliability
    return llrs


def deinterleave_llrs(llrs: np.ndarray, n_bpsc: int) -> np.ndarray:
    """Deinterleave one symbol's LLRs (same permutation as the bits)."""
    llrs = np.asarray(llrs, dtype=float)
    perm = np.array(interleave_permutation(llrs.size, n_bpsc))
    return llrs[perm]


def _depuncture_llrs(llrs: np.ndarray, rate: CodeRate, data_bits: int) -> np.ndarray:
    period = rate.pattern.shape[1]
    keep = np.tile(rate.pattern.T, (data_bits // period, 1)).astype(bool).reshape(-1)
    grid = np.zeros(data_bits * 2)
    grid[np.nonzero(keep)[0]] = llrs
    return grid.reshape(data_bits, 2)


def viterbi_decode_soft(llrs: np.ndarray, data_bits: int,
                        rate: CodeRate = RATE_1_2,
                        terminated: bool = True) -> np.ndarray:
    """Soft-input Viterbi decode: LLRs in, information bits out.

    Punctured positions are injected as zero LLRs (no opinion), so the
    trellis treats them as erasures — exactly the depuncturing a hard
    decoder approximates with ignored positions.
    """
    llrs = np.asarray(llrs, dtype=float)
    expected = rate.coded_bits(data_bits)
    if llrs.size != expected:
        raise ValueError(f"expected {expected} LLRs, got {llrs.size}")
    grid = _depuncture_llrs(llrs, rate, data_bits)

    inf = np.float64(1e18)
    metrics = np.full(_NUM_STATES, inf)
    metrics[0] = 0.0
    survivors = np.empty((data_bits, _NUM_STATES), dtype=np.uint8)

    prev0 = _PREV_STATE[:, 0]
    prev1 = _PREV_STATE[:, 1]
    out0 = _OUTPUTS[prev0, _PREV_BIT[:, 0]].astype(float)  # (64, 2)
    out1 = _OUTPUTS[prev1, _PREV_BIT[:, 1]].astype(float)

    for i in range(data_bits):
        llr_pair = grid[i]  # positive ⇒ bit 0 likely
        # Cost of hypothesising output bit b at position j: b == 1 costs
        # +LLR_j (relative to b == 0). Works for either LLR sign.
        bm0 = out0 @ llr_pair
        bm1 = out1 @ llr_pair
        cand0 = metrics[prev0] + bm0
        cand1 = metrics[prev1] + bm1
        choose1 = cand1 < cand0
        metrics = np.where(choose1, cand1, cand0)
        survivors[i] = choose1.astype(np.uint8)

    state = 0 if terminated else int(np.argmin(metrics))
    decoded = np.empty(data_bits, dtype=np.uint8)
    for i in range(data_bits - 1, -1, -1):
        which = survivors[i, state]
        decoded[i] = _PREV_BIT[state, which]
        state = _PREV_STATE[state, which]
    return decoded


def decode_payload_soft(
    equalized_symbols: np.ndarray,
    channel_estimate: np.ndarray,
    payload_len: int,
    mcs,
    noise_variance: float = 1e-2,
    scrambler_seed: int = 0b1011101,
) -> bytes:
    """Soft-decision decode of a coded payload from equalized symbols.

    Mirrors ``payload_codec.decode_payload_bits`` but feeds LLRs — with
    per-subcarrier |H|²/σ² reliability weights — into the soft Viterbi.
    """
    from repro.phy.ofdm import DATA_POSITIONS, split_symbol
    from repro.phy.payload_codec import SERVICE_BITS
    from repro.phy.scrambler import descramble
    from repro.util.bits import bits_to_bytes

    equalized_symbols = np.asarray(equalized_symbols, dtype=np.complex128)
    channel_estimate = np.asarray(channel_estimate, dtype=np.complex128)
    reliability = np.abs(channel_estimate[DATA_POSITIONS]) ** 2 / max(
        noise_variance, 1e-12
    )
    n_symbols = equalized_symbols.shape[0]
    n_dbps = mcs.data_bits_per_symbol
    llr_rows = []
    for i in range(n_symbols):
        data_points, _ = split_symbol(equalized_symbols[i])
        llrs = soft_demodulate(data_points, mcs.modulation, reliability)
        llr_rows.append(deinterleave_llrs(llrs, mcs.modulation.bits_per_symbol))
    decoded = viterbi_decode_soft(
        np.concatenate(llr_rows), n_symbols * n_dbps, mcs.code_rate, terminated=False
    )
    descrambled = descramble(decoded, scrambler_seed)
    payload_bits = descrambled[SERVICE_BITS : SERVICE_BITS + 8 * payload_len]
    return bits_to_bytes(payload_bits)
