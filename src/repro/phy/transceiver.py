"""The standard (non-Carpool) OFDM transmitter and receiver chains.

Frame layout, in OFDM symbols:

    [STF, STF, LTF, LTF, SIG, payload₀, payload₁, …]

The receiver implements exactly the behaviour whose failure mode the paper
demonstrates: channel estimated once from the LTF, CFO corrected from the
LTF repetition, per-symbol pilot phase tracking — and *no* update of the
channel estimate during the payload (the "standard" curves in Figs. 3/13/14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.phy import payload_codec
from repro.phy.channel_estimation import equalize
from repro.phy.frontend import acquire
from repro.phy.mcs import Mcs
from repro.phy.pilots import track_and_compensate, track_and_compensate_block
from repro.phy.preamble import ltf_symbol, stf_symbol
from repro.phy.sig import SigDecodeError, SigField, decode_sig, encode_sig
from repro.phy.ofdm import assemble_symbol, split_symbol
from repro.phy.constants import pilot_values

__all__ = [
    "PREAMBLE_SYMBOLS",
    "SIG_SYMBOL_OFFSET",
    "PAYLOAD_SYMBOL_OFFSET",
    "TxFrame",
    "RxResult",
    "PhyTransmitter",
    "PhyReceiver",
]

PREAMBLE_SYMBOLS = 4  # STF ×2, LTF ×2
SIG_SYMBOL_OFFSET = PREAMBLE_SYMBOLS
PAYLOAD_SYMBOL_OFFSET = PREAMBLE_SYMBOLS + 1

_STF_SLOTS = (0, 1)
_LTF_SLOTS = (2, 3)


@lru_cache(maxsize=1)
def _preamble_block() -> np.ndarray:
    """The fixed STF/STF/LTF/LTF preamble as a cached (4, 52) block."""
    block = np.vstack([stf_symbol(), stf_symbol(), ltf_symbol(), ltf_symbol()])
    block.setflags(write=False)
    return block


@dataclass
class TxFrame:
    """A transmitted frame with ground truth kept for instrumentation.

    Attributes:
        symbols: (n_total, 52) frequency-domain used-subcarrier vectors.
        mcs: Payload modulation-and-coding scheme.
        payload: The original payload bytes.
        payload_bit_matrix: (n_payload_symbols, N_CBPS) bits actually mapped
            onto the data subcarriers of each payload symbol (ground truth
            for per-symbol BER measurement).
        injected_phases: (n_payload_symbols,) cumulative side-channel phase
            per symbol; all zeros for a standard frame.
        coded: Whether the 802.11 scramble/code/interleave chain was used.
    """

    symbols: np.ndarray
    mcs: Mcs
    payload: bytes
    payload_bit_matrix: np.ndarray
    injected_phases: np.ndarray
    coded: bool
    scrambler_seed: int = 0b1011101

    @property
    def n_payload_symbols(self) -> int:
        """Payload OFDM symbols in the frame."""
        return self.payload_bit_matrix.shape[0]

    @property
    def n_symbols(self) -> int:
        """Total OFDM symbols (preamble + SIG + payload)."""
        return self.symbols.shape[0]


@dataclass
class RxResult:
    """Receiver output plus diagnostics.

    Attributes:
        payload: Decoded payload bytes (may contain bit errors in uncoded
            mode; coded mode errors are whatever survives Viterbi).
        sig: Decoded SIG field.
        bit_matrix: Hard-decision per-symbol payload bits.
        symbol_phases: Tracked total phase offset per payload symbol.
        channel_estimate: The final channel estimate used.
        cfo_hz: Estimated carrier frequency offset.
        equalized: (n_payload_symbols, 52) equalized, phase-compensated
            symbols (pre-demodulation) for constellation inspection.
    """

    payload: bytes
    sig: SigField
    bit_matrix: np.ndarray
    symbol_phases: np.ndarray
    channel_estimate: np.ndarray
    cfo_hz: float
    equalized: np.ndarray | None = field(repr=False, default=None)


class PhyTransmitter:
    """Builds standard single-destination OFDM frames."""

    def __init__(self, mcs: Mcs, coded: bool = True, scrambler_seed: int = 0b1011101):
        self.mcs = mcs
        self.coded = coded
        self.scrambler_seed = scrambler_seed

    def build_frame(self, payload: bytes, phases: np.ndarray | None = None) -> TxFrame:
        """Assemble the full symbol sequence for ``payload``.

        ``phases`` optionally rotates each payload symbol — the hook the
        Carpool side-channel encoder uses. Standard frames pass None.
        """
        if not payload:
            raise ValueError("payload must be non-empty")
        bit_matrix = payload_codec.encode_payload_bits(
            payload, self.mcs, self.coded, self.scrambler_seed
        )
        n_payload = bit_matrix.shape[0]
        if phases is None:
            phases = np.zeros(n_payload)
        payload_symbols = payload_codec.bits_to_symbols(
            bit_matrix, self.mcs, first_pilot_index=1, phases=phases
        )
        sig_points = encode_sig(SigField(mcs=self.mcs, length_bytes=len(payload)))
        sig_symbol = assemble_symbol(sig_points, pilot_values(0))
        symbols = np.vstack(
            [
                _preamble_block(),
                sig_symbol[None, :],
                payload_symbols,
            ]
        )
        return TxFrame(
            symbols=symbols,
            mcs=self.mcs,
            payload=payload,
            payload_bit_matrix=bit_matrix,
            injected_phases=np.asarray(phases, dtype=np.float64),
            coded=self.coded,
            scrambler_seed=self.scrambler_seed,
        )


class PhyReceiver:
    """The standard receiver: preamble-only channel estimation.

    ``soft=True`` routes coded payloads through the LLR demapper and the
    soft-input Viterbi (≈2 dB better than hard decisions, and resilient
    to per-subcarrier fades via |H|²/σ² reliability weighting).
    """

    def __init__(self, coded: bool = True, scrambler_seed: int = 0b1011101,
                 soft: bool = False):
        self.coded = coded
        self.scrambler_seed = scrambler_seed
        self.soft = soft
        if soft and not coded:
            raise ValueError("soft decoding applies to the coded chain only")

    def receive(self, received_symbols: np.ndarray, payload_len: int | None = None) -> RxResult:
        """Decode a received frame (same symbol layout as the transmitter).

        Args:
            received_symbols: (n_total, 52) received used-subcarrier vectors.
            payload_len: Override for the payload length; normally taken
                from the decoded SIG.

        Raises:
            SigDecodeError: If the SIG symbol fails its validity checks.
        """
        received_symbols = np.asarray(received_symbols, dtype=np.complex128)
        front = acquire(received_symbols)
        derotated = front.derotated
        channel = front.channel_estimate
        cfo_hz = front.cfo_hz

        sig_eq = equalize(derotated[SIG_SYMBOL_OFFSET], channel)
        sig_eq, _sig_phase = track_and_compensate(sig_eq, 0)
        sig_data, _ = split_symbol(sig_eq)
        sig = decode_sig(sig_data)

        if payload_len is None:
            payload_len = sig.length_bytes
        mcs = sig.mcs
        n_payload = payload_codec.num_payload_symbols(payload_len, mcs, self.coded)
        available = received_symbols.shape[0] - PAYLOAD_SYMBOL_OFFSET
        if n_payload > available:
            raise SigDecodeError(
                f"SIG claims {n_payload} payload symbols but only {available} received"
            )

        payload_rx = derotated[PAYLOAD_SYMBOL_OFFSET : PAYLOAD_SYMBOL_OFFSET + n_payload]
        # The channel estimate is frozen for the whole payload (that is the
        # "standard receiver" the paper critiques), so the per-symbol
        # equalize/track/compensate chain batches over all symbols at once.
        equalized, phases = track_and_compensate_block(
            equalize(payload_rx, channel), 1
        )
        bit_matrix = payload_codec.symbols_to_bits(equalized, mcs)
        if self.soft:
            from repro.phy.soft import decode_payload_soft

            payload = decode_payload_soft(
                equalized, channel, payload_len, mcs,
                noise_variance=front.noise_variance,
                scrambler_seed=self.scrambler_seed,
            )
        else:
            payload = payload_codec.decode_payload_bits(
                bit_matrix, payload_len, mcs, self.coded, self.scrambler_seed
            )
        return RxResult(
            payload=payload,
            sig=sig,
            bit_matrix=bit_matrix,
            symbol_phases=phases,
            channel_estimate=channel,
            cfo_hz=cfo_hz,
            equalized=equalized,
        )
