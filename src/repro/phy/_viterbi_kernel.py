"""Optional C fast path for the Viterbi add-compare-select loop.

The hard-decision Viterbi recurrence is inherently sequential over bit
times, which caps what NumPy vectorisation can do for a *single* decode:
even with every branch metric precomputed, the per-step add-compare-select
costs a handful of 64-element NumPy calls whose interpreter overhead
dominates.  This module side-steps that by compiling a ~60-line C kernel
with the system compiler the first time it is needed, caching the shared
object under ``$XDG_CACHE_HOME/repro-ckernel`` (keyed by a hash of the
source), and loading it through :mod:`ctypes`.

The kernel reproduces the NumPy decoder *bit-exactly*: metrics are IEEE
doubles initialised to the same ``1e18`` sentinel, ties select the same
predecessor (``cand1 < cand0``), and the untied-traceback start state is
the first minimum — so callers may switch freely between the two paths.

Everything degrades gracefully: if no C compiler is available, compilation
fails, or ``REPRO_NO_CKERNEL`` is set in the environment, :func:`load`
returns ``None`` and ``repro.phy.coding`` falls back to its vectorised
NumPy decoder.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

import numpy as np

__all__ = ["load", "cache_dir"]

_SOURCE = r"""
#include <stdint.h>

/* Hard-decision Viterbi for the 64-state K=7 trellis.
 *
 * grid/mask:   n x 2 received mother-code bits and non-erasure flags.
 * prev_state:  64 x 2 predecessor state of each (state, branch).
 * prev_bit:    64 x 2 input bit hypothesis of each (state, branch).
 * edge_pair:   64 x 2 output-pair value (2*out0 + out1) along each branch.
 * survivors:   n x 64 scratch, filled with the chosen branch per step.
 * decoded:     n output bits.
 *
 * Metric arithmetic is double precision with a 1e18 "infinity" sentinel,
 * matching the NumPy reference decoder operation for operation so the two
 * implementations are bit-identical even on degenerate inputs (frames
 * shorter than the constraint length, all-erasure stretches, ...).
 */
void viterbi_hard(const uint8_t *grid, const uint8_t *mask, int64_t n,
                  const int32_t *prev_state, const int32_t *prev_bit,
                  const uint8_t *edge_pair, int terminated,
                  uint8_t *survivors, uint8_t *decoded)
{
    double metrics[64], next[64], cost[4];
    int64_t i;
    int s, j, state;

    for (s = 0; s < 64; s++) metrics[s] = 1e18;
    metrics[0] = 0.0;

    for (i = 0; i < n; i++) {
        const uint8_t g0 = grid[2 * i], g1 = grid[2 * i + 1];
        const uint8_t m0 = mask[2 * i], m1 = mask[2 * i + 1];
        for (j = 0; j < 4; j++)
            cost[j] = (double)(((((j >> 1) & 1) != g0) && m0) +
                               (((j & 1) != g1) && m1));
        for (s = 0; s < 64; s++) {
            const double c0 = metrics[prev_state[2 * s]] + cost[edge_pair[2 * s]];
            const double c1 = metrics[prev_state[2 * s + 1]] + cost[edge_pair[2 * s + 1]];
            const int choose1 = c1 < c0;
            next[s] = choose1 ? c1 : c0;
            survivors[i * 64 + s] = (uint8_t)choose1;
        }
        for (s = 0; s < 64; s++) metrics[s] = next[s];
    }

    state = 0;
    if (!terminated) {
        double best = metrics[0];
        for (s = 1; s < 64; s++)
            if (metrics[s] < best) { best = metrics[s]; state = s; }
    }
    for (i = n - 1; i >= 0; i--) {
        const int which = survivors[i * 64 + state];
        decoded[i] = (uint8_t)prev_bit[2 * state + which];
        state = prev_state[2 * state + which];
    }
}
"""


def cache_dir() -> str:
    """Directory the compiled shared object is cached in."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-ckernel")


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate:
            path = shutil.which(candidate)
            if path:
                return path
    return None


def _compile(lib_path: str) -> bool:
    """Build the shared object at ``lib_path``; returns success."""
    compiler = _find_compiler()
    if compiler is None:
        return False
    directory = os.path.dirname(lib_path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, src_path = tempfile.mkstemp(suffix=".c", dir=directory)
        with os.fdopen(fd, "w") as handle:
            handle.write(_SOURCE)
        fd, tmp_lib = tempfile.mkstemp(suffix=".so", dir=directory)
        os.close(fd)
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", src_path, "-o", tmp_lib],
            check=True,
            capture_output=True,
        )
        # Atomic publish so concurrent importers never see a partial file.
        os.replace(tmp_lib, lib_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in ("src_path", "tmp_lib"):
            path = locals().get(leftover)
            if path and os.path.exists(path) and path != lib_path:
                try:
                    os.unlink(path)
                except OSError:
                    pass


def load():
    """Compile (if needed) and load the kernel; ``None`` if unavailable."""
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    lib_path = os.path.join(cache_dir(), f"viterbi-{digest}.so")
    if not os.path.exists(lib_path) and not _compile(lib_path):
        return None
    try:
        lib = ctypes.CDLL(lib_path)
        fn = lib.viterbi_hard
    except (OSError, AttributeError):
        return None
    u8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
    i32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
    fn.argtypes = [u8, u8, ctypes.c_int64, i32, i32, u8, ctypes.c_int, u8, u8]
    fn.restype = None
    return fn
