"""Carrier frequency offset (CFO) estimation and compensation.

A CFO of Δf Hz rotates every OFDM symbol by an extra 2π·Δf·T_sym radians
relative to the previous one. The receiver estimates this per-symbol phase
step from the two identical LTF symbols and de-rotates subsequent symbols.
What survives the correction — the *residual* frequency error — accumulates
phase across the frame and is what the per-symbol pilot phase tracking (and
Carpool's differential side-channel encoding) must absorb (paper §5.2).
"""

from __future__ import annotations

import numpy as np

from repro.phy.constants import SYMBOL_DURATION_20MHZ

__all__ = [
    "estimate_cfo_from_ltf",
    "phase_step_from_cfo",
    "cfo_from_phase_step",
    "compensate_symbols",
]


def estimate_cfo_from_ltf(ltf1: np.ndarray, ltf2: np.ndarray,
                          symbol_duration: float = SYMBOL_DURATION_20MHZ) -> float:
    """Estimate CFO in Hz from two received repetitions of the LTF.

    Both repetitions see the same channel, so the angle of the coherent
    cross-correlation is the inter-symbol phase step caused by CFO.
    Unambiguous up to ±1/(2·T_sym) (±125 kHz at 20 MHz), far beyond the
    ±40 ppm oscillator spec.
    """
    correlation = np.sum(np.asarray(ltf2) * np.conj(np.asarray(ltf1)))
    phase_step = float(np.angle(correlation))
    return cfo_from_phase_step(phase_step, symbol_duration)


def phase_step_from_cfo(cfo_hz: float, symbol_duration: float = SYMBOL_DURATION_20MHZ) -> float:
    """Per-OFDM-symbol phase increment (radians) for a given CFO."""
    return 2.0 * np.pi * cfo_hz * symbol_duration


def cfo_from_phase_step(phase_step: float, symbol_duration: float = SYMBOL_DURATION_20MHZ) -> float:
    """Inverse of :func:`phase_step_from_cfo`."""
    return phase_step / (2.0 * np.pi * symbol_duration)


def compensate_symbols(symbols: np.ndarray, phase_step: float,
                       first_symbol_index: int = 0) -> np.ndarray:
    """De-rotate an (N, 52) symbol array by an accumulating phase ramp.

    Symbol ``i`` (absolute index ``first_symbol_index + i``) is rotated by
    ``-phase_step * (first_symbol_index + i)``.
    """
    symbols = np.asarray(symbols, dtype=np.complex128)
    indices = first_symbol_index + np.arange(symbols.shape[0])
    ramp = np.exp(-1j * phase_step * indices)
    return symbols * ramp[:, None]
