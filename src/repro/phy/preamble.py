"""Legacy 802.11 PLCP preamble: short and long training fields.

The short training field (STF) occupies 12 of the 52 used subcarriers and is
used for packet detection and coarse frequency acquisition. The long
training field (LTF) fills all 52 used subcarriers with a known ±1 sequence
and anchors channel estimation and fine CFO estimation. Per the paper's
implementation (§6), the PLCP preamble is two STF symbols followed by two
LTF symbols.
"""

from __future__ import annotations

import numpy as np

from repro.phy.constants import USED_SUBCARRIER_INDICES

__all__ = ["LTF_SEQUENCE", "STF_SEQUENCE", "ltf_symbol", "stf_symbol", "NUM_PREAMBLE_SYMBOLS"]

NUM_PREAMBLE_SYMBOLS = 4  # 2 × STF + 2 × LTF

# 802.11a-2012 §18.3.3: L-LTF values on subcarriers -26..26 (53 entries, DC=0).
_LTF_MINUS26_TO_26 = np.array(
    [
        1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
        0,
        1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
    ],
    dtype=np.float64,
)

# 802.11a-2012 §18.3.3: L-STF is non-zero on every 4th subcarrier.
_STF_NONZERO = {
    -24: 1 + 1j, -20: -1 - 1j, -16: 1 + 1j, -12: -1 - 1j, -8: -1 - 1j, -4: 1 + 1j,
    4: -1 - 1j, 8: -1 - 1j, 12: 1 + 1j, 16: 1 + 1j, 20: 1 + 1j, 24: 1 + 1j,
}
_STF_SCALE = np.sqrt(13.0 / 6.0) / np.sqrt(2.0)


def _used_vector_from_range(values_m26_to_26: np.ndarray) -> np.ndarray:
    out = np.empty(USED_SUBCARRIER_INDICES.size, dtype=np.complex128)
    for pos, k in enumerate(USED_SUBCARRIER_INDICES):
        out[pos] = values_m26_to_26[k + 26]
    return out


LTF_SEQUENCE = _used_vector_from_range(_LTF_MINUS26_TO_26)

_stf_range = np.zeros(53, dtype=np.complex128)
for _k, _v in _STF_NONZERO.items():
    _stf_range[_k + 26] = _v * _STF_SCALE
STF_SEQUENCE = _used_vector_from_range(_stf_range)


def ltf_symbol() -> np.ndarray:
    """A fresh copy of the LTF used-subcarrier vector."""
    return LTF_SEQUENCE.copy()


def stf_symbol() -> np.ndarray:
    """A fresh copy of the STF used-subcarrier vector."""
    return STF_SEQUENCE.copy()
