"""Pilot insertion and pilot-based phase tracking.

Every payload OFDM symbol carries four known pilot tones. The receiver uses
them to estimate the common phase rotation of the symbol (residual CFO plus
— in Carpool — the injected side-channel offset) and de-rotates the whole
symbol before demodulation. This is the "inherent phase tracking ability"
the paper's phase-offset side channel piggybacks on (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.phy.constants import pilot_values
from repro.phy.ofdm import PILOT_POSITIONS

__all__ = ["insert_pilots", "estimate_phase_offset", "compensate_phase", "track_and_compensate"]


def insert_pilots(symbol_index: int) -> np.ndarray:
    """Pilot tone values for the given OFDM symbol index (0 = SIG)."""
    return pilot_values(symbol_index).astype(np.complex128)


def estimate_phase_offset(equalized_used: np.ndarray, symbol_index: int) -> float:
    """Estimate the common phase rotation of one equalized symbol.

    Correlates the received pilot tones against their known values; the
    angle of the coherent sum is the maximum-likelihood common phase. The
    estimate's accuracy depends on pilot SNR only — not on the amount of
    rotation — which is why Carpool's injected offsets do not degrade it.
    """
    expected = insert_pilots(symbol_index)
    received = np.asarray(equalized_used)[PILOT_POSITIONS]
    correlation = np.sum(received * np.conj(expected))
    return float(np.angle(correlation))


def compensate_phase(used: np.ndarray, phase: float) -> np.ndarray:
    """De-rotate a used-subcarrier vector by ``phase`` radians."""
    return np.asarray(used) * np.exp(-1j * phase)


def track_and_compensate(equalized_used: np.ndarray, symbol_index: int):
    """Estimate and remove the common phase; returns ``(compensated, phase)``."""
    phase = estimate_phase_offset(equalized_used, symbol_index)
    return compensate_phase(equalized_used, phase), phase
