"""Pilot insertion and pilot-based phase tracking.

Every payload OFDM symbol carries four known pilot tones. The receiver uses
them to estimate the common phase rotation of the symbol (residual CFO plus
— in Carpool — the injected side-channel offset) and de-rotates the whole
symbol before demodulation. This is the "inherent phase tracking ability"
the paper's phase-offset side channel piggybacks on (§5.2).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.phy.constants import PILOT_BASE_VALUES, PILOT_POLARITY, pilot_values
from repro.phy.ofdm import PILOT_POSITIONS

__all__ = [
    "insert_pilots",
    "estimate_phase_offset",
    "estimate_phase_offsets",
    "compensate_phase",
    "track_and_compensate",
    "track_and_compensate_block",
    "pilot_reference_matrix",
]


def insert_pilots(symbol_index: int) -> np.ndarray:
    """Pilot tone values for the given OFDM symbol index (0 = SIG)."""
    return pilot_values(symbol_index).astype(np.complex128)


def estimate_phase_offset(equalized_used: np.ndarray, symbol_index: int) -> float:
    """Estimate the common phase rotation of one equalized symbol.

    Correlates the received pilot tones against their known values; the
    angle of the coherent sum is the maximum-likelihood common phase. The
    estimate's accuracy depends on pilot SNR only — not on the amount of
    rotation — which is why Carpool's injected offsets do not degrade it.
    """
    expected = insert_pilots(symbol_index)
    received = np.asarray(equalized_used)[PILOT_POSITIONS]
    correlation = np.sum(received * np.conj(expected))
    return float(np.angle(correlation))


def compensate_phase(used: np.ndarray, phase: float) -> np.ndarray:
    """De-rotate a used-subcarrier vector by ``phase`` radians."""
    return np.asarray(used) * np.exp(-1j * phase)


def track_and_compensate(equalized_used: np.ndarray, symbol_index: int):
    """Estimate and remove the common phase; returns ``(compensated, phase)``."""
    phase = estimate_phase_offset(equalized_used, symbol_index)
    return compensate_phase(equalized_used, phase), phase


@lru_cache(maxsize=None)
def _pilot_reference_cached(first_index: int, n_symbols: int) -> np.ndarray:
    indices = (first_index + np.arange(n_symbols)) % PILOT_POLARITY.size
    reference = (
        PILOT_BASE_VALUES[None, :] * PILOT_POLARITY[indices][:, None]
    ).astype(np.complex128)
    reference.setflags(write=False)
    return reference

def pilot_reference_matrix(first_index: int, n_symbols: int) -> np.ndarray:
    """Expected pilot values for ``n_symbols`` consecutive OFDM symbols.

    Row ``i`` equals :func:`insert_pilots`\\ ``(first_index + i)``. Cached
    (the polarity sequence has period 127, so the cache stays small) and
    returned read-only.
    """
    return _pilot_reference_cached(int(first_index) % PILOT_POLARITY.size,
                                   int(n_symbols))


def estimate_phase_offsets(equalized_block: np.ndarray, first_index: int) -> np.ndarray:
    """Common-phase estimates for a whole block of equalized symbols.

    Vectorised :func:`estimate_phase_offset` over an (n_symbols, 52) block
    whose rows have consecutive pilot-polarity indices starting at
    ``first_index``; returns (n_symbols,) phases, bit-identical to the
    per-symbol loop.
    """
    equalized_block = np.asarray(equalized_block)
    expected = pilot_reference_matrix(first_index, equalized_block.shape[0])
    received = equalized_block[:, PILOT_POSITIONS]
    correlation = np.sum(received * np.conj(expected), axis=1)
    return np.angle(correlation)


def track_and_compensate_block(equalized_block: np.ndarray, first_index: int):
    """Block form of :func:`track_and_compensate`.

    Returns ``(compensated, phases)`` for an (n_symbols, 52) block; each
    row is de-rotated by its own estimated common phase.
    """
    equalized_block = np.asarray(equalized_block)
    phases = estimate_phase_offsets(equalized_block, first_index)
    compensated = equalized_block * np.exp(-1j * phases)[:, None]
    return compensated, phases
