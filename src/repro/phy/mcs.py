"""Modulation-and-coding schemes (MCS) of the 802.11 OFDM PHY.

Each MCS pairs a constellation with a puncturing rate and fixes the number
of coded/data bits per OFDM symbol. Rates are the 20 MHz legacy rates; the
MAC simulator scales airtime for other channel widths (the paper's Fig. 13
uses a 2 MHz channel to emulate 10× longer frames).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.coding import RATE_1_2, RATE_2_3, RATE_3_4, CodeRate
from repro.phy.constants import NUM_DATA_SUBCARRIERS
from repro.phy.modulation import BPSK, QAM16, QAM64, QPSK, Modulation

__all__ = ["Mcs", "MCS_TABLE", "mcs_by_rate_bits", "mcs_by_name", "BASIC_MCS"]


@dataclass(frozen=True)
class Mcs:
    """One row of the 802.11a rate table.

    Attributes:
        rate_mbps: Nominal data rate in a 20 MHz channel.
        modulation: Constellation mapper.
        code_rate: Convolutional puncturing rate.
        rate_bits: The 4-bit RATE field value carried in SIG.
    """

    rate_mbps: float
    modulation: Modulation
    code_rate: CodeRate
    rate_bits: int

    @property
    def coded_bits_per_symbol(self) -> int:
        """N_CBPS: coded bits carried by one OFDM symbol."""
        return NUM_DATA_SUBCARRIERS * self.modulation.bits_per_symbol

    @property
    def data_bits_per_symbol(self) -> int:
        """N_DBPS: information bits per OFDM symbol after coding."""
        return int(self.coded_bits_per_symbol * self.code_rate.ratio)

    @property
    def name(self) -> str:
        """Canonical "<MOD>-<RATE>" label, e.g. "QAM64-3/4"."""
        return f"{self.modulation.name}-{self.code_rate.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.rate_mbps:g} Mbit/s)"


MCS_TABLE = (
    Mcs(6.0, BPSK, RATE_1_2, 0b1101),
    Mcs(9.0, BPSK, RATE_3_4, 0b1111),
    Mcs(12.0, QPSK, RATE_1_2, 0b0101),
    Mcs(18.0, QPSK, RATE_3_4, 0b0111),
    Mcs(24.0, QAM16, RATE_1_2, 0b1001),
    Mcs(36.0, QAM16, RATE_3_4, 0b1011),
    Mcs(48.0, QAM64, RATE_2_3, 0b0001),
    Mcs(54.0, QAM64, RATE_3_4, 0b0011),
)

BASIC_MCS = MCS_TABLE[0]  # BPSK 1/2: the rate SIG and A-HDR are sent at.

_BY_RATE_BITS = {m.rate_bits: m for m in MCS_TABLE}
_BY_NAME = {m.name: m for m in MCS_TABLE}


def mcs_by_rate_bits(rate_bits: int) -> Mcs:
    """Resolve the SIG RATE field to an MCS; raises ``KeyError`` if invalid."""
    if rate_bits not in _BY_RATE_BITS:
        raise KeyError(f"invalid RATE bits {rate_bits:#06b}")
    return _BY_RATE_BITS[rate_bits]


def mcs_by_name(name: str) -> Mcs:
    """Look up an MCS by "<MOD>-<RATE>" name, e.g. ``"QAM64-3/4"``."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown MCS {name!r}; have {sorted(_BY_NAME)}")
    return _BY_NAME[name]
