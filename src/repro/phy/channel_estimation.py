"""Channel estimation and equalization.

The standard receiver estimates the channel once, from the two LTF symbols
in the preamble (least-squares, averaged over the repetition), and divides
every later symbol by that estimate. This is exactly the "outdated channel"
behaviour that causes the paper's BER bias (Fig. 3): the estimate reflects
the channel at the *start* of the frame only.

Carpool's real-time estimator (``repro.core.rte``) builds on the same
primitives but keeps updating the estimate from correctly-decoded data
symbols.
"""

from __future__ import annotations

import numpy as np

from repro.phy.preamble import LTF_SEQUENCE

__all__ = ["estimate_from_ltf", "equalize", "estimate_from_known_symbol"]


def estimate_from_ltf(received_ltfs: np.ndarray) -> np.ndarray:
    """Least-squares channel estimate from received LTF symbol(s).

    Args:
        received_ltfs: Either one length-52 used vector or an array of
            shape (n_repeats, 52); repeats are averaged for a 3 dB noise
            reduction, as the two-LTF preamble allows.

    Returns:
        Length-52 complex channel estimate over the used subcarriers.
    """
    received = np.atleast_2d(np.asarray(received_ltfs, dtype=np.complex128))
    if received.shape[-1] != LTF_SEQUENCE.size:
        raise ValueError(f"expected {LTF_SEQUENCE.size} used subcarriers")
    mean_rx = received.mean(axis=0)
    return mean_rx / LTF_SEQUENCE


def estimate_from_known_symbol(received_used: np.ndarray, known_used: np.ndarray) -> np.ndarray:
    """LS channel estimate from any symbol whose transmitted value is known.

    This is the "data pilot" primitive of the paper's Eq. Ĥn = Dn / Yn:
    once a symbol is known to be decoded correctly, the reconstructed
    transmit vector acts as a full-band training symbol.

    Subcarriers where the known value is (numerically) zero are returned as
    NaN so callers can mask them out.
    """
    received = np.asarray(received_used, dtype=np.complex128)
    known = np.asarray(known_used, dtype=np.complex128)
    if received.shape != known.shape:
        raise ValueError("received/known shape mismatch")
    out = np.full(received.shape, np.nan + 0j, dtype=np.complex128)
    nonzero = np.abs(known) > 1e-12
    out[nonzero] = received[nonzero] / known[nonzero]
    return out


def equalize(received_used: np.ndarray, channel_estimate: np.ndarray) -> np.ndarray:
    """Zero-forcing equalization: divide by the channel estimate.

    Subcarriers whose estimate is ~0 (deep fade) are passed through
    unscaled rather than exploding to infinity.
    """
    received = np.asarray(received_used, dtype=np.complex128)
    estimate = np.asarray(channel_estimate, dtype=np.complex128)
    safe = np.where(np.abs(estimate) > 1e-12, estimate, 1.0)
    return received / safe
